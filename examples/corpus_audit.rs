//! Generate a synthetic publication corpus, audit it against the paper's
//! §5 recommendations, and export the data (experiments F2/F7 by hand).
//!
//! ```text
//! cargo run --example corpus_audit                  # audit only
//! cargo run --example corpus_audit -- --export /tmp # also write JSON + CSV
//! ```

use humnet::core::MethodsAuditor;
use humnet::corpus::{io, CorpusConfig};
use humnet::graph::pagerank;
use humnet::survey::detect_positionality;
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let argv: Vec<String> = std::env::args().collect();
    let export_dir: Option<PathBuf> = argv
        .iter()
        .position(|a| a == "--export")
        .and_then(|i| argv.get(i + 1))
        .map(PathBuf::from);

    // 1. Ten years of six venues.
    let config = CorpusConfig::default();
    let corpus = config.generate(2025)?;
    println!(
        "generated {} papers, {} authors, {} venues ({}–{})",
        corpus.papers.len(),
        corpus.authors.len(),
        corpus.venues.len(),
        corpus.year_range().unwrap().0,
        corpus.year_range().unwrap().1
    );

    // 2. The §5 audit.
    let report = MethodsAuditor::new().audit(&corpus)?;
    println!("\n§5 uptake by venue kind:");
    println!(
        "{:<20} {:>8} {:>14} {:>14} {:>14}",
        "venue kind", "papers", "partnerships", "conversations", "positionality"
    );
    for v in &report.venues {
        println!(
            "{:<20} {:>8} {:>14.3} {:>14.3} {:>14.3}",
            v.kind.label(),
            v.papers,
            v.partnership_rate,
            v.conversation_rate,
            v.positionality_rate
        );
    }
    println!(
        "\nfull §5 adoption: {:.1}% of papers; positionality detector recall {:.2}, precision {:.2}",
        100.0 * report.full_adoption_rate,
        report.detector_recall,
        report.detector_precision
    );

    // 3. Text-level spot check: run the detector on one abstract by hand.
    if let Some(paper) = corpus.papers.iter().find(|p| p.has_positionality()) {
        let detected = detect_positionality(&paper.abstract_text);
        println!(
            "\nspot check on \"{}\": detector {} (facets: {:?})",
            paper.title,
            if detected.is_some() { "fired" } else { "missed" },
            detected.map(|d| d.facets).unwrap_or_default()
        );
    }

    // 4. Influence structure of the citation graph.
    let graph = humnet::corpus::citation_graph(&corpus);
    let pr = pagerank(&graph, 0.85, 1e-10, 100)?;
    let mut ranked: Vec<(usize, f64)> = pr.into_iter().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\nmost influential papers by citation PageRank:");
    for &(id, score) in ranked.iter().take(5) {
        let p = &corpus.papers[id];
        println!(
            "  {:.4}  [{}] {} ({})",
            score,
            corpus.venues[p.venue].name,
            p.title,
            p.year
        );
    }

    // 5. Optional export.
    if let Some(dir) = export_dir {
        std::fs::create_dir_all(&dir)?;
        let json_path = dir.join("corpus.json");
        io::save_json(&corpus, &json_path)?;
        let csv_path = dir.join("papers.csv");
        std::fs::write(&csv_path, io::papers_to_csv(&corpus))?;
        println!(
            "\nexported {} and {}",
            json_path.display(),
            csv_path.display()
        );
    }
    Ok(())
}
