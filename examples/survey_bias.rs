//! Who gets heard? Sampling designs, representation bias, and what
//! weighting can (and cannot) fix — the paper's §1 claim about
//! reachability, made measurable.
//!
//! ```text
//! cargo run --example survey_bias
//! ```

use humnet::stats::Rng;
use humnet::survey::{
    cronbach_alpha, design_effect, post_stratification_weights, weighted_mean, Instrument,
    LikertItem, ResponseBias,
};
use humnet::survey::sampling::{
    draw_sample, representation_bias, synthetic_population, SamplingDesign,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng::new(2026);
    // A stakeholder population: reachable hyperscaler engineers, moderately
    // reachable ISP operators, hard-to-reach community-network operators.
    let population = synthetic_population(
        &[(120, 0.9), (80, 0.5), (50, 0.08)],
        4.0,
        &mut rng,
    )?;
    // The quantity we want to estimate: "how many hours a week do you spend
    // on unpaid maintenance?" — strongly group-dependent.
    let hours = |group: usize| -> f64 {
        match group {
            0 => 1.0,
            1 => 4.0,
            _ => 15.0,
        }
    };
    let pop_mean: f64 =
        population.iter().map(|m| hours(m.group)).sum::<f64>() / population.len() as f64;
    println!("population mean unpaid-maintenance hours: {pop_mean:.2}\n");

    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>12}",
        "design", "bias (TV)", "naive est.", "weighted", "design eff."
    );
    for design in [
        SamplingDesign::SimpleRandom,
        SamplingDesign::Stratified,
        SamplingDesign::Convenience,
        SamplingDesign::Snowball { seeds: 5 },
    ] {
        // Average over ten draws.
        let (mut bias, mut naive, mut weighted, mut deff) = (0.0, 0.0, 0.0, 0.0);
        for _ in 0..10 {
            let sample = draw_sample(&population, design, 60, &mut rng)?;
            bias += representation_bias(&population, &sample)?;
            let values: Vec<f64> = sample.iter().map(|&i| hours(population[i].group)).collect();
            naive += values.iter().sum::<f64>() / values.len() as f64;
            let w = post_stratification_weights(&population, &sample)?;
            weighted += weighted_mean(&values, &w)?;
            deff += design_effect(&w)?;
        }
        println!(
            "{:<22} {:>10.3} {:>12.2} {:>12.2} {:>12.2}",
            format!("{design:?}").split_whitespace().next().unwrap_or("?"),
            bias / 10.0,
            naive / 10.0,
            weighted / 10.0,
            deff / 10.0,
        );
    }
    println!(
        "\nReading: convenience sampling talks to whoever answers email and\n\
         underestimates unpaid labour by ~3x; post-stratification claws much\n\
         of it back *if* at least some hard-to-reach members were sampled —\n\
         at a real variance cost (design effect)."
    );

    // Instrument reliability: the survey itself must be coherent.
    let instrument = Instrument::new(
        vec![
            LikertItem {
                text: "I spend significant time maintaining the network".into(),
                reverse_coded: false,
            },
            LikertItem {
                text: "Network upkeep is part of my weekly routine".into(),
                reverse_coded: false,
            },
            LikertItem {
                text: "The network runs itself without my attention".into(),
                reverse_coded: true,
            },
        ],
        5,
    )?;
    let responses = instrument.simulate(200, &ResponseBias::default(), &mut rng)?;
    let items: Vec<Vec<f64>> = (0..instrument.len())
        .map(|i| {
            responses
                .answers
                .iter()
                .map(|row| instrument.coded(i, row[i]).unwrap())
                .collect()
        })
        .collect();
    println!(
        "\ninstrument internal consistency (Cronbach's alpha, n=200): {:.3}",
        cronbach_alpha(&items)?
    );
    Ok(())
}
