//! Running a participatory project with the humnet workflow types:
//! partners, staged engagements, the participation ladder, positionality
//! disclosure, and the patchwork field schedule (paper §2–§5 end to end).
//!
//! ```text
//! cargo run --example par_project
//! ```

use humnet::core::{
    DisclosureAudit, EngagementKind, EthnographyConfig, FieldStudy, MemoPractice, ParProject,
    ProjectRole, ResearchStage, RoleAssignment, Schedule,
};
use humnet::survey::{reflexivity_score, PositionalityFacet, PositionalityStatement};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Set up the project and its partners.
    let mut project = ParProject::new("valley-mesh");
    let village = project.add_partner("valley cooperative", "host community");
    let wisp = project.add_partner("regional WISP", "backhaul partner");

    // 2. Engage partners at every stage — and document it.
    project.engage(
        ResearchStage::ProblemFormation,
        village,
        EngagementKind::CommunityLed,
        "residents listed connectivity pain points at two assemblies",
        true,
    )?;
    project.engage(
        ResearchStage::SolutionDesign,
        village,
        EngagementKind::Collaborated,
        "co-designed node placement with the cooperative's works committee",
        true,
    )?;
    project.engage(
        ResearchStage::SolutionDesign,
        wisp,
        EngagementKind::Consulted,
        "backhaul capacity review call",
        true,
    )?;
    project.engage(
        ResearchStage::Evaluation,
        village,
        EngagementKind::Collaborated,
        "residents ran the two-week pilot and kept outage diaries",
        true,
    )?;
    project.engage(
        ResearchStage::Dissemination,
        village,
        EngagementKind::Consulted,
        "community review of the draft before submission",
        true,
    )?;

    println!("participation score: {:.3} / 1.0", project.participation_score());
    println!("§5.1 compliant: {}", project.is_5_1_compliant());
    for stage in ResearchStage::ALL {
        println!(
            "  {:<18} rung {:?}",
            stage.label(),
            project.stage_rung(stage)
        );
    }

    // 3. Positionality: the lead holds competing roles and must disclose.
    let roles = RoleAssignment::new(
        "lead",
        vec![ProjectRole::ResearchLead, ProjectRole::NetworkOperator],
    );
    let statement = PositionalityStatement::new()
        .disclose(
            PositionalityFacet::Disciplinary,
            "we write as network engineers leading the study",
        )
        .disclose(
            PositionalityFacet::InstitutionalTies,
            "the first author also operates the deployed network",
        )
        .with_reflection();
    let audit = DisclosureAudit::run(&roles, &statement)?;
    println!(
        "\nrole conflicts: {:?}\ndisclosure audit compliant: {}\nreflexivity score: {:.2}",
        audit.conflicts,
        audit.compliant(),
        reflexivity_score(&statement)?
    );
    println!("\nrendered statement:\n  {}", statement.render());

    // 4. Fieldwork under real constraints: patchwork visits with memos.
    let mut field = EthnographyConfig::default();
    field.budget_days = 40;
    field.schedule = Schedule::Patchwork {
        fragments: 5,
        gap_days: 21,
    };
    field.memos = MemoPractice::Reflexive(0.85);
    let outcome = FieldStudy::new(field)?.run();
    println!(
        "\nfieldwork: {} days on site across 5 visits -> {:.0}% of available insight harvested \
         (mean depth {:.2})",
        outcome.days_on_site,
        100.0 * outcome.saturation,
        outcome.mean_depth
    );
    Ok(())
}
