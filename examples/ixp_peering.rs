//! The two IXP case studies from the paper's §3, end to end.
//!
//! ```text
//! cargo run --example ixp_peering                    # both scenarios, defaults
//! cargo run --example ixp_peering -- --enforcement 0.5 --competitors 10
//! cargo run --example ixp_peering -- --content-presence 0.6
//! ```
//!
//! Scenario A (Mexico): a regulator mandates that the incumbent peer at
//! the national IXP; the incumbent responds with the ASN-splitting
//! maneuver Rosa documented. We sweep regulator enforcement and print
//! where competitor traffic actually gets exchanged.
//!
//! Scenario B (Brazil/Germany): Global South ISPs peer at a giant
//! Northern exchange because content has no local presence. We sweep
//! local content presence and print where South traffic is exchanged.

use humnet::ixp::{
    CircumventionStrategy, MexicoConfig, MexicoScenario, TwoRegionConfig, TwoRegionScenario,
};

struct Args {
    enforcement: Option<f64>,
    competitors: usize,
    content_presence: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        enforcement: None,
        competitors: 6,
        content_presence: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--enforcement" => {
                i += 1;
                args.enforcement = argv.get(i).and_then(|v| v.parse().ok());
            }
            "--competitors" => {
                i += 1;
                args.competitors = argv
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(args.competitors);
            }
            "--content-presence" => {
                i += 1;
                args.content_presence = argv.get(i).and_then(|v| v.parse().ok());
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args();

    println!("=== Scenario A: Mexico, mandatory peering vs the ASN shell ===\n");
    let enforcements: Vec<f64> = match args.enforcement {
        Some(e) => vec![e],
        None => (0..=4).map(|i| i as f64 / 4.0).collect(),
    };
    println!("{:<12} {:>16} {:>16} {:>14}", "enforcement", "share (comply)", "share (split)", "transit (split)");
    for e in enforcements {
        let mut cfg = MexicoConfig::default();
        cfg.competitors = args.competitors;
        cfg.regulation.enforcement = e;
        cfg.strategy = CircumventionStrategy::ComplyFully;
        let comply = MexicoScenario::run(&cfg)?;
        cfg.strategy = CircumventionStrategy::AsnSplitting;
        let split = MexicoScenario::run(&cfg)?;
        println!(
            "{:<12.2} {:>16.3} {:>16.3} {:>14.0}",
            e,
            comply.competitor_ixp_share()?,
            split.competitor_ixp_share()?,
            split.transit_cost(),
        );
    }
    println!(
        "\nReading: with a shell ASN at the exchange, the law's headline is met\n\
         while competitor traffic keeps flowing over the incumbent's paid transit.\n"
    );

    println!("=== Scenario B: Brazil vs Germany, the gravity of giant IXPs ===\n");
    let presences: Vec<f64> = match args.content_presence {
        Some(p) => vec![p],
        None => (0..=5).map(|i| i as f64 / 5.0).collect(),
    };
    println!(
        "{:<18} {:>18} {:>18}",
        "content presence", "exchanged abroad", "exchanged locally"
    );
    for p in presences {
        let mut cfg = TwoRegionConfig::default();
        cfg.content_presence_south = p;
        let sc = TwoRegionScenario::run(&cfg)?;
        println!(
            "{:<18.2} {:>18.3} {:>18.3}",
            p,
            sc.foreign_exchange_share()?,
            sc.local_exchange_share()?,
        );
    }
    println!(
        "\nReading: while content has no local point of presence, South-sourced\n\
         traffic is exchanged at the giant Northern IXP — the exchange acts as an\n\
         'alternative to Tier 1'. Local content presence pulls it home."
    );
    Ok(())
}
