//! Quickstart: a ten-minute tour of the humnet toolkit.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Walks through one small use of each layer: statistics, the agenda
//! simulator, the qualitative-coding engine, the IXP scenario builders,
//! and the methods auditor.

use humnet::agenda::{AgendaConfig, AgendaSim, MethodRegime};
use humnet::core::experiments;
use humnet::corpus::CorpusConfig;
use humnet::ixp::{CircumventionStrategy, MexicoConfig, MexicoScenario};
use humnet::qual::{cohen_kappa, Codebook, CodingSession};
use humnet::stats::{gini, Rng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Deterministic statistics -------------------------------------
    let mut rng = Rng::new(2025);
    let sample: Vec<f64> = (0..200).map(|_| rng.pareto(1.0, 1.3)).collect();
    println!("1. A Pareto sample of 200 'citation counts' has Gini {:.3}", gini(&sample)?);

    // 2. The agenda feedback loop -------------------------------------
    let mut cfg = AgendaConfig::default();
    cfg.regime = MethodRegime::DataDriven;
    let mut sim = AgendaSim::new(cfg)?;
    sim.run()?;
    let last = sim.history().last().expect("ran");
    println!(
        "2. Data-driven regime: {} publications, {} of {} marginalized problems surfaced",
        last.publications,
        last.surfaced_marginalized,
        sim.marginalized_total()
    );

    // 3. Qualitative coding --------------------------------------------
    let mut codebook = Codebook::new();
    let labor = codebook.add("maintenance-labor", "who fixes the network and how")?;
    let gov = codebook.add("governance", "how decisions get made")?;
    let mut alice = CodingSession::new("alice");
    let mut bob = CodingSession::new("bob");
    // Both coders code the same six turns of transcript "T1".
    for (turn, &code) in [labor, labor, gov, gov, labor, gov].iter().enumerate() {
        alice.apply(&codebook, "T1", turn, turn + 1, code)?;
    }
    for (turn, &code) in [labor, labor, gov, labor, labor, gov].iter().enumerate() {
        bob.apply(&codebook, "T1", turn, turn + 1, code)?;
    }
    let units: Vec<(String, usize)> = (0..6).map(|t| ("T1".to_string(), t)).collect();
    let matrix = humnet::qual::coding::label_matrix(&[alice, bob], &units);
    println!(
        "3. Two coders over six turns: Cohen's kappa = {:.3}",
        cohen_kappa(&matrix[0], &matrix[1])?
    );

    // 4. The Telmex maneuver -------------------------------------------
    let mut mx = MexicoConfig::default();
    mx.strategy = CircumventionStrategy::AsnSplitting;
    let circumvented = MexicoScenario::run(&mx)?;
    mx.strategy = CircumventionStrategy::ComplyFully;
    let complied = MexicoScenario::run(&mx)?;
    println!(
        "4. Competitor traffic exchanged at the IXP: {:.0}% complying vs {:.0}% with ASN splitting",
        100.0 * complied.competitor_ixp_share()?,
        100.0 * circumvented.competitor_ixp_share()?
    );

    // 5. Auditing a corpus against the paper's §5 ----------------------
    let corpus = CorpusConfig::default().generate(7)?;
    let report = humnet::core::MethodsAuditor::new().audit(&corpus)?;
    println!(
        "5. Across {} synthetic papers, {:.1}% fully adopt the paper's §5 recommendations",
        corpus.papers.len(),
        100.0 * report.full_adoption_rate
    );

    // 6. And the whole experiment suite is one call away ---------------
    let f1 = experiments::f1_attention(42)?;
    println!("6. Experiment F1 regenerated: attention gini = {:.3}", f1.gini);
    println!("\nRun `cargo run --bin experiments` for every table and figure.");
    Ok(())
}
