//! A complete qualitative-analysis workflow (the paper's §5.2 made
//! executable): transcripts → consent guardrails → anonymization →
//! codebook → multi-coder coding → reliability → themes → quotes.
//!
//! ```text
//! cargo run --example coding_session
//! ```

use humnet::qual::{
    coding::label_matrix, extract_themes, fleiss_kappa, krippendorff_alpha,
    representative_quotes, Codebook, CodingSession, ConsentStatus, EthicsPolicy, Transcript,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Field data: a site-visit conversation with two operators.
    let mut raw = Transcript::new("T1", "community network site visit");
    raw.researcher("How does the network stay up?")
        .participant("Maria", "Maria climbs the tower when the radio fails. Nobody pays us.")
        .researcher("Who decides on upgrades?")
        .participant("Jose", "The cooperative votes. Jose counts the ballots at the meeting.")
        .participant("Maria", "And we argue about the backhaul bill every month.")
        .researcher("What would help most?")
        .participant("Jose", "Spare radios. The vendor takes months to ship to us.");

    // 2. Ethics guardrails BEFORE anything leaves the field notebook.
    let mut policy = EthicsPolicy::with_irb("IRB-2026-042");
    policy.record_consent("P1", ConsentStatus::Granted, true);
    policy.record_consent("P2", ConsentStatus::Granted, false); // no direct quotes
    let transcript = raw.anonymize(&["Maria", "Jose"]);
    policy.check_export(&transcript)?;
    println!("consent + anonymization guardrails: OK");
    println!("P1 quotable: {}", policy.check_quote("P1").is_ok());
    println!("P2 quotable: {} (paraphrase instead)\n", policy.check_quote("P2").is_ok());

    // 3. A codebook with definitions coders can apply.
    let mut codebook = Codebook::new();
    let labor = codebook.add("maintenance-labor", "unpaid physical upkeep work")?;
    let governance = codebook.add("governance", "collective decision processes")?;
    let supply = codebook.add("supply-chain", "parts, vendors, and shipping")?;

    // 4. Three coders code the participant turns (turns 1, 3, 4, 6).
    let participant_turns = [1usize, 3, 4, 6];
    let truth = [labor, governance, governance, supply];
    let mut sessions = Vec::new();
    // Coder A agrees with the consensus everywhere.
    let mut a = CodingSession::new("A");
    for (&turn, &code) in participant_turns.iter().zip(&truth) {
        a.apply(&codebook, "T1", turn, turn + 1, code)?;
    }
    sessions.push(a);
    // Coder B reads turn 4 (the backhaul-bill argument) as labor.
    let mut b = CodingSession::new("B");
    for (&turn, &code) in participant_turns.iter().zip(&[labor, governance, labor, supply]) {
        b.apply(&codebook, "T1", turn, turn + 1, code)?;
    }
    sessions.push(b);
    // Coder C agrees with A.
    let mut c = CodingSession::new("C");
    for (&turn, &code) in participant_turns.iter().zip(&truth) {
        c.apply(&codebook, "T1", turn, turn + 1, code)?;
    }
    sessions.push(c);

    // 5. Reliability.
    let units: Vec<(String, usize)> = participant_turns
        .iter()
        .map(|&t| ("T1".to_string(), t))
        .collect();
    let matrix = label_matrix(&sessions, &units);
    println!("Fleiss' kappa over 3 coders: {:.3}", fleiss_kappa(&matrix)?);
    println!("Krippendorff's alpha:        {:.3}\n", krippendorff_alpha(&matrix)?);

    // 6. Themes and quotes for the paper.
    let themes = extract_themes(&codebook, &sessions, 7)?;
    println!("themes found:");
    for theme in &themes {
        let names: Vec<&str> = theme
            .codes
            .iter()
            .filter_map(|&id| codebook.get(id).map(|code| code.name.as_str()))
            .collect();
        println!("  [{}] support={} codes={:?}", theme.label, theme.support, names);
    }
    let transcripts = vec![transcript];
    println!("\nrepresentative quotes for 'maintenance-labor':");
    for quote in representative_quotes(&transcripts, &sessions, labor, 2) {
        println!("  \"{quote}\"");
    }
    Ok(())
}
