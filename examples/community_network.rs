//! A community network's year: volunteer sustainability and shared
//! backhaul governance (the paper's §4 grounding).
//!
//! ```text
//! cargo run --example community_network
//! cargo run --example community_network -- --failure-rate 0.08 --days 730
//! ```

use humnet::community::{
    AllocationPolicy, CongestionConfig, CongestionSim, SustainabilityConfig, SustainabilitySim,
    VolunteerRegime,
};

fn flag(name: &str) -> Option<f64> {
    let argv: Vec<String> = std::env::args().collect();
    argv.iter()
        .position(|a| a == name)
        .and_then(|i| argv.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let failure_rate = flag("--failure-rate").unwrap_or(0.05);
    let days = flag("--days").unwrap_or(365.0) as u32;

    println!("=== Part 1: who keeps the mesh alive? ===\n");
    println!(
        "{:<26} {:>8} {:>12} {:>10} {:>8}",
        "volunteer regime", "uptime", "mttr (days)", "attrition", "cost"
    );
    for regime in VolunteerRegime::ALL {
        // Average over five deployments.
        let (mut uptime, mut mttr, mut mttr_n, mut attrition, mut cost) =
            (0.0, 0.0, 0u32, 0usize, 0.0);
        for seed in 0..5 {
            let mut cfg = SustainabilityConfig::default();
            cfg.regime = regime;
            cfg.daily_failure_rate = failure_rate;
            cfg.days = days;
            cfg.seed = seed;
            let out = SustainabilitySim::new(cfg)?.run()?;
            uptime += out.uptime;
            if !out.mttr.is_nan() {
                mttr += out.mttr;
                mttr_n += 1;
            }
            attrition += out.attrition;
            cost += out.total_cost;
        }
        println!(
            "{:<26} {:>8.3} {:>12} {:>10.1} {:>8.0}",
            regime.label(),
            uptime / 5.0,
            if mttr_n > 0 {
                format!("{:.2}", mttr / mttr_n as f64)
            } else {
                "n/a".into()
            },
            attrition as f64 / 5.0,
            cost / 5.0,
        );
    }
    println!(
        "\nReading: two heroic volunteers burn out and the network decays;\n\
         distributed stewardship sustains it for free; paid staff sustains it\n\
         for money. Infrastructure is a people problem (§4).\n"
    );

    println!("=== Part 2: governing the shared backhaul ===\n");
    let sim = CongestionSim::new(CongestionConfig::default())?;
    println!(
        "{:<18} {:>22} {:>13} {:>22}",
        "policy", "fairness (backlogged)", "utilization", "modest-user starvation"
    );
    for out in sim.compare() {
        println!(
            "{:<18} {:>22.3} {:>13.3} {:>22.3}",
            out.policy.label(),
            out.fairness,
            out.utilization,
            out.starvation,
        );
    }
    let _ = AllocationPolicy::ALL; // exhaustiveness reminder
    println!(
        "\nReading: free-for-all fills the pipe but lets bursting heavy users\n\
         squeeze modest households; equal hard caps protect them but waste\n\
         capacity; the community-token scheme (Johnson et al.'s common-pool\n\
         governance) gets both right."
    );
    Ok(())
}
