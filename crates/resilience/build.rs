//! Bakes the git revision into the build so artifacts can say what code
//! produced them (`code_rev()` = crate version + short rev). Falls back to
//! `unknown` when the build happens outside a git checkout (e.g. from a
//! source tarball).

fn main() {
    let rev = std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned());
    println!("cargo:rustc-env=HUMNET_GIT_REV={rev}");
    // Re-stamp when HEAD moves (best effort: the path only exists in a
    // git checkout; a missing path is simply never dirty).
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
