//! Bounded retry with exponential backoff and deterministic jitter.

use humnet_stats::rng::SplitMix64;
use std::time::Duration;

/// Retry schedule: `base * 2^attempt`, capped, plus ±25% deterministic
/// jitter derived from `(seed, attempt)` so reruns sleep identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// Delay before the first retry.
    pub base: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Backoff {
    /// Schedule with a cap of 32× the base delay.
    pub fn new(base: Duration, seed: u64) -> Self {
        Backoff {
            base,
            cap: base.saturating_mul(32),
            seed,
        }
    }

    /// The per-shard retry schedule both dispatch tiers share: jitter
    /// stream `seed ^ shard`, so shard K sleeps identically whether its
    /// retries target a local child or a remote worker.
    pub fn for_shard(base: Duration, seed: u64, shard: u32) -> Self {
        Backoff::new(base, seed ^ u64::from(shard))
    }

    /// Delay before retry number `attempt` (0 = first retry). Jitter is a
    /// pure function of `(seed, attempt)`: no global RNG, no wall clock.
    pub fn delay(&self, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32.checked_shl(attempt.min(16)).unwrap_or(u32::MAX))
            .min(self.cap);
        // ±25% multiplicative jitter.
        let mut h = SplitMix64::new(self.seed ^ u64::from(attempt).wrapping_mul(0xA076_1D64_78BD_642F));
        let unit = (h.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let factor = 0.75 + 0.5 * unit;
        Duration::from_nanos((exp.as_nanos() as f64 * factor) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_exponentially_up_to_cap() {
        let b = Backoff::new(Duration::from_millis(10), 1);
        let d0 = b.delay(0);
        let d3 = b.delay(3);
        let d20 = b.delay(20);
        assert!(d3 > d0 * 4, "{d3:?} vs {d0:?}");
        // ±25% jitter around the 320ms cap.
        assert!(d20 <= b.cap.mul_f64(1.26));
        assert!(d20 >= b.cap.mul_f64(0.74));
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_attempt() {
        let b = Backoff::new(Duration::from_millis(10), 7);
        assert_eq!(b.delay(2), b.delay(2));
        let other_seed = Backoff::new(Duration::from_millis(10), 8);
        assert_ne!(b.delay(2), other_seed.delay(2));
    }

    #[test]
    fn jitter_stays_within_band() {
        let b = Backoff::new(Duration::from_millis(100), 3);
        for attempt in 0..10 {
            let nominal = b
                .base
                .saturating_mul(1 << attempt.min(16))
                .min(b.cap)
                .as_secs_f64();
            let d = b.delay(attempt).as_secs_f64();
            assert!(d >= nominal * 0.749 && d <= nominal * 1.251, "attempt {attempt}: {d}");
        }
    }
}
