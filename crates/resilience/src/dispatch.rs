//! Cross-process dispatch: supervised shard *child processes*.
//!
//! [`dispatch`] is the distributed counterpart of [`crate::shard`]'s
//! in-process fan-out: each shard of the experiment list runs in its own
//! child process (the `experiments` binary re-invokes itself with
//! `run --shards 1` over the shard's slice), writes its artifacts —
//! a telemetry snapshot (`--metrics-out`, events included), a serialized
//! [`RunArtifact`] (`--report-out`), and a heartbeat file — into a
//! per-shard scratch directory, and is supervised by a parent-side
//! watcher thread:
//!
//! * **crash detection** — a nonzero or signal exit fails the attempt;
//! * **deadlines** — a child outliving the per-shard wall-clock budget is
//!   killed;
//! * **liveness** — a child whose heartbeat file stops growing for longer
//!   than the grace window is declared hung and killed, even if the
//!   deadline has not elapsed;
//! * **retry** — failed shards are re-spawned up to a retry budget, with
//!   the same deterministic-jitter [`Backoff`] schedule the in-process
//!   runner uses.
//!
//! Because every per-experiment decision derives from `(seed, experiment
//! code, attempt)` alone, a re-spawned shard reproduces its predecessor's
//! events exactly, and the merged canonical journal of a K-process
//! dispatch is **byte-identical** to the in-process 1-shard run of the
//! same seed — including runs where chaos killed and retried shards along
//! the way. The merge strips each child's `run-start`/`run-end` boundary
//! events, re-bases its 0-based spec indices onto the shard's slice
//! offset, stamps shard provenance, and emits a single run-level
//! `run-start`/`run-end` pair around the canonical `(class, spec, seq)`
//! sort.
//!
//! Shards that exhaust their retries either fail the dispatch loudly
//! ([`DispatchError::ShardsFailed`]) or — under `allow_partial` — degrade
//! gracefully: the merged report is marked degraded, the missing shards
//! and experiment codes are listed, and the caller exits with a distinct
//! code. Circuit-breaker state is reconciled at merge time
//! ([`reconcile_breakers`]): per-family failure counts are summed across
//! shards and families that would have been open globally are flagged,
//! since per-child breakers cannot see failures on sibling shards.
//!
//! Process-level fault injection for tests and CI rides on the
//! [`CHAOS_ENV`] environment variable: [`ChaosProc`] specs (`kill:2`,
//! `hang:1:0`, `kill:2:1`) make the parent set the variable on matching
//! `(shard, attempt)` spawns, and a cooperating child self-kills or
//! sleeps past its deadline — so the crash, hang, retry, and degradation
//! paths are deterministically exercisable.

use crate::backoff::Backoff;
use crate::report::{RunArtifact, RunReport};
use crate::runner::{run_start_detail, RunnerConfig, SupervisedRun};
use humnet_telemetry::{spec_order_in_place, Event, Telemetry, TelemetrySnapshot};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitStatus, Stdio};
use std::thread;
use std::time::{Duration, Instant};

/// Environment variable a dispatch parent sets on chaos-selected child
/// spawns; a cooperating child reads it before doing any work.
/// `kill` → exit immediately with code 137 (simulated crash);
/// `hang` → sleep silently past any deadline (simulated wedge).
pub const CHAOS_ENV: &str = "HUMNET_CHAOS_PROC";

/// Exit code a chaos-killed child terminates with (mirrors `128 + SIGKILL`).
pub const CHAOS_KILL_CODE: i32 = 137;

/// One process-level fault injection: which shard, which spawn attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosProc {
    /// Child self-kills immediately (`kill:<shard>[:attempt]`, attempt 0
    /// by default).
    Kill {
        /// Targeted shard index.
        shard: u32,
        /// Spawn attempt the fault fires on (0 = first).
        attempt: u32,
    },
    /// Child sleeps past its deadline without heartbeating
    /// (`hang:<shard>[:attempt]`).
    Hang {
        /// Targeted shard index.
        shard: u32,
        /// Spawn attempt the fault fires on (0 = first).
        attempt: u32,
    },
}

impl ChaosProc {
    /// Parse a `--chaos-proc` argument: `kill:<shard>[:attempt]` or
    /// `hang:<shard>[:attempt]`.
    pub fn parse(s: &str) -> Option<ChaosProc> {
        let mut parts = s.split(':');
        let kind = parts.next()?;
        let shard: u32 = parts.next()?.parse().ok()?;
        let attempt: u32 = match parts.next() {
            Some(a) => a.parse().ok()?,
            None => 0,
        };
        if parts.next().is_some() {
            return None;
        }
        match kind {
            "kill" => Some(ChaosProc::Kill { shard, attempt }),
            "hang" => Some(ChaosProc::Hang { shard, attempt }),
            _ => None,
        }
    }

    /// The [`CHAOS_ENV`] value to set when spawning `(shard, attempt)`,
    /// if this fault targets it.
    pub fn env_value(&self, shard: u32, attempt: u32) -> Option<&'static str> {
        match *self {
            ChaosProc::Kill { shard: s, attempt: a } if s == shard && a == attempt => Some("kill"),
            ChaosProc::Hang { shard: s, attempt: a } if s == shard && a == attempt => Some("hang"),
            _ => None,
        }
    }
}

/// Knobs for the cross-process dispatcher.
#[derive(Debug, Clone)]
pub struct DispatchConfig {
    /// Extra spawn attempts per shard after the first (0 = no retry).
    pub shard_retries: u32,
    /// Per-attempt wall-clock budget for one child process.
    pub shard_deadline: Duration,
    /// Maximum heartbeat silence before a live child is declared hung and
    /// killed. Zero disables liveness checking (the deadline still holds).
    pub liveness: Duration,
    /// Supervision poll interval.
    pub poll: Duration,
    /// Degrade to a partial merged result instead of failing the dispatch
    /// when a shard exhausts its retries.
    pub allow_partial: bool,
    /// Process-level fault injections (testing/CI).
    pub chaos: Vec<ChaosProc>,
    /// Scratch directory holding the per-shard artifact directories.
    pub scratch: PathBuf,
    /// Base delay for the shard-retry backoff schedule.
    pub backoff_base: Duration,
    /// Seed for the retry backoff jitter (per-shard streams derive from it).
    pub seed: u64,
    /// Keep per-(shard, attempt) scratch directories after a successful
    /// attempt instead of removing them once their artifacts are parsed.
    /// Failed attempts always keep theirs — the child log is the only
    /// evidence of what went wrong.
    pub keep_scratch: bool,
}

impl Default for DispatchConfig {
    fn default() -> Self {
        DispatchConfig {
            shard_retries: 1,
            shard_deadline: Duration::from_secs(120),
            liveness: Duration::from_secs(10),
            poll: Duration::from_millis(15),
            allow_partial: false,
            chaos: Vec::new(),
            scratch: std::env::temp_dir().join(format!("humnet-dispatch-{}", std::process::id())),
            backoff_base: Duration::from_millis(25),
            seed: 42,
            keep_scratch: false,
        }
    }
}

/// One shard's slice of the run: which experiments, and where the slice
/// starts in the full spec list (the spec-index re-base offset).
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Shard index (0-based, dense).
    pub shard: u32,
    /// Offset of this slice in the full experiment list.
    pub spec_base: u64,
    /// Experiment codes in the slice, in canonical order.
    pub codes: Vec<String>,
}

/// Filesystem layout of one shard attempt's artifacts. Attempt-scoped so
/// a retry can never be confused with its crashed predecessor's leftovers.
#[derive(Debug, Clone)]
pub struct ShardPaths {
    /// The attempt's scratch directory.
    pub dir: PathBuf,
    /// Shard index.
    pub shard: u32,
    /// Spawn attempt (0 = first).
    pub attempt: u32,
    /// Telemetry snapshot JSON the child writes (`--metrics-out`).
    pub metrics: PathBuf,
    /// Serialized [`RunArtifact`] JSON the child writes (`--report-out`).
    pub report: PathBuf,
    /// Event journal JSONL the child writes (`--journal-out`; kept for
    /// debugging — the merge reads events from the metrics snapshot).
    pub journal: PathBuf,
    /// Heartbeat file the child appends to; the parent polls its growth.
    pub heartbeat: PathBuf,
    /// Captured child stdout+stderr.
    pub log: PathBuf,
}

impl ShardPaths {
    /// Layout for `(shard, attempt)` under `scratch`.
    pub fn new(scratch: &Path, shard: u32, attempt: u32) -> ShardPaths {
        let dir = scratch.join(format!("shard-{shard}-attempt-{attempt}"));
        ShardPaths {
            metrics: dir.join("metrics.json"),
            report: dir.join("report.json"),
            journal: dir.join("journal.jsonl"),
            heartbeat: dir.join("heartbeat"),
            log: dir.join("child.log"),
            shard,
            attempt,
            dir,
        }
    }
}

/// Why one shard attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum AttemptFailure {
    Spawn(String),
    Exited(String),
    TimedOut(Duration),
    Hung(Duration),
    Artifact(String),
    /// A remote lease failed ([`crate::remote`]); the message carries the
    /// worker address and the connection-level reason.
    Remote(String),
}

impl fmt::Display for AttemptFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttemptFailure::Spawn(e) => write!(f, "failed to spawn child: {e}"),
            AttemptFailure::Exited(status) => write!(f, "child exited abnormally ({status})"),
            AttemptFailure::TimedOut(d) => {
                write!(f, "child exceeded the {}ms shard deadline; killed", d.as_millis())
            }
            AttemptFailure::Hung(d) => write!(
                f,
                "no heartbeat for {}ms; child declared hung and killed",
                d.as_millis()
            ),
            AttemptFailure::Artifact(e) => write!(f, "child artifacts unusable: {e}"),
            AttemptFailure::Remote(e) => write!(f, "{e}"),
        }
    }
}

/// What a successful shard hands back after artifact parsing.
pub(crate) struct ShardYield {
    pub(crate) artifact: RunArtifact,
    pub(crate) telemetry: TelemetrySnapshot,
}

/// Final per-shard supervision outcome.
pub(crate) struct ShardOutcome {
    pub(crate) spec: ShardSpec,
    pub(crate) attempts: u32,
    pub(crate) result: Result<ShardYield, AttemptFailure>,
}

/// A shard that never produced a usable result (after all retries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissingShard {
    /// Shard index.
    pub shard: u32,
    /// Spawn attempts consumed.
    pub attempts: u32,
    /// Experiment codes the merged run is missing because of it.
    pub codes: Vec<String>,
    /// Last attempt's failure, human-readable.
    pub reason: String,
}

/// Dispatch-level failure: one or more shards exhausted their retries and
/// partial results were not allowed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DispatchError {
    /// The scratch directory could not be created.
    Scratch(String),
    /// Shards died after all retries; `--allow-partial` was off.
    ShardsFailed(Vec<MissingShard>),
}

impl fmt::Display for DispatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DispatchError::Scratch(e) => write!(f, "cannot create dispatch scratch dir: {e}"),
            DispatchError::ShardsFailed(missing) => {
                write!(f, "{} shard(s) failed after all retries:", missing.len())?;
                for m in missing {
                    write!(
                        f,
                        "\n  shard {} ({} attempts, experiments {}): {}",
                        m.shard,
                        m.attempts,
                        m.codes.join(" "),
                        m.reason
                    )?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for DispatchError {}

/// Merge-time circuit-breaker reconciliation for one family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilyBreakerState {
    /// Experiment family (breaker granularity).
    pub family: String,
    /// Executed-and-failed experiments summed across all shards.
    pub failures: u32,
    /// Experiments short-circuited by a shard-local open breaker.
    pub skips: u32,
    /// Whether the summed failure count would have opened a single global
    /// breaker at the run's threshold.
    pub open_globally: bool,
}

/// Cross-shard breaker view: per-child breakers only see their own shard's
/// failures, so the merge sums per-family failure counts and flags
/// families a run-wide breaker would have opened. (Consecutiveness cannot
/// be reconstructed across shards; the global view over-approximates by
/// using totals, which is the conservative direction for flagging.)
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BreakerReconciliation {
    /// The failure threshold the run was configured with.
    pub threshold: u32,
    /// Families with at least one failure or breaker skip, sorted.
    pub families: Vec<FamilyBreakerState>,
}

impl BreakerReconciliation {
    /// Families flagged as globally open, in sorted order.
    pub fn open_families(&self) -> Vec<&str> {
        self.families
            .iter()
            .filter(|f| f.open_globally)
            .map(|f| f.family.as_str())
            .collect()
    }

    /// Human-readable reconciliation lines; empty when nothing failed.
    pub fn render(&self) -> String {
        if self.families.is_empty() {
            return String::new();
        }
        let mut out = format!("breaker reconciliation  threshold={}\n", self.threshold);
        for f in &self.families {
            out.push_str(&format!(
                "  family '{}': {} failures, {} breaker skips across shards — {}\n",
                f.family,
                f.failures,
                f.skips,
                if f.open_globally {
                    "would be OPEN globally"
                } else {
                    "below global threshold"
                },
            ));
        }
        out
    }
}

/// Sum per-family failures across the merged report and flag families a
/// single run-wide breaker (at `threshold`) would have opened. Rows with
/// zero attempts are breaker skips (a shard-local breaker already open),
/// counted separately from executed failures.
pub fn reconcile_breakers(report: &RunReport, threshold: u32) -> BreakerReconciliation {
    let mut families: BTreeMap<&str, (u32, u32)> = BTreeMap::new();
    for row in &report.experiments {
        if row.status.completed() {
            continue;
        }
        let entry = families.entry(&row.family).or_default();
        if row.attempts == 0 {
            entry.1 += 1;
        } else {
            entry.0 += 1;
        }
    }
    BreakerReconciliation {
        threshold,
        families: families
            .into_iter()
            .map(|(family, (failures, skips))| FamilyBreakerState {
                family: family.to_owned(),
                failures,
                skips,
                open_globally: threshold > 0 && failures >= threshold,
            })
            .collect(),
    }
}

/// Result of a cross-process dispatch.
#[derive(Debug)]
pub struct DispatchOutcome {
    /// The merged run (report, outputs, telemetry) over every shard that
    /// produced a result.
    pub run: SupervisedRun,
    /// Shards that produced nothing (empty unless `allow_partial` let the
    /// dispatch degrade).
    pub missing: Vec<MissingShard>,
    /// Cross-shard circuit-breaker view of the merged report.
    pub reconciliation: BreakerReconciliation,
    /// Spawn attempts consumed per shard, in shard order.
    pub shard_attempts: Vec<u32>,
}

impl DispatchOutcome {
    /// Whether the merged result is partial (at least one shard missing).
    pub fn degraded(&self) -> bool {
        !self.missing.is_empty()
    }

    /// Process exit code: a degraded (partial) result exits with the
    /// distinct code 3; otherwise the merged report's own code applies
    /// (0 completed, 1 failed, 2 timed out).
    pub fn exit_code(&self) -> i32 {
        if self.degraded() {
            3
        } else {
            self.run.report.exit_code()
        }
    }

    /// Per-shard supervision summary plus degradation and breaker
    /// reconciliation sections, for the end-of-dispatch report.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        if self.degraded() {
            out.push_str("dispatch verdict: DEGRADED — partial results\n");
            for m in &self.missing {
                out.push_str(&format!(
                    "  missing shard {} after {} attempts: {}\n    lost experiments: {}\n",
                    m.shard,
                    m.attempts,
                    m.reason,
                    m.codes.join(" "),
                ));
            }
        } else {
            let retried = self
                .shard_attempts
                .iter()
                .enumerate()
                .filter(|&(_, &a)| a > 1)
                .map(|(k, &a)| format!("shard {k}: {a} attempts"))
                .collect::<Vec<_>>();
            if retried.is_empty() {
                out.push_str("dispatch verdict: complete — every shard succeeded first try\n");
            } else {
                out.push_str(&format!(
                    "dispatch verdict: complete after retries ({})\n",
                    retried.join(", ")
                ));
            }
        }
        let breakers = self.reconciliation.render();
        if !breakers.is_empty() {
            out.push_str(&breakers);
        }
        out
    }
}

/// Run `shards` as supervised child processes and merge their artifacts.
///
/// `build` constructs the child [`Command`] for one shard attempt — the
/// `experiments` binary passes a self-invocation (`current_exe` +
/// `run --shards 1 …`), tests can substitute anything that writes the
/// artifact files. The dispatcher owns everything around the command:
/// scratch directories, chaos environment stamping, stdio capture into
/// the attempt's log file, kill-on-deadline, heartbeat liveness, retry
/// with deterministic backoff, artifact parsing, and the final merge.
///
/// Shards with empty `codes` are skipped without spawning (they could not
/// contribute events or report rows).
pub fn dispatch<F>(
    config: &DispatchConfig,
    runner: &RunnerConfig,
    shards: Vec<ShardSpec>,
    build: F,
) -> Result<DispatchOutcome, DispatchError>
where
    F: Fn(&ShardSpec, &ShardPaths) -> Command + Sync,
{
    fs::create_dir_all(&config.scratch).map_err(|e| DispatchError::Scratch(e.to_string()))?;
    let planned: usize = shards.iter().map(|s| s.codes.len()).sum();

    let outcomes: Vec<ShardOutcome> = thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .filter(|spec| !spec.codes.is_empty())
            .map(|spec| scope.spawn(|| supervise_shard(config, spec, &build)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard watcher never panics"))
            .collect()
    });

    let missing: Vec<MissingShard> = outcomes
        .iter()
        .filter_map(|o| match &o.result {
            Ok(_) => None,
            Err(failure) => Some(MissingShard {
                shard: o.spec.shard,
                attempts: o.attempts,
                codes: o.spec.codes.clone(),
                reason: failure.to_string(),
            }),
        })
        .collect();
    if !missing.is_empty() && !config.allow_partial {
        return Err(DispatchError::ShardsFailed(missing));
    }

    Ok(merge_outcomes(runner, planned, outcomes, missing))
}

/// Supervise one shard: spawn, watch, retry. Returns the last attempt's
/// parsed artifacts or the last failure. Also the local-failover rung of
/// [`crate::remote::dispatch_remote`]'s ladder.
pub(crate) fn supervise_shard<F>(config: &DispatchConfig, spec: ShardSpec, build: &F) -> ShardOutcome
where
    F: Fn(&ShardSpec, &ShardPaths) -> Command,
{
    let backoff = Backoff::for_shard(config.backoff_base, config.seed, spec.shard);
    let mut last = AttemptFailure::Spawn("never attempted".to_owned());
    let mut attempts = 0;
    for attempt in 0..=config.shard_retries {
        if attempt > 0 {
            eprintln!(
                "dispatch: shard {} attempt {attempt} after failure: {last}",
                spec.shard
            );
            thread::sleep(backoff.delay(attempt - 1));
        }
        attempts += 1;
        match run_attempt(config, &spec, attempt, build) {
            Ok(yielded) => {
                return ShardOutcome {
                    spec,
                    attempts,
                    result: Ok(yielded),
                };
            }
            Err(failure) => last = failure,
        }
    }
    eprintln!(
        "dispatch: shard {} gave up after {attempts} attempts: {last}",
        spec.shard
    );
    ShardOutcome {
        spec,
        attempts,
        result: Err(last),
    }
}

/// One spawn-watch-collect cycle for a shard attempt.
fn run_attempt<F>(
    config: &DispatchConfig,
    spec: &ShardSpec,
    attempt: u32,
    build: &F,
) -> Result<ShardYield, AttemptFailure>
where
    F: Fn(&ShardSpec, &ShardPaths) -> Command,
{
    let paths = ShardPaths::new(&config.scratch, spec.shard, attempt);
    fs::create_dir_all(&paths.dir).map_err(|e| AttemptFailure::Spawn(e.to_string()))?;

    let mut cmd = build(spec, &paths);
    cmd.env_remove(CHAOS_ENV);
    if let Some(value) = config
        .chaos
        .iter()
        .find_map(|c| c.env_value(spec.shard, attempt))
    {
        cmd.env(CHAOS_ENV, value);
    }
    let log = fs::File::create(&paths.log).map_err(|e| AttemptFailure::Spawn(e.to_string()))?;
    let log_err = log.try_clone().map_err(|e| AttemptFailure::Spawn(e.to_string()))?;
    cmd.stdin(Stdio::null()).stdout(log).stderr(log_err);

    let mut child = cmd.spawn().map_err(|e| AttemptFailure::Spawn(e.to_string()))?;
    match watch(&mut child, &paths, config) {
        Verdict::Exited(status) if status.success() => {
            let yielded = collect(&paths)?;
            // Artifacts are in memory now; the attempt dir has served its
            // purpose. (A collect failure above keeps the dir: unusable
            // artifacts are exactly when you want to inspect them.)
            if !config.keep_scratch {
                let _ = fs::remove_dir_all(&paths.dir);
            }
            Ok(yielded)
        }
        Verdict::Exited(status) => Err(AttemptFailure::Exited(status.to_string())),
        Verdict::TimedOut => {
            let _ = child.kill();
            let _ = child.wait();
            Err(AttemptFailure::TimedOut(config.shard_deadline))
        }
        Verdict::Hung(silence) => {
            let _ = child.kill();
            let _ = child.wait();
            Err(AttemptFailure::Hung(silence))
        }
    }
}

/// How a watched child attempt ended.
enum Verdict {
    Exited(ExitStatus),
    TimedOut,
    Hung(Duration),
}

/// Poll the child until it exits, overruns the shard deadline, or stops
/// heartbeating for longer than the liveness grace.
fn watch(child: &mut Child, paths: &ShardPaths, config: &DispatchConfig) -> Verdict {
    let started = Instant::now();
    let mut hb_len = 0u64;
    let mut hb_seen = Instant::now();
    loop {
        match child.try_wait() {
            Ok(Some(status)) => return Verdict::Exited(status),
            Ok(None) => {}
            // try_wait errors are transient at worst; treat as still-running
            // and let the deadline bound the damage.
            Err(_) => {}
        }
        if started.elapsed() >= config.shard_deadline {
            return Verdict::TimedOut;
        }
        if !config.liveness.is_zero() {
            let len = fs::metadata(&paths.heartbeat).map(|m| m.len()).unwrap_or(0);
            if len > hb_len {
                hb_len = len;
                hb_seen = Instant::now();
            } else if hb_seen.elapsed() >= config.liveness {
                return Verdict::Hung(hb_seen.elapsed());
            }
        }
        thread::sleep(config.poll);
    }
}

/// Parse a completed attempt's artifacts back into a [`ShardYield`].
fn collect(paths: &ShardPaths) -> Result<ShardYield, AttemptFailure> {
    let metrics = fs::read_to_string(&paths.metrics)
        .map_err(|e| AttemptFailure::Artifact(format!("read {}: {e}", paths.metrics.display())))?;
    let telemetry = TelemetrySnapshot::from_json(&metrics).map_err(|e| {
        AttemptFailure::Artifact(format!("parse {}: {e}", paths.metrics.display()))
    })?;
    let report = fs::read_to_string(&paths.report)
        .map_err(|e| AttemptFailure::Artifact(format!("read {}: {e}", paths.report.display())))?;
    let artifact = RunArtifact::from_json(&report).map_err(|e| {
        AttemptFailure::Artifact(format!("parse {}: {e}", paths.report.display()))
    })?;
    Ok(ShardYield { artifact, telemetry })
}

/// Fold the per-shard results into one run-level [`SupervisedRun`].
///
/// Differences from the in-process [`crate::merge_runs`]: child processes
/// already recorded their report metrics (`runner.experiments`, statuses,
/// …) into their own snapshots — and counters over a partition sum to the
/// run total — so the merge must *not* re-record them; and each child's
/// journal carries its own `run-start`/`run-end` pair plus 0-based spec
/// indices, which the merge strips and re-bases before the canonical sort.
/// Shared verbatim with [`crate::remote::dispatch_remote`] — a worker's
/// final frame and a child's artifact files parse into the same
/// [`ShardYield`], so remote and local shards merge identically.
pub(crate) fn merge_outcomes(
    runner: &RunnerConfig,
    planned: usize,
    outcomes: Vec<ShardOutcome>,
    missing: Vec<MissingShard>,
) -> DispatchOutcome {
    let mut outcomes = outcomes;
    outcomes.sort_by_key(|o| o.spec.shard);
    let shard_attempts: Vec<u32> = outcomes.iter().map(|o| o.attempts).collect();

    let tel = Telemetry::new();
    tel.event(Event::new("run-start", run_start_detail(runner, planned)));
    tel.counter("dispatch.procs", outcomes.len() as u64);
    tel.counter("dispatch.shards_missing", missing.len() as u64);
    let mut report = RunReport {
        experiments: Vec::with_capacity(planned),
        profile: runner.profile.label().to_owned(),
        seed: runner.seed,
        code_rev: crate::code_rev(),
    };
    let mut outputs = BTreeMap::new();
    for outcome in outcomes {
        tel.counter(
            &format!("dispatch.shard.{}.attempts", outcome.spec.shard),
            u64::from(outcome.attempts),
        );
        let Ok(yielded) = outcome.result else {
            continue;
        };
        let mut snap = yielded.telemetry;
        snap.events.retain(|e| e.kind != "run-start" && e.kind != "run-end");
        snap.offset_spec(outcome.spec.spec_base);
        snap.stamp_shard(outcome.spec.shard);
        report.absorb(yielded.artifact.report);
        outputs.extend(yielded.artifact.outputs);
        tel.absorb(snap, "");
    }
    tel.event(Event::new("run-end", report.summary_line()));
    let mut telemetry = tel.into_snapshot();
    spec_order_in_place(&mut telemetry.events);
    let reconciliation = reconcile_breakers(&report, runner.breaker_threshold);
    DispatchOutcome {
        run: SupervisedRun {
            report,
            outputs,
            telemetry,
        },
        missing,
        reconciliation,
        shard_attempts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{ExperimentReport, ExperimentStatus};

    fn row(code: &str, family: &str, status: ExperimentStatus, attempts: u32) -> ExperimentReport {
        ExperimentReport {
            code: code.to_owned(),
            title: format!("experiment {code}"),
            family: family.to_owned(),
            status,
            attempts,
            faults_injected: 0,
            message: String::new(),
            duration_ms: 0,
        }
    }

    #[test]
    fn chaos_specs_parse_and_match() {
        assert_eq!(
            ChaosProc::parse("kill:2"),
            Some(ChaosProc::Kill { shard: 2, attempt: 0 })
        );
        assert_eq!(
            ChaosProc::parse("kill:2:1"),
            Some(ChaosProc::Kill { shard: 2, attempt: 1 })
        );
        assert_eq!(
            ChaosProc::parse("hang:0"),
            Some(ChaosProc::Hang { shard: 0, attempt: 0 })
        );
        for bad in ["", "kill", "kill:", "kill:x", "boom:1", "kill:1:2:3"] {
            assert_eq!(ChaosProc::parse(bad), None, "{bad:?}");
        }
        let c = ChaosProc::parse("kill:2:1").unwrap();
        assert_eq!(c.env_value(2, 1), Some("kill"));
        assert_eq!(c.env_value(2, 0), None);
        assert_eq!(c.env_value(1, 1), None);
    }

    #[test]
    fn reconciliation_sums_failures_across_shards() {
        // Two shards each saw one 'sick' failure: below the local threshold
        // of 2 everywhere, but globally the family would have been open.
        let mut report = RunReport::default();
        report.experiments.push(row("a", "sick", ExperimentStatus::Failed, 2));
        report.experiments.push(row("b", "fine", ExperimentStatus::Ok, 1));
        report.experiments.push(row("c", "sick", ExperimentStatus::TimedOut, 1));
        let rec = reconcile_breakers(&report, 2);
        assert_eq!(rec.families.len(), 1);
        let sick = &rec.families[0];
        assert_eq!(sick.family, "sick");
        assert_eq!(sick.failures, 2);
        assert_eq!(sick.skips, 0);
        assert!(sick.open_globally);
        assert_eq!(rec.open_families(), vec!["sick"]);
        assert!(rec.render().contains("would be OPEN globally"));
    }

    #[test]
    fn reconciliation_counts_breaker_skips_separately() {
        let mut report = RunReport::default();
        report.experiments.push(row("a", "sick", ExperimentStatus::Failed, 1));
        // A zero-attempt failure is a shard-local breaker skip.
        report.experiments.push(row("b", "sick", ExperimentStatus::Failed, 0));
        let rec = reconcile_breakers(&report, 3);
        let sick = &rec.families[0];
        assert_eq!(sick.failures, 1);
        assert_eq!(sick.skips, 1);
        assert!(!sick.open_globally, "1 executed failure < threshold 3");
    }

    #[test]
    fn reconciliation_of_clean_report_is_empty() {
        let mut report = RunReport::default();
        report.experiments.push(row("a", "fine", ExperimentStatus::Ok, 1));
        report.experiments.push(row("b", "fine", ExperimentStatus::Retried, 2));
        let rec = reconcile_breakers(&report, 2);
        assert!(rec.families.is_empty());
        assert_eq!(rec.render(), "");
    }

    // -- process-level tests against /bin/sh fake children ----------------

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "humnet-dispatch-test-{}-{tag}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn quick_config(tag: &str) -> DispatchConfig {
        DispatchConfig {
            shard_retries: 1,
            shard_deadline: Duration::from_secs(20),
            liveness: Duration::ZERO,
            poll: Duration::from_millis(5),
            backoff_base: Duration::from_millis(1),
            scratch: scratch(tag),
            ..DispatchConfig::default()
        }
    }

    fn shard_spec(shard: u32, spec_base: u64, codes: &[&str]) -> ShardSpec {
        ShardSpec {
            shard,
            spec_base,
            codes: codes.iter().map(|s| (*s).to_owned()).collect(),
        }
    }

    /// A `sh` child that writes valid single-experiment artifacts, as a
    /// child `experiments run --shards 1` invocation would.
    fn good_child(spec: &ShardSpec, paths: &ShardPaths) -> Command {
        let code = spec.codes[0].clone();
        let tel = Telemetry::new();
        tel.event(Event::new("run-start", "profile=none seed=1"));
        tel.event(Event::new("experiment-start", "t").in_experiment(&code).with_spec(0));
        tel.event(
            Event::new("experiment-end", "ok faults=0")
                .with_attempt(0)
                .in_experiment(&code)
                .with_spec(0),
        );
        tel.event(Event::new("run-end", "1 experiments: 1 ok"));
        tel.counter("runner.experiments", 1);
        let metrics = tel.into_snapshot().to_json().unwrap();
        let artifact = RunArtifact {
            report: RunReport {
                experiments: vec![row(&code, "fam", ExperimentStatus::Ok, 1)],
                profile: "none".to_owned(),
                seed: 1,
                code_rev: String::new(),
            },
            outputs: std::iter::once((code.clone(), format!("{code} output"))).collect(),
        };
        let mut cmd = Command::new("sh");
        cmd.arg("-c").arg(format!(
            "cat > {m} <<'HUMNET_EOF_M'\n{metrics}\nHUMNET_EOF_M\ncat > {r} <<'HUMNET_EOF_R'\n{report}\nHUMNET_EOF_R\n",
            m = shell_quote(&paths.metrics),
            r = shell_quote(&paths.report),
            report = artifact.to_json().unwrap(),
        ));
        cmd
    }

    fn shell_quote(p: &Path) -> String {
        format!("'{}'", p.display())
    }

    #[test]
    fn crash_on_first_attempt_is_retried_to_success() {
        let config = quick_config("retry");
        let specs = vec![shard_spec(0, 0, &["e0"]), shard_spec(1, 1, &["e1"])];
        let outcome = dispatch(&config, &RunnerConfig::default(), specs, |spec, paths| {
            if spec.shard == 1 && paths.attempt == 0 {
                let mut cmd = Command::new("sh");
                cmd.arg("-c").arg("exit 7");
                cmd
            } else {
                good_child(spec, paths)
            }
        })
        .unwrap();
        assert!(!outcome.degraded());
        assert_eq!(outcome.shard_attempts, vec![1, 2]);
        assert_eq!(outcome.exit_code(), 0);
        assert_eq!(outcome.run.report.experiments.len(), 2);
        assert_eq!(outcome.run.outputs["e1"], "e1 output");
        assert_eq!(
            outcome.run.telemetry.metrics.counters["dispatch.shard.1.attempts"],
            2
        );
        assert!(outcome.render_summary().contains("complete after retries"));
        let _ = fs::remove_dir_all(&config.scratch);
    }

    #[test]
    fn exhausted_retries_fail_loudly_without_allow_partial() {
        let mut config = quick_config("loud");
        config.shard_retries = 1;
        let specs = vec![shard_spec(0, 0, &["e0"])];
        let err = dispatch(&config, &RunnerConfig::default(), specs, |_, _| {
            let mut cmd = Command::new("sh");
            cmd.arg("-c").arg("exit 3");
            cmd
        })
        .unwrap_err();
        let DispatchError::ShardsFailed(missing) = &err else {
            panic!("expected ShardsFailed, got {err:?}");
        };
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0].shard, 0);
        assert_eq!(missing[0].attempts, 2);
        assert_eq!(missing[0].codes, vec!["e0"]);
        assert!(err.to_string().contains("shard 0"), "{err}");
        let _ = fs::remove_dir_all(&config.scratch);
    }

    #[test]
    fn allow_partial_degrades_and_names_the_missing_shard() {
        let mut config = quick_config("partial");
        config.allow_partial = true;
        config.shard_retries = 0;
        let specs = vec![shard_spec(0, 0, &["e0"]), shard_spec(1, 1, &["e1"])];
        let outcome = dispatch(&config, &RunnerConfig::default(), specs, |spec, paths| {
            if spec.shard == 1 {
                let mut cmd = Command::new("sh");
                cmd.arg("-c").arg("exit 9");
                cmd
            } else {
                good_child(spec, paths)
            }
        })
        .unwrap();
        assert!(outcome.degraded());
        assert_eq!(outcome.exit_code(), 3);
        assert_eq!(outcome.missing.len(), 1);
        assert_eq!(outcome.missing[0].shard, 1);
        assert_eq!(outcome.missing[0].codes, vec!["e1"]);
        // The surviving shard's results are intact.
        assert_eq!(outcome.run.report.experiments.len(), 1);
        assert_eq!(outcome.run.outputs["e0"], "e0 output");
        let summary = outcome.render_summary();
        assert!(summary.contains("DEGRADED"), "{summary}");
        assert!(summary.contains("missing shard 1"), "{summary}");
        assert!(summary.contains("e1"), "{summary}");
        assert_eq!(
            outcome.run.telemetry.metrics.counters["dispatch.shards_missing"],
            1
        );
        let _ = fs::remove_dir_all(&config.scratch);
    }

    #[test]
    fn deadline_overrun_is_killed_and_reported() {
        let mut config = quick_config("deadline");
        config.shard_deadline = Duration::from_millis(120);
        config.shard_retries = 0;
        config.allow_partial = true;
        let started = Instant::now();
        let outcome = dispatch(
            &config,
            &RunnerConfig::default(),
            vec![shard_spec(0, 0, &["e0"])],
            |_, _| {
                let mut cmd = Command::new("sh");
                cmd.arg("-c").arg("sleep 30");
                cmd
            },
        )
        .unwrap();
        assert!(started.elapsed() < Duration::from_secs(10), "child was killed");
        assert!(outcome.degraded());
        assert!(outcome.missing[0].reason.contains("shard deadline"), "{}", outcome.missing[0].reason);
        let _ = fs::remove_dir_all(&config.scratch);
    }

    #[test]
    fn heartbeat_silence_is_declared_hung_before_the_deadline() {
        let mut config = quick_config("hung");
        config.shard_deadline = Duration::from_secs(30);
        config.liveness = Duration::from_millis(150);
        config.shard_retries = 0;
        config.allow_partial = true;
        let started = Instant::now();
        let outcome = dispatch(
            &config,
            &RunnerConfig::default(),
            vec![shard_spec(0, 0, &["e0"])],
            |_, _| {
                // Never writes a heartbeat: liveness fires long before the
                // 30s deadline would.
                let mut cmd = Command::new("sh");
                cmd.arg("-c").arg("sleep 30");
                cmd
            },
        )
        .unwrap();
        assert!(started.elapsed() < Duration::from_secs(10), "hung child was killed early");
        assert!(outcome.degraded());
        assert!(outcome.missing[0].reason.contains("no heartbeat"), "{}", outcome.missing[0].reason);
        let _ = fs::remove_dir_all(&config.scratch);
    }

    #[test]
    fn garbage_artifacts_count_as_a_failed_attempt() {
        let mut config = quick_config("garbage");
        config.shard_retries = 0;
        config.allow_partial = true;
        let outcome = dispatch(
            &config,
            &RunnerConfig::default(),
            vec![shard_spec(0, 0, &["e0"])],
            |_, paths| {
                let mut cmd = Command::new("sh");
                cmd.arg("-c")
                    .arg(format!("echo not-json > {}", shell_quote(&paths.metrics)));
                cmd
            },
        )
        .unwrap();
        assert!(outcome.degraded());
        assert!(outcome.missing[0].reason.contains("artifacts unusable"), "{}", outcome.missing[0].reason);
        let _ = fs::remove_dir_all(&config.scratch);
    }

    #[test]
    fn merged_journal_rebases_specs_and_brackets_once() {
        let config = quick_config("merge");
        let specs = vec![shard_spec(0, 0, &["e0"]), shard_spec(1, 1, &["e1"])];
        let outcome = dispatch(&config, &RunnerConfig::default(), specs, good_child).unwrap();
        let events = &outcome.run.telemetry.events;
        // Exactly one run-start / run-end pair, at the boundaries.
        assert_eq!(events.first().unwrap().kind, "run-start");
        assert_eq!(events.last().unwrap().kind, "run-end");
        assert_eq!(events.iter().filter(|e| e.kind == "run-start").count(), 1);
        assert_eq!(events.iter().filter(|e| e.kind == "run-end").count(), 1);
        // Shard 1's events were re-based from spec 0 to spec 1 and stamped.
        let e1_start = events
            .iter()
            .find(|e| e.kind == "experiment-start" && e.experiment == "e1")
            .unwrap();
        assert_eq!(e1_start.spec, Some(1));
        assert_eq!(e1_start.shard, Some(1));
        // Child counters summed without re-recording.
        assert_eq!(outcome.run.telemetry.metrics.counters["runner.experiments"], 2);
        // Seqs are dense after the canonical sort.
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (0..events.len() as u64).collect::<Vec<_>>());
        let _ = fs::remove_dir_all(&config.scratch);
    }

    #[test]
    fn successful_attempt_dirs_are_cleaned_and_failed_ones_kept() {
        let config = quick_config("lifecycle");
        let specs = vec![shard_spec(0, 0, &["e0"]), shard_spec(1, 1, &["e1"])];
        let outcome = dispatch(&config, &RunnerConfig::default(), specs, |spec, paths| {
            if spec.shard == 1 && paths.attempt == 0 {
                let mut cmd = Command::new("sh");
                cmd.arg("-c").arg("exit 7");
                cmd
            } else {
                good_child(spec, paths)
            }
        })
        .unwrap();
        assert!(!outcome.degraded());
        // Parsed-and-merged attempts leave nothing behind …
        assert!(!ShardPaths::new(&config.scratch, 0, 0).dir.exists());
        assert!(!ShardPaths::new(&config.scratch, 1, 1).dir.exists());
        // … but the crashed first attempt of shard 1 keeps its log.
        assert!(ShardPaths::new(&config.scratch, 1, 0).dir.exists());
        let _ = fs::remove_dir_all(&config.scratch);
    }

    #[test]
    fn keep_scratch_preserves_successful_attempt_dirs() {
        let mut config = quick_config("keep");
        config.keep_scratch = true;
        let specs = vec![shard_spec(0, 0, &["e0"])];
        let outcome =
            dispatch(&config, &RunnerConfig::default(), specs, good_child).unwrap();
        assert!(!outcome.degraded());
        let kept = ShardPaths::new(&config.scratch, 0, 0);
        assert!(kept.dir.exists());
        assert!(kept.report.exists());
        let _ = fs::remove_dir_all(&config.scratch);
    }

    #[test]
    fn empty_shards_are_not_spawned() {
        let config = quick_config("empty");
        let specs = vec![shard_spec(0, 0, &["e0"]), shard_spec(1, 1, &[])];
        let outcome = dispatch(&config, &RunnerConfig::default(), specs, |spec, paths| {
            assert_ne!(spec.shard, 1, "empty shard must not spawn");
            good_child(spec, paths)
        })
        .unwrap();
        assert_eq!(outcome.shard_attempts, vec![1]);
        assert_eq!(outcome.run.report.experiments.len(), 1);
        let _ = fs::remove_dir_all(&config.scratch);
    }
}
