//! Per-family circuit breaker with optional half-open recovery.
//!
//! Experiments are grouped into families (the simulator subsystem they
//! exercise). When a family keeps failing, running its remaining
//! experiments mostly wastes the wall-clock deadline budget on a subsystem
//! that is already known-broken — the breaker *opens* after a threshold of
//! failures and the runner short-circuits the rest of the family to
//! `Failed` without executing them. A success while the breaker is still
//! closed resets the count (failures must be consecutive to trip it).
//!
//! With a nonzero `cooldown`, an open breaker recovers through a
//! *half-open probe*: after `cooldown` outcomes have been recorded against
//! the open family (i.e. that many experiments were skipped), the next
//! candidate is admitted as a probe. A successful probe closes the family;
//! a failed probe re-opens it for another full cooldown. The default
//! cooldown of 0 keeps the historical latch-open-for-the-run behavior.

use std::collections::BTreeMap;

/// What the breaker decides for the next candidate in a family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Breaker closed: run normally.
    Closed,
    /// Breaker open, cooldown elapsed: run this one as a half-open probe.
    Probe,
    /// Breaker open: short-circuit without running.
    Open,
}

/// Per-family trip state.
#[derive(Debug, Clone, Copy, Default)]
struct FamilyState {
    /// Consecutive failures recorded while closed (or probing).
    consecutive: u32,
    /// Outcomes recorded against this family while its breaker was open
    /// (each skipped experiment counts one); drives half-open probing.
    skips_while_open: u32,
}

/// Tracks consecutive failures per family and opens past a threshold.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: u32,
    families: BTreeMap<String, FamilyState>,
}

impl CircuitBreaker {
    /// Breaker opening after `threshold` consecutive failures in a family.
    /// A threshold of 0 disables the breaker entirely. The cooldown starts
    /// at 0 (an open breaker latches for the whole run); see
    /// [`CircuitBreaker::with_cooldown`].
    pub fn new(threshold: u32) -> Self {
        CircuitBreaker {
            threshold,
            cooldown: 0,
            families: BTreeMap::new(),
        }
    }

    /// Enable half-open recovery: after `cooldown` recorded outcomes with
    /// the breaker open, one probe attempt is admitted. 0 disables
    /// recovery (the default — an open breaker latches).
    #[must_use]
    pub fn with_cooldown(mut self, cooldown: u32) -> Self {
        self.cooldown = cooldown;
        self
    }

    /// Whether the family's breaker is open (short-circuit its experiments).
    pub fn is_open(&self, family: &str) -> bool {
        self.threshold > 0
            && self
                .families
                .get(family)
                .is_some_and(|s| s.consecutive >= self.threshold)
    }

    /// Decide the next candidate's fate and record the decision: `Closed`
    /// runs normally, `Probe` runs as a half-open trial (cooldown elapsed),
    /// `Open` is skipped — and the skip itself counts toward the cooldown.
    pub fn admit(&mut self, family: &str) -> Admission {
        if !self.is_open(family) {
            return Admission::Closed;
        }
        let state = self.families.entry(family.to_owned()).or_default();
        if self.cooldown > 0 && state.skips_while_open >= self.cooldown {
            return Admission::Probe;
        }
        state.skips_while_open += 1;
        Admission::Open
    }

    /// Record a success: closes the family's breaker again.
    pub fn record_success(&mut self, family: &str) {
        self.families.remove(family);
    }

    /// Record a failure; returns whether the breaker is now open. A failed
    /// half-open probe lands here too: the family re-opens and must sit
    /// out another full cooldown before the next probe.
    pub fn record_failure(&mut self, family: &str) -> bool {
        let state = self.families.entry(family.to_owned()).or_default();
        state.consecutive += 1;
        state.skips_while_open = 0;
        self.is_open(family)
    }

    /// Families whose breaker is currently open, in sorted order.
    pub fn open_families(&self) -> Vec<&str> {
        self.families
            .iter()
            .filter(|&(_, s)| self.threshold > 0 && s.consecutive >= self.threshold)
            .map(|(f, _)| f.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let mut b = CircuitBreaker::new(2);
        assert!(!b.is_open("ixp"));
        assert!(!b.record_failure("ixp"));
        assert!(b.record_failure("ixp"));
        assert!(b.is_open("ixp"));
        assert!(!b.is_open("agenda"), "families are independent");
    }

    #[test]
    fn success_resets_the_count() {
        let mut b = CircuitBreaker::new(2);
        b.record_failure("qual");
        b.record_success("qual");
        assert!(!b.record_failure("qual"), "count restarted after success");
    }

    #[test]
    fn zero_threshold_disables() {
        let mut b = CircuitBreaker::new(0);
        for _ in 0..10 {
            b.record_failure("x");
        }
        assert!(!b.is_open("x"));
        assert!(b.open_families().is_empty());
        assert_eq!(b.admit("x"), Admission::Closed);
    }

    #[test]
    fn open_families_lists_only_open() {
        let mut b = CircuitBreaker::new(1);
        b.record_failure("b-family");
        b.record_failure("a-family");
        b.record_success("c-family");
        assert_eq!(b.open_families(), vec!["a-family", "b-family"]);
    }

    #[test]
    fn zero_cooldown_latches_open_forever() {
        let mut b = CircuitBreaker::new(1);
        b.record_failure("f");
        for _ in 0..100 {
            assert_eq!(b.admit("f"), Admission::Open);
        }
    }

    #[test]
    fn probe_admitted_after_cooldown_skips() {
        let mut b = CircuitBreaker::new(1).with_cooldown(2);
        b.record_failure("f");
        assert_eq!(b.admit("f"), Admission::Open, "skip 1 of 2");
        assert_eq!(b.admit("f"), Admission::Open, "skip 2 of 2");
        assert_eq!(b.admit("f"), Admission::Probe, "cooldown elapsed");
        // The probe decision is stable until an outcome lands.
        assert_eq!(b.admit("f"), Admission::Probe);
    }

    #[test]
    fn successful_probe_closes_the_family() {
        let mut b = CircuitBreaker::new(2).with_cooldown(1);
        b.record_failure("f");
        b.record_failure("f");
        assert_eq!(b.admit("f"), Admission::Open);
        assert_eq!(b.admit("f"), Admission::Probe);
        b.record_success("f");
        assert_eq!(b.admit("f"), Admission::Closed);
        assert!(!b.is_open("f"));
        // The next failure starts counting from scratch: 1 < threshold 2.
        assert!(!b.record_failure("f"));
    }

    #[test]
    fn failed_probe_reopens_for_a_full_cooldown() {
        let mut b = CircuitBreaker::new(1).with_cooldown(2);
        b.record_failure("f");
        b.admit("f");
        b.admit("f");
        assert_eq!(b.admit("f"), Admission::Probe);
        assert!(b.record_failure("f"), "failed probe keeps the breaker open");
        // Cooldown restarted: two more skips before the next probe.
        assert_eq!(b.admit("f"), Admission::Open);
        assert_eq!(b.admit("f"), Admission::Open);
        assert_eq!(b.admit("f"), Admission::Probe);
    }
}
