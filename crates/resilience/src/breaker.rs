//! Per-family circuit breaker.
//!
//! Experiments are grouped into families (the simulator subsystem they
//! exercise). When a family keeps failing, running its remaining
//! experiments mostly wastes the wall-clock deadline budget on a subsystem
//! that is already known-broken — the breaker *opens* after a threshold of
//! failures and the runner short-circuits the rest of the family to
//! `Failed` without executing them. A success while the breaker is still
//! closed resets the count (failures must be consecutive to trip it).

use std::collections::BTreeMap;

/// Tracks consecutive failures per family and opens past a threshold.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    threshold: u32,
    consecutive: BTreeMap<String, u32>,
}

impl CircuitBreaker {
    /// Breaker opening after `threshold` consecutive failures in a family.
    /// A threshold of 0 disables the breaker entirely.
    pub fn new(threshold: u32) -> Self {
        CircuitBreaker {
            threshold,
            consecutive: BTreeMap::new(),
        }
    }

    /// Whether the family's breaker is open (short-circuit its experiments).
    pub fn is_open(&self, family: &str) -> bool {
        self.threshold > 0
            && self
                .consecutive
                .get(family)
                .is_some_and(|&n| n >= self.threshold)
    }

    /// Record a success: closes the family's breaker again.
    pub fn record_success(&mut self, family: &str) {
        self.consecutive.remove(family);
    }

    /// Record a failure; returns whether the breaker is now open.
    pub fn record_failure(&mut self, family: &str) -> bool {
        let n = self.consecutive.entry(family.to_owned()).or_insert(0);
        *n += 1;
        self.is_open(family)
    }

    /// Families whose breaker is currently open, in sorted order.
    pub fn open_families(&self) -> Vec<&str> {
        self.consecutive
            .iter()
            .filter(|&(_, &n)| self.threshold > 0 && n >= self.threshold)
            .map(|(f, _)| f.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let mut b = CircuitBreaker::new(2);
        assert!(!b.is_open("ixp"));
        assert!(!b.record_failure("ixp"));
        assert!(b.record_failure("ixp"));
        assert!(b.is_open("ixp"));
        assert!(!b.is_open("agenda"), "families are independent");
    }

    #[test]
    fn success_resets_the_count() {
        let mut b = CircuitBreaker::new(2);
        b.record_failure("qual");
        b.record_success("qual");
        assert!(!b.record_failure("qual"), "count restarted after success");
    }

    #[test]
    fn zero_threshold_disables() {
        let mut b = CircuitBreaker::new(0);
        for _ in 0..10 {
            b.record_failure("x");
        }
        assert!(!b.is_open("x"));
        assert!(b.open_families().is_empty());
    }

    #[test]
    fn open_families_lists_only_open() {
        let mut b = CircuitBreaker::new(1);
        b.record_failure("b-family");
        b.record_failure("a-family");
        b.record_success("c-family");
        assert_eq!(b.open_families(), vec!["a-family", "b-family"]);
    }
}
