//! Deterministic fault injection and supervised experiment execution.
//!
//! Three layers:
//!
//! 1. [`fault`] — a reproducible fault model: [`FaultPlan`] decides purely
//!    from `(seed, step, kind)` whether a fault fires, and simulators accept
//!    a [`FaultHook`] injection point (volunteer dropout, link/IXP outages,
//!    reviewer no-shows, coder attrition).
//! 2. [`runner`] — a [`Supervisor`] executing experiments under
//!    `catch_unwind` panic isolation, a watchdog deadline, bounded retry
//!    with deterministic-jitter backoff ([`backoff`]), and a per-family
//!    circuit breaker ([`breaker`]).
//! 3. [`report`] — [`RunReport`]: per-experiment status rows with a
//!    byte-reproducible canonical rendering and a process exit code.
//! 4. [`shard`] — [`ShardPlan`] partitions a run across in-process worker
//!    shards whose merged canonical output is byte-identical to the
//!    1-shard run of the same seed.
//! 5. [`schedule`] — how shards receive work: static contiguous slices
//!    (the default) or a work-stealing queue ([`Schedule::Steal`]) that
//!    rebalances skewed experiment costs while preserving the canonical
//!    output, plus the process-wide watchdog timer both paths share.
//! 6. [`replay`] — reconstruct a past run's configuration and fault
//!    schedule from its captured journal, re-execute it, and diff the
//!    canonical event streams.
//! 7. [`dispatch`] — the cross-process counterpart of [`shard`]:
//!    supervised shard *child processes* with heartbeat liveness,
//!    per-shard deadlines, crash retry, graceful partial-result
//!    degradation, and merge-time circuit-breaker reconciliation — still
//!    byte-identical to the in-process 1-shard run.
//! 8. [`remote`] — the cross-machine tier: shard-slice *leases* over a
//!    line-delimited TCP worker protocol with inline heartbeats,
//!    connection-level liveness and deadline revocation, retry rotated
//!    across surviving workers, local child-process failover, and
//!    `--chaos-net` partition/stall/garble injection — same merge, same
//!    byte-identity.

pub mod backoff;

/// The code revision this binary was built from: crate version plus the
/// build-time git rev (stamped by `build.rs`, `unknown` outside a git
/// checkout). Stamped into every [`RunReport`] so artifacts say what code
/// produced them, and mixed into the serve cache key so a rebuilt daemon
/// never serves a stale artifact.
pub fn code_rev() -> String {
    format!("{}+{}", env!("CARGO_PKG_VERSION"), env!("HUMNET_GIT_REV"))
}

pub mod breaker;
pub mod dispatch;
pub mod fault;
pub mod remote;
pub mod replay;
pub mod report;
pub mod runner;
pub mod schedule;
pub mod shard;

pub use backoff::Backoff;
pub use breaker::{Admission, CircuitBreaker};
pub use dispatch::{
    dispatch, reconcile_breakers, BreakerReconciliation, ChaosProc, DispatchConfig,
    DispatchError, DispatchOutcome, FamilyBreakerState, MissingShard, ShardPaths, ShardSpec,
    CHAOS_ENV, CHAOS_KILL_CODE,
};
pub use fault::{
    FaultHook, FaultKind, FaultPlan, FaultProfile, InstrumentedHook, NoFaults, PlanHook,
};
pub use remote::{
    dispatch_remote, ChaosKind, ChaosNet, Lease, RemoteOptions, Worker, WorkerChaos,
    WorkerConfig, WorkerFactory, WorkerFrame, WorkerSummary, CHAOS_NET_ENV,
};
pub use replay::{
    first_divergence, reconstruct, replay, Divergence, RecordedFault, RecordedFaults,
    ReplayError, ReplayReport, ReplaySpec,
};
pub use report::{ExperimentReport, ExperimentStatus, RunArtifact, RunReport};
pub use runner::{
    pool_execute, render_chain, ExperimentSpec, Job, JobError, JobOutput, PoolHandle,
    RunnerConfig, SupervisedRun, Supervisor, SupervisorBuilder,
};
pub use schedule::{run_stealing, Schedule};
pub use shard::{merge_runs, run_sharded, ShardPlan, ShardPlanError};
