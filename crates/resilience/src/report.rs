//! Per-experiment outcome records and the aggregated [`RunReport`].
//!
//! The report renders through `humnet_telemetry::TextTable` — the same
//! renderer the metrics tables use — and its headline numbers are pushed
//! into the run-level telemetry via [`RunReport::record_metrics`], so the
//! human-readable report and the metrics snapshot cannot drift apart.

use humnet_telemetry::{Telemetry, TextTable};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Outcome of one supervised experiment, worst-last.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ExperimentStatus {
    /// Completed first try with no faults injected.
    Ok,
    /// Completed first try, but the fault plan fired at least once.
    Degraded,
    /// Completed only after one or more retries.
    Retried,
    /// Exceeded the wall-clock deadline on every attempt.
    TimedOut,
    /// Returned an error (or panicked, or hit an open breaker) on every attempt.
    Failed,
}

impl ExperimentStatus {
    /// Fixed-width label for the report table.
    pub fn label(self) -> &'static str {
        match self {
            ExperimentStatus::Ok => "ok",
            ExperimentStatus::Degraded => "degraded",
            ExperimentStatus::Retried => "retried",
            ExperimentStatus::TimedOut => "timed-out",
            ExperimentStatus::Failed => "failed",
        }
    }

    /// Whether the experiment ultimately produced a result.
    pub fn completed(self) -> bool {
        !matches!(self, ExperimentStatus::TimedOut | ExperimentStatus::Failed)
    }
}

impl fmt::Display for ExperimentStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `pad` (not `write_str`) so `{:<9}` table alignment works.
        f.pad(self.label())
    }
}

/// One row of the run report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Short experiment code (e.g. `fig1`, `tab3`).
    pub code: String,
    /// Human-readable title.
    pub title: String,
    /// Family / subsystem the experiment belongs to (breaker granularity).
    pub family: String,
    /// Final status after all attempts.
    pub status: ExperimentStatus,
    /// Attempts actually executed (0 when short-circuited by the breaker).
    pub attempts: u32,
    /// Faults the plan injected during the successful attempt.
    pub faults_injected: u64,
    /// Error message for `Failed`/`TimedOut`, empty otherwise.
    pub message: String,
    /// Wall-clock milliseconds across all attempts (excluded from the
    /// canonical rendering — it is not reproducible).
    pub duration_ms: u64,
}

/// Aggregated outcome of a supervised run over all experiments.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Per-experiment rows, in execution order.
    pub experiments: Vec<ExperimentReport>,
    /// Fault profile label the run was configured with.
    pub profile: String,
    /// Seed the fault plan and jitter streams were derived from.
    pub seed: u64,
    /// Code revision that produced the report ([`crate::code_rev`]);
    /// empty on hand-built reports.
    pub code_rev: String,
}

impl RunReport {
    /// Worst status across all experiments (`Ok` when the report is empty).
    pub fn worst(&self) -> ExperimentStatus {
        self.experiments
            .iter()
            .map(|e| e.status)
            .max()
            .unwrap_or(ExperimentStatus::Ok)
    }

    /// Process exit code the run should terminate with:
    /// `Failed` → 1, `TimedOut` → 2, anything completed → 0.
    pub fn exit_code(&self) -> i32 {
        match self.worst() {
            ExperimentStatus::Failed => 1,
            ExperimentStatus::TimedOut => 2,
            _ => 0,
        }
    }

    /// Count of experiments with the given status.
    pub fn count(&self, status: ExperimentStatus) -> usize {
        self.experiments.iter().filter(|e| e.status == status).count()
    }

    /// Append another report's rows (sharded-run aggregation: shard
    /// reports concatenate in shard order, which — with contiguous shard
    /// slices — reconstructs the original spec order).
    pub fn absorb(&mut self, other: RunReport) {
        self.experiments.extend(other.experiments);
    }

    /// Total faults injected across all experiments.
    pub fn total_faults(&self) -> u64 {
        self.experiments.iter().map(|e| e.faults_injected).sum()
    }

    /// One-line summary: `17 experiments: 13 ok, 3 degraded, 1 failed`.
    pub fn summary_line(&self) -> String {
        let mut parts = Vec::new();
        for status in [
            ExperimentStatus::Ok,
            ExperimentStatus::Degraded,
            ExperimentStatus::Retried,
            ExperimentStatus::TimedOut,
            ExperimentStatus::Failed,
        ] {
            let n = self.count(status);
            if n > 0 {
                parts.push(format!("{n} {}", status.label()));
            }
        }
        if parts.is_empty() {
            parts.push("nothing run".to_owned());
        }
        format!("{} experiments: {}", self.experiments.len(), parts.join(", "))
    }

    /// The `run report` header line. The rev token only appears on
    /// stamped reports, so hand-built reports (and pre-stamp captures)
    /// render exactly as before.
    fn header(&self) -> String {
        if self.code_rev.is_empty() {
            format!("run report  profile={}  seed={}\n", self.profile, self.seed)
        } else {
            format!(
                "run report  profile={}  seed={}  rev={}\n",
                self.profile, self.seed, self.code_rev
            )
        }
    }

    /// Human-readable table including wall-clock durations.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header());
        out.push_str(&self.render_rows(true));
        out.push_str(&self.summary_line());
        out.push('\n');
        out
    }

    /// Byte-reproducible rendering: identical configuration (seed, profile,
    /// retries, deadline) must yield identical canonical text, so wall-clock
    /// durations are excluded.
    pub fn canonical(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header());
        out.push_str(&self.render_rows(false));
        out.push_str(&self.summary_line());
        out.push('\n');
        out
    }

    /// Push the report's headline numbers into the run-level telemetry so
    /// the metrics snapshot carries the same counts the rendered report
    /// shows: experiment/attempt/fault totals and one counter per status
    /// actually present.
    pub fn record_metrics(&self, tel: &Telemetry) {
        tel.counter("runner.experiments", self.experiments.len() as u64);
        tel.counter(
            "runner.attempts",
            self.experiments.iter().map(|e| u64::from(e.attempts)).sum(),
        );
        tel.counter("runner.faults_injected", self.total_faults());
        for status in [
            ExperimentStatus::Ok,
            ExperimentStatus::Degraded,
            ExperimentStatus::Retried,
            ExperimentStatus::TimedOut,
            ExperimentStatus::Failed,
        ] {
            let n = self.count(status);
            if n > 0 {
                tel.counter(&format!("runner.status.{}", status.label()), n as u64);
            }
        }
    }

    fn render_rows(&self, with_durations: bool) -> String {
        let mut headers = vec!["code", "family", "status", "attempts", "faults"];
        if with_durations {
            headers.push("duration");
        }
        headers.push("experiment");
        let mut table = TextTable::new(&headers);
        for e in &self.experiments {
            let mut cells = vec![
                e.code.clone(),
                e.family.clone(),
                e.status.label().to_owned(),
                e.attempts.to_string(),
                e.faults_injected.to_string(),
            ];
            if with_durations {
                // Fixed width so CI's duration-stripping diff of two
                // same-seed runs sees identical column alignment.
                cells.push(format!("{:>6}ms", e.duration_ms));
            }
            let mut experiment = e.title.clone();
            if !e.message.is_empty() {
                experiment.push_str(&format!("  [{}]", e.message));
            }
            cells.push(experiment);
            table.row(cells);
        }
        table.render()
    }
}

/// The serializable half of a [`crate::SupervisedRun`]: what a shard child
/// process writes with `--report-out` and the cross-process dispatcher
/// reads back. Telemetry travels separately (`--metrics-out` carries the
/// full [`humnet_telemetry::TelemetrySnapshot`], events included).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunArtifact {
    /// Per-experiment statuses and the aggregate verdict.
    pub report: RunReport,
    /// Rendered output of every experiment that completed, by code.
    pub outputs: BTreeMap<String, String>,
}

impl RunArtifact {
    /// Pretty-printed JSON (the `--report-out` file format).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parse a `--report-out` file back.
    pub fn from_json(text: &str) -> Result<RunArtifact, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Byte-reproducible form: wall-clock durations zeroed, everything
    /// else untouched. Two same-seed runs of the same binary serialize a
    /// canonicalized artifact to identical bytes — the invariant the
    /// serve cache's hit-equals-miss contract rests on — so this is what
    /// `--report-out` writes and what the daemon caches.
    pub fn canonicalized(&self) -> RunArtifact {
        let mut out = self.clone();
        for row in &mut out.report.experiments {
            row.duration_ms = 0;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(code: &str, status: ExperimentStatus) -> ExperimentReport {
        ExperimentReport {
            code: code.to_owned(),
            title: format!("experiment {code}"),
            family: "agenda".to_owned(),
            status,
            attempts: 1,
            faults_injected: 0,
            message: String::new(),
            duration_ms: 12,
        }
    }

    #[test]
    fn worst_and_exit_code_track_severity() {
        let mut r = RunReport::default();
        assert_eq!(r.worst(), ExperimentStatus::Ok);
        assert_eq!(r.exit_code(), 0);
        r.experiments.push(row("f1", ExperimentStatus::Degraded));
        r.experiments.push(row("f2", ExperimentStatus::Retried));
        assert_eq!(r.worst(), ExperimentStatus::Retried);
        assert_eq!(r.exit_code(), 0);
        r.experiments.push(row("f3", ExperimentStatus::TimedOut));
        assert_eq!(r.exit_code(), 2);
        r.experiments.push(row("f4", ExperimentStatus::Failed));
        assert_eq!(r.worst(), ExperimentStatus::Failed);
        assert_eq!(r.exit_code(), 1);
    }

    #[test]
    fn canonical_excludes_durations() {
        let mut a = RunReport::default();
        a.experiments.push(row("f1", ExperimentStatus::Ok));
        let mut b = a.clone();
        b.experiments[0].duration_ms = 99_999;
        assert_eq!(a.canonical(), b.canonical());
        assert_ne!(a.render(), b.render());
    }

    #[test]
    fn summary_line_lists_only_present_statuses() {
        let mut r = RunReport::default();
        r.experiments.push(row("f1", ExperimentStatus::Ok));
        r.experiments.push(row("f2", ExperimentStatus::Ok));
        r.experiments.push(row("f3", ExperimentStatus::Failed));
        assert_eq!(r.summary_line(), "3 experiments: 2 ok, 1 failed");
    }

    #[test]
    fn render_goes_through_the_shared_table() {
        let mut r = RunReport::default();
        r.profile = "chaos".to_owned();
        r.experiments.push(row("f1", ExperimentStatus::Ok));
        let full = r.render();
        assert!(full.contains("| code |"), "{full}");
        assert!(full.contains("| duration |"), "{full}");
        assert!(full.contains("12ms"), "{full}");
        let canonical = r.canonical();
        assert!(!canonical.contains("duration"), "{canonical}");
        assert!(!canonical.contains("ms"), "{canonical}");
    }

    #[test]
    fn record_metrics_mirrors_the_report() {
        use humnet_telemetry::Telemetry;
        let mut r = RunReport::default();
        r.experiments.push(row("f1", ExperimentStatus::Ok));
        r.experiments.push(row("f2", ExperimentStatus::Failed));
        r.experiments[1].faults_injected = 4;
        let tel = Telemetry::new();
        r.record_metrics(&tel);
        let snap = tel.snapshot();
        assert_eq!(snap.metrics.counters["runner.experiments"], 2);
        assert_eq!(snap.metrics.counters["runner.attempts"], 2);
        assert_eq!(snap.metrics.counters["runner.faults_injected"], 4);
        assert_eq!(snap.metrics.counters["runner.status.ok"], 1);
        assert_eq!(snap.metrics.counters["runner.status.failed"], 1);
        assert!(!snap.metrics.counters.contains_key("runner.status.retried"));
    }

    #[test]
    fn code_rev_renders_only_when_stamped() {
        let mut r = RunReport::default();
        r.experiments.push(row("f1", ExperimentStatus::Ok));
        assert!(!r.render().contains("rev="), "{}", r.render());
        r.code_rev = "0.1.0+abcdef123456".to_owned();
        assert!(r.render().contains("rev=0.1.0+abcdef123456"));
        assert!(r.canonical().contains("rev=0.1.0+abcdef123456"));
    }

    #[test]
    fn canonicalized_artifact_zeroes_durations_only() {
        let mut report = RunReport::default();
        report.code_rev = "0.1.0+feedface0000".to_owned();
        report.experiments.push(row("f1", ExperimentStatus::Ok));
        let mut artifact = RunArtifact {
            report,
            outputs: std::iter::once(("f1".to_owned(), "out".to_owned())).collect(),
        };
        artifact.report.experiments[0].duration_ms = 777;
        let mut other = artifact.clone();
        other.report.experiments[0].duration_ms = 12;
        assert_ne!(artifact.to_json().unwrap(), other.to_json().unwrap());
        let a = artifact.canonicalized();
        let b = other.canonicalized();
        assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());
        assert_eq!(a.report.experiments[0].duration_ms, 0);
        assert_eq!(a.report.code_rev, "0.1.0+feedface0000");
        assert_eq!(a.outputs["f1"], "out");
        // Canonicalization does not mutate the original.
        assert_eq!(artifact.report.experiments[0].duration_ms, 777);
    }

    #[test]
    fn completed_partition() {
        assert!(ExperimentStatus::Ok.completed());
        assert!(ExperimentStatus::Degraded.completed());
        assert!(ExperimentStatus::Retried.completed());
        assert!(!ExperimentStatus::TimedOut.completed());
        assert!(!ExperimentStatus::Failed.completed());
    }
}
