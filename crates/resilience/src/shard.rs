//! Sharded supervised runs.
//!
//! A [`ShardPlan`] partitions the experiment list into contiguous,
//! balanced slices, one per shard. Each shard runs on its own thread with
//! its own [`Supervisor`] (and therefore its own circuit breaker), and
//! [`merge_runs`] folds the per-shard [`SupervisedRun`]s back into a
//! single run-level view: counters add, histograms merge bucket-wise,
//! spans merge by name, and per-shard journals concatenate in
//! `(shard, seq)` order.
//!
//! ## Shard invariance
//!
//! Every per-experiment decision — the fault plan seed, the retry jitter
//! stream — is derived from `(config seed, experiment code, attempt)`
//! alone, and shards receive *contiguous* slices in the original spec
//! order, so the merged canonical journal, canonical report, and rendered
//! outputs of a K-shard run are byte-identical to the 1-shard run of the
//! same seed. What is **not** shard-invariant: the `runner.shard.<k>.*`
//! metrics (they describe the shard layout itself), the `shard` field on
//! journal events (excluded from the canonical form), wall-clock
//! durations, and circuit-breaker behavior when a family keeps failing —
//! breakers are per-shard, so failures spread across shards may trip
//! later (or never) compared to a single-shard run.

use crate::report::RunReport;
use crate::runner::{
    pool_execute, run_start_detail, ExperimentSpec, QuietPanics, RunnerConfig, SupervisedRun,
    Supervisor,
};
use crate::schedule::{run_stealing, Schedule};
use humnet_telemetry::{spec_order_in_place, Event, Telemetry};
use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;

/// A deterministic partition of `n` experiments across `shards` workers:
/// contiguous slices in input order, sizes differing by at most one, with
/// the earlier shards taking the remainder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    shards: u32,
}

/// Rejected [`ShardPlan`] parameters ([`ShardPlan::try_new`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPlanError {
    /// A plan needs at least one shard to place work on.
    ZeroShards,
}

impl fmt::Display for ShardPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardPlanError::ZeroShards => write!(f, "shard plan requires at least one shard"),
        }
    }
}

impl std::error::Error for ShardPlanError {}

impl ShardPlan {
    /// Plan for `shards` workers (clamped to at least 1). Use
    /// [`ShardPlan::try_new`] to reject zero instead of clamping.
    pub fn new(shards: u32) -> Self {
        ShardPlan {
            shards: shards.max(1),
        }
    }

    /// Plan for `shards` workers, rejecting `shards == 0` with a typed
    /// error instead of clamping (for callers validating user input, e.g.
    /// a `--shards` flag).
    pub fn try_new(shards: u32) -> Result<Self, ShardPlanError> {
        if shards == 0 {
            return Err(ShardPlanError::ZeroShards);
        }
        Ok(ShardPlan { shards })
    }

    /// Number of shards the plan partitions across.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The index range shard `k` owns out of `n` items. Ranges are
    /// contiguous, disjoint, cover `0..n` exactly, and balanced to within
    /// one item. Shards beyond `n` receive empty ranges.
    pub fn range(&self, k: u32, n: usize) -> Range<usize> {
        let shards = self.shards as usize;
        let k = k as usize;
        let base = n / shards;
        let extra = n % shards;
        let start = k * base + k.min(extra);
        let len = base + usize::from(k < extra);
        start..(start + len).min(n)
    }

    /// All shard ranges for `n` items, in shard order.
    pub fn ranges(&self, n: usize) -> Vec<Range<usize>> {
        (0..self.shards).map(|k| self.range(k, n)).collect()
    }

    /// Clone-partition `items` into one owned slice per shard.
    pub fn assign<T: Clone>(&self, items: &[T]) -> Vec<Vec<T>> {
        self.ranges(items.len())
            .into_iter()
            .map(|r| items[r].to_vec())
            .collect()
    }
}

/// Fan `specs` out across `shards` workers under the given schedule.
/// [`Schedule::Steal`] delegates to [`run_stealing`]; [`Schedule::Static`]
/// runs each contiguous slice on a pooled worker thread with its own
/// [`Supervisor`], then folds the per-shard runs with [`merge_runs`]. The
/// quiet panic hook is installed once here (it filters by worker-thread
/// name, so it covers every shard's workers); shard supervisors must not
/// reinstall it or the global hook lock would serialize the shards.
pub fn run_sharded(
    config: RunnerConfig,
    shards: u32,
    schedule: Schedule,
    specs: &[ExperimentSpec],
) -> SupervisedRun {
    if schedule == Schedule::Steal {
        return run_stealing(config, shards, specs);
    }
    let _quiet = config.quiet_panics.then(QuietPanics::install);
    let plan = ShardPlan::new(shards);
    let mut ranges = plan.ranges(specs.len()).into_iter().enumerate();
    // Shard 0 runs inline on the calling thread — it would only block on
    // joins otherwise, and skipping one dispatch/join round trip matters
    // on small chunks.
    let first = ranges.next();
    let handles: Vec<_> = ranges
        .map(|(k, range)| {
            let base = range.start;
            let chunk = specs[range].to_vec();
            pool_execute(move || Supervisor::new(config).run_shard(&chunk, k as u32, base))
        })
        .collect();
    let mut shard_runs: Vec<SupervisedRun> = Vec::with_capacity(plan.shards() as usize);
    if let Some((k, range)) = first {
        let base = range.start;
        shard_runs.push(Supervisor::new(config).run_shard(&specs[range], k as u32, base));
    }
    shard_runs.extend(
        handles
            .into_iter()
            .map(|h| h.join().expect("shard supervisor never panics")),
    );
    merge_runs(&config, shard_runs)
}

/// Fold per-shard [`SupervisedRun`]s (in shard order) into one run-level
/// run: reports concatenate, outputs union, telemetry merges through the
/// associative `TelemetrySnapshot::merge`, and the run-level
/// `run-start`/`run-end` boundary events plus report metrics are recorded
/// exactly once. The merged journal is canonicalized with
/// [`spec_order_in_place`] — a stable `(spec index, seq)` sort that's a
/// free sweep when the input is already ordered — so the result matches
/// what a single supervisor over the concatenated specs would have
/// produced even when the shards completed their slices in an arbitrary
/// order.
pub fn merge_runs(config: &RunnerConfig, shard_runs: Vec<SupervisedRun>) -> SupervisedRun {
    let total: usize = shard_runs.iter().map(|r| r.report.experiments.len()).sum();
    let tel = Telemetry::new();
    tel.event(Event::new("run-start", run_start_detail(config, total)));
    tel.counter("runner.shards", shard_runs.len() as u64);
    let mut report = RunReport {
        experiments: Vec::with_capacity(total),
        profile: config.profile.label().to_owned(),
        seed: config.seed,
        code_rev: crate::code_rev(),
    };
    let mut outputs = BTreeMap::new();
    for run in shard_runs {
        report.absorb(run.report);
        outputs.extend(run.outputs);
        tel.absorb(run.telemetry, "");
    }
    report.record_metrics(&tel);
    tel.event(Event::new("run-end", report.summary_line()));
    let mut telemetry = tel.into_snapshot();
    spec_order_in_place(&mut telemetry.events);
    SupervisedRun {
        report,
        outputs,
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultProfile;
    use crate::runner::{JobError, JobOutput};
    use std::time::Duration;

    #[test]
    fn plan_partitions_exactly_and_balanced() {
        for shards in 1..=7u32 {
            for n in 0..40usize {
                let plan = ShardPlan::new(shards);
                let ranges = plan.ranges(n);
                assert_eq!(ranges.len(), shards as usize);
                // Contiguous cover of 0..n.
                let mut cursor = 0;
                for r in &ranges {
                    assert_eq!(r.start, cursor);
                    cursor = r.end;
                }
                assert_eq!(cursor, n);
                // Balanced to within one item.
                let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(hi - lo <= 1, "shards={shards} n={n} sizes={sizes:?}");
            }
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let plan = ShardPlan::new(0);
        assert_eq!(plan.shards(), 1);
        assert_eq!(plan.ranges(5), vec![0..5]);
    }

    fn counting_spec(code: &str) -> ExperimentSpec {
        let owned = code.to_owned();
        ExperimentSpec::new(code, format!("title {code}"), "fam", move |plan, tel| {
            let faults = (0..40)
                .filter(|&s| plan.draw(s, crate::fault::FaultKind::LinkOutage).is_some())
                .count() as u64;
            tel.counter("job.calls", 1);
            tel.event(Event::new("milestone", format!("{owned} done")));
            Ok::<JobOutput, JobError>(JobOutput {
                rendered: format!("{owned}: faults={faults}"),
                faults_injected: faults,
            })
        })
    }

    fn config() -> RunnerConfig {
        RunnerConfig {
            retries: 1,
            deadline: Duration::from_secs(10),
            profile: FaultProfile::Chaos,
            seed: 77,
            ..RunnerConfig::default()
        }
    }

    #[test]
    fn sharded_run_matches_single_shard_canonically() {
        let specs: Vec<ExperimentSpec> =
            (0..9).map(|i| counting_spec(&format!("e{i}"))).collect();
        let single = Supervisor::builder().config(config()).shards(1).build().run(&specs);
        let sharded = Supervisor::builder().config(config()).shards(4).build().run(&specs);
        assert_eq!(single.report.canonical(), sharded.report.canonical());
        assert_eq!(single.outputs, sharded.outputs);
        assert_eq!(
            single.telemetry.canonical_events(),
            sharded.telemetry.canonical_events()
        );
        // Shard-invariant counters agree; the shard-layout ones exist only
        // on the sharded side.
        assert_eq!(
            single.telemetry.metrics.counters["job.calls"],
            sharded.telemetry.metrics.counters["job.calls"]
        );
        assert_eq!(sharded.telemetry.metrics.counters["runner.shards"], 4);
        assert_eq!(sharded.telemetry.metrics.counters["runner.shard.0.experiments"], 3);
        assert!(!single.telemetry.metrics.counters.contains_key("runner.shards"));
    }

    #[test]
    fn sharded_events_carry_shard_ids_in_plan_order() {
        let specs: Vec<ExperimentSpec> =
            (0..6).map(|i| counting_spec(&format!("e{i}"))).collect();
        let run = Supervisor::builder().config(config()).shards(3).build().run(&specs);
        // run-start / run-end are merge-level (no shard); everything else
        // is stamped, and shard ids are nondecreasing through the journal.
        assert_eq!(run.telemetry.events.first().unwrap().shard, None);
        assert_eq!(run.telemetry.events.last().unwrap().shard, None);
        let shards: Vec<u32> = run
            .telemetry
            .events
            .iter()
            .filter_map(|e| e.shard)
            .collect();
        assert!(!shards.is_empty());
        assert!(shards.windows(2).all(|w| w[0] <= w[1]), "{shards:?}");
        assert_eq!(shards.iter().copied().max(), Some(2));
    }

    #[test]
    fn more_shards_than_specs_is_fine() {
        let specs = vec![counting_spec("only")];
        let run = Supervisor::builder().config(config()).shards(8).build().run(&specs);
        assert_eq!(run.report.experiments.len(), 1);
        assert_eq!(run.report.exit_code(), 0);
        assert_eq!(run.telemetry.metrics.counters["runner.shards"], 8);
    }

    #[test]
    fn merge_runs_of_empty_input_is_a_valid_empty_run() {
        let merged = merge_runs(&config(), Vec::new());
        assert!(merged.report.experiments.is_empty());
        assert_eq!(merged.telemetry.events.first().unwrap().kind, "run-start");
        assert_eq!(merged.telemetry.events.last().unwrap().kind, "run-end");
    }
}
