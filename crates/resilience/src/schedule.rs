//! Scheduling policies for supervised runs: the static contiguous
//! partition of [`crate::shard`] and a work-stealing runtime for
//! heterogeneous experiment costs, plus the single deadline (watchdog)
//! thread both paths share.
//!
//! ## Work stealing
//!
//! [`run_stealing`] seeds one deque per worker with the same contiguous
//! slice a static [`crate::ShardPlan`] would assign, then lets idle
//! workers steal the tail half of the busiest peer's deque
//! (chase-lev-style: owners pop their own front, thieves take from the
//! back; a stolen batch lands in the thief's LIFO slot + deque). A global
//! injector accepts out-of-band work; everything is built on `std` sync
//! primitives — `Mutex`-guarded `VecDeque`s, not lock-free buffers — which
//! is plenty below ~10⁵ pops/second and keeps the crate dependency-free.
//!
//! Workers are leased from the process-wide pooled-thread cache in
//! [`crate::runner`], so a K-worker run spawns at most K threads once and
//! reuses them for every subsequent run.
//!
//! ## Determinism under dynamic scheduling
//!
//! Execution order is racy by design, but the *output* is not: every
//! per-experiment decision derives from `(config seed, experiment code,
//! attempt)` alone, each spec's events are recorded into a private
//! per-spec journal, and the final assembly walks the slots in spec
//! order — so the canonical journal, report, and outputs of a steal run
//! are byte-identical to the static 1-shard run of the same seed. The one
//! caveat (shared by static sharding) is circuit-breaker behavior under
//! persistent failures: the steal runtime shares one breaker across
//! workers, so which attempt trips it depends on completion order.
//!
//! ## The watchdog
//!
//! [`arm_deadline`] registers a deadline with a single process-wide timer
//! thread (a binary-heap timer wheel). Cancellation is lazy: dropping the
//! [`DeadlineGuard`] marks the entry and the wheel discards it on pop,
//! with periodic compaction so canceled entries cannot accumulate. This
//! replaces the seed's thread-per-attempt watchdog: one deadline thread
//! total, regardless of shard count or attempt rate.

use crate::breaker::CircuitBreaker;
use crate::report::RunReport;
use crate::runner::{
    pool_execute, run_spec, run_start_detail, BreakerRef, ExecutorSlot, ExperimentSpec,
    QuietPanics, RunnerConfig, SupervisedRun,
};
use crate::shard::ShardPlan;
use humnet_telemetry::{Event, Telemetry, TelemetrySnapshot};
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// How a multi-shard supervised run distributes experiments to workers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Schedule {
    /// Contiguous balanced slices, one per shard, fixed up front
    /// (the PR-3 behavior and the default): order-stable, no cross-shard
    /// coordination, best when experiment costs are uniform.
    #[default]
    Static,
    /// Work stealing: the same initial slices, but idle workers steal from
    /// the busiest peer's tail, so skewed costs rebalance dynamically.
    Steal,
}

impl Schedule {
    /// Parse a `--schedule` argument value.
    pub fn parse(s: &str) -> Option<Schedule> {
        match s {
            "static" => Some(Schedule::Static),
            "steal" => Some(Schedule::Steal),
            _ => None,
        }
    }

    /// Stable label (the `--schedule` argument syntax).
    pub fn label(&self) -> &'static str {
        match self {
            Schedule::Static => "static",
            Schedule::Steal => "steal",
        }
    }
}

// ---------------------------------------------------------------------------
// Watchdog: one process-wide deadline thread
// ---------------------------------------------------------------------------

/// One armed deadline in the wheel.
struct DeadlineEntry {
    fire_at: Instant,
    /// Tiebreak so heap order is total and deterministic.
    id: u64,
    /// Set by whichever side settles first: the guard (cancel) or the
    /// wheel (fire). The loser sees `true` and does nothing.
    settled: Arc<AtomicBool>,
    /// Fired exactly once if the deadline expires before cancellation.
    notify: Box<dyn FnOnce() + Send>,
}

impl PartialEq for DeadlineEntry {
    fn eq(&self, other: &Self) -> bool {
        self.fire_at == other.fire_at && self.id == other.id
    }
}
impl Eq for DeadlineEntry {}
impl PartialOrd for DeadlineEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DeadlineEntry {
    /// Reversed so `BinaryHeap` (a max-heap) pops the *earliest* deadline.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .fire_at
            .cmp(&self.fire_at)
            .then_with(|| other.id.cmp(&self.id))
    }
}

#[derive(Default)]
struct WheelState {
    heap: BinaryHeap<DeadlineEntry>,
    /// Canceled-but-not-yet-popped entries; triggers compaction.
    canceled: usize,
}

struct Wheel {
    state: Mutex<WheelState>,
    wake: Condvar,
}

/// Canceled entries tolerated in the heap before a compaction sweep.
/// Keeps wheel memory proportional to *live* deadlines even when every
/// attempt finishes long before its (say) 30-second deadline.
const COMPACT_THRESHOLD: usize = 256;

fn wheel() -> &'static Arc<Wheel> {
    static WHEEL: OnceLock<Arc<Wheel>> = OnceLock::new();
    WHEEL.get_or_init(|| {
        let wheel = Arc::new(Wheel {
            state: Mutex::new(WheelState::default()),
            wake: Condvar::new(),
        });
        let thread_wheel = Arc::clone(&wheel);
        // The one deadline thread for the whole process; parks on the
        // condvar until the earliest armed deadline (or forever when idle).
        std::thread::Builder::new()
            .name("humnet-watchdog".to_owned())
            .spawn(move || watchdog_loop(&thread_wheel))
            .expect("failed to spawn the watchdog thread");
        wheel
    })
}

fn watchdog_loop(wheel: &Wheel) {
    let mut state = wheel.state.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        let now = Instant::now();
        while state.heap.peek().is_some_and(|e| e.fire_at <= now) {
            let entry = state.heap.pop().expect("peeked entry");
            if entry.settled.swap(true, Ordering::AcqRel) {
                // Canceled before firing; drop it and move on.
                state.canceled = state.canceled.saturating_sub(1);
            } else {
                (entry.notify)();
            }
        }
        state = match state.heap.peek().map(|e| e.fire_at) {
            Some(next) => {
                let wait = next.saturating_duration_since(Instant::now());
                wheel
                    .wake
                    .wait_timeout(state, wait)
                    .unwrap_or_else(|e| e.into_inner())
                    .0
            }
            None => wheel.wake.wait(state).unwrap_or_else(|e| e.into_inner()),
        };
    }
}

/// RAII handle for an armed deadline: dropping it cancels the timer.
pub(crate) struct DeadlineGuard {
    settled: Arc<AtomicBool>,
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        if self.settled.swap(true, Ordering::AcqRel) {
            return; // already fired
        }
        let wheel = wheel();
        let mut state = wheel.state.lock().unwrap_or_else(|e| e.into_inner());
        state.canceled += 1;
        if state.canceled >= COMPACT_THRESHOLD {
            let heap = std::mem::take(&mut state.heap);
            state.heap = heap
                .into_iter()
                .filter(|e| !e.settled.load(Ordering::Acquire))
                .collect();
            state.canceled = 0;
        }
    }
}

/// Arm a deadline `after` from now: `notify` runs on the watchdog thread
/// if the returned guard is still alive when the deadline expires.
pub(crate) fn arm_deadline(after: Duration, notify: Box<dyn FnOnce() + Send>) -> DeadlineGuard {
    static NEXT_ID: AtomicU64 = AtomicU64::new(0);
    let settled = Arc::new(AtomicBool::new(false));
    let entry = DeadlineEntry {
        fire_at: Instant::now() + after,
        id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
        settled: Arc::clone(&settled),
        notify,
    };
    let wheel = wheel();
    let mut state = wheel.state.lock().unwrap_or_else(|e| e.into_inner());
    let fire_at = entry.fire_at;
    state.heap.push(entry);
    // Wake the wheel only when this entry becomes the new earliest (or the
    // wheel was idle); otherwise its current wait already expires in time.
    let is_min = state.heap.peek().is_some_and(|e| e.fire_at >= fire_at);
    drop(state);
    if is_min {
        wheel.wake.notify_one();
    }
    DeadlineGuard { settled }
}

// ---------------------------------------------------------------------------
// Work-stealing queue
// ---------------------------------------------------------------------------

/// Per-worker local queue: a LIFO slot for the hottest item plus a deque
/// the owner pops from the front and thieves steal from the back.
#[derive(Default)]
struct WorkerQueue {
    slot: Mutex<Option<usize>>,
    deque: Mutex<VecDeque<usize>>,
}

/// Work-stealing distribution of spec indices across `workers` local
/// queues plus a global injector for out-of-band submissions.
///
/// All items are injected before workers start and none are re-queued
/// (retries run inline on the worker that owns the spec), so termination
/// is simple: a worker that finds every source empty can exit — whatever
/// remains is in flight on some other worker.
pub(crate) struct StealQueue {
    injector: Mutex<VecDeque<usize>>,
    workers: Vec<WorkerQueue>,
}

impl StealQueue {
    /// Queue with `workers` empty local queues.
    pub(crate) fn new(workers: usize) -> Self {
        StealQueue {
            injector: Mutex::new(VecDeque::new()),
            workers: (0..workers).map(|_| WorkerQueue::default()).collect(),
        }
    }

    /// Queue seeded with the same contiguous balanced slices a static
    /// [`ShardPlan`] would assign — steal mode starts from the static
    /// layout and diverges only when a worker runs dry and steals.
    pub(crate) fn seeded(workers: usize, n: usize) -> Self {
        let queue = StealQueue::new(workers);
        let plan = ShardPlan::new(workers as u32);
        for (w, range) in plan.ranges(n).into_iter().enumerate() {
            queue.workers[w]
                .deque
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .extend(range);
        }
        queue
    }

    /// Submit an item to the global injector (out-of-band work). Seeded
    /// runs place everything up front, so only tests drive this today; it
    /// is the designed entry point for future mid-run submission.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn inject(&self, item: usize) {
        self.injector
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(item);
    }

    /// Next item for worker `w`: LIFO slot, own deque front, injector,
    /// then steal the tail half of the longest peer deque. `None` means
    /// every source is empty and the worker can exit.
    pub(crate) fn pop(&self, w: usize) -> Option<usize> {
        if let Some(item) = self.workers[w]
            .slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            return Some(item);
        }
        if let Some(item) = self.workers[w]
            .deque
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
        {
            return Some(item);
        }
        if let Some(item) = self
            .injector
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
        {
            return Some(item);
        }
        self.steal_into(w)
    }

    /// Steal `ceil(len/2)` items from the back of the longest peer deque;
    /// the first stolen item is returned, the next parks in the LIFO slot,
    /// the rest refill the thief's own deque (preserving their order).
    fn steal_into(&self, w: usize) -> Option<usize> {
        let victim = (0..self.workers.len())
            .filter(|&v| v != w)
            .max_by_key(|&v| {
                self.workers[v]
                    .deque
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .len()
            })?;
        let mut batch: VecDeque<usize> = {
            let mut deque = self.workers[victim]
                .deque
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            let keep = deque.len() / 2;
            deque.split_off(keep)
        };
        let first = batch.pop_front()?;
        if let Some(second) = batch.pop_front() {
            *self.workers[w]
                .slot
                .lock()
                .unwrap_or_else(|e| e.into_inner()) = Some(second);
        }
        if !batch.is_empty() {
            self.workers[w]
                .deque
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .extend(batch);
        }
        Some(first)
    }
}

// ---------------------------------------------------------------------------
// The steal runtime
// ---------------------------------------------------------------------------

/// What one worker produced for one spec: the report row, the rendered
/// output, and the spec's private telemetry (journal, metrics, spans).
struct SpecSlot {
    row: crate::report::ExperimentReport,
    rendered: Option<String>,
    telemetry: TelemetrySnapshot,
}

/// Run `specs` under work-stealing scheduling across `workers` pooled
/// worker threads, sharing one circuit breaker, and assemble a
/// [`SupervisedRun`] whose canonical journal, report, and outputs are
/// byte-identical to the static 1-shard run of the same seed (see the
/// module docs for the invariance argument and the breaker caveat).
pub fn run_stealing(
    config: RunnerConfig,
    workers: u32,
    specs: &[ExperimentSpec],
) -> SupervisedRun {
    let _quiet = config.quiet_panics.then(QuietPanics::install);
    let n = specs.len();
    let workers = (workers.max(1) as usize).min(n.max(1));
    let queue = Arc::new(StealQueue::seeded(workers, n));
    let breaker = Arc::new(Mutex::new(
        CircuitBreaker::new(config.breaker_threshold).with_cooldown(config.breaker_cooldown),
    ));
    let specs: Arc<[ExperimentSpec]> = specs.to_vec().into();
    let (slot_tx, slot_rx) = mpsc::channel::<(usize, SpecSlot)>();

    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let queue = Arc::clone(&queue);
            let breaker = Arc::clone(&breaker);
            let specs = Arc::clone(&specs);
            let slot_tx = slot_tx.clone();
            pool_execute(move || {
                let mut executor = ExecutorSlot::default();
                while let Some(index) = queue.pop(w) {
                    let tel = Telemetry::new();
                    let mut breaker_ref = BreakerRef::Shared(&breaker);
                    let (row, rendered) =
                        run_spec(&config, &mut breaker_ref, &mut executor, &specs[index], &tel);
                    let mut telemetry = tel.into_snapshot();
                    telemetry.stamp_shard(w as u32);
                    telemetry.stamp_spec(index as u64);
                    let _ = slot_tx.send((index, SpecSlot { row, rendered, telemetry }));
                }
            })
        })
        .collect();
    drop(slot_tx);

    let mut slots: Vec<Option<SpecSlot>> = (0..n).map(|_| None).collect();
    for (index, slot) in slot_rx {
        slots[index] = Some(slot);
    }
    for handle in handles {
        if let Err(payload) = handle.join() {
            std::panic::resume_unwind(payload);
        }
    }

    // Deterministic assembly: walk the slots in spec order, so the event
    // stream below is independent of which worker ran what, when.
    let tel = Telemetry::new();
    tel.event(Event::new("run-start", run_start_detail(&config, n)));
    tel.counter("runner.steal.workers", workers as u64);
    let mut report = RunReport {
        experiments: Vec::with_capacity(n),
        profile: config.profile.label().to_owned(),
        seed: config.seed,
        code_rev: crate::code_rev(),
    };
    let mut outputs = std::collections::BTreeMap::new();
    for (index, slot) in slots.into_iter().enumerate() {
        let slot = slot.unwrap_or_else(|| panic!("spec {index} was never executed"));
        tel.absorb(slot.telemetry, "");
        if let Some(rendered) = slot.rendered {
            outputs.insert(slot.row.code.clone(), rendered);
        }
        report.experiments.push(slot.row);
    }
    report.record_metrics(&tel);
    tel.event(Event::new("run-end", report.summary_line()));
    SupervisedRun {
        report,
        outputs,
        telemetry: tel.into_snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn schedule_parses_and_labels() {
        assert_eq!(Schedule::parse("static"), Some(Schedule::Static));
        assert_eq!(Schedule::parse("steal"), Some(Schedule::Steal));
        assert_eq!(Schedule::parse("chaotic"), None);
        assert_eq!(Schedule::Steal.label(), "steal");
        assert_eq!(Schedule::default(), Schedule::Static);
    }

    #[test]
    fn seeded_queue_drains_every_item_exactly_once() {
        let queue = StealQueue::seeded(3, 10);
        let mut seen = Vec::new();
        // Worker 2 drains everything: its own slice, then steals.
        while let Some(item) = queue.pop(2) {
            seen.push(item);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(queue.pop(0), None);
    }

    #[test]
    fn owner_pops_in_seeded_order_when_nobody_steals() {
        let queue = StealQueue::seeded(2, 6);
        // Worker 0 owns 0..3 and pops it front-first, like a static shard.
        assert_eq!(queue.pop(0), Some(0));
        assert_eq!(queue.pop(0), Some(1));
        assert_eq!(queue.pop(0), Some(2));
    }

    #[test]
    fn thief_takes_tail_half_of_longest_peer() {
        let queue = StealQueue::seeded(2, 8);
        // Worker 1 drains its own slice 4..8 first.
        for expected in 4..8 {
            assert_eq!(queue.pop(1), Some(expected));
        }
        // Now it steals the tail half of worker 0's 0..4, i.e. {2, 3}.
        let stolen = queue.pop(1).unwrap();
        assert_eq!(stolen, 2);
        // Worker 0 still owns its front.
        assert_eq!(queue.pop(0), Some(0));
    }

    #[test]
    fn injector_feeds_any_worker() {
        let queue = StealQueue::new(2);
        queue.inject(41);
        queue.inject(42);
        assert_eq!(queue.pop(1), Some(41));
        assert_eq!(queue.pop(0), Some(42));
        assert_eq!(queue.pop(0), None);
    }

    #[test]
    fn armed_deadline_fires_once_and_cancel_suppresses() {
        let fired = Arc::new(AtomicUsize::new(0));
        let fired_in_wheel = Arc::clone(&fired);
        let guard = arm_deadline(
            Duration::from_millis(10),
            Box::new(move || {
                fired_in_wheel.fetch_add(1, Ordering::SeqCst);
            }),
        );
        std::thread::sleep(Duration::from_millis(200));
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        drop(guard); // dropping after the fire is a no-op

        let never = Arc::new(AtomicUsize::new(0));
        let never_in_wheel = Arc::clone(&never);
        let guard = arm_deadline(
            Duration::from_secs(60),
            Box::new(move || {
                never_in_wheel.fetch_add(1, Ordering::SeqCst);
            }),
        );
        drop(guard); // canceled long before the deadline
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(never.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn many_armed_deadlines_fire_in_order() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let guards: Vec<_> = [30u64, 10, 20]
            .iter()
            .map(|&ms| {
                let log = Arc::clone(&log);
                arm_deadline(
                    Duration::from_millis(ms),
                    Box::new(move || log.lock().unwrap().push(ms)),
                )
            })
            .collect();
        std::thread::sleep(Duration::from_millis(300));
        assert_eq!(*log.lock().unwrap(), vec![10, 20, 30]);
        drop(guards);
    }
}
