//! Journal-driven replay: turn any captured event journal into a
//! regression test.
//!
//! A supervised run's journal records everything that shaped it: the
//! `run-start` event carries the [`RunnerConfig`] knobs that matter
//! (profile, seed, intensity, retries, breaker threshold), the
//! `experiment-start`/`breaker-skip` events name the experiments in
//! execution order, and every `fault` event records its kind, step, and
//! severity. [`reconstruct`] parses that back into a [`ReplaySpec`];
//! [`replay`] re-executes the experiments under exactly the same fault
//! schedule (the [`crate::FaultPlan`] is a pure function of the recovered
//! seed) and diffs the fresh journal's canonical events against the
//! captured ones, reporting the first divergence.
//!
//! Because the canonical journal is shard-invariant (see [`crate::shard`]),
//! a journal captured from a K-shard run replays on a single shard and
//! still matches byte-for-byte. Captures from work-stealing runs (see
//! [`crate::schedule`]) are handled by sorting both streams with
//! [`spec_ordered`] before diffing: the events' spec-index stamps recover
//! the deterministic spec order, so scheduling order can never register as
//! a false divergence. Journals from runs that hit wall-clock timeouts are
//! the one case replay cannot vouch for: deadlines are not reproducible,
//! so a `timeout` event may legitimately diverge.
//!
//! For finer-grained use, [`RecordedFaults`] is a [`FaultHook`] that plays
//! back an explicit `(step, kind) -> severity` schedule extracted from a
//! journal, letting a single experiment re-run under the exact faults a
//! past run saw without going through the supervisor at all.

use crate::fault::{FaultHook, FaultKind, FaultProfile};
use crate::runner::{ExperimentSpec, RunnerConfig, SupervisedRun, Supervisor};
use humnet_telemetry::{spec_ordered, Event};
use std::collections::BTreeMap;
use std::fmt;

/// One fault injection recovered from a captured journal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecordedFault {
    /// Which fault fired.
    pub kind: FaultKind,
    /// Simulator step it fired at.
    pub step: u64,
    /// Severity in `(0, 1]`.
    pub severity: f64,
}

/// A [`FaultHook`] that replays an explicit recorded schedule: `inject`
/// answers from the `(step, kind)` table instead of drawing from a plan,
/// so a simulator re-executes under exactly the faults a past run saw.
#[derive(Debug, Clone, Default)]
pub struct RecordedFaults {
    schedule: BTreeMap<(u64, &'static str), f64>,
    injected: u64,
}

impl RecordedFaults {
    /// Hook replaying `faults` (later duplicates of a `(step, kind)` pair
    /// overwrite earlier ones).
    pub fn new(faults: &[RecordedFault]) -> Self {
        RecordedFaults {
            schedule: faults
                .iter()
                .map(|f| ((f.step, f.kind.label()), f.severity))
                .collect(),
            injected: 0,
        }
    }

    /// Number of scheduled injections.
    pub fn len(&self) -> usize {
        self.schedule.len()
    }

    /// True when the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty()
    }
}

impl FaultHook for RecordedFaults {
    fn inject(&mut self, step: u64, kind: FaultKind) -> Option<f64> {
        let hit = self.schedule.get(&(step, kind.label())).copied();
        if hit.is_some() {
            self.injected += 1;
        }
        hit
    }

    fn faults_injected(&self) -> u64 {
        self.injected
    }
}

/// Everything a captured journal says about how to re-run it.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplaySpec {
    /// Runner configuration recovered from the `run-start` event (the
    /// deadline keeps its default — it is not recorded).
    pub config: RunnerConfig,
    /// Experiment codes in captured execution order (including ones the
    /// breaker skipped).
    pub experiments: Vec<String>,
    /// Recorded fault schedule per experiment code, in journal order.
    pub faults: BTreeMap<String, Vec<RecordedFault>>,
}

/// Why a journal could not be reconstructed or replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The journal contains no events at all.
    EmptyJournal,
    /// No `run-start` event to recover the configuration from.
    MissingRunStart,
    /// A `run-start` token did not parse (`field`, `value`).
    MalformedRunStart {
        /// The `key` of the offending `key=value` token.
        field: String,
        /// Its unparseable value.
        value: String,
    },
    /// The journal names an experiment the caller's factory cannot build.
    UnknownExperiment(String),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::EmptyJournal => write!(f, "journal contains no events"),
            ReplayError::MissingRunStart => {
                write!(f, "journal has no run-start event to recover the config from")
            }
            ReplayError::MalformedRunStart { field, value } => {
                write!(f, "run-start field '{field}' has unparseable value '{value}'")
            }
            ReplayError::UnknownExperiment(code) => {
                write!(f, "journal names unknown experiment '{code}'")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// Parse a captured journal back into a [`ReplaySpec`].
///
/// The `run-start` detail is read as `key=value` tokens; keys a journal
/// predates (older captures lack `intensity`/`retries`/`breaker`) fall
/// back to [`RunnerConfig::default`], so pre-sharding journals replay too.
/// Fault events with an unrecognized kind label are skipped rather than
/// fatal — the full-run replay path regenerates faults from the seed and
/// only uses this schedule for reporting and [`RecordedFaults`].
///
/// Events are first sorted with [`spec_ordered`], so a capture written in
/// completion order (e.g. raw per-worker journals from a work-stealing
/// run) reconstructs the same experiment order as the run's spec list.
pub fn reconstruct(events: &[Event]) -> Result<ReplaySpec, ReplayError> {
    if events.is_empty() {
        return Err(ReplayError::EmptyJournal);
    }
    let events = spec_ordered(events);
    let start = events
        .iter()
        .find(|e| e.kind == "run-start")
        .ok_or(ReplayError::MissingRunStart)?;

    let mut config = RunnerConfig::default();
    for token in start.detail.split_whitespace() {
        let Some((key, value)) = token.split_once('=') else {
            continue;
        };
        let malformed = || ReplayError::MalformedRunStart {
            field: key.to_owned(),
            value: value.to_owned(),
        };
        match key {
            "profile" => {
                config.profile = FaultProfile::parse(value).ok_or_else(malformed)?;
            }
            "seed" => config.seed = value.parse().map_err(|_| malformed())?,
            "intensity" => config.intensity = value.parse().map_err(|_| malformed())?,
            "retries" => config.retries = value.parse().map_err(|_| malformed())?,
            "breaker" => config.breaker_threshold = value.parse().map_err(|_| malformed())?,
            "cooldown" => config.breaker_cooldown = value.parse().map_err(|_| malformed())?,
            _ => {} // experiments=N and future keys are informational
        }
    }

    let mut experiments = Vec::new();
    let mut faults: BTreeMap<String, Vec<RecordedFault>> = BTreeMap::new();
    for event in events {
        match event.kind.as_str() {
            "experiment-start" | "breaker-skip"
                if !event.experiment.is_empty()
                    && !experiments.contains(&event.experiment) =>
            {
                experiments.push(event.experiment.clone());
            }
            "fault" => {
                let (Some(kind), Some(step), Some(severity)) = (
                    FaultKind::parse(&event.detail),
                    event.step,
                    event.severity,
                ) else {
                    continue;
                };
                faults
                    .entry(event.experiment.clone())
                    .or_default()
                    .push(RecordedFault { kind, step, severity });
            }
            _ => {}
        }
    }

    Ok(ReplaySpec {
        config,
        experiments,
        faults,
    })
}

/// The first point where a replayed journal stops matching the captured
/// one, in canonical-event terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// 0-based index into the canonical event sequence.
    pub index: usize,
    /// Captured line at that index (`None` when the capture is shorter).
    pub captured: Option<String>,
    /// Replayed line at that index (`None` when the replay is shorter).
    pub replayed: Option<String>,
}

/// Outcome of a full-journal replay.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Configuration the replay ran under (recovered from the journal).
    pub config: RunnerConfig,
    /// Experiment codes replayed, in order.
    pub experiments: Vec<String>,
    /// Canonical events in the captured journal.
    pub captured_events: usize,
    /// Canonical events the replay produced.
    pub replayed_events: usize,
    /// First divergence, or `None` when the replay matches byte-for-byte.
    pub divergence: Option<Divergence>,
    /// The fresh supervised run, for callers that want its outputs.
    pub run: SupervisedRun,
}

impl ReplayReport {
    /// True when the replayed canonical journal matches the captured one.
    pub fn is_clean(&self) -> bool {
        self.divergence.is_none()
    }

    /// Process exit code: 0 on a clean replay, 1 on divergence.
    pub fn exit_code(&self) -> i32 {
        i32::from(!self.is_clean())
    }

    /// Human-readable verdict, one paragraph.
    pub fn render(&self) -> String {
        let mut out = format!(
            "replay  profile={}  seed={}  experiments={}\n\
             captured {} canonical events, replayed {}\n",
            self.config.profile.label(),
            self.config.seed,
            self.experiments.len(),
            self.captured_events,
            self.replayed_events,
        );
        match &self.divergence {
            None => out.push_str("verdict: MATCH — replay reproduces the captured journal\n"),
            Some(d) => {
                out.push_str(&format!("verdict: DIVERGED at canonical event {}\n", d.index));
                let line = |side: &Option<String>| {
                    side.clone().unwrap_or_else(|| "(journal ends here)".to_owned())
                };
                out.push_str(&format!("  captured: {}\n", line(&d.captured)));
                out.push_str(&format!("  replayed: {}\n", line(&d.replayed)));
            }
        }
        out
    }
}

/// First index where two canonical event sequences differ.
pub fn first_divergence(captured: &[String], replayed: &[String]) -> Option<Divergence> {
    let n = captured.len().max(replayed.len());
    (0..n)
        .find(|&i| captured.get(i) != replayed.get(i))
        .map(|index| Divergence {
            index,
            captured: captured.get(index).cloned(),
            replayed: replayed.get(index).cloned(),
        })
}

/// Replay a captured journal end to end: [`reconstruct`] the spec, build
/// each experiment through `factory` (code → spec; the resilience crate
/// cannot know the experiment registry), re-execute under a single-shard
/// supervisor with the recovered configuration, and diff canonical event
/// streams. The fault schedule regenerates identically because the plan is
/// a pure function of the recovered seed. Both streams are sorted with
/// [`spec_ordered`] before the diff, so a capture from a work-stealing run
/// is compared in spec order and scheduling order cannot surface as a
/// false divergence.
pub fn replay(
    captured: &[Event],
    factory: &dyn Fn(&str) -> Option<ExperimentSpec>,
) -> Result<ReplayReport, ReplayError> {
    let spec = reconstruct(captured)?;
    let specs = spec
        .experiments
        .iter()
        .map(|code| {
            factory(code).ok_or_else(|| ReplayError::UnknownExperiment(code.clone()))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let run = Supervisor::new(spec.config).run(&specs);
    let captured_canonical: Vec<String> =
        spec_ordered(captured).iter().map(Event::canonical).collect();
    let replayed_canonical: Vec<String> = spec_ordered(&run.telemetry.events)
        .iter()
        .map(Event::canonical)
        .collect();
    Ok(ReplayReport {
        config: spec.config,
        experiments: spec.experiments,
        captured_events: captured_canonical.len(),
        replayed_events: replayed_canonical.len(),
        divergence: first_divergence(&captured_canonical, &replayed_canonical),
        run,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, PlanHook};
    use crate::runner::{JobError, JobOutput};
    use std::time::Duration;

    fn fault_spec(code: &str) -> ExperimentSpec {
        let owned = code.to_owned();
        ExperimentSpec::new(code, format!("title {code}"), "fam", move |plan, tel| {
            let mut faults = 0;
            for step in 0..60 {
                if let Some(sev) = plan.draw(step, FaultKind::LinkOutage) {
                    faults += 1;
                    tel.event(
                        Event::new("fault", FaultKind::LinkOutage.label())
                            .with_step(step)
                            .with_severity(sev),
                    );
                }
            }
            Ok::<JobOutput, JobError>(JobOutput {
                rendered: format!("{owned}: faults={faults}"),
                faults_injected: faults,
            })
        })
    }

    fn chaos_config() -> RunnerConfig {
        RunnerConfig {
            retries: 2,
            deadline: Duration::from_secs(10),
            profile: FaultProfile::Chaos,
            seed: 4242,
            ..RunnerConfig::default()
        }
    }

    fn factory(code: &str) -> Option<ExperimentSpec> {
        code.starts_with('e').then(|| fault_spec(code))
    }

    #[test]
    fn reconstruct_recovers_config_and_experiment_order() {
        let specs: Vec<ExperimentSpec> = (0..4).map(|i| fault_spec(&format!("e{i}"))).collect();
        let run = Supervisor::new(chaos_config()).run(&specs);
        let spec = reconstruct(&run.telemetry.events).unwrap();
        assert_eq!(spec.config.profile, FaultProfile::Chaos);
        assert_eq!(spec.config.seed, 4242);
        assert_eq!(spec.config.retries, 2);
        assert_eq!(spec.experiments, vec!["e0", "e1", "e2", "e3"]);
        // Recorded faults match what the report counted.
        let recorded: u64 = spec.faults.values().map(|v| v.len() as u64).sum();
        assert_eq!(recorded, run.report.total_faults());
    }

    #[test]
    fn replay_of_a_fresh_capture_is_clean() {
        let specs: Vec<ExperimentSpec> = (0..3).map(|i| fault_spec(&format!("e{i}"))).collect();
        let run = Supervisor::new(chaos_config()).run(&specs);
        let report = replay(&run.telemetry.events, &factory).unwrap();
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.exit_code(), 0);
        assert_eq!(report.captured_events, report.replayed_events);
        assert!(report.render().contains("MATCH"));
    }

    #[test]
    fn replay_detects_a_tampered_journal() {
        let specs = vec![fault_spec("e0"), fault_spec("e1")];
        let run = Supervisor::new(chaos_config()).run(&specs);
        let mut tampered = run.telemetry.events.clone();
        // Flip one recorded fault's step: replay must flag exactly that line.
        let idx = tampered.iter().position(|e| e.kind == "fault").unwrap();
        tampered[idx].step = Some(9_999);
        let report = replay(&tampered, &factory).unwrap();
        let d = report.divergence.clone().expect("divergence expected");
        assert_eq!(d.index, idx);
        assert_eq!(report.exit_code(), 1);
        assert!(report.render().contains("DIVERGED"));
    }

    #[test]
    fn replay_errors_are_specific() {
        assert_eq!(reconstruct(&[]), Err(ReplayError::EmptyJournal));
        let no_start = vec![Event::new("milestone", "x")];
        assert_eq!(reconstruct(&no_start), Err(ReplayError::MissingRunStart));
        let bad = vec![Event::new("run-start", "profile=warp seed=1")];
        assert!(matches!(
            reconstruct(&bad),
            Err(ReplayError::MalformedRunStart { .. })
        ));
        let specs = vec![fault_spec("e0")];
        let run = Supervisor::new(chaos_config()).run(&specs);
        let err = replay(&run.telemetry.events, &|_| None).unwrap_err();
        assert_eq!(err, ReplayError::UnknownExperiment("e0".to_owned()));
    }

    #[test]
    fn pre_sharding_run_start_lines_fall_back_to_defaults() {
        // PR-2 era journals carried only profile/seed/experiments.
        let events = vec![
            Event::new("run-start", "profile=churn seed=9 experiments=1"),
            Event::new("experiment-start", "t").in_experiment("e0"),
        ];
        let spec = reconstruct(&events).unwrap();
        assert_eq!(spec.config.profile, FaultProfile::Churn);
        assert_eq!(spec.config.seed, 9);
        assert_eq!(spec.config.retries, RunnerConfig::default().retries);
        assert_eq!(spec.experiments, vec!["e0"]);
    }

    #[test]
    fn recorded_faults_reproduce_a_plan_exactly() {
        let plan = FaultPlan::new(FaultProfile::Chaos, 31);
        let mut live = PlanHook::new(plan);
        let mut recorded = Vec::new();
        for step in 0..200 {
            for kind in FaultKind::ALL {
                if let Some(severity) = live.inject(step, kind) {
                    recorded.push(RecordedFault { kind, step, severity });
                }
            }
        }
        let mut playback = RecordedFaults::new(&recorded);
        assert_eq!(playback.len(), recorded.len());
        for step in 0..200 {
            for kind in FaultKind::ALL {
                assert_eq!(plan.draw(step, kind), playback.inject(step, kind));
            }
        }
        assert_eq!(playback.faults_injected(), live.faults_injected());
        // Steps the capture never saw stay fault-free.
        assert_eq!(playback.inject(10_000, FaultKind::IxpOutage), None);
    }
}
