//! Cross-machine dispatch: supervised shard leases over TCP workers.
//!
//! The remote tier of the distributed run driver. A [`Worker`] is a
//! long-lived daemon (the `experiments worker` subcommand) listening on a
//! TCP socket for line-delimited JSON frames — the same framing idiom the
//! serve daemon's protocol uses. The dispatcher leases it one shard slice
//! at a time ([`Lease`]): experiment codes, spec-base offset, and the full
//! run configuration tuple (`seed`, `profile`, `intensity`, `retries`,
//! `deadline_ms`, `breaker_cooldown`). The worker executes the slice on
//! its warm in-process scheduler runtime (exactly as a `run --shards 1`
//! dispatch child would), streams heartbeat frames inline on the
//! connection while the run is in flight, and returns the serialized
//! [`RunArtifact`] + telemetry snapshot + event journal as the final
//! `done` frame.
//!
//! [`dispatch_remote`] gives leased shards the *same supervision contract*
//! [`crate::dispatch`] gives local child processes, translated to
//! connection terms:
//!
//! * **crash detection** — a worker that closes the connection (or was
//!   never reachable) fails the attempt;
//! * **deadlines** — a lease outliving the per-shard wall-clock budget is
//!   revoked by dropping the connection;
//! * **liveness** — a connection silent for longer than the grace window
//!   (no heartbeat *or* result frame) is declared partitioned and the
//!   lease revoked;
//! * **retry + failover** — a failed slice is retried with the same
//!   deterministic per-shard [`Backoff`] stream (`seed ^ shard`), rotated
//!   across workers so retries land on survivors; when every remote
//!   attempt is exhausted the slice **fails over to a local child
//!   process** (the [`crate::dispatch::supervise_shard`] ladder), and only
//!   if that also fails does the shard go missing — loudly, or degraded
//!   under `allow_partial`.
//!
//! Merging reuses [`crate::dispatch::merge_outcomes`] verbatim: a worker's
//! final frame parses into the same per-shard yield a child's artifact
//! files do, so the merged canonical journal stays **byte-identical** to
//! the in-process 1-shard run even when a worker is killed mid-lease and
//! its slice fails over to a survivor or a local child.
//!
//! Network-level fault injection mirrors `--chaos-proc`: a [`ChaosNet`]
//! spec (`kill:1`, `stall:0:1`, `garble:1`) makes the dispatcher stamp a
//! chaos directive onto the matching `(worker, attempt)` lease frame, and
//! the cooperating worker drops the connection mid-lease, goes silent
//! holding it open, or emits a corrupt frame. A worker can also be
//! poisoned at startup via the [`CHAOS_NET_ENV`] environment variable
//! ([`WorkerChaos`]: `kill:2` fires on its third accepted lease) so
//! partition tests need no dispatcher cooperation at all.

use crate::backoff::Backoff;
use crate::dispatch::{
    merge_outcomes, supervise_shard, AttemptFailure, DispatchConfig, DispatchError,
    DispatchOutcome, MissingShard, ShardOutcome, ShardPaths, ShardSpec, ShardYield,
};
use crate::fault::FaultProfile;
use crate::report::RunArtifact;
use crate::runner::{ExperimentSpec, RunnerConfig, Supervisor};
use humnet_telemetry::TelemetrySnapshot;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::process::Command;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

/// Environment variable that poisons a worker daemon at startup:
/// `kill[:n]`, `stall[:n]`, or `garble[:n]` makes the worker misbehave on
/// its `n`-th accepted lease (0-based, default 0). The connection-frame
/// path (`--chaos-net` on `dispatch`) needs no environment at all.
pub const CHAOS_NET_ENV: &str = "HUMNET_CHAOS_NET";

/// How a chaos-selected worker misbehaves on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosKind {
    /// Drop the connection abruptly mid-lease (simulated worker crash).
    Kill,
    /// Hold the connection open but send nothing (simulated partition /
    /// wedge — the dispatcher's liveness window must fire).
    Stall,
    /// Emit a corrupt, non-JSON frame (simulated wire damage).
    Garble,
}

impl ChaosKind {
    /// Wire label (`kill` / `stall` / `garble`).
    pub fn label(self) -> &'static str {
        match self {
            ChaosKind::Kill => "kill",
            ChaosKind::Stall => "stall",
            ChaosKind::Garble => "garble",
        }
    }

    /// Parse a wire label back.
    pub fn parse(s: &str) -> Option<ChaosKind> {
        match s {
            "kill" => Some(ChaosKind::Kill),
            "stall" => Some(ChaosKind::Stall),
            "garble" => Some(ChaosKind::Garble),
            _ => None,
        }
    }
}

/// One network-level fault injection, dispatcher-side: which worker
/// (index into the `--workers` list), which lease attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosNet {
    /// The fault to inject.
    pub kind: ChaosKind,
    /// Targeted worker index (position in the `--workers` list).
    pub worker: u32,
    /// Shard attempt the fault fires on (0 = first lease of a shard).
    pub lease: u32,
}

impl ChaosNet {
    /// Parse a `--chaos-net` argument:
    /// `kill:<worker>[:lease]`, `stall:<worker>[:lease]`, or
    /// `garble:<worker>[:lease]`.
    pub fn parse(s: &str) -> Option<ChaosNet> {
        let mut parts = s.split(':');
        let kind = ChaosKind::parse(parts.next()?)?;
        let worker: u32 = parts.next()?.parse().ok()?;
        let lease: u32 = match parts.next() {
            Some(a) => a.parse().ok()?,
            None => 0,
        };
        if parts.next().is_some() {
            return None;
        }
        Some(ChaosNet { kind, worker, lease })
    }

    /// The directive to stamp onto the lease frame for `(worker, attempt)`,
    /// if this fault targets it.
    pub fn directive(&self, worker: u32, attempt: u32) -> Option<ChaosKind> {
        (self.worker == worker && self.lease == attempt).then_some(self.kind)
    }
}

/// A standalone worker-side fault parsed from [`CHAOS_NET_ENV`]:
/// fires on the worker's `lease`-th accepted lease, whatever dispatcher
/// sent it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerChaos {
    /// The fault to inject.
    pub kind: ChaosKind,
    /// 0-based index of the accepted lease the fault fires on.
    pub lease: u64,
}

impl WorkerChaos {
    /// Parse a [`CHAOS_NET_ENV`] value: `kill[:n]`, `stall[:n]`,
    /// `garble[:n]`.
    pub fn parse(s: &str) -> Option<WorkerChaos> {
        let mut parts = s.split(':');
        let kind = ChaosKind::parse(parts.next()?)?;
        let lease: u64 = match parts.next() {
            Some(a) => a.parse().ok()?,
            None => 0,
        };
        if parts.next().is_some() {
            return None;
        }
        Some(WorkerChaos { kind, lease })
    }
}

// ---------------------------------------------------------------------------
// Wire frames (line-delimited JSON, one frame per line — the serve
// protocol's framing idiom; plain `Option` fields so absent keys read as
// `None`).
// ---------------------------------------------------------------------------

/// A dispatcher → worker request frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lease {
    /// `lease` (execute a shard slice) or `shutdown` (drain the worker).
    pub cmd: String,
    /// Dispatcher-chosen lease id, echoed on every response frame.
    pub lease: Option<u64>,
    /// Shard index the slice belongs to.
    pub shard: Option<u32>,
    /// Offset of the slice in the full experiment list.
    pub spec_base: Option<u64>,
    /// Experiment codes in the slice, canonical order.
    pub experiments: Option<Vec<String>>,
    /// Run seed.
    pub seed: Option<u64>,
    /// Fault profile label.
    pub profile: Option<String>,
    /// Fault intensity multiplier.
    pub intensity: Option<f64>,
    /// Per-experiment retry budget.
    pub retries: Option<u32>,
    /// Per-attempt deadline in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Breaker half-open cooldown.
    pub breaker_cooldown: Option<u32>,
    /// Chaos directive ([`ChaosKind`] label) the worker should cooperate
    /// with on this lease; absent in production traffic.
    pub chaos: Option<String>,
}

impl Lease {
    /// A lease frame for one shard slice under `runner`'s configuration.
    pub fn for_shard(spec: &ShardSpec, runner: &RunnerConfig, lease_id: u64) -> Lease {
        Lease {
            cmd: "lease".to_owned(),
            lease: Some(lease_id),
            shard: Some(spec.shard),
            spec_base: Some(spec.spec_base),
            experiments: Some(spec.codes.clone()),
            seed: Some(runner.seed),
            profile: Some(runner.profile.label().to_owned()),
            intensity: Some(runner.intensity),
            retries: Some(runner.retries),
            deadline_ms: Some(runner.deadline.as_millis() as u64),
            breaker_cooldown: Some(runner.breaker_cooldown),
            chaos: None,
        }
    }

    /// A graceful drain request.
    pub fn shutdown() -> Lease {
        Lease {
            cmd: "shutdown".to_owned(),
            lease: None,
            shard: None,
            spec_base: None,
            experiments: None,
            seed: None,
            profile: None,
            intensity: None,
            retries: None,
            deadline_ms: None,
            breaker_cooldown: None,
            chaos: None,
        }
    }

    /// Serialize as one wire line (no trailing newline).
    pub fn to_line(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Parse one wire line.
    pub fn from_line(line: &str) -> Result<Lease, serde_json::Error> {
        serde_json::from_str(line.trim())
    }
}

/// A worker → dispatcher response frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerFrame {
    /// `hb` (inline heartbeat), `done` (final result), `error`, or `ok`
    /// (shutdown acknowledged).
    pub status: String,
    /// Lease id this frame answers.
    pub lease: Option<u64>,
    /// Heartbeat counter, monotonic per lease.
    pub beat: Option<u64>,
    /// Shard index of the slice (on `done`).
    pub shard: Option<u32>,
    /// Serialized canonical [`RunArtifact`] JSON (on `done`).
    pub artifact: Option<String>,
    /// Serialized telemetry snapshot JSON, events included (on `done`).
    pub metrics: Option<String>,
    /// Event journal JSONL (on `done`; debugging aid — the merge reads
    /// events from the metrics snapshot, exactly like local dispatch).
    pub journal: Option<String>,
    /// Human-readable failure (on `error`).
    pub message: Option<String>,
}

impl WorkerFrame {
    fn empty(status: &str) -> WorkerFrame {
        WorkerFrame {
            status: status.to_owned(),
            lease: None,
            beat: None,
            shard: None,
            artifact: None,
            metrics: None,
            journal: None,
            message: None,
        }
    }

    /// An inline heartbeat for a lease in flight.
    pub fn hb(lease: u64, beat: u64) -> WorkerFrame {
        WorkerFrame {
            lease: Some(lease),
            beat: Some(beat),
            ..WorkerFrame::empty("hb")
        }
    }

    /// The final result frame of a completed lease.
    pub fn done(
        lease: u64,
        shard: u32,
        artifact: String,
        metrics: String,
        journal: String,
    ) -> WorkerFrame {
        WorkerFrame {
            lease: Some(lease),
            shard: Some(shard),
            artifact: Some(artifact),
            metrics: Some(metrics),
            journal: Some(journal),
            ..WorkerFrame::empty("done")
        }
    }

    /// A lease-level failure the worker could diagnose itself.
    pub fn error(lease: Option<u64>, message: impl Into<String>) -> WorkerFrame {
        WorkerFrame {
            lease,
            message: Some(message.into()),
            ..WorkerFrame::empty("error")
        }
    }

    /// Shutdown acknowledgement.
    pub fn ok() -> WorkerFrame {
        WorkerFrame::empty("ok")
    }

    /// Serialize as one wire line (no trailing newline).
    pub fn to_line(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Parse one wire line.
    pub fn from_line(line: &str) -> Result<WorkerFrame, serde_json::Error> {
        serde_json::from_str(line.trim())
    }
}

/// Drain one newline-terminated line out of `buf`, if one is complete.
/// Returns trimmed text; empty lines come back as empty strings the
/// caller skips.
fn take_line(buf: &mut Vec<u8>) -> Option<String> {
    let pos = buf.iter().position(|&b| b == b'\n')?;
    let line: Vec<u8> = buf.drain(..=pos).collect();
    Some(String::from_utf8_lossy(&line).trim().to_owned())
}

// ---------------------------------------------------------------------------
// Dispatcher side
// ---------------------------------------------------------------------------

/// Remote-dispatch knobs layered on top of [`DispatchConfig`] (which keeps
/// supplying the shared supervision budget: `shard_retries`,
/// `shard_deadline`, `liveness`, backoff, `allow_partial`).
#[derive(Debug, Clone)]
pub struct RemoteOptions {
    /// Worker addresses (`host:port`), in `--workers` order. Retries
    /// rotate through this list so a dead worker's slice lands on a
    /// survivor.
    pub workers: Vec<String>,
    /// Per-dial TCP connect budget.
    pub connect_timeout: Duration,
    /// Network-level fault injections (testing/CI).
    pub chaos: Vec<ChaosNet>,
    /// After remote retries exhaust, fail the slice over to a local child
    /// process before declaring the shard missing.
    pub local_failover: bool,
}

impl Default for RemoteOptions {
    fn default() -> Self {
        RemoteOptions {
            workers: Vec::new(),
            connect_timeout: Duration::from_secs(5),
            chaos: Vec::new(),
            local_failover: true,
        }
    }
}

/// Run `shards` as leases against remote workers and merge their results.
///
/// The supervision ladder per shard: remote attempts `0..=shard_retries`
/// (deterministic [`Backoff`] from `seed ^ shard`, worker rotated per
/// attempt), then — unless `local_failover` is off — the full local
/// child-process ladder of [`crate::dispatch::dispatch`] via `build`, then
/// missing. Merging is shared with local dispatch, so the canonical
/// journal is byte-identical to the in-process run regardless of which
/// rung produced each slice.
pub fn dispatch_remote<F>(
    config: &DispatchConfig,
    remote: &RemoteOptions,
    runner: &RunnerConfig,
    shards: Vec<ShardSpec>,
    build: F,
) -> Result<DispatchOutcome, DispatchError>
where
    F: Fn(&ShardSpec, &ShardPaths) -> Command + Sync,
{
    assert!(
        !remote.workers.is_empty(),
        "dispatch_remote requires at least one worker address"
    );
    // Local failover spawns children that write artifacts here.
    fs::create_dir_all(&config.scratch).map_err(|e| DispatchError::Scratch(e.to_string()))?;
    let planned: usize = shards.iter().map(|s| s.codes.len()).sum();

    let outcomes: Vec<ShardOutcome> = thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .filter(|spec| !spec.codes.is_empty())
            .map(|spec| scope.spawn(|| supervise_remote_shard(config, remote, runner, spec, &build)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard lease watcher never panics"))
            .collect()
    });

    let missing: Vec<MissingShard> = outcomes
        .iter()
        .filter_map(|o| match &o.result {
            Ok(_) => None,
            Err(failure) => Some(MissingShard {
                shard: o.spec.shard,
                attempts: o.attempts,
                codes: o.spec.codes.clone(),
                reason: failure.to_string(),
            }),
        })
        .collect();
    if !missing.is_empty() && !config.allow_partial {
        return Err(DispatchError::ShardsFailed(missing));
    }

    Ok(merge_outcomes(runner, planned, outcomes, missing))
}

/// Supervise one shard's remote lease ladder: lease, watch, retry against
/// rotated workers, then fail over locally.
fn supervise_remote_shard<F>(
    config: &DispatchConfig,
    remote: &RemoteOptions,
    runner: &RunnerConfig,
    spec: ShardSpec,
    build: &F,
) -> ShardOutcome
where
    F: Fn(&ShardSpec, &ShardPaths) -> Command,
{
    let backoff = Backoff::for_shard(config.backoff_base, config.seed, spec.shard);
    let mut last = AttemptFailure::Remote("never attempted".to_owned());
    let mut attempts = 0;
    for attempt in 0..=config.shard_retries {
        if attempt > 0 {
            eprintln!(
                "dispatch: shard {} remote attempt {attempt} after failure: {last}",
                spec.shard
            );
            thread::sleep(backoff.delay(attempt - 1));
        }
        attempts += 1;
        let widx = ((spec.shard + attempt) as usize) % remote.workers.len();
        let chaos = remote
            .chaos
            .iter()
            .find_map(|c| c.directive(widx as u32, attempt));
        match lease_attempt(config, remote, runner, &spec, attempt, widx, chaos) {
            Ok(yielded) => {
                return ShardOutcome {
                    spec,
                    attempts,
                    result: Ok(yielded),
                };
            }
            Err(failure) => last = failure,
        }
    }
    if remote.local_failover {
        eprintln!(
            "dispatch: shard {} failing over to a local child after {attempts} remote attempts: {last}",
            spec.shard
        );
        let mut outcome = supervise_shard(config, spec, build);
        outcome.attempts += attempts;
        return outcome;
    }
    eprintln!(
        "dispatch: shard {} gave up after {attempts} remote attempts: {last}",
        spec.shard
    );
    ShardOutcome {
        spec,
        attempts,
        result: Err(last),
    }
}

/// Dial every resolved address for `addr` until one connects in budget.
fn connect(addr: &str, timeout: Duration) -> std::io::Result<TcpStream> {
    let resolved = addr.to_socket_addrs()?;
    let mut last = std::io::Error::new(
        std::io::ErrorKind::AddrNotAvailable,
        format!("no addresses resolved for {addr}"),
    );
    for sock in resolved {
        match TcpStream::connect_timeout(&sock, timeout) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = e,
        }
    }
    Err(last)
}

/// One lease-watch-collect cycle against a single worker. Dropping the
/// stream on any exit path *is* the lease revocation: the worker notices
/// the dead connection on its next frame write and abandons the result.
fn lease_attempt(
    config: &DispatchConfig,
    remote: &RemoteOptions,
    runner: &RunnerConfig,
    spec: &ShardSpec,
    attempt: u32,
    widx: usize,
    chaos: Option<ChaosKind>,
) -> Result<ShardYield, AttemptFailure> {
    let addr = &remote.workers[widx];
    let fail = |msg: String| AttemptFailure::Remote(format!("worker {addr}: {msg}"));

    let mut stream =
        connect(addr, remote.connect_timeout).map_err(|e| fail(format!("connect failed: {e}")))?;
    let _ = stream.set_nodelay(true);

    let lease_id = (u64::from(spec.shard) << 16) | u64::from(attempt);
    let mut lease = Lease::for_shard(spec, runner, lease_id);
    lease.chaos = chaos.map(|k| k.label().to_owned());
    let line = lease
        .to_line()
        .map_err(|e| fail(format!("lease not serializable: {e}")))?;
    stream
        .write_all(format!("{line}\n").as_bytes())
        .and_then(|()| stream.flush())
        .map_err(|e| fail(format!("lease send failed: {e}")))?;

    // Short read timeout so deadline/liveness checks interleave with the
    // blocking reads — the same poll cadence the child watcher uses.
    let poll = config.poll.max(Duration::from_millis(5));
    let _ = stream.set_read_timeout(Some(poll));

    let started = Instant::now();
    let mut last_frame = Instant::now();
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 8192];
    loop {
        while let Some(line) = take_line(&mut buf) {
            if line.is_empty() {
                continue;
            }
            let frame = WorkerFrame::from_line(&line).map_err(|_| {
                let shown: String = line.chars().take(80).collect();
                fail(format!("garbled frame: {shown:?}"))
            })?;
            last_frame = Instant::now();
            match frame.status.as_str() {
                "hb" => {}
                "done" => return collect_done(&frame, config, spec, attempt).map_err(fail),
                "error" => {
                    let msg = frame.message.unwrap_or_else(|| "unspecified".to_owned());
                    return Err(fail(format!("lease refused: {msg}")));
                }
                other => return Err(fail(format!("unexpected frame status {other:?}"))),
            }
        }
        if started.elapsed() >= config.shard_deadline {
            return Err(fail(format!(
                "lease exceeded the {}ms shard deadline; revoked",
                config.shard_deadline.as_millis()
            )));
        }
        if !config.liveness.is_zero() && last_frame.elapsed() >= config.liveness {
            return Err(fail(format!(
                "no frame for {}ms; worker declared partitioned and lease revoked",
                last_frame.elapsed().as_millis()
            )));
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(fail("connection closed mid-lease".to_owned())),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => return Err(fail(format!("read failed: {e}"))),
        }
    }
}

/// Parse a `done` frame into the same per-shard yield a local child's
/// artifact files produce; optionally persist the frame's artifacts into
/// the attempt's scratch layout for inspection.
fn collect_done(
    frame: &WorkerFrame,
    config: &DispatchConfig,
    spec: &ShardSpec,
    attempt: u32,
) -> Result<ShardYield, String> {
    let artifact_json = frame
        .artifact
        .as_deref()
        .ok_or_else(|| "done frame missing artifact".to_owned())?;
    let metrics_json = frame
        .metrics
        .as_deref()
        .ok_or_else(|| "done frame missing metrics".to_owned())?;
    let artifact = RunArtifact::from_json(artifact_json)
        .map_err(|e| format!("done frame artifact unusable: {e}"))?;
    let telemetry = TelemetrySnapshot::from_json(metrics_json)
        .map_err(|e| format!("done frame metrics unusable: {e}"))?;
    if config.keep_scratch {
        let paths = ShardPaths::new(&config.scratch, spec.shard, attempt);
        if fs::create_dir_all(&paths.dir).is_ok() {
            let _ = fs::write(&paths.report, artifact_json);
            let _ = fs::write(&paths.metrics, metrics_json);
            if let Some(journal) = frame.journal.as_deref() {
                let _ = fs::write(&paths.journal, journal);
            }
        }
    }
    Ok(ShardYield { artifact, telemetry })
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// Maps an experiment code to a runnable spec; the worker binary supplies
/// its registry, tests supply toys.
pub type WorkerFactory = dyn Fn(&str) -> Option<ExperimentSpec> + Send + Sync;

/// Worker daemon knobs.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Listen address; port 0 picks a free port (read it back via
    /// [`Worker::local_addr`]).
    pub addr: String,
    /// Base runner configuration; each lease overlays its own tuple
    /// (seed, profile, intensity, retries, deadline, breaker cooldown).
    pub runner: RunnerConfig,
    /// Inline heartbeat cadence while a lease is executing.
    pub heartbeat: Duration,
    /// Standalone startup poison from [`CHAOS_NET_ENV`], if any.
    pub chaos: Option<WorkerChaos>,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            addr: "127.0.0.1:0".to_owned(),
            runner: RunnerConfig::default(),
            heartbeat: Duration::from_millis(100),
            chaos: None,
        }
    }
}

/// What a drained worker daemon reports on exit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Leases accepted over the daemon's lifetime.
    pub leases: u64,
    /// Leases that returned a `done` frame.
    pub completed: u64,
    /// Leases lost to chaos injection or revoked connections.
    pub faulted: u64,
}

struct WorkerState {
    config: WorkerConfig,
    factory: Arc<WorkerFactory>,
    stop: Arc<AtomicBool>,
    leases: AtomicU64,
    completed: AtomicU64,
    faulted: AtomicU64,
}

/// The long-lived worker daemon behind `experiments worker`.
pub struct Worker {
    listener: TcpListener,
    config: WorkerConfig,
    stop: Arc<AtomicBool>,
}

impl Worker {
    /// Bind the listen socket (so port 0 resolves before [`Worker::run`]
    /// blocks in accept).
    pub fn bind(config: WorkerConfig) -> std::io::Result<Worker> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Worker {
            listener,
            config,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (the real port when the config asked for 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Flag that makes the accept loop exit after its next wake; pair with
    /// a throwaway connection to the listen address to wake it promptly.
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Accept and serve lease connections until a `shutdown` frame (or the
    /// stop flag) drains the daemon. Each connection gets its own thread;
    /// the dispatcher sends one lease at a time per connection.
    pub fn run(self, factory: Arc<WorkerFactory>) -> std::io::Result<WorkerSummary> {
        let addr = self.local_addr()?;
        let state = Arc::new(WorkerState {
            config: self.config,
            factory,
            stop: Arc::clone(&self.stop),
            leases: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            faulted: AtomicU64::new(0),
        });
        for conn in self.listener.incoming() {
            if state.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(stream) => stream,
                Err(_) => continue,
            };
            let state = Arc::clone(&state);
            let worker_addr = addr;
            thread::spawn(move || serve_lease_connection(&state, stream, worker_addr));
        }
        Ok(WorkerSummary {
            leases: state.leases.load(Ordering::SeqCst),
            completed: state.completed.load(Ordering::SeqCst),
            faulted: state.faulted.load(Ordering::SeqCst),
        })
    }
}

/// Write one frame line; an `Err` means the dispatcher is gone (lease
/// revoked) and the connection should be abandoned.
fn write_frame(stream: &mut TcpStream, frame: &WorkerFrame) -> std::io::Result<()> {
    let line = frame.to_line().map_err(std::io::Error::other)?;
    stream.write_all(format!("{line}\n").as_bytes())?;
    stream.flush()
}

/// Serve one dispatcher connection: parse request frames, execute leases
/// with inline heartbeats, answer shutdown.
fn serve_lease_connection(state: &WorkerState, mut stream: TcpStream, addr: SocketAddr) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 8192];
    loop {
        while let Some(line) = take_line(&mut buf) {
            if line.is_empty() {
                continue;
            }
            let request = match Lease::from_line(&line) {
                Ok(request) => request,
                Err(e) => {
                    let _ = write_frame(&mut stream, &WorkerFrame::error(None, format!("unparseable request: {e}")));
                    continue;
                }
            };
            match request.cmd.as_str() {
                "lease" => {
                    let nth = state.leases.fetch_add(1, Ordering::SeqCst);
                    if execute_lease(state, &mut stream, request, nth).is_err() {
                        // The dispatcher revoked the lease (or chaos cut the
                        // wire): the connection is dead, abandon it.
                        state.faulted.fetch_add(1, Ordering::SeqCst);
                        return;
                    }
                }
                "shutdown" => {
                    let _ = write_frame(&mut stream, &WorkerFrame::ok());
                    state.stop.store(true, Ordering::SeqCst);
                    // Wake the blocking accept so the daemon can exit.
                    let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(250));
                    return;
                }
                other => {
                    let _ = write_frame(
                        &mut stream,
                        &WorkerFrame::error(request.lease, format!("unknown cmd {other:?}")),
                    );
                }
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
}

/// Execute one lease on the warm runtime, streaming heartbeats while the
/// run is in flight. `Err` means the connection died mid-lease.
fn execute_lease(
    state: &WorkerState,
    stream: &mut TcpStream,
    request: Lease,
    nth: u64,
) -> std::io::Result<()> {
    let lease_id = request.lease.unwrap_or(nth);
    let shard = request.shard.unwrap_or(0);

    // Chaos cooperation: a directive stamped on the frame by the
    // dispatcher, or the startup poison from CHAOS_NET_ENV firing on this
    // accepted lease — frame wins when both are present.
    let chaos = request
        .chaos
        .as_deref()
        .and_then(ChaosKind::parse)
        .or_else(|| {
            state
                .config
                .chaos
                .filter(|c| c.lease == nth)
                .map(|c| c.kind)
        });
    if let Some(kind) = chaos {
        return inject_chaos(state, stream, kind, lease_id);
    }

    let codes = request.experiments.clone().unwrap_or_default();
    if codes.is_empty() {
        return write_frame(stream, &WorkerFrame::error(Some(lease_id), "empty lease"));
    }
    let mut specs = Vec::with_capacity(codes.len());
    for code in &codes {
        match (state.factory)(code) {
            Some(spec) => specs.push(spec),
            None => {
                return write_frame(
                    stream,
                    &WorkerFrame::error(Some(lease_id), format!("unknown experiment {code:?}")),
                );
            }
        }
    }

    let mut config = state.config.runner;
    if let Some(label) = request.profile.as_deref() {
        match FaultProfile::parse(label) {
            Some(profile) => config.profile = profile,
            None => {
                return write_frame(
                    stream,
                    &WorkerFrame::error(Some(lease_id), format!("unknown fault profile {label:?}")),
                );
            }
        }
    }
    if let Some(seed) = request.seed {
        config.seed = seed;
    }
    if let Some(intensity) = request.intensity {
        config.intensity = intensity;
    }
    if let Some(retries) = request.retries {
        config.retries = retries;
    }
    if let Some(ms) = request.deadline_ms {
        config.deadline = Duration::from_millis(ms);
    }
    if let Some(cooldown) = request.breaker_cooldown {
        config.breaker_cooldown = cooldown;
    }
    // The global quiet-panics hook is unsafe to toggle from concurrent
    // lease threads (same reasoning as the serve daemon).
    config.quiet_panics = false;

    eprintln!(
        "worker: lease {lease_id} shard {shard} ({} experiments, seed {}, profile {})",
        codes.len(),
        config.seed,
        config.profile.label(),
    );

    // Execute on a runner thread; heartbeat on the connection thread so
    // liveness frames flow while the slice runs.
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        let run = Supervisor::builder().config(config).build().run(&specs);
        let _ = tx.send(run);
    });
    let mut beat = 0u64;
    loop {
        match rx.recv_timeout(state.config.heartbeat) {
            Ok(run) => {
                let artifact = RunArtifact {
                    report: run.report,
                    outputs: run.outputs,
                }
                .canonicalized();
                let frame = match (
                    artifact.to_json(),
                    run.telemetry.to_json(),
                    run.telemetry.to_jsonl(),
                ) {
                    (Ok(artifact), Ok(metrics), Ok(journal)) => {
                        WorkerFrame::done(lease_id, shard, artifact, metrics, journal)
                    }
                    _ => WorkerFrame::error(Some(lease_id), "result not serializable"),
                };
                write_frame(stream, &frame)?;
                if frame.status == "done" {
                    state.completed.fetch_add(1, Ordering::SeqCst);
                }
                return Ok(());
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                beat += 1;
                write_frame(stream, &WorkerFrame::hb(lease_id, beat))?;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return write_frame(
                    stream,
                    &WorkerFrame::error(Some(lease_id), "lease execution thread died"),
                );
            }
        }
    }
}

/// Cooperate with a chaos directive: crash the connection, go silent, or
/// corrupt the stream — always *after* the lease was accepted, so the
/// dispatcher sees a mid-lease fault, not a refused one.
fn inject_chaos(
    state: &WorkerState,
    stream: &mut TcpStream,
    kind: ChaosKind,
    lease_id: u64,
) -> std::io::Result<()> {
    state.faulted.fetch_add(1, Ordering::SeqCst);
    match kind {
        ChaosKind::Kill => {
            eprintln!("worker: chaos-net kill — dropping the connection mid-lease {lease_id}");
            // One heartbeat first: the lease is visibly in flight when the
            // wire goes dead.
            let _ = write_frame(stream, &WorkerFrame::hb(lease_id, 1));
            let _ = stream.shutdown(std::net::Shutdown::Both);
            Err(std::io::Error::other("chaos-net kill"))
        }
        ChaosKind::Stall => {
            eprintln!("worker: chaos-net stall — holding lease {lease_id} open silently");
            // Hold the connection open sending nothing until the dispatcher
            // revokes it (EOF on our side) — bounded so a stalled thread
            // cannot outlive the test run by much.
            let deadline = Instant::now() + Duration::from_secs(3600);
            let mut sink = [0u8; 256];
            loop {
                match stream.read(&mut sink) {
                    Ok(0) => break,
                    Ok(_) => {}
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut => {}
                    Err(_) => break,
                }
                if Instant::now() >= deadline {
                    break;
                }
                thread::sleep(Duration::from_millis(25));
            }
            Err(std::io::Error::other("chaos-net stall"))
        }
        ChaosKind::Garble => {
            eprintln!("worker: chaos-net garble — emitting a corrupt frame on lease {lease_id}");
            let _ = stream.write_all(b"}{ not a frame \xff\n");
            let _ = stream.flush();
            let _ = stream.shutdown(std::net::Shutdown::Both);
            Err(std::io::Error::other("chaos-net garble"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::JobOutput;
    use proptest::prelude::*;
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "humnet-remote-test-{}-{tag}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn toy_factory() -> Arc<WorkerFactory> {
        Arc::new(|code: &str| {
            if !code.starts_with("exp") {
                return None;
            }
            let code = code.to_owned();
            Some(ExperimentSpec::new(
                code.clone(),
                format!("title {code}"),
                "fam",
                move |_plan, _tel| {
                    Ok(JobOutput {
                        rendered: format!("{code} output"),
                        faults_injected: 0,
                    })
                },
            ))
        })
    }

    fn start_worker(chaos: Option<WorkerChaos>) -> (String, Arc<AtomicBool>) {
        let worker = Worker::bind(WorkerConfig {
            heartbeat: Duration::from_millis(20),
            chaos,
            ..WorkerConfig::default()
        })
        .expect("worker binds");
        let addr = worker.local_addr().unwrap().to_string();
        let stop = worker.stop_flag();
        let factory = toy_factory();
        thread::spawn(move || worker.run(factory));
        (addr, stop)
    }

    fn stop_worker(addr: &str, stop: &Arc<AtomicBool>) {
        stop.store(true, Ordering::SeqCst);
        if let Ok(mut stream) = TcpStream::connect(addr) {
            let line = Lease::shutdown().to_line().unwrap();
            let _ = stream.write_all(format!("{line}\n").as_bytes());
        }
    }

    fn quick_config(tag: &str) -> DispatchConfig {
        DispatchConfig {
            shard_retries: 1,
            shard_deadline: Duration::from_secs(30),
            liveness: Duration::from_millis(500),
            poll: Duration::from_millis(5),
            backoff_base: Duration::from_millis(1),
            scratch: scratch(tag),
            ..DispatchConfig::default()
        }
    }

    fn shard_spec(shard: u32, spec_base: u64, codes: &[&str]) -> ShardSpec {
        ShardSpec {
            shard,
            spec_base,
            codes: codes.iter().map(|s| (*s).to_owned()).collect(),
        }
    }

    /// The in-process ground truth the merged remote run must match.
    fn reference_run(codes: &[&str], runner: &RunnerConfig) -> crate::runner::SupervisedRun {
        let factory = toy_factory();
        let specs: Vec<ExperimentSpec> = codes.iter().map(|c| factory(c).unwrap()).collect();
        let mut cfg = *runner;
        cfg.quiet_panics = false;
        Supervisor::builder().config(cfg).build().run(&specs)
    }

    /// Local-failover child builder that must never be reached.
    fn no_local_children(_: &ShardSpec, _: &ShardPaths) -> Command {
        panic!("test expected no local failover");
    }

    #[test]
    fn chaos_net_specs_parse_and_match() {
        assert_eq!(
            ChaosNet::parse("kill:2"),
            Some(ChaosNet { kind: ChaosKind::Kill, worker: 2, lease: 0 })
        );
        assert_eq!(
            ChaosNet::parse("stall:0:1"),
            Some(ChaosNet { kind: ChaosKind::Stall, worker: 0, lease: 1 })
        );
        assert_eq!(
            ChaosNet::parse("garble:1"),
            Some(ChaosNet { kind: ChaosKind::Garble, worker: 1, lease: 0 })
        );
        for bad in ["", "kill", "kill:", "kill:x", "drop:1", "kill:1:2:3"] {
            assert_eq!(ChaosNet::parse(bad), None, "{bad:?}");
        }
        let c = ChaosNet::parse("kill:1:1").unwrap();
        assert_eq!(c.directive(1, 1), Some(ChaosKind::Kill));
        assert_eq!(c.directive(1, 0), None);
        assert_eq!(c.directive(0, 1), None);
        assert_eq!(
            WorkerChaos::parse("stall:3"),
            Some(WorkerChaos { kind: ChaosKind::Stall, lease: 3 })
        );
        assert_eq!(
            WorkerChaos::parse("kill"),
            Some(WorkerChaos { kind: ChaosKind::Kill, lease: 0 })
        );
        assert_eq!(WorkerChaos::parse("boom:1"), None);
    }

    #[test]
    fn frames_round_trip_through_lines() {
        let spec = shard_spec(2, 5, &["exp1", "exp2"]);
        let lease = Lease::for_shard(&spec, &RunnerConfig::default(), 7);
        let back = Lease::from_line(&lease.to_line().unwrap()).unwrap();
        assert_eq!(back, lease);
        assert_eq!(back.experiments.as_deref(), Some(&["exp1".to_owned(), "exp2".to_owned()][..]));

        let done = WorkerFrame::done(7, 2, "{}".into(), "{}".into(), String::new());
        assert_eq!(WorkerFrame::from_line(&done.to_line().unwrap()).unwrap(), done);
        let hb = WorkerFrame::hb(7, 3);
        assert_eq!(WorkerFrame::from_line(&hb.to_line().unwrap()).unwrap(), hb);
        assert!(WorkerFrame::from_line("}{ not a frame").is_err());
    }

    #[test]
    fn two_workers_merge_byte_identical_to_in_process_run() {
        let (addr_a, stop_a) = start_worker(None);
        let (addr_b, stop_b) = start_worker(None);
        let config = quick_config("identity");
        let remote = RemoteOptions {
            workers: vec![addr_a.clone(), addr_b.clone()],
            ..RemoteOptions::default()
        };
        let runner = RunnerConfig {
            seed: 11,
            ..RunnerConfig::default()
        };
        let shards = vec![
            shard_spec(0, 0, &["exp1", "exp2"]),
            shard_spec(1, 2, &["exp3"]),
        ];
        let outcome =
            dispatch_remote(&config, &remote, &runner, shards, no_local_children).unwrap();
        assert!(!outcome.degraded());
        assert_eq!(outcome.shard_attempts, vec![1, 1]);
        assert_eq!(outcome.run.report.experiments.len(), 3);
        assert_eq!(outcome.run.outputs["exp2"], "exp2 output");

        let reference = reference_run(&["exp1", "exp2", "exp3"], &runner);
        assert_eq!(
            outcome.run.telemetry.canonical_events(),
            reference.telemetry.canonical_events(),
            "remote merge must be byte-identical to the in-process run"
        );
        stop_worker(&addr_a, &stop_a);
        stop_worker(&addr_b, &stop_b);
        let _ = fs::remove_dir_all(&config.scratch);
    }

    #[test]
    fn killed_worker_lease_is_reissued_to_the_survivor() {
        // Worker 0 is poisoned at startup: it drops every first connection's
        // lease mid-flight. Worker 1 is healthy; rotation retries there.
        let (addr_bad, stop_bad) = start_worker(Some(WorkerChaos {
            kind: ChaosKind::Kill,
            lease: 0,
        }));
        let (addr_good, stop_good) = start_worker(None);
        let config = quick_config("reissue");
        let remote = RemoteOptions {
            workers: vec![addr_bad.clone(), addr_good.clone()],
            ..RemoteOptions::default()
        };
        let runner = RunnerConfig::default();
        let shards = vec![shard_spec(0, 0, &["exp1", "exp2"])];
        let outcome =
            dispatch_remote(&config, &remote, &runner, shards, no_local_children).unwrap();
        assert!(!outcome.degraded());
        assert_eq!(outcome.shard_attempts, vec![2], "one remote retry");
        let reference = reference_run(&["exp1", "exp2"], &runner);
        assert_eq!(
            outcome.run.telemetry.canonical_events(),
            reference.telemetry.canonical_events()
        );
        stop_worker(&addr_bad, &stop_bad);
        stop_worker(&addr_good, &stop_good);
        let _ = fs::remove_dir_all(&config.scratch);
    }

    #[test]
    fn frame_stamped_chaos_garble_fails_the_attempt_with_a_garbled_reason() {
        let (addr, stop) = start_worker(None);
        let mut config = quick_config("garble");
        config.shard_retries = 0;
        config.allow_partial = true;
        let remote = RemoteOptions {
            workers: vec![addr.clone()],
            chaos: vec![ChaosNet::parse("garble:0").unwrap()],
            local_failover: false,
            ..RemoteOptions::default()
        };
        let outcome = dispatch_remote(
            &config,
            &remote,
            &RunnerConfig::default(),
            vec![shard_spec(0, 0, &["exp1"])],
            no_local_children,
        )
        .unwrap();
        assert!(outcome.degraded());
        assert!(
            outcome.missing[0].reason.contains("garbled frame"),
            "{}",
            outcome.missing[0].reason
        );
        stop_worker(&addr, &stop);
        let _ = fs::remove_dir_all(&config.scratch);
    }

    #[test]
    fn stalled_worker_trips_the_liveness_window() {
        let (addr, stop) = start_worker(None);
        let mut config = quick_config("stall");
        config.shard_retries = 0;
        config.allow_partial = true;
        config.liveness = Duration::from_millis(150);
        let remote = RemoteOptions {
            workers: vec![addr.clone()],
            chaos: vec![ChaosNet::parse("stall:0").unwrap()],
            local_failover: false,
            ..RemoteOptions::default()
        };
        let started = Instant::now();
        let outcome = dispatch_remote(
            &config,
            &remote,
            &RunnerConfig::default(),
            vec![shard_spec(0, 0, &["exp1"])],
            no_local_children,
        )
        .unwrap();
        assert!(started.elapsed() < Duration::from_secs(10), "liveness fired early");
        assert!(outcome.degraded());
        assert!(
            outcome.missing[0].reason.contains("no frame for"),
            "{}",
            outcome.missing[0].reason
        );
        stop_worker(&addr, &stop);
        let _ = fs::remove_dir_all(&config.scratch);
    }

    #[test]
    fn unreachable_workers_without_failover_degrade_with_connect_reason() {
        // Bind-then-drop guarantees nobody is listening on the port.
        let dead = {
            let sock = TcpListener::bind("127.0.0.1:0").unwrap();
            sock.local_addr().unwrap().to_string()
        };
        let mut config = quick_config("unreachable");
        config.shard_retries = 1;
        config.allow_partial = true;
        let remote = RemoteOptions {
            workers: vec![dead],
            connect_timeout: Duration::from_millis(500),
            local_failover: false,
            ..RemoteOptions::default()
        };
        let outcome = dispatch_remote(
            &config,
            &remote,
            &RunnerConfig::default(),
            vec![shard_spec(0, 0, &["exp1"])],
            no_local_children,
        )
        .unwrap();
        assert!(outcome.degraded());
        assert_eq!(outcome.missing[0].attempts, 2);
        assert!(
            outcome.missing[0].reason.contains("connect failed"),
            "{}",
            outcome.missing[0].reason
        );
        let _ = fs::remove_dir_all(&config.scratch);
    }

    /// A scripted fake worker that misbehaves at a chosen point in the
    /// lease lifecycle, for the kill-point property test.
    fn flaky_worker(kill_point: u8) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        if kill_point == 0 {
            // Nothing ever listens: the bound socket is dropped here.
            return addr;
        }
        thread::spawn(move || {
            let Ok((mut stream, _)) = listener.accept() else {
                return;
            };
            // Read (and discard) the lease line first so every kill point
            // is a mid-lease fault, not a refused connection.
            let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
            let mut buf = Vec::new();
            let mut chunk = [0u8; 1024];
            while take_line(&mut buf).is_none() {
                match stream.read(&mut chunk) {
                    Ok(0) => return,
                    Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    Err(_) => return,
                }
            }
            match kill_point {
                // Close before any frame.
                1 => {}
                // Corrupt frame.
                2 => {
                    let _ = stream.write_all(b"%% garbage %%\n");
                }
                // One valid heartbeat, then the wire dies.
                3 => {
                    let line = WorkerFrame::hb(0, 1).to_line().unwrap();
                    let _ = stream.write_all(format!("{line}\n").as_bytes());
                }
                // A done frame cut off mid-line (no newline ever arrives).
                _ => {
                    let line = WorkerFrame::done(0, 0, "{}".into(), "{}".into(), String::new())
                        .to_line()
                        .unwrap();
                    let _ = stream.write_all(&line.as_bytes()[..line.len() / 2]);
                    let _ = stream.flush();
                    thread::sleep(Duration::from_millis(50));
                }
            }
            let _ = stream.shutdown(std::net::Shutdown::Both);
        });
        addr
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]
        /// Satellite: wherever in the lease lifecycle the first worker
        /// dies — refused dial, pre-frame close, garble, post-heartbeat
        /// close, mid-frame cut — the lease is re-issued to the healthy
        /// worker and the merged result is intact and byte-identical.
        #[test]
        fn lease_reissue_survives_any_kill_point(kill_point in 0u8..5) {
            let flaky = flaky_worker(kill_point);
            let (good, stop_good) = start_worker(None);
            let mut config = quick_config(&format!("killpoint-{kill_point}"));
            config.liveness = Duration::from_millis(400);
            let remote = RemoteOptions {
                workers: vec![flaky, good.clone()],
                connect_timeout: Duration::from_millis(500),
                ..RemoteOptions::default()
            };
            let runner = RunnerConfig { seed: 5, ..RunnerConfig::default() };
            let shards = vec![shard_spec(0, 0, &["exp1", "exp2"])];
            let outcome =
                dispatch_remote(&config, &remote, &runner, shards, no_local_children).unwrap();
            prop_assert!(!outcome.degraded());
            prop_assert_eq!(&outcome.shard_attempts, &vec![2]);
            prop_assert_eq!(outcome.run.report.experiments.len(), 2);
            let reference = reference_run(&["exp1", "exp2"], &runner);
            prop_assert_eq!(
                outcome.run.telemetry.canonical_events(),
                reference.telemetry.canonical_events()
            );
            stop_worker(&good, &stop_good);
            let _ = fs::remove_dir_all(&config.scratch);
        }
    }

    #[test]
    fn exhausted_remote_retries_fail_over_to_a_local_child() {
        // No worker listens anywhere; the slice must fall through to the
        // local child ladder, which runs a fake `sh` child that writes
        // valid artifacts (same fixture style as dispatch.rs tests).
        let dead = {
            let sock = TcpListener::bind("127.0.0.1:0").unwrap();
            sock.local_addr().unwrap().to_string()
        };
        let mut config = quick_config("failover");
        config.shard_retries = 0;
        let remote = RemoteOptions {
            workers: vec![dead],
            connect_timeout: Duration::from_millis(300),
            ..RemoteOptions::default()
        };
        let outcome = dispatch_remote(
            &config,
            &remote,
            &RunnerConfig::default(),
            vec![shard_spec(0, 0, &["exp1"])],
            |spec, paths| {
                let tel = humnet_telemetry::Telemetry::new();
                tel.event(humnet_telemetry::Event::new("run-start", "profile=none seed=1"));
                tel.event(humnet_telemetry::Event::new("run-end", "1 experiments: 1 ok"));
                let metrics = tel.into_snapshot().to_json().unwrap();
                let artifact = RunArtifact {
                    report: crate::report::RunReport {
                        experiments: vec![crate::report::ExperimentReport {
                            code: spec.codes[0].clone(),
                            title: "t".to_owned(),
                            family: "fam".to_owned(),
                            status: crate::report::ExperimentStatus::Ok,
                            attempts: 1,
                            faults_injected: 0,
                            message: String::new(),
                            duration_ms: 0,
                        }],
                        profile: "none".to_owned(),
                        seed: 1,
                        code_rev: String::new(),
                    },
                    outputs: std::iter::once((spec.codes[0].clone(), "local output".to_owned()))
                        .collect(),
                };
                let mut cmd = Command::new("sh");
                cmd.arg("-c").arg(format!(
                    "cat > '{m}' <<'HUMNET_EOF_M'\n{metrics}\nHUMNET_EOF_M\ncat > '{r}' <<'HUMNET_EOF_R'\n{report}\nHUMNET_EOF_R\n",
                    m = paths.metrics.display(),
                    r = paths.report.display(),
                    report = artifact.to_json().unwrap(),
                ));
                cmd
            },
        )
        .unwrap();
        assert!(!outcome.degraded());
        // One failed remote attempt + one successful local child attempt.
        assert_eq!(outcome.shard_attempts, vec![2]);
        assert_eq!(outcome.run.outputs["exp1"], "local output");
        let _ = fs::remove_dir_all(&config.scratch);
    }
}
