//! Deterministic fault model.
//!
//! A [`FaultPlan`] decides, for every `(step, kind)` pair a simulator asks
//! about, whether a fault fires and how severe it is. The decision is a
//! **pure function** of `(plan seed, step, kind)` — hashed through
//! `humnet_stats::rng::SplitMix64` — so:
//!
//! * the same plan replayed over the same simulation injects the identical
//!   fault sequence (reproducible chaos runs), and
//! * asking about faults never disturbs a simulator's own RNG stream, so a
//!   run under `FaultProfile::None` is bit-identical to a run without any
//!   hook at all.

use humnet_stats::rng::SplitMix64;
use humnet_telemetry::{Event, Telemetry};

/// The kinds of mid-run failure the paper's socio-technical systems face.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A spike of volunteer maintainers leaving a community network.
    VolunteerDropout,
    /// A backhaul/mesh link going dark for a while.
    LinkOutage,
    /// An entire exchange point going offline (no multilateral peering).
    IxpOutage,
    /// A reviewer failing to show up for an assigned round.
    ReviewerNoShow,
    /// A qualitative coder leaving mid-study (skipped/degraded coding).
    CoderAttrition,
}

impl FaultKind {
    /// Every kind, for iteration in tests and reports.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::VolunteerDropout,
        FaultKind::LinkOutage,
        FaultKind::IxpOutage,
        FaultKind::ReviewerNoShow,
        FaultKind::CoderAttrition,
    ];

    /// Stable human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::VolunteerDropout => "volunteer-dropout",
            FaultKind::LinkOutage => "link-outage",
            FaultKind::IxpOutage => "ixp-outage",
            FaultKind::ReviewerNoShow => "reviewer-no-show",
            FaultKind::CoderAttrition => "coder-attrition",
        }
    }

    /// Parse a [`FaultKind::label`] spelling back into the kind — the
    /// inverse the replay engine uses to reconstruct a recorded schedule.
    pub fn parse(s: &str) -> Option<Self> {
        FaultKind::ALL.into_iter().find(|k| k.label() == s)
    }

    /// Stable index used to decorrelate the hash streams per kind.
    fn lane(self) -> u64 {
        match self {
            FaultKind::VolunteerDropout => 1,
            FaultKind::LinkOutage => 2,
            FaultKind::IxpOutage => 3,
            FaultKind::ReviewerNoShow => 4,
            FaultKind::CoderAttrition => 5,
        }
    }
}

/// Built-in fault mixes, selectable via `--fault-profile`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FaultProfile {
    /// No faults; hooks become free no-ops.
    #[default]
    None,
    /// Human churn: dropouts, no-shows, attrition; infrastructure mostly up.
    Churn,
    /// Infrastructure trouble: link and IXP outages; people mostly present.
    Outage,
    /// Everything at once, at elevated rates.
    Chaos,
}

impl FaultProfile {
    /// All profiles, for CLI help and tests.
    pub const ALL: [FaultProfile; 4] = [
        FaultProfile::None,
        FaultProfile::Churn,
        FaultProfile::Outage,
        FaultProfile::Chaos,
    ];

    /// Parse a CLI spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" => Some(FaultProfile::None),
            "churn" => Some(FaultProfile::Churn),
            "outage" => Some(FaultProfile::Outage),
            "chaos" => Some(FaultProfile::Chaos),
            _ => None,
        }
    }

    /// Canonical spelling.
    pub fn label(self) -> &'static str {
        match self {
            FaultProfile::None => "none",
            FaultProfile::Churn => "churn",
            FaultProfile::Outage => "outage",
            FaultProfile::Chaos => "chaos",
        }
    }

    /// Per-step probability that a fault of `kind` fires under this profile.
    pub fn rate(self, kind: FaultKind) -> f64 {
        use FaultKind::*;
        match self {
            FaultProfile::None => 0.0,
            FaultProfile::Churn => match kind {
                VolunteerDropout => 0.15,
                ReviewerNoShow => 0.15,
                CoderAttrition => 0.10,
                LinkOutage => 0.02,
                IxpOutage => 0.0,
            },
            FaultProfile::Outage => match kind {
                LinkOutage => 0.12,
                IxpOutage => 0.25,
                VolunteerDropout => 0.02,
                ReviewerNoShow => 0.0,
                CoderAttrition => 0.0,
            },
            FaultProfile::Chaos => match kind {
                VolunteerDropout => 0.20,
                LinkOutage => 0.15,
                IxpOutage => 0.35,
                ReviewerNoShow => 0.20,
                CoderAttrition => 0.15,
            },
        }
    }
}

/// A reproducible schedule of faults: profile rates + seed + intensity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Which fault mix to draw from.
    pub profile: FaultProfile,
    /// Seed decorrelating this plan from the simulators' own RNG streams.
    pub seed: u64,
    /// Multiplier on every profile rate (clamped to probability range).
    pub intensity: f64,
}

impl FaultPlan {
    /// Plan with intensity 1.0.
    pub fn new(profile: FaultProfile, seed: u64) -> Self {
        FaultPlan {
            profile,
            seed,
            intensity: 1.0,
        }
    }

    /// The no-op plan.
    pub fn none() -> Self {
        FaultPlan::new(FaultProfile::None, 0)
    }

    /// Scale all rates by `intensity` (values > 1 make faults more likely).
    pub fn with_intensity(mut self, intensity: f64) -> Self {
        self.intensity = intensity.max(0.0);
        self
    }

    /// Whether this plan can ever fire.
    pub fn is_active(&self) -> bool {
        self.profile != FaultProfile::None && self.intensity > 0.0
    }

    /// Effective probability for `kind`, in `[0, 1]`.
    pub fn rate(&self, kind: FaultKind) -> f64 {
        (self.profile.rate(kind) * self.intensity).clamp(0.0, 1.0)
    }

    /// Pure fault decision for `(step, kind)`: `Some(severity)` in
    /// `(0, 1]` when the fault fires, `None` otherwise. Calling this in any
    /// order, any number of times, yields the same answers.
    pub fn draw(&self, step: u64, kind: FaultKind) -> Option<f64> {
        let rate = self.rate(kind);
        if rate <= 0.0 {
            return None;
        }
        let mut h = SplitMix64::new(
            self.seed
                ^ step.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ kind.lane().wrapping_mul(0xD1B5_4A32_D192_ED03),
        );
        let fires = unit(h.next_u64()) < rate;
        if !fires {
            return None;
        }
        // Severity in (0, 1]: at least a quarter-strength fault so hooks
        // always see a meaningful perturbation.
        Some(0.25 + 0.75 * unit(h.next_u64()))
    }
}

/// Map a raw draw onto `[0, 1)` with 53 bits of precision.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Injection point implemented by long-running simulators. At each step a
/// simulator asks the hook once per fault kind it knows how to express;
/// `Some(severity)` means "this fault is active now, at this strength".
pub trait FaultHook {
    /// Decide whether `kind` fires at `step`; records the injection.
    fn inject(&mut self, step: u64, kind: FaultKind) -> Option<f64>;

    /// Number of faults this hook has injected so far.
    fn faults_injected(&self) -> u64 {
        0
    }
}

/// A mutable reference forwards to the hook it points at, so adapters like
/// [`InstrumentedHook`] can wrap `&mut dyn FaultHook` without taking
/// ownership (the replay engine relies on this to instrument a caller's
/// recorded-schedule hook).
impl<H: FaultHook + ?Sized> FaultHook for &mut H {
    fn inject(&mut self, step: u64, kind: FaultKind) -> Option<f64> {
        (**self).inject(step, kind)
    }

    fn faults_injected(&self) -> u64 {
        (**self).faults_injected()
    }
}

/// The do-nothing hook: plain `run()` paths use this, making the fault
/// machinery free when unused.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultHook for NoFaults {
    fn inject(&mut self, _step: u64, _kind: FaultKind) -> Option<f64> {
        None
    }
}

/// Hook driven by a [`FaultPlan`], counting injections for the run report.
#[derive(Debug, Clone)]
pub struct PlanHook {
    plan: FaultPlan,
    injected: u64,
}

impl PlanHook {
    /// Hook drawing from `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        PlanHook { plan, injected: 0 }
    }

    /// The plan this hook draws from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl FaultHook for PlanHook {
    fn inject(&mut self, step: u64, kind: FaultKind) -> Option<f64> {
        let hit = self.plan.draw(step, kind);
        if hit.is_some() {
            self.injected += 1;
        }
        hit
    }

    fn faults_injected(&self) -> u64 {
        self.injected
    }
}

/// Hook adapter that journals every injection through a [`Telemetry`]
/// instance: bumps `faults.injected` plus a per-kind counter and appends a
/// `fault` event with step and severity. Wraps any inner hook, so the
/// supervised runner can instrument a [`PlanHook`] without changing the
/// simulators' fault semantics — telemetry observes, it never draws.
#[derive(Debug)]
pub struct InstrumentedHook<'a, H: FaultHook> {
    inner: H,
    tel: &'a Telemetry,
}

impl<'a, H: FaultHook> InstrumentedHook<'a, H> {
    /// Wrap `inner`, recording injections into `tel`.
    pub fn new(inner: H, tel: &'a Telemetry) -> Self {
        InstrumentedHook { inner, tel }
    }

    /// The wrapped hook.
    pub fn inner(&self) -> &H {
        &self.inner
    }
}

impl<H: FaultHook> FaultHook for InstrumentedHook<'_, H> {
    fn inject(&mut self, step: u64, kind: FaultKind) -> Option<f64> {
        let hit = self.inner.inject(step, kind);
        if let Some(severity) = hit {
            self.tel.counter("faults.injected", 1);
            self.tel.counter(&format!("faults.{}", kind.label()), 1);
            self.tel.event(
                Event::new("fault", kind.label())
                    .with_step(step)
                    .with_severity(severity),
            );
        }
        hit
    }

    fn faults_injected(&self) -> u64 {
        self.inner.faults_injected()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draw_is_pure_and_order_independent() {
        let plan = FaultPlan::new(FaultProfile::Chaos, 7);
        let forward: Vec<_> = (0..200)
            .flat_map(|s| FaultKind::ALL.map(|k| plan.draw(s, k)))
            .collect();
        let backward: Vec<_> = (0..200)
            .rev()
            .flat_map(|s| FaultKind::ALL.map(|k| plan.draw(s, k)))
            .collect();
        let backward_reversed: Vec<_> = {
            let mut chunks: Vec<Vec<_>> = backward.chunks(5).map(|c| c.to_vec()).collect();
            chunks.reverse();
            chunks.into_iter().flatten().collect()
        };
        assert_eq!(forward, backward_reversed);
    }

    #[test]
    fn none_profile_never_fires() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        for step in 0..500 {
            for kind in FaultKind::ALL {
                assert_eq!(plan.draw(step, kind), None);
            }
        }
    }

    #[test]
    fn chaos_fires_near_nominal_rate() {
        let plan = FaultPlan::new(FaultProfile::Chaos, 99);
        let hits = (0..10_000)
            .filter(|&s| plan.draw(s, FaultKind::VolunteerDropout).is_some())
            .count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.20).abs() < 0.02, "observed rate {rate}");
    }

    #[test]
    fn severity_is_bounded_and_nonzero() {
        let plan = FaultPlan::new(FaultProfile::Chaos, 3).with_intensity(5.0);
        for step in 0..1000 {
            if let Some(sev) = plan.draw(step, FaultKind::LinkOutage) {
                assert!(sev > 0.0 && sev <= 1.0, "severity {sev}");
            }
        }
    }

    #[test]
    fn seeds_decorrelate_plans() {
        let a = FaultPlan::new(FaultProfile::Chaos, 1);
        let b = FaultPlan::new(FaultProfile::Chaos, 2);
        let pattern = |p: &FaultPlan| {
            (0..500)
                .map(|s| p.draw(s, FaultKind::IxpOutage).is_some())
                .collect::<Vec<_>>()
        };
        assert_ne!(pattern(&a), pattern(&b));
    }

    #[test]
    fn plan_hook_counts_injections() {
        let mut hook = PlanHook::new(FaultPlan::new(FaultProfile::Chaos, 11));
        let mut expected = 0;
        for step in 0..300 {
            for kind in FaultKind::ALL {
                if hook.inject(step, kind).is_some() {
                    expected += 1;
                }
            }
        }
        assert!(expected > 0);
        assert_eq!(hook.faults_injected(), expected);
    }

    #[test]
    fn instrumented_hook_journals_without_changing_decisions() {
        let plan = FaultPlan::new(FaultProfile::Chaos, 11);
        let tel = Telemetry::new();
        let mut plain = PlanHook::new(plan);
        let mut wrapped = InstrumentedHook::new(PlanHook::new(plan), &tel);
        for step in 0..100 {
            for kind in FaultKind::ALL {
                assert_eq!(plain.inject(step, kind), wrapped.inject(step, kind));
            }
        }
        assert_eq!(plain.faults_injected(), wrapped.faults_injected());
        let snap = tel.snapshot();
        assert_eq!(
            snap.metrics.counters["faults.injected"],
            plain.faults_injected()
        );
        assert_eq!(
            snap.events.iter().filter(|e| e.kind == "fault").count() as u64,
            plain.faults_injected()
        );
        let first = snap.events.iter().find(|e| e.kind == "fault").unwrap();
        assert!(first.step.is_some() && first.severity.is_some());
    }

    #[test]
    fn profile_parse_round_trips() {
        for p in FaultProfile::ALL {
            assert_eq!(FaultProfile::parse(p.label()), Some(p));
        }
        assert_eq!(FaultProfile::parse("bogus"), None);
    }

    #[test]
    fn kind_parse_round_trips() {
        for k in FaultKind::ALL {
            assert_eq!(FaultKind::parse(k.label()), Some(k));
        }
        assert_eq!(FaultKind::parse("meteor-strike"), None);
    }
}
