//! Supervised experiment runner.
//!
//! Experiments execute on *pooled* worker threads: a process-wide cache of
//! recycled threads ([`pool_execute`]) that the supervisor leases an
//! [`AttemptExecutor`] session from, so a K-shard run spawns at most K
//! workers once and reuses them for every later attempt and run (the seed
//! spawned one thread per attempt, which dominated supervisor cost — see
//! `BENCH_shard.json`). Deadlines are enforced by the single process-wide
//! watchdog timer thread in [`crate::schedule`]: the supervisor arms a
//! deadline, blocks on the attempt's reply channel, and whichever message
//! arrives first — the worker's result or the watchdog's timeout verdict —
//! settles the attempt. A timed-out session is abandoned (Rust offers no
//! safe thread kill); its thread finishes the overrunning job eventually,
//! finds its session channel closed, and re-enlists in the pool. Panics
//! are contained with [`std::panic::catch_unwind`] and turned into
//! `Failed` rows instead of aborting the run. Failures are retried with
//! exponential backoff and deterministic jitter, and a per-family circuit
//! breaker short-circuits experiments whose subsystem keeps failing.

use crate::backoff::Backoff;
use crate::breaker::CircuitBreaker;
use crate::fault::{FaultPlan, FaultProfile};
use crate::report::{ExperimentReport, ExperimentStatus, RunReport};
use crate::schedule::{arm_deadline, run_stealing, Schedule};
use crate::shard::run_sharded;
use humnet_telemetry::{Event, Telemetry, TelemetrySnapshot};
use std::collections::BTreeMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// What a supervised job hands back on success.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOutput {
    /// Rendered experiment output (tables, figures-as-text).
    pub rendered: String,
    /// Faults the plan injected while this attempt ran.
    pub faults_injected: u64,
}

/// Errors cross the thread boundary as boxed chains so the report can show
/// the full `source()` walk, not just the outermost message.
pub type JobError = Box<dyn std::error::Error + Send + Sync + 'static>;

/// A supervised unit of work. Receives the fault plan for its attempt and
/// a per-attempt [`Telemetry`] instance whose snapshot the supervisor
/// merges into the run-level telemetry when the attempt reports back.
pub type Job =
    Arc<dyn Fn(&FaultPlan, &Telemetry) -> Result<JobOutput, JobError> + Send + Sync + 'static>;

/// One experiment the supervisor knows how to run.
#[derive(Clone)]
pub struct ExperimentSpec {
    /// Short stable code (e.g. `fig1`, `tab3`).
    pub code: String,
    /// Human-readable title.
    pub title: String,
    /// Family / subsystem, the circuit-breaker granularity.
    pub family: String,
    /// The work itself.
    pub job: Job,
}

impl ExperimentSpec {
    /// Convenience constructor.
    pub fn new(
        code: impl Into<String>,
        title: impl Into<String>,
        family: impl Into<String>,
        job: impl Fn(&FaultPlan, &Telemetry) -> Result<JobOutput, JobError> + Send + Sync + 'static,
    ) -> Self {
        ExperimentSpec {
            code: code.into(),
            title: title.into(),
            family: family.into(),
            job: Arc::new(job),
        }
    }
}

/// Knobs for the supervised run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunnerConfig {
    /// Extra attempts after the first (0 = no retries).
    pub retries: u32,
    /// Per-attempt wall-clock deadline.
    pub deadline: Duration,
    /// Base delay for the retry backoff schedule.
    pub backoff_base: Duration,
    /// Consecutive family failures before the breaker opens (0 = disabled).
    pub breaker_threshold: u32,
    /// Recorded outcomes an open breaker sits out before admitting one
    /// half-open probe attempt (0 = latch open for the whole run).
    pub breaker_cooldown: u32,
    /// Seed for the fault plans and the jitter stream.
    pub seed: u64,
    /// Fault mix injected into every experiment.
    pub profile: FaultProfile,
    /// Multiplier on the profile's fault rates.
    pub intensity: f64,
    /// Suppress the default panic-hook backtrace for supervised workers
    /// (their panics are captured and reported as `Failed` rows anyway).
    pub quiet_panics: bool,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            retries: 1,
            deadline: Duration::from_secs(30),
            backoff_base: Duration::from_millis(25),
            breaker_threshold: 2,
            breaker_cooldown: 0,
            seed: 42,
            profile: FaultProfile::None,
            intensity: 1.0,
            quiet_panics: true,
        }
    }
}

/// Result of a supervised run: the report plus each completed experiment's
/// rendered output, keyed by experiment code.
#[derive(Debug, Clone, Default)]
pub struct SupervisedRun {
    /// Per-experiment statuses and the aggregate verdict.
    pub report: RunReport,
    /// Rendered output of every experiment that completed.
    pub outputs: BTreeMap<String, String>,
    /// Merged telemetry across the run: runner-level metrics/events plus
    /// every completed attempt's metrics, spans, and journal (a timed-out
    /// worker's telemetry is abandoned with the worker).
    pub telemetry: TelemetrySnapshot,
}

/// Executes [`ExperimentSpec`]s under panic isolation, deadlines, retries
/// and a circuit breaker, producing a [`SupervisedRun`]. With
/// [`SupervisorBuilder::shards`] above 1, [`Supervisor::run`] fans the
/// specs out across shard threads and folds the per-shard results back
/// into one run-level view (see [`crate::shard`]).
pub struct Supervisor {
    config: RunnerConfig,
    breaker: CircuitBreaker,
    shards: u32,
    schedule: Schedule,
    executor: ExecutorSlot,
    /// Global spec index of this supervisor's first spec — 0 for whole
    /// runs, the shard's range start when running one shard's slice.
    spec_base: usize,
}

/// Fluent construction for [`Supervisor`] — the preferred alternative to
/// filling a [`RunnerConfig`] field by field:
///
/// ```
/// # use humnet_resilience::{FaultProfile, Supervisor};
/// # use std::time::Duration;
/// let mut sup = Supervisor::builder()
///     .retries(2)
///     .deadline(Duration::from_secs(30))
///     .fault_profile(FaultProfile::Chaos)
///     .shards(4)
///     .build();
/// ```
#[derive(Debug, Clone)]
pub struct SupervisorBuilder {
    config: RunnerConfig,
    shards: u32,
    schedule: Schedule,
}

impl Default for SupervisorBuilder {
    fn default() -> Self {
        SupervisorBuilder {
            config: RunnerConfig::default(),
            shards: 1,
            schedule: Schedule::Static,
        }
    }
}

impl SupervisorBuilder {
    /// Extra attempts after the first (0 = no retries).
    #[must_use]
    pub fn retries(mut self, retries: u32) -> Self {
        self.config.retries = retries;
        self
    }

    /// Per-attempt wall-clock deadline.
    #[must_use]
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.config.deadline = deadline;
        self
    }

    /// Base delay for the retry backoff schedule.
    #[must_use]
    pub fn backoff_base(mut self, base: Duration) -> Self {
        self.config.backoff_base = base;
        self
    }

    /// Consecutive family failures before the breaker opens (0 = disabled).
    #[must_use]
    pub fn breaker_threshold(mut self, threshold: u32) -> Self {
        self.config.breaker_threshold = threshold;
        self
    }

    /// Recorded outcomes an open breaker waits before a half-open probe
    /// (0 = latch open, the default).
    #[must_use]
    pub fn breaker_cooldown(mut self, cooldown: u32) -> Self {
        self.config.breaker_cooldown = cooldown;
        self
    }

    /// Seed for the fault plans and the jitter stream.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Fault mix injected into every experiment.
    #[must_use]
    pub fn fault_profile(mut self, profile: FaultProfile) -> Self {
        self.config.profile = profile;
        self
    }

    /// Multiplier on the profile's fault rates.
    #[must_use]
    pub fn intensity(mut self, intensity: f64) -> Self {
        self.config.intensity = intensity;
        self
    }

    /// Suppress the default panic-hook backtrace for supervised workers.
    #[must_use]
    pub fn quiet_panics(mut self, quiet: bool) -> Self {
        self.config.quiet_panics = quiet;
        self
    }

    /// Worker shards the run fans out across (clamped to at least 1).
    /// Per-experiment outcomes and the canonical journal are
    /// shard-invariant; see `crate::shard` for what is not.
    #[must_use]
    pub fn shards(mut self, shards: u32) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// How jobs map onto shard workers: [`Schedule::Static`] (contiguous
    /// slices, the default) or [`Schedule::Steal`] (work-stealing — better
    /// wall-clock under skewed job costs, same canonical output).
    #[must_use]
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Replace the whole configuration at once (escape hatch for callers
    /// that already hold a [`RunnerConfig`]).
    #[must_use]
    pub fn config(mut self, config: RunnerConfig) -> Self {
        self.config = config;
        self
    }

    /// Finish: a [`Supervisor`] with a fresh (closed) breaker per shard.
    pub fn build(self) -> Supervisor {
        Supervisor {
            breaker: CircuitBreaker::new(self.config.breaker_threshold)
                .with_cooldown(self.config.breaker_cooldown),
            config: self.config,
            shards: self.shards,
            schedule: self.schedule,
            executor: ExecutorSlot::default(),
            spec_base: 0,
        }
    }
}

/// Outcome of a single attempt, before retry/status mapping.
enum Attempt {
    Success(JobOutput),
    Error(String),
    Panic(String),
    Timeout,
}

// ---------------------------------------------------------------------------
// Pooled worker threads
// ---------------------------------------------------------------------------

/// A closure executed on a pooled worker thread.
type PoolJob = Box<dyn FnOnce() + Send + 'static>;

/// Idle pooled workers, each addressed by the sender of its private job
/// channel. A worker runs one job, re-enlists here, and blocks for the
/// next — so in steady state leasing a worker is a channel round-trip
/// (~4 µs) instead of a thread spawn (~30 µs), and a K-shard run costs K
/// spawns *once* per process instead of one per attempt.
static POOL_IDLE: Mutex<Vec<mpsc::Sender<PoolJob>>> = Mutex::new(Vec::new());

/// Monotonic id for pooled-thread names (`humnet-exp-pool-<id>`).
static POOL_SPAWNED: AtomicU64 = AtomicU64::new(0);

/// Idle workers kept around; a worker finishing beyond this cap exits
/// instead of re-enlisting, bounding resident threads after a burst.
const POOL_MAX_IDLE: usize = 32;

/// Run `job` on a pooled worker thread, reusing an idle one when
/// available. `Err` hands the job back when no idle worker existed and
/// spawning a fresh one failed.
fn pool_run(job: PoolJob) -> Result<(), PoolJob> {
    let mut job = job;
    loop {
        let idle = POOL_IDLE.lock().unwrap_or_else(|e| e.into_inner()).pop();
        match idle {
            Some(worker) => match worker.send(job) {
                Ok(()) => return Ok(()),
                // The worker died (cap exit raced); try the next one.
                Err(mpsc::SendError(returned)) => job = returned,
            },
            None => break,
        }
    }
    let id = POOL_SPAWNED.fetch_add(1, Ordering::Relaxed);
    let (tx, rx) = mpsc::channel::<PoolJob>();
    let spawned = thread::Builder::new()
        // The `humnet-exp-` prefix keeps pooled threads under the quiet
        // panic hook's filter, like the per-attempt workers they replace.
        .name(format!("{WORKER_PREFIX}pool-{id}"))
        .spawn(move || {
            let mut job = job;
            loop {
                // Contain panics so a panicking job cannot take the pooled
                // thread down with it (callers see the failure through
                // their own reply channels).
                let _ = panic::catch_unwind(AssertUnwindSafe(job));
                {
                    let mut idle = POOL_IDLE.lock().unwrap_or_else(|e| e.into_inner());
                    if idle.len() >= POOL_MAX_IDLE {
                        return;
                    }
                    idle.push(tx.clone());
                }
                match rx.recv() {
                    Ok(next) => job = next,
                    Err(_) => return, // pool entry dropped without a send
                }
            }
        });
    match spawned {
        Ok(_) => Ok(()),
        // `job` was moved into the failed builder closure only on success;
        // on failure we cannot recover it from `thread::Builder`, so this
        // arm is unreachable in practice — but keep the signature honest.
        Err(_) => Err(Box::new(|| {})),
    }
}

/// Handle to a job running on a pooled worker; [`PoolHandle::join`] blocks
/// for its result like [`std::thread::JoinHandle::join`].
pub struct PoolHandle<T> {
    rx: mpsc::Receiver<thread::Result<T>>,
}

impl<T> PoolHandle<T> {
    /// Wait for the job's result; `Err` carries the panic payload.
    pub fn join(self) -> thread::Result<T> {
        match self.rx.recv() {
            Ok(result) => result,
            Err(_) => Err(Box::new("pooled worker vanished without a result".to_owned())),
        }
    }
}

/// Run `f` on a pooled worker thread and return a joinable handle. Falls
/// back to running `f` inline if no thread could be obtained at all, so
/// the handle always resolves. Public so other crates (e.g. the parallel
/// routing engine in `humnet-ixp`) can fan work across the same warm
/// pool instead of growing one of their own.
pub fn pool_execute<T, F>(f: F) -> PoolHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (tx, rx) = mpsc::channel();
    let task: PoolJob = Box::new(move || {
        let _ = tx.send(panic::catch_unwind(AssertUnwindSafe(f)));
    });
    if let Err(task) = pool_run(task) {
        task();
    }
    PoolHandle { rx }
}

// ---------------------------------------------------------------------------
// Attempt execution on a leased worker session
// ---------------------------------------------------------------------------

/// One attempt shipped to an executor session.
struct ExecTask {
    job: Job,
    plan: FaultPlan,
    reply: mpsc::Sender<AttemptReply>,
}

/// What settles an attempt: the worker's result or the watchdog's verdict,
/// whichever reaches the supervisor's reply channel first.
enum AttemptReply {
    Done {
        result: thread::Result<Result<JobOutput, JobError>>,
        telemetry: TelemetrySnapshot,
    },
    DeadlineExceeded,
}

/// A live executor session: a pooled worker looping over [`ExecTask`]s.
/// Dropping the session closes its task channel; the worker finishes its
/// current job (if any) and re-enlists in the pool — which is exactly how
/// a timed-out session is abandoned without killing the thread.
struct AttemptExecutor {
    tx: mpsc::Sender<ExecTask>,
}

/// Idle executor sessions kept warm across runs. Unlike [`POOL_IDLE`]
/// workers, a cached session's thread stays parked inside its session
/// loop, so re-leasing costs a mutex pop with no thread handoff: the
/// first attempt of a new supervisor reuses the previous run's session
/// without waking anyone.
static EXEC_IDLE: Mutex<Vec<mpsc::Sender<ExecTask>>> = Mutex::new(Vec::new());

/// Warm sessions kept; a release beyond this cap drops the task channel
/// instead, sending the session thread back through the general pool.
const EXEC_MAX_IDLE: usize = 16;

impl AttemptExecutor {
    /// Lease a session: a warm cached one when available, otherwise a
    /// pooled worker started on a fresh session loop.
    fn lease() -> Result<AttemptExecutor, String> {
        let cached = EXEC_IDLE.lock().unwrap_or_else(|e| e.into_inner()).pop();
        if let Some(tx) = cached {
            // A cached sender's session thread is parked on its recv and
            // cannot exit while the sender is alive, so this is never stale.
            return Ok(AttemptExecutor { tx });
        }
        let (tx, rx) = mpsc::channel::<ExecTask>();
        let session: PoolJob = Box::new(move || {
            while let Ok(task) = rx.recv() {
                // `Telemetry` is `Send` but not `Sync`: one instance lives
                // entirely inside this session, and only the plain-data
                // snapshot crosses back over the channel — so a panicking
                // or failing job still ships the telemetry it gathered.
                let tel = Telemetry::new();
                let result = panic::catch_unwind(AssertUnwindSafe(|| {
                    let _span = tel.span("runner.attempt");
                    (task.job)(&task.plan, &tel)
                }));
                let _ = task.reply.send(AttemptReply::Done {
                    result,
                    telemetry: tel.into_snapshot(),
                });
            }
        });
        pool_run(session)
            .map(|()| AttemptExecutor { tx })
            .map_err(|_| "failed to lease a pooled worker".to_owned())
    }
}

/// Lazily-leased executor session, abandoned and re-leased on timeout.
/// Each static supervisor and each steal-mode worker owns one, so attempt
/// execution costs a channel round-trip, not a thread spawn.
#[derive(Default)]
pub(crate) struct ExecutorSlot {
    session: Option<AttemptExecutor>,
}

impl Drop for ExecutorSlot {
    /// Return a healthy session to the warm cache when the supervisor
    /// finishes. Timed-out and disconnected sessions never get here:
    /// `attempt` drops them directly, closing the channel so the (possibly
    /// still busy) worker re-enlists in the pool on its own time.
    fn drop(&mut self) {
        if let Some(session) = self.session.take() {
            let mut idle = EXEC_IDLE.lock().unwrap_or_else(|e| e.into_inner());
            if idle.len() < EXEC_MAX_IDLE {
                idle.push(session.tx);
            }
        }
    }
}

impl ExecutorSlot {
    /// One attempt on the leased session, under the process watchdog's
    /// per-attempt deadline. Returns the outcome and, when the worker
    /// reported back in time, its telemetry snapshot (a timed-out
    /// session keeps its telemetry; it is abandoned with it).
    fn attempt(
        &mut self,
        config: &RunnerConfig,
        spec: &ExperimentSpec,
        attempt: u32,
    ) -> (Attempt, Option<TelemetrySnapshot>) {
        // Each attempt gets its own deterministic plan seed: retries see a
        // fresh fault draw (a transient fault may clear), while the whole
        // run — including every retry — replays identically from the same
        // supervisor seed.
        let plan = FaultPlan::new(
            config.profile,
            config.seed
                ^ fnv1a(spec.code.as_bytes())
                ^ u64::from(attempt).wrapping_mul(0x2545_F491_4F6C_DD1D),
        )
        .with_intensity(config.intensity);

        let (reply_tx, reply_rx) = mpsc::channel();
        let mut sent = false;
        // One retry: a cached session may have exited at the pool's idle
        // cap between runs; re-lease once before giving up.
        for _ in 0..2 {
            let session = match &self.session {
                Some(session) => session,
                None => match AttemptExecutor::lease() {
                    Ok(session) => self.session.insert(session),
                    Err(message) => return (Attempt::Error(message), None),
                },
            };
            let task = ExecTask {
                job: Arc::clone(&spec.job),
                plan,
                reply: reply_tx.clone(),
            };
            if session.tx.send(task).is_ok() {
                sent = true;
                break;
            }
            self.session = None;
        }
        if !sent {
            return (
                Attempt::Error("failed to dispatch attempt to a pooled worker".to_owned()),
                None,
            );
        }

        let verdict_tx = reply_tx.clone();
        let _deadline = arm_deadline(
            config.deadline,
            Box::new(move || {
                let _ = verdict_tx.send(AttemptReply::DeadlineExceeded);
            }),
        );
        drop(reply_tx);
        match reply_rx.recv() {
            Ok(AttemptReply::Done { result, telemetry }) => match result {
                Ok(Ok(output)) => (Attempt::Success(output), Some(telemetry)),
                Ok(Err(err)) => (Attempt::Error(render_chain(err.as_ref())), Some(telemetry)),
                Err(payload) => (
                    Attempt::Panic(panic_message(payload.as_ref())),
                    Some(telemetry),
                ),
            },
            Ok(AttemptReply::DeadlineExceeded) => {
                // Abandon the session: the worker finishes the overrunning
                // job on its own time, finds the channel closed, and
                // re-enlists in the pool.
                self.session = None;
                (Attempt::Timeout, None)
            }
            Err(_) => {
                self.session = None;
                (
                    Attempt::Error("worker disconnected without a result".to_owned()),
                    None,
                )
            }
        }
    }
}

/// Circuit-breaker access for [`run_spec`]: a static supervisor owns its
/// breaker exclusively; steal-mode workers share one behind a mutex.
pub(crate) enum BreakerRef<'a> {
    /// Exclusive access (single-shard and static shard supervisors).
    Own(&'a mut CircuitBreaker),
    /// Shared across work-stealing workers.
    Shared(&'a Mutex<CircuitBreaker>),
}

impl BreakerRef<'_> {
    fn admit(&mut self, family: &str) -> crate::breaker::Admission {
        match self {
            BreakerRef::Own(breaker) => breaker.admit(family),
            BreakerRef::Shared(breaker) => breaker
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .admit(family),
        }
    }

    fn record_success(&mut self, family: &str) {
        match self {
            BreakerRef::Own(breaker) => breaker.record_success(family),
            BreakerRef::Shared(breaker) => breaker
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .record_success(family),
        }
    }

    fn record_failure(&mut self, family: &str) -> bool {
        match self {
            BreakerRef::Own(breaker) => breaker.record_failure(family),
            BreakerRef::Shared(breaker) => breaker
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .record_failure(family),
        }
    }
}

/// Run one spec end to end — breaker gate, attempts with retry/backoff,
/// status mapping, and every journal event — recording into `tel` and
/// returning the report row plus the rendered output on success. This is
/// the *one* per-spec execution path: the static supervisor and the
/// work-stealing workers both call it, which is what makes their event
/// streams identical line for line.
pub(crate) fn run_spec(
    config: &RunnerConfig,
    breaker: &mut BreakerRef<'_>,
    executor: &mut ExecutorSlot,
    spec: &ExperimentSpec,
    tel: &Telemetry,
) -> (ExperimentReport, Option<String>) {
    let started = Instant::now();
    match breaker.admit(&spec.family) {
        crate::breaker::Admission::Closed => {}
        crate::breaker::Admission::Probe => {
            // Cooldown elapsed: this experiment runs as the half-open
            // probe. Success below closes the family; failure re-opens it
            // for another full cooldown.
            tel.counter("runner.breaker_probes", 1);
            tel.event(
                Event::new("breaker-probe", format!("family '{}'", spec.family))
                    .in_experiment(&spec.code),
            );
        }
        crate::breaker::Admission::Open => {
            let message = format!("circuit breaker open for family '{}'", spec.family);
            tel.counter("runner.breaker_skips", 1);
            tel.event(Event::new("breaker-skip", message.clone()).in_experiment(&spec.code));
            return (
                ExperimentReport {
                    code: spec.code.clone(),
                    title: spec.title.clone(),
                    family: spec.family.clone(),
                    status: ExperimentStatus::Failed,
                    attempts: 0,
                    faults_injected: 0,
                    message,
                    duration_ms: 0,
                },
                None,
            );
        }
    }

    tel.event(Event::new("experiment-start", spec.title.clone()).in_experiment(&spec.code));
    let backoff = Backoff::new(config.backoff_base, config.seed ^ fnv1a(spec.code.as_bytes()));
    let mut last_message = String::new();
    let mut last_timed_out = false;
    let mut attempts = 0;

    for attempt in 0..=config.retries {
        if attempt > 0 {
            tel.counter("runner.retries", 1);
            tel.event(
                Event::new("retry", format!("after: {last_message}"))
                    .with_attempt(attempt)
                    .in_experiment(&spec.code),
            );
            thread::sleep(backoff.delay(attempt - 1));
        }
        attempts += 1;
        let (outcome, snapshot) = executor.attempt(config, spec, attempt);
        // Merge the worker's telemetry in execution order, scoped to
        // this experiment, before recording the outcome event.
        if let Some(snapshot) = snapshot {
            tel.absorb(snapshot, &spec.code);
        }
        match outcome {
            Attempt::Success(output) => {
                breaker.record_success(&spec.family);
                let status = if attempt > 0 {
                    ExperimentStatus::Retried
                } else if output.faults_injected > 0 {
                    ExperimentStatus::Degraded
                } else {
                    ExperimentStatus::Ok
                };
                tel.observe("runner.attempt_ms", started.elapsed().as_millis() as u64);
                tel.event(
                    Event::new(
                        "experiment-end",
                        format!("{} faults={}", status.label(), output.faults_injected),
                    )
                    .with_attempt(attempt)
                    .in_experiment(&spec.code),
                );
                return (
                    ExperimentReport {
                        code: spec.code.clone(),
                        title: spec.title.clone(),
                        family: spec.family.clone(),
                        status,
                        attempts,
                        faults_injected: output.faults_injected,
                        message: String::new(),
                        duration_ms: started.elapsed().as_millis() as u64,
                    },
                    Some(output.rendered),
                );
            }
            Attempt::Error(msg) => {
                last_message = msg;
                last_timed_out = false;
                tel.event(
                    Event::new("attempt-error", last_message.clone())
                        .with_attempt(attempt)
                        .in_experiment(&spec.code),
                );
            }
            Attempt::Panic(msg) => {
                last_message = format!("panic: {msg}");
                last_timed_out = false;
                tel.event(
                    Event::new("panic", msg)
                        .with_attempt(attempt)
                        .in_experiment(&spec.code),
                );
            }
            Attempt::Timeout => {
                last_message = format!("deadline exceeded ({}ms)", config.deadline.as_millis());
                last_timed_out = true;
                tel.event(
                    Event::new("timeout", last_message.clone())
                        .with_attempt(attempt)
                        .in_experiment(&spec.code),
                );
            }
        }
    }

    if breaker.record_failure(&spec.family) {
        tel.counter("runner.breaker_trips", 1);
        tel.event(
            Event::new("breaker-open", format!("family '{}'", spec.family))
                .in_experiment(&spec.code),
        );
    }
    let status = if last_timed_out {
        ExperimentStatus::TimedOut
    } else {
        ExperimentStatus::Failed
    };
    tel.event(
        Event::new(
            "experiment-end",
            format!("{} after {attempts} attempts", status.label()),
        )
        .in_experiment(&spec.code),
    );
    (
        ExperimentReport {
            code: spec.code.clone(),
            title: spec.title.clone(),
            family: spec.family.clone(),
            status,
            attempts,
            faults_injected: 0,
            message: last_message,
            duration_ms: started.elapsed().as_millis() as u64,
        },
        None,
    )
}

impl Supervisor {
    /// Supervisor with a fresh (closed) breaker. Thin shim over
    /// [`Supervisor::builder`] kept for callers that already hold a
    /// [`RunnerConfig`]; new code should prefer the builder.
    pub fn new(config: RunnerConfig) -> Self {
        Supervisor::builder().config(config).build()
    }

    /// Start building a supervisor fluently.
    pub fn builder() -> SupervisorBuilder {
        SupervisorBuilder::default()
    }

    /// The configuration this supervisor runs with.
    pub fn config(&self) -> &RunnerConfig {
        &self.config
    }

    /// How many shards [`Supervisor::run`] fans out across.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// How jobs map onto shard workers.
    pub fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// Run every spec, never panicking, and aggregate a report. With more
    /// than one shard configured, specs are fanned out across shard
    /// workers — contiguous slices under [`Schedule::Static`], a shared
    /// work-stealing queue under [`Schedule::Steal`] — and the per-worker
    /// results are merged back into a single run-level view whose
    /// canonical journal, report, and outputs match the 1-shard run.
    pub fn run(&mut self, specs: &[ExperimentSpec]) -> SupervisedRun {
        if self.schedule == Schedule::Steal {
            return run_stealing(self.config, self.shards, specs);
        }
        if self.shards > 1 {
            return run_sharded(self.config, self.shards, self.schedule, specs);
        }
        let _quiet = self.config.quiet_panics.then(QuietPanics::install);
        let tel = Telemetry::new();
        tel.event(Event::new(
            "run-start",
            run_start_detail(&self.config, specs.len()),
        ));
        let mut run = self.run_specs(specs, &tel);
        run.report.record_metrics(&tel);
        tel.event(Event::new("run-end", run.report.summary_line()));
        run.telemetry = tel.into_snapshot();
        run
    }

    /// Run one shard's slice of a larger run: no `run-start`/`run-end`
    /// boundary events, no run-level report metrics (the merge records
    /// those once over the merged report), and every journal event stamped
    /// with `shard` plus its global spec index (`spec_base` is the slice's
    /// offset into the full spec list). The caller is responsible for
    /// installing the quiet panic hook once around all shards.
    pub fn run_shard(
        &mut self,
        specs: &[ExperimentSpec],
        shard: u32,
        spec_base: usize,
    ) -> SupervisedRun {
        self.spec_base = spec_base;
        let tel = Telemetry::new();
        tel.counter(&format!("runner.shard.{shard}.experiments"), specs.len() as u64);
        let mut run = self.run_specs(specs, &tel);
        run.telemetry = tel.into_snapshot();
        run.telemetry.stamp_shard(shard);
        run
    }

    /// The shared per-spec loop behind [`Supervisor::run`] and
    /// [`Supervisor::run_shard`]. Leaves `telemetry` empty; callers
    /// snapshot `tel` after adding their own boundary events/metrics.
    /// Every journal event an experiment produces is stamped with its
    /// global spec index so merged journals can be re-sorted into spec
    /// order regardless of the schedule that produced them.
    fn run_specs(&mut self, specs: &[ExperimentSpec], tel: &Telemetry) -> SupervisedRun {
        let mut run = SupervisedRun {
            report: RunReport {
                experiments: Vec::with_capacity(specs.len()),
                profile: self.config.profile.label().to_owned(),
                seed: self.config.seed,
                code_rev: crate::code_rev(),
            },
            outputs: BTreeMap::new(),
            telemetry: TelemetrySnapshot::default(),
        };
        for (i, spec) in specs.iter().enumerate() {
            let mark = tel.event_count();
            let row = self.run_one(spec, &mut run.outputs, tel);
            tel.stamp_spec_from(mark, (self.spec_base + i) as u64);
            run.report.experiments.push(row);
        }
        run
    }

    fn run_one(
        &mut self,
        spec: &ExperimentSpec,
        outputs: &mut BTreeMap<String, String>,
        tel: &Telemetry,
    ) -> ExperimentReport {
        let mut breaker = BreakerRef::Own(&mut self.breaker);
        let (row, rendered) = run_spec(&self.config, &mut breaker, &mut self.executor, spec, tel);
        if let Some(rendered) = rendered {
            outputs.insert(spec.code.clone(), rendered);
        }
        row
    }
}

const WORKER_PREFIX: &str = "humnet-exp-";

/// The `run-start` event detail: every configuration knob that shapes the
/// canonical event stream, as `key=value` tokens. The replay engine parses
/// this line to reconstruct the [`RunnerConfig`] a captured journal ran
/// under (the deadline is deliberately absent — it only matters under
/// wall-clock timeouts, which are not reproducible anyway).
pub(crate) fn run_start_detail(config: &RunnerConfig, experiments: usize) -> String {
    format!(
        "profile={} seed={} intensity={} retries={} breaker={} cooldown={} experiments={experiments}",
        config.profile.label(),
        config.seed,
        config.intensity,
        config.retries,
        config.breaker_threshold,
        config.breaker_cooldown,
    )
}

/// Render an error and its full `source()` chain as `outer: mid: root`.
pub fn render_chain(err: &(dyn std::error::Error + 'static)) -> String {
    let mut out = err.to_string();
    let mut cursor = err.source();
    while let Some(cause) = cursor {
        let rendered = cause.to_string();
        // Errors that embed their cause in Display would repeat themselves.
        if !out.ends_with(&rendered) {
            out.push_str(": ");
            out.push_str(&rendered);
        }
        cursor = cause.source();
    }
    out
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// RAII guard silencing the default panic hook for supervised worker
/// threads only. Panics on other threads still print as usual. A global
/// lock serializes install/restore so concurrent supervisors (e.g. in
/// parallel tests) cannot tangle the hook chain.
pub(crate) struct QuietPanics {
    _guard: std::sync::MutexGuard<'static, ()>,
}

static HOOK_LOCK: Mutex<()> = Mutex::new(());

impl QuietPanics {
    pub(crate) fn install() -> Self {
        let guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let on_worker = thread::current()
                .name()
                .is_some_and(|n| n.starts_with(WORKER_PREFIX));
            if !on_worker {
                previous(info);
            }
        }));
        QuietPanics { _guard: guard }
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        // Restore the default hook; the previous one was moved into the
        // filtering closure and is dropped with it.
        let _ = panic::take_hook();
    }
}

/// FNV-1a over bytes: stable, dependency-free spec-code hashing.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> RunnerConfig {
        RunnerConfig {
            retries: 1,
            deadline: Duration::from_millis(500),
            backoff_base: Duration::from_millis(1),
            breaker_threshold: 2,
            breaker_cooldown: 0,
            seed: 7,
            profile: FaultProfile::None,
            intensity: 1.0,
            quiet_panics: true,
        }
    }

    fn ok_spec(code: &str) -> ExperimentSpec {
        ExperimentSpec::new(code, format!("title {code}"), "family-a", |_plan, _tel| {
            Ok(JobOutput {
                rendered: "fine".to_owned(),
                faults_injected: 0,
            })
        })
    }

    #[test]
    fn success_first_try_is_ok() {
        let mut sup = Supervisor::new(quick_config());
        let run = sup.run(&[ok_spec("e1")]);
        assert_eq!(run.report.experiments[0].status, ExperimentStatus::Ok);
        assert_eq!(run.report.experiments[0].attempts, 1);
        assert_eq!(run.outputs["e1"], "fine");
        assert_eq!(run.report.exit_code(), 0);
    }

    #[test]
    fn faults_on_success_mean_degraded() {
        let spec = ExperimentSpec::new("e1", "t", "f", |_plan, _tel| {
            Ok(JobOutput {
                rendered: String::new(),
                faults_injected: 3,
            })
        });
        let mut sup = Supervisor::new(quick_config());
        let run = sup.run(&[spec]);
        assert_eq!(run.report.experiments[0].status, ExperimentStatus::Degraded);
        assert_eq!(run.report.experiments[0].faults_injected, 3);
    }

    #[test]
    fn panic_is_contained_and_reported() {
        let spec = ExperimentSpec::new("boom", "t", "f", |_plan, _tel| -> Result<JobOutput, JobError> {
            panic!("simulated crash");
        });
        let mut sup = Supervisor::new(quick_config());
        let run = sup.run(&[spec, ok_spec("after")]);
        let boom = &run.report.experiments[0];
        assert_eq!(boom.status, ExperimentStatus::Failed);
        assert_eq!(boom.attempts, 2, "retried once before giving up");
        assert!(boom.message.contains("simulated crash"), "{}", boom.message);
        // The run continues past the panic.
        assert_eq!(run.report.experiments[1].status, ExperimentStatus::Ok);
        assert_eq!(run.report.exit_code(), 1);
    }

    #[test]
    fn deadline_overrun_times_out() {
        let mut config = quick_config();
        config.deadline = Duration::from_millis(30);
        config.retries = 0;
        let spec = ExperimentSpec::new("slow", "t", "f", |_plan, _tel| {
            thread::sleep(Duration::from_secs(5));
            Ok(JobOutput {
                rendered: String::new(),
                faults_injected: 0,
            })
        });
        let started = Instant::now();
        let mut sup = Supervisor::new(config);
        let run = sup.run(&[spec]);
        assert_eq!(run.report.experiments[0].status, ExperimentStatus::TimedOut);
        assert!(started.elapsed() < Duration::from_secs(4), "watchdog fired");
        assert_eq!(run.report.exit_code(), 2);
    }

    #[test]
    fn flaky_job_succeeds_as_retried() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let calls = Arc::new(AtomicU32::new(0));
        let calls_in_job = Arc::clone(&calls);
        let spec = ExperimentSpec::new("flaky", "t", "f", move |_plan, _tel| {
            if calls_in_job.fetch_add(1, Ordering::SeqCst) == 0 {
                Err("transient".into())
            } else {
                Ok(JobOutput {
                    rendered: "recovered".to_owned(),
                    faults_injected: 0,
                })
            }
        });
        let mut sup = Supervisor::new(quick_config());
        let run = sup.run(&[spec]);
        let row = &run.report.experiments[0];
        assert_eq!(row.status, ExperimentStatus::Retried);
        assert_eq!(row.attempts, 2);
        assert_eq!(run.outputs["flaky"], "recovered");
    }

    #[test]
    fn breaker_short_circuits_a_failing_family() {
        let fail = |code: &str| {
            ExperimentSpec::new(code, "t", "sick", |_plan, _tel| -> Result<JobOutput, JobError> {
                Err("always broken".into())
            })
        };
        let mut config = quick_config();
        config.retries = 0;
        let mut sup = Supervisor::new(config);
        let run = sup.run(&[fail("a"), fail("b"), fail("c"), ok_spec("other")]);
        let rows = &run.report.experiments;
        assert_eq!(rows[0].attempts, 1);
        assert_eq!(rows[1].attempts, 1);
        // Third experiment never executes: breaker opened at threshold 2.
        assert_eq!(rows[2].attempts, 0);
        assert!(rows[2].message.contains("circuit breaker open"), "{}", rows[2].message);
        // Other families are unaffected.
        assert_eq!(rows[3].status, ExperimentStatus::Ok);
    }

    #[test]
    fn error_chains_render_fully() {
        #[derive(Debug)]
        struct Outer(std::io::Error);
        impl std::fmt::Display for Outer {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "stage failed")
            }
        }
        impl std::error::Error for Outer {
            fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
                Some(&self.0)
            }
        }
        let err = Outer(std::io::Error::other("root cause"));
        let rendered = render_chain(&err);
        assert_eq!(rendered, "stage failed: root cause");
    }

    #[test]
    fn telemetry_flows_from_workers_into_the_run_snapshot() {
        let specs = vec![
            ExperimentSpec::new("good", "t", "fam-a", |_plan, tel: &Telemetry| {
                tel.counter("job.work", 5);
                tel.event(Event::new("milestone", "halfway"));
                Ok(JobOutput {
                    rendered: String::new(),
                    faults_injected: 0,
                })
            }),
            ExperimentSpec::new("bad", "t", "fam-b", |_plan, tel: &Telemetry| {
                tel.event(Event::new("milestone", "about to fail"));
                Err::<JobOutput, JobError>("broken".into())
            }),
        ];
        let mut sup = Supervisor::new(quick_config());
        let run = sup.run(&specs);
        let snap = &run.telemetry;
        // Worker counters and events arrive scoped to their experiment.
        assert_eq!(snap.metrics.counters["job.work"], 5);
        let milestone = snap.events.iter().find(|e| e.detail == "halfway").unwrap();
        assert_eq!(milestone.experiment, "good");
        // A failing worker still ships its telemetry, plus runner events.
        assert!(snap.events.iter().any(|e| e.detail == "about to fail"));
        assert!(snap.events.iter().any(|e| e.kind == "retry" && e.experiment == "bad"));
        assert!(snap.events.iter().any(|e| e.kind == "attempt-error"));
        assert_eq!(snap.events.first().unwrap().kind, "run-start");
        assert_eq!(snap.events.last().unwrap().kind, "run-end");
        // Sequence numbers are dense and ordered.
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (0..snap.events.len() as u64).collect::<Vec<_>>());
        // Report-derived metrics landed in the same snapshot.
        assert_eq!(snap.metrics.counters["runner.experiments"], 2);
        // Worker attempt spans were merged (1 success + 2 failed attempts).
        let attempt_span = snap.spans.iter().find(|s| s.name == "runner.attempt").unwrap();
        assert_eq!(attempt_span.count, 3);
    }

    #[test]
    fn breaker_trip_and_skip_are_journaled() {
        let fail = |code: &str| {
            ExperimentSpec::new(code, "t", "sick", |_plan, _tel| -> Result<JobOutput, JobError> {
                Err("always broken".into())
            })
        };
        let mut config = quick_config();
        config.retries = 0;
        let mut sup = Supervisor::new(config);
        let run = sup.run(&[fail("a"), fail("b"), fail("c")]);
        let events = &run.telemetry.events;
        assert!(events.iter().any(|e| e.kind == "breaker-open" && e.experiment == "b"));
        assert!(events.iter().any(|e| e.kind == "breaker-skip" && e.experiment == "c"));
        assert_eq!(run.telemetry.metrics.counters["runner.breaker_skips"], 1);
    }

    #[test]
    fn reports_are_deterministic_across_runs() {
        let specs = || {
            vec![
                ExperimentSpec::new("d1", "det one", "fam", |plan: &FaultPlan, _tel: &Telemetry| {
                    let faults = (0..50)
                        .filter(|&s| plan.draw(s, crate::fault::FaultKind::LinkOutage).is_some())
                        .count() as u64;
                    Ok(JobOutput {
                        rendered: format!("faults={faults}"),
                        faults_injected: faults,
                    })
                }),
                ok_spec("d2"),
            ]
        };
        let mut config = quick_config();
        config.profile = FaultProfile::Chaos;
        let run_a = Supervisor::new(config).run(&specs());
        let run_b = Supervisor::new(config).run(&specs());
        assert_eq!(run_a.report.canonical(), run_b.report.canonical());
        assert_eq!(run_a.outputs, run_b.outputs);
    }
}
