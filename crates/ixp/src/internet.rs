//! Seeded internet-scale topology generation.
//!
//! The case-study scenarios ([`crate::scenario`]) model tens of ASes; the
//! ROADMAP's internet-scale item asks for ~100k. This module grows a
//! synthetic internet with the structural features the routing engine and
//! the F4-style locality metrics care about:
//!
//! * a small clique of **tier-1 transits** in the North (region `R0`),
//!   settlement-free peered with each other at a giant exchange — Rosa's
//!   "giant Internet nodes" acting as alternatives to Tier 1;
//! * per-region **transit providers** buying from the tier-1s, so every
//!   customer cone drains into the clique and the topology is fully
//!   reachable under valley-free export;
//! * a long tail of **access / content / transit** ASes attached by
//!   region-local preferential attachment (rich transits get richer),
//!   yielding the heavy-tailed customer-cone distribution of the real
//!   AS graph;
//! * one **IXP per region** with probabilistic membership, degree-capped
//!   bilateral peering among members (never a full route-server mesh —
//!   that is quadratic), content ASes present at the giant Northern
//!   exchange, and a trickle of Southern access networks remote-peering
//!   there, reproducing the Brazil/Germany pattern.
//!
//! Everything is driven by one [`humnet_stats::Rng`] stream, so a given
//! `(n, seed)` pair always yields the identical topology, and edge counts
//! stay O(n): at most two provider links and a bounded number of peer
//! sessions per AS.

use crate::topology::{AsId, AsKind, AsTopology, IxpId, RegionTag};
use crate::{IxpError, Result};
use humnet_stats::Rng;

/// Shape parameters for [`synthetic_internet_with`]. Start from
/// [`InternetConfig::default`] (which [`synthetic_internet`] uses) and
/// override fields as needed.
#[derive(Debug, Clone, PartialEq)]
pub struct InternetConfig {
    /// Total number of ASes to generate.
    pub ases: usize,
    /// Number of regions; region 0 is the North hosting the giant IXP,
    /// odd-numbered regions are tagged Global South.
    pub regions: usize,
    /// Tier-1 clique size (all in region 0, fully peer-meshed).
    pub tier1s: usize,
    /// Transit providers seeded per region (each buys from the tier-1s).
    pub transits_per_region: usize,
    /// Peer-session cap per AS when it joins an exchange.
    pub peer_sessions_per_as: usize,
    /// Probability that a tail AS joins its regional IXP.
    pub ixp_join_prob: f64,
    /// Probability that a Southern access AS remote-peers at the giant
    /// Northern exchange instead of (only) locally.
    pub remote_join_prob: f64,
    /// Fraction of tail ASes that are content/cloud providers.
    pub content_fraction: f64,
    /// Fraction of tail ASes that are transit providers (and thus enter
    /// the preferential-attachment pool).
    pub transit_fraction: f64,
    /// Probability that a tail AS multihomes to a second provider.
    pub second_provider_prob: f64,
    /// RNG seed; same `(config, seed)` always yields the same topology.
    pub seed: u64,
}

impl Default for InternetConfig {
    fn default() -> Self {
        InternetConfig {
            ases: 1000,
            regions: 8,
            tier1s: 4,
            transits_per_region: 2,
            peer_sessions_per_as: 4,
            ixp_join_prob: 0.3,
            remote_join_prob: 0.05,
            content_fraction: 0.05,
            transit_fraction: 0.10,
            second_provider_prob: 0.2,
            seed: 0,
        }
    }
}

/// Join `asn` to `ixp` and open bilateral sessions with up to `cap`
/// uniformly-sampled existing members, then enlist it as a member for
/// future joiners. Keeping sessions per joiner bounded keeps total edges
/// linear in `n` where a route-server full mesh would be quadratic.
fn join_and_peer(
    t: &mut AsTopology,
    rng: &mut Rng,
    asn: AsId,
    ixp: IxpId,
    members: &mut Vec<AsId>,
    cap: usize,
) -> Result<()> {
    t.join_ixp(asn, ixp)?;
    let picks = cap.min(members.len());
    if picks > 0 {
        for i in rng.sample_indices(members.len(), picks) {
            t.add_peering(asn, members[i], Some(ixp))?;
        }
    }
    members.push(asn);
    Ok(())
}

/// Generate a synthetic internet with `n` ASes from `seed` using the
/// default shape ([`InternetConfig::default`]).
pub fn synthetic_internet(n: usize, seed: u64) -> Result<AsTopology> {
    synthetic_internet_with(&InternetConfig {
        ases: n,
        seed,
        ..InternetConfig::default()
    })
}

/// Generate a synthetic internet from an explicit configuration. See the
/// [module docs](self) for the construction. The provider hierarchy is
/// acyclic by construction (providers always have smaller ids), and every
/// AS can reach every other AS: customer cones drain into the fully
/// peer-meshed tier-1 clique.
pub fn synthetic_internet_with(cfg: &InternetConfig) -> Result<AsTopology> {
    if cfg.ases == 0 {
        return Err(IxpError::InvalidParameter("ases must be positive"));
    }
    if cfg.regions == 0 {
        return Err(IxpError::InvalidParameter("regions must be positive"));
    }
    for p in [
        cfg.ixp_join_prob,
        cfg.remote_join_prob,
        cfg.content_fraction,
        cfg.transit_fraction,
        cfg.second_provider_prob,
    ] {
        if !(0.0..=1.0).contains(&p) {
            return Err(IxpError::InvalidParameter("probability outside [0, 1]"));
        }
    }
    if cfg.content_fraction + cfg.transit_fraction > 1.0 {
        return Err(IxpError::InvalidParameter(
            "content_fraction + transit_fraction must not exceed 1",
        ));
    }
    let mut rng = Rng::new(cfg.seed);
    let mut t = AsTopology::new();

    // Regions and their exchanges. Region 0 is the North; its exchange is
    // the giant one. Odd regions are tagged Global South.
    let region_ids: Vec<_> = (0..cfg.regions)
        .map(|r| t.intern_region(&RegionTag::new(&format!("R{r}"), r % 2 == 1)))
        .collect();
    let mut ixps = Vec::with_capacity(cfg.regions);
    let mut ixp_members: Vec<Vec<AsId>> = vec![Vec::new(); cfg.regions];
    for (r, &rid) in region_ids.iter().enumerate() {
        ixps.push(t.add_ixp_in(format!("IXP-R{r}"), rid)?);
    }
    let giant = ixps[0];

    // Tier-1 clique: full settlement-free mesh at the giant exchange.
    let tier1s = cfg.tier1s.clamp(1, cfg.ases);
    let mut t1_ids = Vec::with_capacity(tier1s);
    for i in 0..tier1s {
        let size = 50.0 + rng.pareto(10.0, 1.1);
        let id = t.add_as_in(format!("T1-{i}"), AsKind::Transit, region_ids[0], size)?;
        t.join_ixp(id, giant)?;
        for &other in &t1_ids {
            t.add_peering(id, other, Some(giant))?;
        }
        t1_ids.push(id);
    }
    ixp_members[0].extend_from_slice(&t1_ids);

    // Per-region preferential-attachment pools of transit-capable ASes.
    // An AS appears once per customer it gains, so heavily-bought transits
    // attract disproportionately many future customers (Barabási–Albert
    // on the customer tree). Providers always precede their customers, so
    // the hierarchy is acyclic by construction.
    let mut attach: Vec<Vec<AsId>> = vec![Vec::new(); cfg.regions];

    // Regional transits buying from the tier-1 clique.
    'seeding: for k in 0..cfg.transits_per_region {
        for r in 0..cfg.regions {
            if t.as_count() >= cfg.ases {
                break 'seeding;
            }
            let size = 5.0 + rng.pareto(2.0, 1.2);
            let id = t.add_as_in(format!("TR-{r}-{k}"), AsKind::Transit, region_ids[r], size)?;
            let p1 = *rng.choose(&t1_ids);
            t.add_provider(id, p1)?;
            if t1_ids.len() > 1 && rng.chance(0.5) {
                let p2 = *rng.choose(&t1_ids);
                if p2 != p1 {
                    t.add_provider(id, p2)?;
                }
            }
            join_and_peer(&mut t, &mut rng, id, ixps[r], &mut ixp_members[r], cfg.peer_sessions_per_as)?;
            attach[r].push(id);
        }
    }

    // The tail: access, content, and small transit ASes.
    while t.as_count() < cfg.ases {
        let i = t.as_count();
        let r = rng.range(0, cfg.regions);
        let roll = rng.next_f64();
        let kind = if roll < cfg.content_fraction {
            AsKind::Content
        } else if roll < cfg.content_fraction + cfg.transit_fraction {
            AsKind::Transit
        } else {
            AsKind::Access
        };
        let size = match kind {
            AsKind::Content => 5.0 + rng.pareto(3.0, 1.1),
            AsKind::Transit => 2.0 + rng.pareto(1.0, 1.2),
            _ => rng.pareto(1.0, 1.4),
        };
        let id = t.add_as_in(format!("AS{i}"), kind, region_ids[r], size)?;
        // Provider(s) from the regional pool; fall back to the tier-1s
        // when the region has no transit yet (tiny configurations).
        let pool: &[AsId] = if attach[r].is_empty() { &t1_ids } else { &attach[r] };
        let p1 = *rng.choose(pool);
        t.add_provider(id, p1)?;
        if rng.chance(cfg.second_provider_prob) {
            let p2 = *rng.choose(pool);
            if p2 != p1 {
                t.add_provider(id, p2)?;
            }
        }
        if kind == AsKind::Transit {
            // New transit enters the pool alongside a repeat entry for its
            // provider (degree-proportional growth).
            attach[r].push(id);
        }
        attach[r].push(p1);
        // Exchange membership. Content is present at the giant Northern
        // exchange; everyone joins locally with probability ixp_join_prob;
        // Southern access networks occasionally remote-peer at the giant.
        match kind {
            AsKind::Content => {
                join_and_peer(&mut t, &mut rng, id, giant, &mut ixp_members[0], cfg.peer_sessions_per_as)?;
                if r != 0 && rng.chance(cfg.ixp_join_prob) {
                    join_and_peer(&mut t, &mut rng, id, ixps[r], &mut ixp_members[r], cfg.peer_sessions_per_as)?;
                }
            }
            _ => {
                if rng.chance(cfg.ixp_join_prob) {
                    join_and_peer(&mut t, &mut rng, id, ixps[r], &mut ixp_members[r], cfg.peer_sessions_per_as)?;
                }
                if kind == AsKind::Access && r != 0 && rng.chance(cfg.remote_join_prob) {
                    join_and_peer(&mut t, &mut rng, id, giant, &mut ixp_members[0], cfg.peer_sessions_per_as)?;
                }
            }
        }
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::RoutingTable;

    #[test]
    fn same_seed_is_identical_different_seed_is_not() {
        let a = synthetic_internet(300, 7).unwrap();
        let b = synthetic_internet(300, 7).unwrap();
        let c = synthetic_internet(300, 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_count(), 300);
    }

    #[test]
    fn hierarchy_is_acyclic_and_fully_reachable() {
        let t = synthetic_internet(250, 3).unwrap();
        assert!(t.is_hierarchy_acyclic());
        let rt = RoutingTable::compute(&t).unwrap();
        for src in [0, 17, 101, 249] {
            for dst in [0, 5, 88, 200] {
                assert!(rt.reachable(src, dst), "AS{src} cannot reach AS{dst}");
            }
        }
    }

    #[test]
    fn edge_counts_stay_linear() {
        let t = synthetic_internet(2000, 1).unwrap();
        let ft = t.freeze();
        let mut peer_edges = 0usize;
        let mut prov_edges = 0usize;
        for u in 0..ft.as_count() {
            peer_edges += ft.peer_sessions_of(u).0.len();
            prov_edges += ft.providers_of(u).len();
        }
        // Each AS has at most 2 providers and a bounded number of peer
        // sessions (cap per join, at most two joins, plus incoming picks).
        assert!(prov_edges <= 2 * ft.as_count());
        assert!(peer_edges <= 24 * ft.as_count(), "peer edges {peer_edges}");
    }

    #[test]
    fn regions_and_exchanges_are_region_shaped() {
        let cfg = InternetConfig {
            ases: 400,
            seed: 11,
            ..InternetConfig::default()
        };
        let t = synthetic_internet_with(&cfg).unwrap();
        assert_eq!(t.regions().len(), cfg.regions);
        assert_eq!(t.ixp_count(), cfg.regions);
        assert!(!t.region(0).global_south);
        assert!(t.region(1).global_south);
        // The giant exchange has strictly more members than any other.
        let giant_members = t.ixps()[0].members.len();
        for ixp in &t.ixps()[1..] {
            assert!(giant_members > ixp.members.len());
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(synthetic_internet(0, 1).is_err());
        let bad = InternetConfig {
            regions: 0,
            ..InternetConfig::default()
        };
        assert!(synthetic_internet_with(&bad).is_err());
        let bad = InternetConfig {
            content_fraction: 0.9,
            transit_fraction: 0.5,
            ..InternetConfig::default()
        };
        assert!(synthetic_internet_with(&bad).is_err());
    }
}
