//! Valley-free (Gao–Rexford) policy routing.
//!
//! The standard model of interdomain routing economics:
//!
//! * **Selection.** An AS prefers routes learned from customers over routes
//!   learned from peers over routes learned from providers — revenue beats
//!   settlement-free beats cost — and breaks ties by AS-path length, then
//!   by lowest next-hop id (determinism).
//! * **Export.** Routes learned from customers are announced to everyone;
//!   routes learned from peers or providers are announced only to
//!   customers.
//!
//! Together these yield *valley-free* paths: zero or more customer→provider
//! ("up") hops, at most one peer hop, then zero or more provider→customer
//! ("down") hops. The computation below runs the classic three-phase
//! propagation per destination.

use crate::topology::{AsId, AsTopology, IxpId};
use crate::{IxpError, Result};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

const INF: u32 = u32::MAX;

/// How the first hop of a route was learned — equivalently, the economic
/// class of the selected route at the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteKind {
    /// Destination is the source itself.
    SelfRoute,
    /// Route learned from a customer (revenue route).
    Customer,
    /// Route learned from a settlement-free peer.
    Peer,
    /// Route learned from a provider (paid transit).
    Provider,
}

/// A resolved route from one AS to another.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// Economic class of the route at the source.
    pub kind: RouteKind,
    /// Full AS path, source first, destination last.
    pub path: Vec<AsId>,
    /// IXP at which the path's peer hop occurs, if the path has a peer hop
    /// established at an exchange.
    pub crossed_ixp: Option<IxpId>,
    /// Whether the path includes a settlement-free peer hop at all.
    pub has_peer_hop: bool,
}

impl Route {
    /// Number of AS-level hops.
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }

    /// Number of *paid* hops: every hop except a settlement-free peer hop
    /// crosses a customer/provider link that someone pays for.
    pub fn transit_hops(&self) -> usize {
        self.hops() - usize::from(self.has_peer_hop)
    }
}

/// Per-destination routing state.
#[derive(Debug, Clone)]
struct DestTable {
    dist_cust: Vec<u32>,
    next_cust: Vec<Option<AsId>>,
    dist_peer: Vec<u32>,
    next_peer: Vec<Option<AsId>>,
    peer_ixp: Vec<Option<IxpId>>,
    dist_down: Vec<u32>,
    next_down: Vec<Option<AsId>>,
}

/// All-pairs policy routes for a topology.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    n: usize,
    tables: Vec<DestTable>,
}

impl RoutingTable {
    /// Compute routes for every destination. Errors if the provider
    /// hierarchy contains a cycle (valley-free routing is undefined then).
    pub fn compute(topology: &AsTopology) -> Result<Self> {
        if !topology.is_hierarchy_acyclic() {
            return Err(IxpError::InconsistentRelationship(
                "provider hierarchy contains a cycle",
            ));
        }
        let n = topology.as_count();
        let mut tables = Vec::with_capacity(n);
        for dst in 0..n {
            tables.push(Self::compute_destination(topology, dst));
        }
        Ok(RoutingTable { n, tables })
    }

    fn compute_destination(topology: &AsTopology, dst: AsId) -> DestTable {
        let n = topology.as_count();
        let mut t = DestTable {
            dist_cust: vec![INF; n],
            next_cust: vec![None; n],
            dist_peer: vec![INF; n],
            next_peer: vec![None; n],
            peer_ixp: vec![None; n],
            dist_down: vec![INF; n],
            next_down: vec![None; n],
        };
        // Phase 1: customer routes propagate upward (customer -> provider)
        // by BFS on uniform weights.
        t.dist_cust[dst] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(dst);
        while let Some(u) = queue.pop_front() {
            for &p in topology.providers_of(u) {
                if t.dist_cust[p] == INF {
                    t.dist_cust[p] = t.dist_cust[u] + 1;
                    t.next_cust[p] = Some(u);
                    queue.push_back(p);
                }
            }
        }
        // Phase 2: peer routes — one peer hop extending a customer route
        // (or the destination itself).
        for u in 0..n {
            let mut best: Option<(u32, AsId, Option<IxpId>)> = None;
            for (v, ixp) in topology.peers_of(u) {
                if t.dist_cust[v] != INF {
                    let cand = (t.dist_cust[v] + 1, v, ixp);
                    let better = match best {
                        None => true,
                        Some((bd, bv, _)) => cand.0 < bd || (cand.0 == bd && v < bv),
                    };
                    if better {
                        best = Some(cand);
                    }
                }
            }
            if let Some((d, v, ixp)) = best {
                t.dist_peer[u] = d;
                t.next_peer[u] = Some(v);
                t.peer_ixp[u] = ixp;
            }
        }
        // Phase 3: provider routes propagate downward from every AS that
        // has selected a route. A node's exportable length is the length of
        // its *selected* route (customer preferred over peer over provider,
        // regardless of length — the Gao–Rexford preference).
        let selected_len = |t: &DestTable, u: AsId| -> u32 {
            if t.dist_cust[u] != INF {
                t.dist_cust[u]
            } else if t.dist_peer[u] != INF {
                t.dist_peer[u]
            } else {
                t.dist_down[u]
            }
        };
        let mut heap: BinaryHeap<Reverse<(u32, AsId)>> = BinaryHeap::new();
        for u in 0..n {
            let len = selected_len(&t, u);
            if len != INF {
                heap.push(Reverse((len, u)));
            }
        }
        while let Some(Reverse((len, u))) = heap.pop() {
            if len > selected_len(&t, u) {
                continue; // stale entry
            }
            for &c in topology.customers_of(u) {
                let cand = len + 1;
                if cand < t.dist_down[c] {
                    let before = selected_len(&t, c);
                    t.dist_down[c] = cand;
                    t.next_down[c] = Some(u);
                    let after = selected_len(&t, c);
                    if after < before {
                        heap.push(Reverse((after, c)));
                    }
                }
            }
        }
        t
    }

    /// Number of ASes covered.
    pub fn as_count(&self) -> usize {
        self.n
    }

    /// The selected route from `src` to `dst`, or an error when none exists
    /// under valley-free export rules.
    pub fn route(&self, src: AsId, dst: AsId) -> Result<Route> {
        if src >= self.n {
            return Err(IxpError::InvalidAs(src));
        }
        if dst >= self.n {
            return Err(IxpError::InvalidAs(dst));
        }
        if src == dst {
            return Ok(Route {
                kind: RouteKind::SelfRoute,
                path: vec![src],
                crossed_ixp: None,
                has_peer_hop: false,
            });
        }
        let t = &self.tables[dst];
        let kind = if t.dist_cust[src] != INF {
            RouteKind::Customer
        } else if t.dist_peer[src] != INF {
            RouteKind::Peer
        } else if t.dist_down[src] != INF {
            RouteKind::Provider
        } else {
            return Err(IxpError::NoRoute { from: src, to: dst });
        };
        // Reconstruct the path: provider hops (down the selection chain),
        // then at most one peer hop, then customer-route hops.
        let mut path = vec![src];
        let mut crossed_ixp = None;
        let mut has_peer_hop = false;
        let mut current = src;
        // Phase A: while the current AS's selected route is a provider
        // route, follow next_down.
        while t.dist_cust[current] == INF && t.dist_peer[current] == INF {
            let next = t.next_down[current].expect("provider route has next hop");
            path.push(next);
            current = next;
        }
        // Phase B: one peer hop if the selected route here is a peer route.
        if t.dist_cust[current] == INF {
            has_peer_hop = true;
            crossed_ixp = t.peer_ixp[current];
            let next = t.next_peer[current].expect("peer route has next hop");
            path.push(next);
            current = next;
        }
        // Phase C: customer-route hops down to the destination.
        while current != dst {
            let next = t.next_cust[current].expect("customer route has next hop");
            path.push(next);
            current = next;
        }
        Ok(Route {
            kind,
            path,
            crossed_ixp,
            has_peer_hop,
        })
    }

    /// True when `src` can reach `dst`.
    pub fn reachable(&self, src: AsId, dst: AsId) -> bool {
        self.route(src, dst).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{AsKind, AsTopology, RegionTag};

    fn r() -> RegionTag {
        RegionTag::new("X", false)
    }

    /// Classic small topology:
    ///
    /// ```text
    ///        T (transit)
    ///       / \
    ///      A   B        A -- B are NOT peers initially
    ///     /     \
    ///    C       D
    /// ```
    fn diamond() -> (AsTopology, [AsId; 5]) {
        let mut t = AsTopology::new();
        let tr = t.add_as("T", AsKind::Transit, r(), 1.0);
        let a = t.add_as("A", AsKind::Access, r(), 1.0);
        let b = t.add_as("B", AsKind::Access, r(), 1.0);
        let c = t.add_as("C", AsKind::Access, r(), 1.0);
        let d = t.add_as("D", AsKind::Access, r(), 1.0);
        t.add_provider(a, tr).unwrap();
        t.add_provider(b, tr).unwrap();
        t.add_provider(c, a).unwrap();
        t.add_provider(d, b).unwrap();
        (t, [tr, a, b, c, d])
    }

    #[test]
    fn self_route() {
        let (t, ids) = diamond();
        let rt = RoutingTable::compute(&t).unwrap();
        let route = rt.route(ids[1], ids[1]).unwrap();
        assert_eq!(route.kind, RouteKind::SelfRoute);
        assert_eq!(route.path, vec![ids[1]]);
        assert_eq!(route.hops(), 0);
    }

    #[test]
    fn provider_route_up_and_down() {
        let (t, [tr, a, b, c, d]) = diamond();
        let rt = RoutingTable::compute(&t).unwrap();
        let route = rt.route(c, d).unwrap();
        assert_eq!(route.kind, RouteKind::Provider);
        assert_eq!(route.path, vec![c, a, tr, b, d]);
        assert!(!route.has_peer_hop);
        assert_eq!(route.transit_hops(), 4);
    }

    #[test]
    fn customer_route_preferred() {
        let (t, [tr, a, _b, c, _d]) = diamond();
        let rt = RoutingTable::compute(&t).unwrap();
        // T reaches C through its customer chain.
        let route = rt.route(tr, c).unwrap();
        assert_eq!(route.kind, RouteKind::Customer);
        assert_eq!(route.path, vec![tr, a, c]);
    }

    #[test]
    fn peer_route_beats_provider_route() {
        let (mut t, [_tr, a, b, c, d]) = diamond();
        t.add_peering(a, b, None).unwrap();
        let rt = RoutingTable::compute(&t).unwrap();
        let route = rt.route(c, d).unwrap();
        // Now C -> A -peer-> B -> D, avoiding the transit tier.
        assert_eq!(route.path, vec![c, a, b, d]);
        assert!(route.has_peer_hop);
        assert_eq!(route.kind, RouteKind::Provider, "C still reaches via its provider A");
        assert_eq!(route.transit_hops(), 2);
    }

    #[test]
    fn peer_hop_records_ixp() {
        let (mut t, [_tr, a, b, c, d]) = diamond();
        let ixp = t.add_ixp("IXP", r());
        t.join_ixp(a, ixp).unwrap();
        t.join_ixp(b, ixp).unwrap();
        t.multilateral_peering(ixp).unwrap();
        let rt = RoutingTable::compute(&t).unwrap();
        let route = rt.route(c, d).unwrap();
        assert_eq!(route.crossed_ixp, Some(ixp));
    }

    #[test]
    fn valley_free_export_blocks_peer_to_peer_transit() {
        // A - B peers, B - C peers: A must NOT reach C through B
        // (B would be giving free transit between two peers).
        let mut t = AsTopology::new();
        let a = t.add_as("A", AsKind::Access, r(), 1.0);
        let b = t.add_as("B", AsKind::Access, r(), 1.0);
        let c = t.add_as("C", AsKind::Access, r(), 1.0);
        t.add_peering(a, b, None).unwrap();
        t.add_peering(b, c, None).unwrap();
        let rt = RoutingTable::compute(&t).unwrap();
        assert!(rt.route(a, b).is_ok());
        assert_eq!(
            rt.route(a, c).unwrap_err(),
            IxpError::NoRoute { from: a, to: c }
        );
    }

    #[test]
    fn peer_route_not_exported_upward() {
        // C buys from A; A peers with B. C can reach B through A (provider
        // route extends A's peer route downward). But B's provider T must
        // not route to A's peer... construct: does T reach C? via customer
        // chain only.
        let mut t = AsTopology::new();
        let a = t.add_as("A", AsKind::Access, r(), 1.0);
        let b = t.add_as("B", AsKind::Access, r(), 1.0);
        let c = t.add_as("C", AsKind::Access, r(), 1.0);
        t.add_provider(c, a).unwrap();
        t.add_peering(a, b, None).unwrap();
        let rt = RoutingTable::compute(&t).unwrap();
        // Down-export of peer routes: C -> A -peer-> B is valid.
        let route = rt.route(c, b).unwrap();
        assert_eq!(route.path, vec![c, a, b]);
        // But B cannot reach C: B's only neighbor is peer A, and A's route
        // to C is a customer route — exported to peers! So B -> A -> C valid.
        let back = rt.route(b, c).unwrap();
        assert_eq!(back.kind, RouteKind::Peer);
        assert_eq!(back.path, vec![b, a, c]);
    }

    #[test]
    fn customer_preference_overrides_length() {
        // D can reach X via a 1-hop peer route or a 3-hop customer
        // route; Gao–Rexford picks the customer route despite length.
        let mut t = AsTopology::new();
        let d = t.add_as("D", AsKind::Transit, r(), 1.0);
        let x = t.add_as("X", AsKind::Access, r(), 1.0);
        let m1 = t.add_as("M1", AsKind::Access, r(), 1.0);
        let m2 = t.add_as("M2", AsKind::Access, r(), 1.0);
        // customer chain: d <- m1 <- m2 <- x  (x buys from m2, etc.)
        t.add_provider(m1, d).unwrap();
        t.add_provider(m2, m1).unwrap();
        t.add_provider(x, m2).unwrap();
        // and D also peers directly with X (1-hop peer route).
        t.add_peering(d, x, None).unwrap();
        let rt = RoutingTable::compute(&t).unwrap();
        let route = rt.route(d, x).unwrap();
        assert_eq!(route.kind, RouteKind::Customer);
        assert_eq!(route.path, vec![d, m1, m2, x]);
    }

    #[test]
    fn unreachable_when_no_common_hierarchy() {
        let mut t = AsTopology::new();
        let a = t.add_as("A", AsKind::Access, r(), 1.0);
        let b = t.add_as("B", AsKind::Access, r(), 1.0);
        let rt = RoutingTable::compute(&t).unwrap();
        assert!(!rt.reachable(a, b));
        assert!(rt.reachable(a, a));
    }

    #[test]
    fn cyclic_hierarchy_rejected() {
        let mut t = AsTopology::new();
        let a = t.add_as("A", AsKind::Transit, r(), 1.0);
        let b = t.add_as("B", AsKind::Transit, r(), 1.0);
        let c = t.add_as("C", AsKind::Transit, r(), 1.0);
        t.add_provider(a, b).unwrap();
        t.add_provider(b, c).unwrap();
        t.add_provider(c, a).unwrap();
        assert!(RoutingTable::compute(&t).is_err());
    }

    #[test]
    fn invalid_ids_rejected() {
        let (t, _) = diamond();
        let rt = RoutingTable::compute(&t).unwrap();
        assert!(rt.route(99, 0).is_err());
        assert!(rt.route(0, 99).is_err());
    }

    #[test]
    fn shortest_path_tiebreak_is_deterministic() {
        // Two equal-length peer options: lowest id wins.
        let mut t = AsTopology::new();
        let s = t.add_as("S", AsKind::Access, r(), 1.0);
        let p1 = t.add_as("P1", AsKind::Access, r(), 1.0);
        let p2 = t.add_as("P2", AsKind::Access, r(), 1.0);
        let d = t.add_as("D", AsKind::Access, r(), 1.0);
        t.add_peering(s, p1, None).unwrap();
        t.add_peering(s, p2, None).unwrap();
        t.add_provider(d, p1).unwrap();
        t.add_provider(d, p2).unwrap();
        let rt = RoutingTable::compute(&t).unwrap();
        let route = rt.route(s, d).unwrap();
        assert_eq!(route.path, vec![s, p1, d]);
    }
}
