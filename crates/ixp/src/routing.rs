//! Valley-free (Gao–Rexford) policy routing.
//!
//! The standard model of interdomain routing economics:
//!
//! * **Selection.** An AS prefers routes learned from customers over routes
//!   learned from peers over routes learned from providers — revenue beats
//!   settlement-free beats cost — and breaks ties by AS-path length, then
//!   by lowest next-hop id (determinism).
//! * **Export.** Routes learned from customers are announced to everyone;
//!   routes learned from peers or providers are announced only to
//!   customers.
//!
//! Together these yield *valley-free* paths: zero or more customer→provider
//! ("up") hops, at most one peer hop, then zero or more provider→customer
//! ("down") hops. The computation runs the classic three-phase propagation
//! per destination.
//!
//! ## Representation
//!
//! The engine runs on [`FrozenTopology`] CSR adjacency and stores its
//! result as structure-of-arrays: per computed destination, one `u8`
//! *class* row (none/customer/peer/provider), one `u32` *next-hop* row and
//! one `u32` *peer-IXP* row, each `n` wide, packed contiguously with
//! `u32::MAX` as the "none" sentinel. That is 9 bytes per (AS,
//! destination) pair instead of the seven pointer-carrying `Vec`s per
//! destination the original implementation kept (retained verbatim in
//! [`reference`] for differential testing). Paths are reconstructed on
//! request by walking next-hop rows, never stored.
//!
//! ## Parallelism and determinism
//!
//! Per-destination propagation is embarrassingly parallel.
//! [`RoutingTable::compute_frozen`] fans contiguous slices of the sorted
//! destination list across the shared pooled worker runtime
//! (`humnet_resilience::pool_execute`) and reassembles the returned row
//! blocks in slice order, so the assembled table is byte-identical
//! whatever the worker count — the same discipline the experiment
//! runner's work-stealing schedule uses.

use crate::topology::{AsId, AsTopology, FrozenTopology, IxpId, NO_IXP};
use crate::{IxpError, Result};
use humnet_resilience::pool_execute;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

const INF: u32 = u32::MAX;
/// Sentinel for "no next hop" in the packed next-hop rows.
const NO_NEXT: u32 = u32::MAX;
/// Sentinel slot for "destination not computed".
const NO_SLOT: u32 = u32::MAX;

/// Route class codes of the packed `class` rows.
const CLASS_NONE: u8 = 0;
const CLASS_CUST: u8 = 1;
const CLASS_PEER: u8 = 2;
const CLASS_PROV: u8 = 3;

/// How the first hop of a route was learned — equivalently, the economic
/// class of the selected route at the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteKind {
    /// Destination is the source itself.
    SelfRoute,
    /// Route learned from a customer (revenue route).
    Customer,
    /// Route learned from a settlement-free peer.
    Peer,
    /// Route learned from a provider (paid transit).
    Provider,
}

/// A resolved route from one AS to another.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// Economic class of the route at the source.
    pub kind: RouteKind,
    /// Full AS path, source first, destination last.
    pub path: Vec<AsId>,
    /// IXP at which the path's peer hop occurs, if the path has a peer hop
    /// established at an exchange.
    pub crossed_ixp: Option<IxpId>,
    /// Whether the path includes a settlement-free peer hop at all.
    pub has_peer_hop: bool,
}

impl Route {
    /// Number of AS-level hops.
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }

    /// Number of *paid* hops: every hop except a settlement-free peer hop
    /// crosses a customer/provider link that someone pays for.
    pub fn transit_hops(&self) -> usize {
        self.hops() - usize::from(self.has_peer_hop)
    }
}

/// Reusable per-worker state for the three propagation phases: the seven
/// per-destination arrays of the classic algorithm, reset with `fill`
/// between destinations instead of reallocated.
struct Scratch {
    dist_cust: Vec<u32>,
    next_cust: Vec<u32>,
    dist_peer: Vec<u32>,
    next_peer: Vec<u32>,
    peer_ixp: Vec<u32>,
    dist_down: Vec<u32>,
    next_down: Vec<u32>,
    queue: VecDeque<u32>,
    heap: BinaryHeap<Reverse<(u32, u32)>>,
}

impl Scratch {
    fn new(n: usize) -> Self {
        Scratch {
            dist_cust: vec![INF; n],
            next_cust: vec![NO_NEXT; n],
            dist_peer: vec![INF; n],
            next_peer: vec![NO_NEXT; n],
            peer_ixp: vec![NO_IXP; n],
            dist_down: vec![INF; n],
            next_down: vec![NO_NEXT; n],
            queue: VecDeque::new(),
            heap: BinaryHeap::new(),
        }
    }

    /// Distance of the *selected* route at `u`: customer preferred over
    /// peer over provider regardless of length (the Gao–Rexford
    /// preference).
    #[inline]
    fn selected_len(&self, u: usize) -> u32 {
        if self.dist_cust[u] != INF {
            self.dist_cust[u]
        } else if self.dist_peer[u] != INF {
            self.dist_peer[u]
        } else {
            self.dist_down[u]
        }
    }
}

/// One destination's propagation, appended as three `n`-wide rows onto the
/// output blocks. The next-hop scratch entries are only meaningful where
/// the matching distance is finite, so rows are derived distance-first.
fn compute_rows(
    ft: &FrozenTopology,
    dst: usize,
    s: &mut Scratch,
    class_out: &mut Vec<u8>,
    next_out: &mut Vec<u32>,
    ixp_out: &mut Vec<u32>,
) {
    let n = ft.as_count();
    s.dist_cust.fill(INF);
    s.dist_peer.fill(INF);
    s.dist_down.fill(INF);
    // Phase 1: customer routes propagate upward (customer -> provider)
    // by BFS on uniform weights.
    s.dist_cust[dst] = 0;
    s.queue.clear();
    s.queue.push_back(dst as u32);
    while let Some(u) = s.queue.pop_front() {
        let du = s.dist_cust[u as usize];
        for &p in ft.providers_of(u as usize) {
            if s.dist_cust[p as usize] == INF {
                s.dist_cust[p as usize] = du + 1;
                s.next_cust[p as usize] = u;
                s.queue.push_back(p);
            }
        }
    }
    // Phase 2: peer routes — one peer hop extending a customer route
    // (or the destination itself). First candidate wins among equal
    // (distance, neighbor) pairs, so session order matters.
    for u in 0..n {
        let (nbrs, ixps) = ft.peer_sessions_of(u);
        let mut best_d = INF;
        let mut best_v = NO_NEXT;
        let mut best_ixp = NO_IXP;
        for (i, &v) in nbrs.iter().enumerate() {
            let dv = s.dist_cust[v as usize];
            if dv != INF {
                let cand = dv + 1;
                if cand < best_d || (cand == best_d && v < best_v) {
                    best_d = cand;
                    best_v = v;
                    best_ixp = ixps[i];
                }
            }
        }
        if best_d != INF {
            s.dist_peer[u] = best_d;
            s.next_peer[u] = best_v;
            s.peer_ixp[u] = best_ixp;
        }
    }
    // Phase 3: provider routes propagate downward from every AS that
    // has selected a route; a node's exportable length is that of its
    // selected route.
    s.heap.clear();
    for u in 0..n {
        let len = s.selected_len(u);
        if len != INF {
            s.heap.push(Reverse((len, u as u32)));
        }
    }
    while let Some(Reverse((len, u))) = s.heap.pop() {
        if len > s.selected_len(u as usize) {
            continue; // stale entry
        }
        for &c in ft.customers_of(u as usize) {
            let cand = len + 1;
            let c = c as usize;
            if cand < s.dist_down[c] {
                let before = s.selected_len(c);
                s.dist_down[c] = cand;
                s.next_down[c] = u;
                let after = s.selected_len(c);
                if after < before {
                    s.heap.push(Reverse((after, c as u32)));
                }
            }
        }
    }
    // Derive the packed selected-route rows.
    for u in 0..n {
        if s.dist_cust[u] != INF {
            class_out.push(CLASS_CUST);
            next_out.push(if u == dst { NO_NEXT } else { s.next_cust[u] });
            ixp_out.push(NO_IXP);
        } else if s.dist_peer[u] != INF {
            class_out.push(CLASS_PEER);
            next_out.push(s.next_peer[u]);
            ixp_out.push(s.peer_ixp[u]);
        } else if s.dist_down[u] != INF {
            class_out.push(CLASS_PROV);
            next_out.push(s.next_down[u]);
            ixp_out.push(NO_IXP);
        } else {
            class_out.push(CLASS_NONE);
            next_out.push(NO_NEXT);
            ixp_out.push(NO_IXP);
        }
    }
}

/// The three packed row blocks a worker returns for its destination slice.
type RowBlock = (Vec<u8>, Vec<u32>, Vec<u32>);

fn compute_block(ft: &FrozenTopology, dests: &[AsId]) -> RowBlock {
    let n = ft.as_count();
    let mut class = Vec::with_capacity(dests.len() * n);
    let mut next = Vec::with_capacity(dests.len() * n);
    let mut ixp = Vec::with_capacity(dests.len() * n);
    let mut scratch = Scratch::new(n);
    for &dst in dests {
        compute_rows(ft, dst, &mut scratch, &mut class, &mut next, &mut ixp);
    }
    (class, next, ixp)
}

/// Policy routes for a topology, covering all destinations
/// ([`RoutingTable::compute`]) or an explicit sample
/// ([`RoutingTable::compute_for_destinations`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingTable {
    n: usize,
    /// Computed destinations, sorted ascending; row order of the blocks.
    dests: Vec<AsId>,
    /// `dest_slot[dst]` = row index of `dst`, or `u32::MAX` if uncomputed.
    dest_slot: Vec<u32>,
    class: Vec<u8>,
    next: Vec<u32>,
    peer_ixp: Vec<u32>,
}

impl RoutingTable {
    /// Compute routes for every destination, serially. Errors if the
    /// provider hierarchy contains a cycle (valley-free routing is
    /// undefined then).
    pub fn compute(topology: &AsTopology) -> Result<Self> {
        Self::compute_parallel(topology, 1)
    }

    /// [`RoutingTable::compute`] with destinations fanned across `workers`
    /// pooled threads. The result is byte-identical to the serial one.
    pub fn compute_parallel(topology: &AsTopology, workers: usize) -> Result<Self> {
        let dests: Vec<AsId> = (0..topology.as_count()).collect();
        Self::compute_frozen(&Arc::new(topology.freeze()), &dests, workers)
    }

    /// Compute routes *toward the given destinations only* — the
    /// demand-driven path for sampled traffic at internet scale, where
    /// all-pairs materialization is pointless. Destinations may be
    /// unsorted and contain duplicates; rows are stored in sorted order.
    pub fn compute_for_destinations(topology: &AsTopology, dests: &[AsId]) -> Result<Self> {
        Self::compute_frozen(&Arc::new(topology.freeze()), dests, 1)
    }

    /// [`RoutingTable::compute_for_destinations`] across `workers` pooled
    /// threads; byte-identical to the serial result.
    pub fn compute_for_destinations_parallel(
        topology: &AsTopology,
        dests: &[AsId],
        workers: usize,
    ) -> Result<Self> {
        Self::compute_frozen(&Arc::new(topology.freeze()), dests, workers)
    }

    /// The general entry point: compute routes toward `dests` on an
    /// already-frozen topology, splitting the (sorted, deduplicated)
    /// destination list into `workers` contiguous slices executed on the
    /// shared worker pool. Blocks are reassembled in slice order, so the
    /// table is byte-identical for every `workers` value. Freezing once
    /// and calling this repeatedly amortizes the CSR build across
    /// samples.
    pub fn compute_frozen(
        ft: &Arc<FrozenTopology>,
        dests: &[AsId],
        workers: usize,
    ) -> Result<Self> {
        let n = ft.as_count();
        if !ft.is_hierarchy_acyclic() {
            return Err(IxpError::InconsistentRelationship(
                "provider hierarchy contains a cycle",
            ));
        }
        let mut dests = dests.to_vec();
        dests.sort_unstable();
        dests.dedup();
        if let Some(&bad) = dests.iter().find(|&&d| d >= n) {
            return Err(IxpError::InvalidAs(bad));
        }
        let rows = dests.len();
        let workers = workers.max(1).min(rows.max(1));
        let (class, next, peer_ixp) = if workers <= 1 {
            compute_block(ft, &dests)
        } else {
            // Balanced contiguous slices: the first `extra` chunks carry
            // one more destination. Slice boundaries depend only on
            // (rows, workers), never on timing.
            let base = rows / workers;
            let extra = rows % workers;
            let mut handles = Vec::with_capacity(workers);
            let mut start = 0usize;
            for i in 0..workers {
                let len = base + usize::from(i < extra);
                let chunk = dests[start..start + len].to_vec();
                start += len;
                let ft = Arc::clone(ft);
                handles.push(pool_execute(move || compute_block(&ft, &chunk)));
            }
            let mut class = Vec::with_capacity(rows * n);
            let mut next = Vec::with_capacity(rows * n);
            let mut ixp = Vec::with_capacity(rows * n);
            for h in handles {
                match h.join() {
                    Ok((c, x, i)) => {
                        class.extend_from_slice(&c);
                        next.extend_from_slice(&x);
                        ixp.extend_from_slice(&i);
                    }
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            (class, next, ixp)
        };
        let mut dest_slot = vec![NO_SLOT; n];
        for (row, &d) in dests.iter().enumerate() {
            dest_slot[d] = row as u32;
        }
        Ok(RoutingTable {
            n,
            dests,
            dest_slot,
            class,
            next,
            peer_ixp,
        })
    }

    /// Resolve a single route without materializing a table: one
    /// destination propagation on the frozen topology, path reconstructed
    /// and discarded. Use this for ad-hoc queries; for many sources
    /// sharing destinations, batch with
    /// [`RoutingTable::compute_for_destinations`] instead.
    pub fn route_on_demand(ft: &FrozenTopology, src: AsId, dst: AsId) -> Result<Route> {
        let n = ft.as_count();
        if src >= n {
            return Err(IxpError::InvalidAs(src));
        }
        if dst >= n {
            return Err(IxpError::InvalidAs(dst));
        }
        if !ft.is_hierarchy_acyclic() {
            return Err(IxpError::InconsistentRelationship(
                "provider hierarchy contains a cycle",
            ));
        }
        let (class, next, ixp) = compute_block(ft, &[dst]);
        let table = RoutingTable {
            n,
            dests: vec![dst],
            dest_slot: {
                let mut s = vec![NO_SLOT; n];
                s[dst] = 0;
                s
            },
            class,
            next,
            peer_ixp: ixp,
        };
        table.route(src, dst)
    }

    /// Number of ASes covered.
    pub fn as_count(&self) -> usize {
        self.n
    }

    /// The computed destinations, sorted ascending.
    pub fn destinations(&self) -> &[AsId] {
        &self.dests
    }

    /// Whether routes toward `dst` were computed.
    pub fn covers(&self, dst: AsId) -> bool {
        dst < self.n && self.dest_slot[dst] != NO_SLOT
    }

    /// FNV-1a digest over the packed route arrays — a cheap fingerprint
    /// for byte-identity assertions across worker counts.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut eat = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        };
        for &d in &self.dests {
            for b in (d as u64).to_le_bytes() {
                eat(b);
            }
        }
        for &c in &self.class {
            eat(c);
        }
        for &x in &self.next {
            for b in x.to_le_bytes() {
                eat(b);
            }
        }
        for &x in &self.peer_ixp {
            for b in x.to_le_bytes() {
                eat(b);
            }
        }
        h
    }

    /// The selected route from `src` to `dst`, or an error when none exists
    /// under valley-free export rules.
    pub fn route(&self, src: AsId, dst: AsId) -> Result<Route> {
        if src >= self.n {
            return Err(IxpError::InvalidAs(src));
        }
        if dst >= self.n {
            return Err(IxpError::InvalidAs(dst));
        }
        if src == dst {
            return Ok(Route {
                kind: RouteKind::SelfRoute,
                path: vec![src],
                crossed_ixp: None,
                has_peer_hop: false,
            });
        }
        let row = self.dest_slot[dst];
        if row == NO_SLOT {
            return Err(IxpError::DestinationNotComputed(dst));
        }
        let base = row as usize * self.n;
        let kind = match self.class[base + src] {
            CLASS_CUST => RouteKind::Customer,
            CLASS_PEER => RouteKind::Peer,
            CLASS_PROV => RouteKind::Provider,
            _ => return Err(IxpError::NoRoute { from: src, to: dst }),
        };
        // Reconstruct the path by following selected next hops: provider
        // hops down the selection chain, then at most one peer hop, then
        // customer-route hops.
        let mut path = vec![src];
        let mut crossed_ixp = None;
        let mut has_peer_hop = false;
        let mut current = src;
        while self.class[base + current] == CLASS_PROV {
            let next = self.next[base + current] as usize;
            path.push(next);
            current = next;
        }
        if self.class[base + current] == CLASS_PEER {
            has_peer_hop = true;
            let ixp = self.peer_ixp[base + current];
            if ixp != NO_IXP {
                crossed_ixp = Some(ixp as usize);
            }
            let next = self.next[base + current] as usize;
            path.push(next);
            current = next;
        }
        while current != dst {
            let next = self.next[base + current] as usize;
            path.push(next);
            current = next;
        }
        Ok(Route {
            kind,
            path,
            crossed_ixp,
            has_peer_hop,
        })
    }

    /// True when `src` can reach `dst`.
    pub fn reachable(&self, src: AsId, dst: AsId) -> bool {
        self.route(src, dst).is_ok()
    }
}

pub mod reference {
    //! The original array-of-structs routing implementation, retained
    //! verbatim as the differential-testing oracle for the SoA engine and
    //! as the baseline of the `bench_substrates` scaling benches. Route
    //! selection is identical by construction; only the storage layout
    //! and compute strategy differ.

    use super::{Route, RouteKind, INF};
    use crate::topology::{AsId, AsTopology, IxpId};
    use crate::{IxpError, Result};
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// The seed implementation's peer lookup: a filtering scan of the
    /// global link list per queried AS (O(links) + an allocation), kept
    /// so the benches compare the new engine against the true original
    /// access pattern rather than the O(degree) adjacency it replaced.
    /// Yields sessions in the same order as `AsTopology::peers_of`.
    fn peers_of_scan(topology: &AsTopology, id: AsId) -> Vec<(AsId, Option<IxpId>)> {
        topology
            .peer_links()
            .iter()
            .filter_map(|l| {
                if l.a == id {
                    Some((l.b, l.ixp))
                } else if l.b == id {
                    Some((l.a, l.ixp))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Per-destination routing state.
    #[derive(Debug, Clone)]
    struct DestTable {
        dist_cust: Vec<u32>,
        next_cust: Vec<Option<AsId>>,
        dist_peer: Vec<u32>,
        next_peer: Vec<Option<AsId>>,
        peer_ixp: Vec<Option<IxpId>>,
        dist_down: Vec<u32>,
        next_down: Vec<Option<AsId>>,
    }

    /// All-pairs policy routes, one boxed table of seven `Vec`s per
    /// destination.
    #[derive(Debug, Clone)]
    pub struct ReferenceTable {
        n: usize,
        tables: Vec<DestTable>,
    }

    impl ReferenceTable {
        /// Compute routes for every destination.
        pub fn compute(topology: &AsTopology) -> Result<Self> {
            if !topology.is_hierarchy_acyclic() {
                return Err(IxpError::InconsistentRelationship(
                    "provider hierarchy contains a cycle",
                ));
            }
            let n = topology.as_count();
            let mut tables = Vec::with_capacity(n);
            for dst in 0..n {
                tables.push(Self::compute_destination(topology, dst));
            }
            Ok(ReferenceTable { n, tables })
        }

        fn compute_destination(topology: &AsTopology, dst: AsId) -> DestTable {
            let n = topology.as_count();
            let mut t = DestTable {
                dist_cust: vec![INF; n],
                next_cust: vec![None; n],
                dist_peer: vec![INF; n],
                next_peer: vec![None; n],
                peer_ixp: vec![None; n],
                dist_down: vec![INF; n],
                next_down: vec![None; n],
            };
            t.dist_cust[dst] = 0;
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(dst);
            while let Some(u) = queue.pop_front() {
                for &p in topology.providers_of(u) {
                    if t.dist_cust[p] == INF {
                        t.dist_cust[p] = t.dist_cust[u] + 1;
                        t.next_cust[p] = Some(u);
                        queue.push_back(p);
                    }
                }
            }
            for u in 0..n {
                let mut best: Option<(u32, AsId, Option<IxpId>)> = None;
                for (v, ixp) in peers_of_scan(topology, u) {
                    if t.dist_cust[v] != INF {
                        let cand = (t.dist_cust[v] + 1, v, ixp);
                        let better = match best {
                            None => true,
                            Some((bd, bv, _)) => cand.0 < bd || (cand.0 == bd && v < bv),
                        };
                        if better {
                            best = Some(cand);
                        }
                    }
                }
                if let Some((d, v, ixp)) = best {
                    t.dist_peer[u] = d;
                    t.next_peer[u] = Some(v);
                    t.peer_ixp[u] = ixp;
                }
            }
            let selected_len = |t: &DestTable, u: AsId| -> u32 {
                if t.dist_cust[u] != INF {
                    t.dist_cust[u]
                } else if t.dist_peer[u] != INF {
                    t.dist_peer[u]
                } else {
                    t.dist_down[u]
                }
            };
            let mut heap: BinaryHeap<Reverse<(u32, AsId)>> = BinaryHeap::new();
            for u in 0..n {
                let len = selected_len(&t, u);
                if len != INF {
                    heap.push(Reverse((len, u)));
                }
            }
            while let Some(Reverse((len, u))) = heap.pop() {
                if len > selected_len(&t, u) {
                    continue; // stale entry
                }
                for &c in topology.customers_of(u) {
                    let cand = len + 1;
                    if cand < t.dist_down[c] {
                        let before = selected_len(&t, c);
                        t.dist_down[c] = cand;
                        t.next_down[c] = Some(u);
                        let after = selected_len(&t, c);
                        if after < before {
                            heap.push(Reverse((after, c)));
                        }
                    }
                }
            }
            t
        }

        /// Number of ASes covered.
        pub fn as_count(&self) -> usize {
            self.n
        }

        /// The selected route from `src` to `dst`.
        pub fn route(&self, src: AsId, dst: AsId) -> Result<Route> {
            if src >= self.n {
                return Err(IxpError::InvalidAs(src));
            }
            if dst >= self.n {
                return Err(IxpError::InvalidAs(dst));
            }
            if src == dst {
                return Ok(Route {
                    kind: RouteKind::SelfRoute,
                    path: vec![src],
                    crossed_ixp: None,
                    has_peer_hop: false,
                });
            }
            let t = &self.tables[dst];
            let kind = if t.dist_cust[src] != INF {
                RouteKind::Customer
            } else if t.dist_peer[src] != INF {
                RouteKind::Peer
            } else if t.dist_down[src] != INF {
                RouteKind::Provider
            } else {
                return Err(IxpError::NoRoute { from: src, to: dst });
            };
            let mut path = vec![src];
            let mut crossed_ixp = None;
            let mut has_peer_hop = false;
            let mut current = src;
            while t.dist_cust[current] == INF && t.dist_peer[current] == INF {
                let next = t.next_down[current].expect("provider route has next hop");
                path.push(next);
                current = next;
            }
            if t.dist_cust[current] == INF {
                has_peer_hop = true;
                crossed_ixp = t.peer_ixp[current];
                let next = t.next_peer[current].expect("peer route has next hop");
                path.push(next);
                current = next;
            }
            while current != dst {
                let next = t.next_cust[current].expect("customer route has next hop");
                path.push(next);
                current = next;
            }
            Ok(Route {
                kind,
                path,
                crossed_ixp,
                has_peer_hop,
            })
        }

        /// True when `src` can reach `dst`.
        pub fn reachable(&self, src: AsId, dst: AsId) -> bool {
            self.route(src, dst).is_ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{AsKind, AsTopology, RegionTag};

    fn r() -> RegionTag {
        RegionTag::new("X", false)
    }

    /// Classic small topology:
    ///
    /// ```text
    ///        T (transit)
    ///       / \
    ///      A   B        A -- B are NOT peers initially
    ///     /     \
    ///    C       D
    /// ```
    fn diamond() -> (AsTopology, [AsId; 5]) {
        let mut t = AsTopology::new();
        let tr = t.add_as("T", AsKind::Transit, &r(), 1.0);
        let a = t.add_as("A", AsKind::Access, &r(), 1.0);
        let b = t.add_as("B", AsKind::Access, &r(), 1.0);
        let c = t.add_as("C", AsKind::Access, &r(), 1.0);
        let d = t.add_as("D", AsKind::Access, &r(), 1.0);
        t.add_provider(a, tr).unwrap();
        t.add_provider(b, tr).unwrap();
        t.add_provider(c, a).unwrap();
        t.add_provider(d, b).unwrap();
        (t, [tr, a, b, c, d])
    }

    #[test]
    fn self_route() {
        let (t, ids) = diamond();
        let rt = RoutingTable::compute(&t).unwrap();
        let route = rt.route(ids[1], ids[1]).unwrap();
        assert_eq!(route.kind, RouteKind::SelfRoute);
        assert_eq!(route.path, vec![ids[1]]);
        assert_eq!(route.hops(), 0);
    }

    #[test]
    fn provider_route_up_and_down() {
        let (t, [tr, a, b, c, d]) = diamond();
        let rt = RoutingTable::compute(&t).unwrap();
        let route = rt.route(c, d).unwrap();
        assert_eq!(route.kind, RouteKind::Provider);
        assert_eq!(route.path, vec![c, a, tr, b, d]);
        assert!(!route.has_peer_hop);
        assert_eq!(route.transit_hops(), 4);
    }

    #[test]
    fn customer_route_preferred() {
        let (t, [tr, a, _b, c, _d]) = diamond();
        let rt = RoutingTable::compute(&t).unwrap();
        // T reaches C through its customer chain.
        let route = rt.route(tr, c).unwrap();
        assert_eq!(route.kind, RouteKind::Customer);
        assert_eq!(route.path, vec![tr, a, c]);
    }

    #[test]
    fn peer_route_beats_provider_route() {
        let (mut t, [_tr, a, b, c, d]) = diamond();
        t.add_peering(a, b, None).unwrap();
        let rt = RoutingTable::compute(&t).unwrap();
        let route = rt.route(c, d).unwrap();
        // Now C -> A -peer-> B -> D, avoiding the transit tier.
        assert_eq!(route.path, vec![c, a, b, d]);
        assert!(route.has_peer_hop);
        assert_eq!(route.kind, RouteKind::Provider, "C still reaches via its provider A");
        assert_eq!(route.transit_hops(), 2);
    }

    #[test]
    fn peer_hop_records_ixp() {
        let (mut t, [_tr, a, b, c, d]) = diamond();
        let ixp = t.add_ixp("IXP", &r());
        t.join_ixp(a, ixp).unwrap();
        t.join_ixp(b, ixp).unwrap();
        t.multilateral_peering(ixp).unwrap();
        let rt = RoutingTable::compute(&t).unwrap();
        let route = rt.route(c, d).unwrap();
        assert_eq!(route.crossed_ixp, Some(ixp));
    }

    #[test]
    fn valley_free_export_blocks_peer_to_peer_transit() {
        // A - B peers, B - C peers: A must NOT reach C through B
        // (B would be giving free transit between two peers).
        let mut t = AsTopology::new();
        let a = t.add_as("A", AsKind::Access, &r(), 1.0);
        let b = t.add_as("B", AsKind::Access, &r(), 1.0);
        let c = t.add_as("C", AsKind::Access, &r(), 1.0);
        t.add_peering(a, b, None).unwrap();
        t.add_peering(b, c, None).unwrap();
        let rt = RoutingTable::compute(&t).unwrap();
        assert!(rt.route(a, b).is_ok());
        assert_eq!(
            rt.route(a, c).unwrap_err(),
            IxpError::NoRoute { from: a, to: c }
        );
    }

    #[test]
    fn peer_route_not_exported_upward() {
        // C buys from A; A peers with B. C can reach B through A (provider
        // route extends A's peer route downward). But B's provider T must
        // not route to A's peer... construct: does T reach C? via customer
        // chain only.
        let mut t = AsTopology::new();
        let a = t.add_as("A", AsKind::Access, &r(), 1.0);
        let b = t.add_as("B", AsKind::Access, &r(), 1.0);
        let c = t.add_as("C", AsKind::Access, &r(), 1.0);
        t.add_provider(c, a).unwrap();
        t.add_peering(a, b, None).unwrap();
        let rt = RoutingTable::compute(&t).unwrap();
        // Down-export of peer routes: C -> A -peer-> B is valid.
        let route = rt.route(c, b).unwrap();
        assert_eq!(route.path, vec![c, a, b]);
        // But B cannot reach C: B's only neighbor is peer A, and A's route
        // to C is a customer route — exported to peers! So B -> A -> C valid.
        let back = rt.route(b, c).unwrap();
        assert_eq!(back.kind, RouteKind::Peer);
        assert_eq!(back.path, vec![b, a, c]);
    }

    #[test]
    fn customer_preference_overrides_length() {
        // D can reach X via a 1-hop peer route or a 3-hop customer
        // route; Gao–Rexford picks the customer route despite length.
        let mut t = AsTopology::new();
        let d = t.add_as("D", AsKind::Transit, &r(), 1.0);
        let x = t.add_as("X", AsKind::Access, &r(), 1.0);
        let m1 = t.add_as("M1", AsKind::Access, &r(), 1.0);
        let m2 = t.add_as("M2", AsKind::Access, &r(), 1.0);
        // customer chain: d <- m1 <- m2 <- x  (x buys from m2, etc.)
        t.add_provider(m1, d).unwrap();
        t.add_provider(m2, m1).unwrap();
        t.add_provider(x, m2).unwrap();
        // and D also peers directly with X (1-hop peer route).
        t.add_peering(d, x, None).unwrap();
        let rt = RoutingTable::compute(&t).unwrap();
        let route = rt.route(d, x).unwrap();
        assert_eq!(route.kind, RouteKind::Customer);
        assert_eq!(route.path, vec![d, m1, m2, x]);
    }

    #[test]
    fn unreachable_when_no_common_hierarchy() {
        let mut t = AsTopology::new();
        let a = t.add_as("A", AsKind::Access, &r(), 1.0);
        let b = t.add_as("B", AsKind::Access, &r(), 1.0);
        let rt = RoutingTable::compute(&t).unwrap();
        assert!(!rt.reachable(a, b));
        assert!(rt.reachable(a, a));
    }

    #[test]
    fn cyclic_hierarchy_rejected() {
        let mut t = AsTopology::new();
        let a = t.add_as("A", AsKind::Transit, &r(), 1.0);
        let b = t.add_as("B", AsKind::Transit, &r(), 1.0);
        let c = t.add_as("C", AsKind::Transit, &r(), 1.0);
        t.add_provider(a, b).unwrap();
        t.add_provider(b, c).unwrap();
        t.add_provider(c, a).unwrap();
        assert!(RoutingTable::compute(&t).is_err());
        assert!(RoutingTable::route_on_demand(&t.freeze(), a, b).is_err());
    }

    #[test]
    fn invalid_ids_rejected() {
        let (t, _) = diamond();
        let rt = RoutingTable::compute(&t).unwrap();
        assert!(rt.route(99, 0).is_err());
        assert!(rt.route(0, 99).is_err());
    }

    #[test]
    fn shortest_path_tiebreak_is_deterministic() {
        // Two equal-length peer options: lowest id wins.
        let mut t = AsTopology::new();
        let s = t.add_as("S", AsKind::Access, &r(), 1.0);
        let p1 = t.add_as("P1", AsKind::Access, &r(), 1.0);
        let p2 = t.add_as("P2", AsKind::Access, &r(), 1.0);
        let d = t.add_as("D", AsKind::Access, &r(), 1.0);
        t.add_peering(s, p1, None).unwrap();
        t.add_peering(s, p2, None).unwrap();
        t.add_provider(d, p1).unwrap();
        t.add_provider(d, p2).unwrap();
        let rt = RoutingTable::compute(&t).unwrap();
        let route = rt.route(s, d).unwrap();
        assert_eq!(route.path, vec![s, p1, d]);
    }

    #[test]
    fn sampled_destinations_cover_only_their_rows() {
        let (t, [tr, a, _b, _c, d]) = diamond();
        let rt = RoutingTable::compute_for_destinations(&t, &[d, a, d]).unwrap();
        assert_eq!(rt.destinations(), &[a, d]);
        assert!(rt.covers(d) && rt.covers(a) && !rt.covers(tr));
        let full = RoutingTable::compute(&t).unwrap();
        assert_eq!(rt.route(tr, d).unwrap(), full.route(tr, d).unwrap());
        assert_eq!(
            rt.route(a, tr).unwrap_err(),
            IxpError::DestinationNotComputed(tr)
        );
        // Self routes never need a computed row.
        assert_eq!(rt.route(tr, tr).unwrap().kind, RouteKind::SelfRoute);
    }

    #[test]
    fn parallel_compute_is_byte_identical() {
        let (mut t, [_tr, a, b, _c, _d]) = diamond();
        t.add_peering(a, b, None).unwrap();
        let serial = RoutingTable::compute(&t).unwrap();
        for workers in [2, 3, 8] {
            let par = RoutingTable::compute_parallel(&t, workers).unwrap();
            assert_eq!(par, serial, "workers = {workers}");
            assert_eq!(par.digest(), serial.digest());
        }
    }

    #[test]
    fn route_on_demand_matches_table() {
        let (mut t, [tr, a, b, c, d]) = diamond();
        t.add_peering(a, b, None).unwrap();
        let ft = t.freeze();
        let full = RoutingTable::compute(&t).unwrap();
        for src in [tr, a, c] {
            for dst in [b, d, src] {
                assert_eq!(
                    RoutingTable::route_on_demand(&ft, src, dst).unwrap(),
                    full.route(src, dst).unwrap()
                );
            }
        }
    }

    #[test]
    fn reference_implementation_agrees_on_diamond() {
        let (mut t, [tr, a, b, c, d]) = diamond();
        let ixp = t.add_ixp("IXP", &r());
        t.join_ixp(a, ixp).unwrap();
        t.join_ixp(b, ixp).unwrap();
        t.multilateral_peering(ixp).unwrap();
        let soa = RoutingTable::compute(&t).unwrap();
        let naive = reference::ReferenceTable::compute(&t).unwrap();
        for src in [tr, a, b, c, d] {
            for dst in [tr, a, b, c, d] {
                assert_eq!(soa.route(src, dst).ok(), naive.route(src, dst).ok());
            }
        }
    }
}
