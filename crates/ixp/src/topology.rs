//! AS-level topology with business relationships and IXPs.

use crate::{IxpError, Result};
use serde::{Deserialize, Serialize};

/// Identifier of an autonomous system (dense index).
pub type AsId = usize;

/// Identifier of an IXP (dense index).
pub type IxpId = usize;

/// Coarse role of an AS in the interconnection ecosystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsKind {
    /// National incumbent operator (large customer cone, market power).
    Incumbent,
    /// Transit provider.
    Transit,
    /// Access/eyeball ISP.
    Access,
    /// Content/cloud provider.
    Content,
    /// Community network.
    Community,
}

/// Region label for locality accounting. The string names a country or
/// macro-region; `global_south` tags the Global South for the F4 metrics.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegionTag {
    /// Region name (e.g. "MX", "BR", "DE").
    pub name: String,
    /// Whether this region is in the Global South.
    pub global_south: bool,
}

impl RegionTag {
    /// Convenience constructor.
    pub fn new(name: &str, global_south: bool) -> Self {
        RegionTag {
            name: name.to_owned(),
            global_south,
        }
    }
}

/// Metadata for one AS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsInfo {
    /// Dense id.
    pub id: AsId,
    /// Display name.
    pub name: String,
    /// Role.
    pub kind: AsKind,
    /// Home region.
    pub region: RegionTag,
    /// Relative size (users or content weight) for the gravity traffic model.
    pub size: f64,
}

/// Metadata for one IXP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IxpInfo {
    /// Dense id.
    pub id: IxpId,
    /// Display name.
    pub name: String,
    /// Region where the exchange is located.
    pub region: RegionTag,
    /// Member ASes.
    pub members: Vec<AsId>,
}

/// A bilateral peering link, possibly located at an IXP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerLink {
    /// One endpoint.
    pub a: AsId,
    /// Other endpoint.
    pub b: AsId,
    /// IXP where the session is established (None = private peering).
    pub ixp: Option<IxpId>,
}

/// The full topology: ASes, provider relationships, peer links, IXPs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AsTopology {
    ases: Vec<AsInfo>,
    /// `providers[c]` = list of providers of AS `c` (c pays them).
    providers: Vec<Vec<AsId>>,
    /// `customers[p]` = list of customers of AS `p`.
    customers: Vec<Vec<AsId>>,
    peers: Vec<PeerLink>,
    ixps: Vec<IxpInfo>,
}

impl AsTopology {
    /// Create an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of ASes.
    pub fn as_count(&self) -> usize {
        self.ases.len()
    }

    /// Number of IXPs.
    pub fn ixp_count(&self) -> usize {
        self.ixps.len()
    }

    /// Add an AS; returns its id.
    pub fn add_as(&mut self, name: &str, kind: AsKind, region: RegionTag, size: f64) -> AsId {
        let id = self.ases.len();
        self.ases.push(AsInfo {
            id,
            name: name.to_owned(),
            kind,
            region,
            size: size.max(0.0),
        });
        self.providers.push(Vec::new());
        self.customers.push(Vec::new());
        id
    }

    /// AS metadata.
    pub fn as_info(&self, id: AsId) -> Result<&AsInfo> {
        self.ases.get(id).ok_or(IxpError::InvalidAs(id))
    }

    /// All AS infos.
    pub fn ases(&self) -> &[AsInfo] {
        &self.ases
    }

    /// All IXP infos.
    pub fn ixps(&self) -> &[IxpInfo] {
        &self.ixps
    }

    /// All bilateral peer links.
    pub fn peer_links(&self) -> &[PeerLink] {
        &self.peers
    }

    /// Record that `customer` buys transit from `provider`.
    pub fn add_provider(&mut self, customer: AsId, provider: AsId) -> Result<()> {
        self.check(customer)?;
        self.check(provider)?;
        if customer == provider {
            return Err(IxpError::InconsistentRelationship("self-provider"));
        }
        if self.providers[provider].contains(&customer) {
            return Err(IxpError::InconsistentRelationship(
                "A provides for B and B provides for A",
            ));
        }
        if !self.providers[customer].contains(&provider) {
            self.providers[customer].push(provider);
            self.customers[provider].push(customer);
        }
        Ok(())
    }

    /// Record a settlement-free bilateral peering, optionally at an IXP.
    pub fn add_peering(&mut self, a: AsId, b: AsId, ixp: Option<IxpId>) -> Result<()> {
        self.check(a)?;
        self.check(b)?;
        if a == b {
            return Err(IxpError::InconsistentRelationship("self-peering"));
        }
        if let Some(x) = ixp {
            if x >= self.ixps.len() {
                return Err(IxpError::InvalidIxp(x));
            }
        }
        let (lo, hi) = (a.min(b), a.max(b));
        if !self
            .peers
            .iter()
            .any(|p| p.a == lo && p.b == hi && p.ixp == ixp)
        {
            self.peers.push(PeerLink { a: lo, b: hi, ixp });
        }
        Ok(())
    }

    /// Add an IXP; returns its id.
    pub fn add_ixp(&mut self, name: &str, region: RegionTag) -> IxpId {
        let id = self.ixps.len();
        self.ixps.push(IxpInfo {
            id,
            name: name.to_owned(),
            region,
            members: Vec::new(),
        });
        id
    }

    /// Join an AS to an IXP (membership only; call
    /// [`AsTopology::multilateral_peering`] to establish route-server
    /// sessions).
    pub fn join_ixp(&mut self, asn: AsId, ixp: IxpId) -> Result<()> {
        self.check(asn)?;
        let info = self.ixps.get_mut(ixp).ok_or(IxpError::InvalidIxp(ixp))?;
        if !info.members.contains(&asn) {
            info.members.push(asn);
        }
        Ok(())
    }

    /// Establish route-server style multilateral peering: every pair of
    /// members of the IXP peers bilaterally at the exchange. Existing
    /// provider relationships between members are left in place (the peer
    /// route will win by local preference anyway).
    pub fn multilateral_peering(&mut self, ixp: IxpId) -> Result<()> {
        let members = self
            .ixps
            .get(ixp)
            .ok_or(IxpError::InvalidIxp(ixp))?
            .members
            .clone();
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                self.add_peering(members[i], members[j], Some(ixp))?;
            }
        }
        Ok(())
    }

    /// Providers of an AS.
    pub fn providers_of(&self, id: AsId) -> &[AsId] {
        &self.providers[id]
    }

    /// Customers of an AS.
    pub fn customers_of(&self, id: AsId) -> &[AsId] {
        &self.customers[id]
    }

    /// Peers of an AS with the IXP (if any) of each session.
    pub fn peers_of(&self, id: AsId) -> Vec<(AsId, Option<IxpId>)> {
        self.peers
            .iter()
            .filter_map(|p| {
                if p.a == id {
                    Some((p.b, p.ixp))
                } else if p.b == id {
                    Some((p.a, p.ixp))
                } else {
                    None
                }
            })
            .collect()
    }

    /// The customer cone of an AS: itself plus all (transitive) customers.
    pub fn customer_cone(&self, id: AsId) -> Result<Vec<AsId>> {
        self.check(id)?;
        let mut seen = vec![false; self.ases.len()];
        let mut stack = vec![id];
        seen[id] = true;
        let mut cone = Vec::new();
        while let Some(u) = stack.pop() {
            cone.push(u);
            for &c in &self.customers[u] {
                if !seen[c] {
                    seen[c] = true;
                    stack.push(c);
                }
            }
        }
        cone.sort_unstable();
        Ok(cone)
    }

    /// Detect provider cycles (A transitively provides for itself), which
    /// would break valley-free routing. Returns true when the
    /// customer→provider graph is acyclic.
    pub fn is_hierarchy_acyclic(&self) -> bool {
        // Kahn's algorithm over customer -> provider edges.
        let n = self.ases.len();
        let mut indeg = vec![0usize; n];
        for provs in &self.providers {
            for &p in provs {
                indeg[p] += 1;
            }
        }
        let mut queue: Vec<AsId> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut seen = 0;
        while let Some(u) = queue.pop() {
            seen += 1;
            for &p in &self.providers[u] {
                indeg[p] -= 1;
                if indeg[p] == 0 {
                    queue.push(p);
                }
            }
        }
        seen == n
    }

    fn check(&self, id: AsId) -> Result<()> {
        if id < self.ases.len() {
            Ok(())
        } else {
            Err(IxpError::InvalidAs(id))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> RegionTag {
        RegionTag::new("MX", true)
    }

    fn small() -> AsTopology {
        let mut t = AsTopology::new();
        let incumbent = t.add_as("Incumbent", AsKind::Incumbent, region(), 100.0);
        let isp_a = t.add_as("ISP-A", AsKind::Access, region(), 10.0);
        let isp_b = t.add_as("ISP-B", AsKind::Access, region(), 8.0);
        t.add_provider(isp_a, incumbent).unwrap();
        t.add_provider(isp_b, incumbent).unwrap();
        t
    }

    #[test]
    fn add_as_assigns_dense_ids() {
        let t = small();
        assert_eq!(t.as_count(), 3);
        assert_eq!(t.as_info(1).unwrap().name, "ISP-A");
        assert!(t.as_info(9).is_err());
    }

    #[test]
    fn provider_relationships_recorded_both_ways() {
        let t = small();
        assert_eq!(t.providers_of(1), &[0]);
        assert_eq!(t.customers_of(0), &[1, 2]);
        assert!(t.providers_of(0).is_empty());
    }

    #[test]
    fn self_and_mutual_provider_rejected() {
        let mut t = small();
        assert!(t.add_provider(0, 0).is_err());
        assert!(t.add_provider(0, 1).is_err(), "1 already buys from 0");
    }

    #[test]
    fn duplicate_provider_is_idempotent() {
        let mut t = small();
        t.add_provider(1, 0).unwrap();
        assert_eq!(t.providers_of(1), &[0]);
    }

    #[test]
    fn peering_dedup_and_lookup() {
        let mut t = small();
        t.add_peering(1, 2, None).unwrap();
        t.add_peering(2, 1, None).unwrap();
        assert_eq!(t.peer_links().len(), 1);
        assert_eq!(t.peers_of(1), vec![(2, None)]);
        assert!(t.add_peering(1, 1, None).is_err());
    }

    #[test]
    fn ixp_membership_and_multilateral_peering() {
        let mut t = small();
        let ixp = t.add_ixp("IXP-MX", region());
        t.join_ixp(1, ixp).unwrap();
        t.join_ixp(2, ixp).unwrap();
        t.join_ixp(1, ixp).unwrap(); // idempotent
        assert_eq!(t.ixps()[0].members, vec![1, 2]);
        t.multilateral_peering(ixp).unwrap();
        assert_eq!(t.peers_of(1), vec![(2, Some(ixp))]);
    }

    #[test]
    fn invalid_ixp_references_rejected() {
        let mut t = small();
        assert!(t.join_ixp(0, 5).is_err());
        assert!(t.add_peering(1, 2, Some(9)).is_err());
        assert!(t.multilateral_peering(3).is_err());
    }

    #[test]
    fn customer_cone_transitive() {
        let mut t = small();
        let reseller = t.add_as("Reseller", AsKind::Access, region(), 2.0);
        t.add_provider(reseller, 1).unwrap(); // reseller buys from ISP-A
        assert_eq!(t.customer_cone(0).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(t.customer_cone(1).unwrap(), vec![1, 3]);
        assert_eq!(t.customer_cone(2).unwrap(), vec![2]);
    }

    #[test]
    fn acyclic_hierarchy_detected() {
        let t = small();
        assert!(t.is_hierarchy_acyclic());
        // Build a 3-cycle: 0 -> 1 -> 2 -> 0 (providers).
        let mut c = AsTopology::new();
        let a = c.add_as("a", AsKind::Transit, region(), 1.0);
        let b = c.add_as("b", AsKind::Transit, region(), 1.0);
        let d = c.add_as("c", AsKind::Transit, region(), 1.0);
        c.add_provider(a, b).unwrap();
        c.add_provider(b, d).unwrap();
        c.add_provider(d, a).unwrap();
        assert!(!c.is_hierarchy_acyclic());
    }

    #[test]
    fn negative_size_clamped() {
        let mut t = AsTopology::new();
        let id = t.add_as("x", AsKind::Access, region(), -5.0);
        assert_eq!(t.as_info(id).unwrap().size, 0.0);
    }
}
