//! AS-level topology with business relationships and IXPs.
//!
//! Two representations live here:
//!
//! * [`AsTopology`] — the mutable builder: pointer-y adjacency lists plus
//!   metadata, convenient for scenario construction and regulation edits.
//!   Region labels are *interned*: every AS and IXP stores a [`RegionId`]
//!   index into one shared region table instead of an owned
//!   [`RegionTag`], so building a 100k-AS topology allocates a handful of
//!   region strings instead of 100k clones.
//! * [`FrozenTopology`] — the immutable compute form produced by
//!   [`AsTopology::freeze`]: providers, customers and peers as CSR
//!   (offset + edge) `u32` arrays, cache-friendly and cheap to share
//!   across worker threads. The routing engine runs on this form.

use crate::{IxpError, Result};
use serde::{Deserialize, Serialize};

/// Identifier of an autonomous system (dense index).
pub type AsId = usize;

/// Identifier of an IXP (dense index).
pub type IxpId = usize;

/// Identifier of an interned region (dense index into
/// [`AsTopology::regions`]).
pub type RegionId = u32;

/// Sentinel for "no IXP" in the frozen peer-session arrays.
pub const NO_IXP: u32 = u32::MAX;

/// Coarse role of an AS in the interconnection ecosystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsKind {
    /// National incumbent operator (large customer cone, market power).
    Incumbent,
    /// Transit provider.
    Transit,
    /// Access/eyeball ISP.
    Access,
    /// Content/cloud provider.
    Content,
    /// Community network.
    Community,
}

/// Region label for locality accounting. The string names a country or
/// macro-region; `global_south` tags the Global South for the F4 metrics.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegionTag {
    /// Region name (e.g. "MX", "BR", "DE").
    pub name: String,
    /// Whether this region is in the Global South.
    pub global_south: bool,
}

impl RegionTag {
    /// Convenience constructor.
    pub fn new(name: &str, global_south: bool) -> Self {
        RegionTag {
            name: name.to_owned(),
            global_south,
        }
    }
}

/// Metadata for one AS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsInfo {
    /// Dense id.
    pub id: AsId,
    /// Display name.
    pub name: String,
    /// Role.
    pub kind: AsKind,
    /// Home region, interned; resolve with [`AsTopology::region`].
    pub region: RegionId,
    /// Relative size (users or content weight) for the gravity traffic model.
    pub size: f64,
}

/// Metadata for one IXP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IxpInfo {
    /// Dense id.
    pub id: IxpId,
    /// Display name.
    pub name: String,
    /// Region where the exchange is located, interned.
    pub region: RegionId,
    /// Member ASes.
    pub members: Vec<AsId>,
}

/// A bilateral peering link, possibly located at an IXP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerLink {
    /// One endpoint.
    pub a: AsId,
    /// Other endpoint.
    pub b: AsId,
    /// IXP where the session is established (None = private peering).
    pub ixp: Option<IxpId>,
}

/// The full topology: ASes, provider relationships, peer links, IXPs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AsTopology {
    ases: Vec<AsInfo>,
    /// `providers[c]` = list of providers of AS `c` (c pays them).
    providers: Vec<Vec<AsId>>,
    /// `customers[p]` = list of customers of AS `p`.
    customers: Vec<Vec<AsId>>,
    peers: Vec<PeerLink>,
    /// Per-AS peer sessions in global insertion order, kept in sync with
    /// `peers` so lookup and dedup are O(degree) instead of O(links).
    peer_adj: Vec<Vec<(AsId, Option<IxpId>)>>,
    ixps: Vec<IxpInfo>,
    /// Interned region table; `AsInfo::region`/`IxpInfo::region` index here.
    regions: Vec<RegionTag>,
}

impl AsTopology {
    /// Create an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of ASes.
    pub fn as_count(&self) -> usize {
        self.ases.len()
    }

    /// Number of IXPs.
    pub fn ixp_count(&self) -> usize {
        self.ixps.len()
    }

    /// Intern a region, returning the id of an existing identical entry or
    /// appending a new one. The table is tiny (countries/macro-regions),
    /// so a linear scan beats any hashing setup.
    pub fn intern_region(&mut self, tag: &RegionTag) -> RegionId {
        if let Some(i) = self.regions.iter().position(|r| r == tag) {
            return i as RegionId;
        }
        self.regions.push(tag.clone());
        (self.regions.len() - 1) as RegionId
    }

    /// Resolve an interned region id.
    ///
    /// # Panics
    /// Panics if `id` did not come from this topology's region table.
    pub fn region(&self, id: RegionId) -> &RegionTag {
        &self.regions[id as usize]
    }

    /// The interned region table.
    pub fn regions(&self) -> &[RegionTag] {
        &self.regions
    }

    /// Find an interned region by name (first match).
    pub fn find_region(&self, name: &str) -> Option<RegionId> {
        self.regions
            .iter()
            .position(|r| r.name == name)
            .map(|i| i as RegionId)
    }

    /// Add an AS; returns its id. The region is interned (cloned at most
    /// once per distinct region, not per AS).
    pub fn add_as(&mut self, name: &str, kind: AsKind, region: &RegionTag, size: f64) -> AsId {
        let region = self.intern_region(region);
        self.push_as(name.to_owned(), kind, region, size)
    }

    /// Add an AS homed in an already-interned region — the allocation-free
    /// fast path for bulk generators.
    pub fn add_as_in(
        &mut self,
        name: String,
        kind: AsKind,
        region: RegionId,
        size: f64,
    ) -> Result<AsId> {
        if region as usize >= self.regions.len() {
            return Err(IxpError::InvalidRegion(region));
        }
        Ok(self.push_as(name, kind, region, size))
    }

    fn push_as(&mut self, name: String, kind: AsKind, region: RegionId, size: f64) -> AsId {
        let id = self.ases.len();
        self.ases.push(AsInfo {
            id,
            name,
            kind,
            region,
            size: size.max(0.0),
        });
        self.providers.push(Vec::new());
        self.customers.push(Vec::new());
        self.peer_adj.push(Vec::new());
        id
    }

    /// AS metadata.
    pub fn as_info(&self, id: AsId) -> Result<&AsInfo> {
        self.ases.get(id).ok_or(IxpError::InvalidAs(id))
    }

    /// All AS infos.
    pub fn ases(&self) -> &[AsInfo] {
        &self.ases
    }

    /// All IXP infos.
    pub fn ixps(&self) -> &[IxpInfo] {
        &self.ixps
    }

    /// All bilateral peer links.
    pub fn peer_links(&self) -> &[PeerLink] {
        &self.peers
    }

    /// Record that `customer` buys transit from `provider`.
    pub fn add_provider(&mut self, customer: AsId, provider: AsId) -> Result<()> {
        self.check(customer)?;
        self.check(provider)?;
        if customer == provider {
            return Err(IxpError::InconsistentRelationship("self-provider"));
        }
        if self.providers[provider].contains(&customer) {
            return Err(IxpError::InconsistentRelationship(
                "A provides for B and B provides for A",
            ));
        }
        if !self.providers[customer].contains(&provider) {
            self.providers[customer].push(provider);
            self.customers[provider].push(customer);
        }
        Ok(())
    }

    /// Record a settlement-free bilateral peering, optionally at an IXP.
    pub fn add_peering(&mut self, a: AsId, b: AsId, ixp: Option<IxpId>) -> Result<()> {
        self.check(a)?;
        self.check(b)?;
        if a == b {
            return Err(IxpError::InconsistentRelationship("self-peering"));
        }
        if let Some(x) = ixp {
            if x >= self.ixps.len() {
                return Err(IxpError::InvalidIxp(x));
            }
        }
        let (lo, hi) = (a.min(b), a.max(b));
        // Dedup against the lower endpoint's adjacency: O(degree), where the
        // old scan of the global link list was O(total links) per insert.
        if !self.peer_adj[lo].iter().any(|&(v, x)| v == hi && x == ixp) {
            self.peers.push(PeerLink { a: lo, b: hi, ixp });
            self.peer_adj[lo].push((hi, ixp));
            self.peer_adj[hi].push((lo, ixp));
        }
        Ok(())
    }

    /// Add an IXP; returns its id. The region is interned.
    pub fn add_ixp(&mut self, name: &str, region: &RegionTag) -> IxpId {
        let region = self.intern_region(region);
        let id = self.ixps.len();
        self.ixps.push(IxpInfo {
            id,
            name: name.to_owned(),
            region,
            members: Vec::new(),
        });
        id
    }

    /// Add an IXP in an already-interned region.
    pub fn add_ixp_in(&mut self, name: String, region: RegionId) -> Result<IxpId> {
        if region as usize >= self.regions.len() {
            return Err(IxpError::InvalidRegion(region));
        }
        let id = self.ixps.len();
        self.ixps.push(IxpInfo {
            id,
            name,
            region,
            members: Vec::new(),
        });
        Ok(id)
    }

    /// Join an AS to an IXP (membership only; call
    /// [`AsTopology::multilateral_peering`] to establish route-server
    /// sessions).
    pub fn join_ixp(&mut self, asn: AsId, ixp: IxpId) -> Result<()> {
        self.check(asn)?;
        let info = self.ixps.get_mut(ixp).ok_or(IxpError::InvalidIxp(ixp))?;
        if !info.members.contains(&asn) {
            info.members.push(asn);
        }
        Ok(())
    }

    /// Establish route-server style multilateral peering: every pair of
    /// members of the IXP peers bilaterally at the exchange. Existing
    /// provider relationships between members are left in place (the peer
    /// route will win by local preference anyway).
    ///
    /// This is quadratic in the member count by definition — fine for the
    /// case-study exchanges; internet-scale generators should cap
    /// per-member sessions instead (see `synthetic_internet`).
    pub fn multilateral_peering(&mut self, ixp: IxpId) -> Result<()> {
        let members = self
            .ixps
            .get(ixp)
            .ok_or(IxpError::InvalidIxp(ixp))?
            .members
            .clone();
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                self.add_peering(members[i], members[j], Some(ixp))?;
            }
        }
        Ok(())
    }

    /// Providers of an AS.
    pub fn providers_of(&self, id: AsId) -> &[AsId] {
        &self.providers[id]
    }

    /// Customers of an AS.
    pub fn customers_of(&self, id: AsId) -> &[AsId] {
        &self.customers[id]
    }

    /// Peer sessions of an AS with the IXP (if any) of each, in global
    /// link insertion order.
    pub fn peers_of(&self, id: AsId) -> &[(AsId, Option<IxpId>)] {
        &self.peer_adj[id]
    }

    /// The customer cone of an AS: itself plus all (transitive) customers.
    pub fn customer_cone(&self, id: AsId) -> Result<Vec<AsId>> {
        self.check(id)?;
        let mut seen = vec![false; self.ases.len()];
        let mut stack = vec![id];
        seen[id] = true;
        let mut cone = Vec::new();
        while let Some(u) = stack.pop() {
            cone.push(u);
            for &c in &self.customers[u] {
                if !seen[c] {
                    seen[c] = true;
                    stack.push(c);
                }
            }
        }
        cone.sort_unstable();
        Ok(cone)
    }

    /// Detect provider cycles (A transitively provides for itself), which
    /// would break valley-free routing. Returns true when the
    /// customer→provider graph is acyclic.
    pub fn is_hierarchy_acyclic(&self) -> bool {
        // Kahn's algorithm over customer -> provider edges.
        let n = self.ases.len();
        let mut indeg = vec![0usize; n];
        for provs in &self.providers {
            for &p in provs {
                indeg[p] += 1;
            }
        }
        let mut queue: Vec<AsId> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut seen = 0;
        while let Some(u) = queue.pop() {
            seen += 1;
            for &p in &self.providers[u] {
                indeg[p] -= 1;
                if indeg[p] == 0 {
                    queue.push(p);
                }
            }
        }
        seen == n
    }

    /// Compact the adjacency into the immutable CSR compute form. O(V+E).
    pub fn freeze(&self) -> FrozenTopology {
        let n = self.ases.len();
        assert!(n < u32::MAX as usize, "topology too large for u32 indices");
        let build = |adj: &dyn Fn(usize) -> usize| -> Vec<u32> {
            let mut off = Vec::with_capacity(n + 1);
            let mut acc = 0u32;
            off.push(0);
            for u in 0..n {
                acc += adj(u) as u32;
                off.push(acc);
            }
            off
        };
        let prov_off = build(&|u| self.providers[u].len());
        let cust_off = build(&|u| self.customers[u].len());
        let peer_off = build(&|u| self.peer_adj[u].len());
        let mut prov = Vec::with_capacity(prov_off[n] as usize);
        let mut cust = Vec::with_capacity(cust_off[n] as usize);
        let mut peer_nbr = Vec::with_capacity(peer_off[n] as usize);
        let mut peer_ixp = Vec::with_capacity(peer_off[n] as usize);
        for u in 0..n {
            prov.extend(self.providers[u].iter().map(|&p| p as u32));
            cust.extend(self.customers[u].iter().map(|&c| c as u32));
            // Per-node insertion order is preserved: the routing tie-break
            // keeps the *first* candidate among equal (distance, neighbor)
            // pairs, so reordering sessions here would change which IXP a
            // route reports crossing.
            for &(v, ixp) in &self.peer_adj[u] {
                peer_nbr.push(v as u32);
                peer_ixp.push(ixp.map_or(NO_IXP, |x| x as u32));
            }
        }
        FrozenTopology {
            n,
            prov_off,
            prov,
            cust_off,
            cust,
            peer_off,
            peer_nbr,
            peer_ixp,
        }
    }

    fn check(&self, id: AsId) -> Result<()> {
        if id < self.ases.len() {
            Ok(())
        } else {
            Err(IxpError::InvalidAs(id))
        }
    }
}

/// Immutable CSR (offset + edge array) form of an [`AsTopology`], the
/// input of the routing engine: three adjacency structures over dense
/// `u32` ids, contiguous in memory and free of per-node allocations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrozenTopology {
    n: usize,
    prov_off: Vec<u32>,
    prov: Vec<u32>,
    cust_off: Vec<u32>,
    cust: Vec<u32>,
    peer_off: Vec<u32>,
    peer_nbr: Vec<u32>,
    /// Parallel to `peer_nbr`; [`NO_IXP`] marks private peering.
    peer_ixp: Vec<u32>,
}

impl FrozenTopology {
    /// Number of ASes.
    pub fn as_count(&self) -> usize {
        self.n
    }

    /// Providers of `u`.
    #[inline]
    pub fn providers_of(&self, u: usize) -> &[u32] {
        &self.prov[self.prov_off[u] as usize..self.prov_off[u + 1] as usize]
    }

    /// Customers of `u`.
    #[inline]
    pub fn customers_of(&self, u: usize) -> &[u32] {
        &self.cust[self.cust_off[u] as usize..self.cust_off[u + 1] as usize]
    }

    /// Peer sessions of `u` as parallel slices: neighbors and the IXP of
    /// each session ([`NO_IXP`] = private), in insertion order.
    #[inline]
    pub fn peer_sessions_of(&self, u: usize) -> (&[u32], &[u32]) {
        let (lo, hi) = (self.peer_off[u] as usize, self.peer_off[u + 1] as usize);
        (&self.peer_nbr[lo..hi], &self.peer_ixp[lo..hi])
    }

    /// Kahn's algorithm over the frozen customer→provider edges; mirrors
    /// [`AsTopology::is_hierarchy_acyclic`].
    pub fn is_hierarchy_acyclic(&self) -> bool {
        let n = self.n;
        let mut indeg = vec![0u32; n];
        for &p in &self.prov {
            indeg[p as usize] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut seen = 0;
        while let Some(u) = queue.pop() {
            seen += 1;
            for &p in self.providers_of(u) {
                indeg[p as usize] -= 1;
                if indeg[p as usize] == 0 {
                    queue.push(p as usize);
                }
            }
        }
        seen == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> RegionTag {
        RegionTag::new("MX", true)
    }

    fn small() -> AsTopology {
        let mut t = AsTopology::new();
        let incumbent = t.add_as("Incumbent", AsKind::Incumbent, &region(), 100.0);
        let isp_a = t.add_as("ISP-A", AsKind::Access, &region(), 10.0);
        let isp_b = t.add_as("ISP-B", AsKind::Access, &region(), 8.0);
        t.add_provider(isp_a, incumbent).unwrap();
        t.add_provider(isp_b, incumbent).unwrap();
        t
    }

    #[test]
    fn add_as_assigns_dense_ids() {
        let t = small();
        assert_eq!(t.as_count(), 3);
        assert_eq!(t.as_info(1).unwrap().name, "ISP-A");
        assert!(t.as_info(9).is_err());
    }

    #[test]
    fn regions_are_interned_once() {
        let t = small();
        assert_eq!(t.regions().len(), 1);
        assert_eq!(t.region(t.as_info(0).unwrap().region), &region());
        assert_eq!(t.find_region("MX"), Some(0));
        assert_eq!(t.find_region("ZZ"), None);
    }

    #[test]
    fn add_as_in_validates_region() {
        let mut t = small();
        let mx = t.find_region("MX").unwrap();
        let id = t.add_as_in("Fast".to_owned(), AsKind::Access, mx, 1.0).unwrap();
        assert_eq!(t.as_info(id).unwrap().region, mx);
        assert_eq!(
            t.add_as_in("Bad".to_owned(), AsKind::Access, 7, 1.0),
            Err(IxpError::InvalidRegion(7))
        );
        assert!(t.add_ixp_in("IX".to_owned(), mx).is_ok());
        assert!(t.add_ixp_in("IX-bad".to_owned(), 9).is_err());
    }

    #[test]
    fn provider_relationships_recorded_both_ways() {
        let t = small();
        assert_eq!(t.providers_of(1), &[0]);
        assert_eq!(t.customers_of(0), &[1, 2]);
        assert!(t.providers_of(0).is_empty());
    }

    #[test]
    fn self_and_mutual_provider_rejected() {
        let mut t = small();
        assert!(t.add_provider(0, 0).is_err());
        assert!(t.add_provider(0, 1).is_err(), "1 already buys from 0");
    }

    #[test]
    fn duplicate_provider_is_idempotent() {
        let mut t = small();
        t.add_provider(1, 0).unwrap();
        assert_eq!(t.providers_of(1), &[0]);
    }

    #[test]
    fn peering_dedup_and_lookup() {
        let mut t = small();
        t.add_peering(1, 2, None).unwrap();
        t.add_peering(2, 1, None).unwrap();
        assert_eq!(t.peer_links().len(), 1);
        assert_eq!(t.peers_of(1), vec![(2, None)]);
        assert!(t.add_peering(1, 1, None).is_err());
    }

    #[test]
    fn ixp_membership_and_multilateral_peering() {
        let mut t = small();
        let ixp = t.add_ixp("IXP-MX", &region());
        t.join_ixp(1, ixp).unwrap();
        t.join_ixp(2, ixp).unwrap();
        t.join_ixp(1, ixp).unwrap(); // idempotent
        assert_eq!(t.ixps()[0].members, vec![1, 2]);
        t.multilateral_peering(ixp).unwrap();
        assert_eq!(t.peers_of(1), vec![(2, Some(ixp))]);
    }

    #[test]
    fn invalid_ixp_references_rejected() {
        let mut t = small();
        assert!(t.join_ixp(0, 5).is_err());
        assert!(t.add_peering(1, 2, Some(9)).is_err());
        assert!(t.multilateral_peering(3).is_err());
    }

    #[test]
    fn customer_cone_transitive() {
        let mut t = small();
        let reseller = t.add_as("Reseller", AsKind::Access, &region(), 2.0);
        t.add_provider(reseller, 1).unwrap(); // reseller buys from ISP-A
        assert_eq!(t.customer_cone(0).unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(t.customer_cone(1).unwrap(), vec![1, 3]);
        assert_eq!(t.customer_cone(2).unwrap(), vec![2]);
    }

    #[test]
    fn acyclic_hierarchy_detected() {
        let t = small();
        assert!(t.is_hierarchy_acyclic());
        // Build a 3-cycle: 0 -> 1 -> 2 -> 0 (providers).
        let mut c = AsTopology::new();
        let a = c.add_as("a", AsKind::Transit, &region(), 1.0);
        let b = c.add_as("b", AsKind::Transit, &region(), 1.0);
        let d = c.add_as("c", AsKind::Transit, &region(), 1.0);
        c.add_provider(a, b).unwrap();
        c.add_provider(b, d).unwrap();
        c.add_provider(d, a).unwrap();
        assert!(!c.is_hierarchy_acyclic());
        assert!(t.freeze().is_hierarchy_acyclic());
        assert!(!c.freeze().is_hierarchy_acyclic());
    }

    #[test]
    fn negative_size_clamped() {
        let mut t = AsTopology::new();
        let id = t.add_as("x", AsKind::Access, &region(), -5.0);
        assert_eq!(t.as_info(id).unwrap().size, 0.0);
    }

    #[test]
    fn freeze_mirrors_adjacency() {
        let mut t = small();
        let ixp = t.add_ixp("IXP-MX", &region());
        t.join_ixp(1, ixp).unwrap();
        t.join_ixp(2, ixp).unwrap();
        t.multilateral_peering(ixp).unwrap();
        t.add_peering(0, 2, None).unwrap();
        let f = t.freeze();
        assert_eq!(f.as_count(), t.as_count());
        for u in 0..t.as_count() {
            let provs: Vec<u32> = t.providers_of(u).iter().map(|&p| p as u32).collect();
            assert_eq!(f.providers_of(u), &provs[..]);
            let custs: Vec<u32> = t.customers_of(u).iter().map(|&c| c as u32).collect();
            assert_eq!(f.customers_of(u), &custs[..]);
            let (nbrs, ixps) = f.peer_sessions_of(u);
            let want: Vec<(u32, u32)> = t
                .peers_of(u)
                .iter()
                .map(|&(v, x)| (v as u32, x.map_or(NO_IXP, |x| x as u32)))
                .collect();
            let got: Vec<(u32, u32)> =
                nbrs.iter().copied().zip(ixps.iter().copied()).collect();
            assert_eq!(got, want);
        }
    }
}
