//! # humnet-ixp
//!
//! Interconnection substrate for the `humnet` toolkit.
//!
//! Section 3 of the paper rests on two ethnographic findings about Internet
//! exchange points:
//!
//! 1. **Mexico/Telmex** (Rosa 2021): a law mandated that the incumbent peer
//!    at the national IXP; the incumbent complied on paper by "playing with
//!    different ASNs", leaving domestic traffic flowing through its paid
//!    transit anyway.
//! 2. **Brazil vs Germany** (Rosa 2022): despite 35+ local IXPs, Brazilian
//!    ISPs interconnect in Europe, because the big content providers have
//!    few points of presence in the Global South — giant Northern IXPs act
//!    as "alternatives to Tier 1".
//!
//! Both findings are *routing outcomes of human and institutional
//! behaviour*. This crate builds the machinery to reproduce them:
//!
//! * [`topology`] — AS-level topology with Gao–Rexford business
//!   relationships (customer/provider, settlement-free peer) and IXPs with
//!   multilateral peering via route servers;
//! * [`routing`] — valley-free policy routing: customer > peer > provider
//!   preference, selective export, shortest-path tiebreaks;
//! * [`traffic`] — gravity-model traffic matrices and path assignment with
//!   transit-cost accounting;
//! * [`metrics`] — locality and exchange-share metrics;
//! * [`regulation`] — mandatory-peering rules and the ASN-splitting
//!   circumvention strategy;
//! * [`scenario`] — parameterized builders for the Mexico and
//!   Brazil/Germany case studies (experiments **F3** and **F4**);
//! * [`internet`] — a seeded `synthetic_internet(n, seed)` generator for
//!   internet-scale topologies (preferential-attachment customer trees,
//!   region-biased peering at generated IXPs), the substrate of the scale
//!   experiment **F10**.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod growth;
pub mod internet;
pub mod metrics;
pub mod regulation;
pub mod routing;
pub mod scenario;
pub mod topology;
pub mod traffic;

pub use growth::{simulate_growth, simulate_growth_instrumented, GrowingIxp, GrowthConfig, GrowthOutcome};
pub use internet::{synthetic_internet, synthetic_internet_with, InternetConfig};
pub use metrics::{domestic_ixp_share, foreign_exchange_share, LocalityReport};
pub use regulation::{CircumventionStrategy, PeeringRegulation};
pub use routing::{Route, RouteKind, RoutingTable};
pub use scenario::{MexicoConfig, MexicoScenario, TwoRegionConfig, TwoRegionScenario};
pub use topology::{
    AsId, AsInfo, AsKind, AsTopology, FrozenTopology, IxpId, IxpInfo, RegionId, RegionTag, NO_IXP,
};
pub use traffic::{FlowAssignment, TrafficConfig, TrafficMatrix};

/// Errors produced by the interconnection substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IxpError {
    /// An AS id was out of range.
    InvalidAs(usize),
    /// An IXP id was out of range.
    InvalidIxp(usize),
    /// A parameter was outside its valid domain.
    InvalidParameter(&'static str),
    /// A relationship would be inconsistent (e.g. an AS providing for itself).
    InconsistentRelationship(&'static str),
    /// The operation requires routes that do not exist.
    NoRoute {
        /// Source AS.
        from: usize,
        /// Destination AS.
        to: usize,
    },
    /// A region id was out of range.
    InvalidRegion(u32),
    /// A route lookup named a destination the table was not computed for
    /// (see [`RoutingTable::compute_for_destinations`]).
    DestinationNotComputed(usize),
}

impl std::fmt::Display for IxpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IxpError::InvalidAs(id) => write!(f, "invalid AS id {id}"),
            IxpError::InvalidIxp(id) => write!(f, "invalid IXP id {id}"),
            IxpError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            IxpError::InconsistentRelationship(what) => {
                write!(f, "inconsistent relationship: {what}")
            }
            IxpError::NoRoute { from, to } => write!(f, "no route from AS{from} to AS{to}"),
            IxpError::InvalidRegion(id) => write!(f, "invalid region id {id}"),
            IxpError::DestinationNotComputed(dst) => {
                write!(f, "routes toward AS{dst} were not computed")
            }
        }
    }
}

impl std::error::Error for IxpError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, IxpError>;
