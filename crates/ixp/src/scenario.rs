//! Parameterized builders for the paper's two IXP case studies.

use crate::metrics::{domestic_ixp_share, foreign_exchange_share, locality_report, LocalityReport};
use crate::regulation::{apply_regulation, CircumventionStrategy, PeeringRegulation};
use crate::routing::RoutingTable;
use crate::topology::{AsKind, AsTopology, RegionTag};
use crate::traffic::{total_transit_cost, FlowAssignment, TrafficConfig, TrafficMatrix};
use crate::{IxpError, Result};
use humnet_resilience::{FaultHook, FaultKind, NoFaults};
use humnet_stats::Rng;
use humnet_telemetry::{Event, Telemetry};
use serde::{Deserialize, Serialize};

/// Configuration of the Mexico/Telmex scenario (experiment **F3**).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MexicoConfig {
    /// Number of competitor access ISPs at the national IXP.
    pub competitors: usize,
    /// Number of retail customer ASes beneath the incumbent.
    pub incumbent_customers: usize,
    /// The regulation in force.
    pub regulation: PeeringRegulation,
    /// The incumbent's response.
    pub strategy: CircumventionStrategy,
    /// Seed for size draws.
    pub seed: u64,
}

impl Default for MexicoConfig {
    fn default() -> Self {
        MexicoConfig {
            competitors: 6,
            incumbent_customers: 12,
            regulation: PeeringRegulation {
                mandatory_peering: true,
                enforcement: 0.0,
            },
            strategy: CircumventionStrategy::AsnSplitting,
            seed: 1,
        }
    }
}

/// A built and routed Mexico scenario.
#[derive(Debug, Clone)]
pub struct MexicoScenario {
    /// The topology after regulation.
    pub topology: AsTopology,
    /// Assigned flows.
    pub flows: Vec<FlowAssignment>,
    /// Id of the national IXP.
    pub ixp: usize,
    /// Id of the incumbent.
    pub incumbent: usize,
    /// Ids of the competitor ISPs (the IXP members the regulation is
    /// supposed to help).
    pub competitors: Vec<usize>,
}

impl MexicoScenario {
    /// Build and route the scenario.
    pub fn run(config: &MexicoConfig) -> Result<Self> {
        Self::run_with_faults(config, &mut NoFaults)
    }

    /// Build and route the scenario under a fault hook. The hook is asked
    /// about [`FaultKind::IxpOutage`] for the national exchange (step = IXP
    /// id): a dark exchange means no multilateral peering and no enforceable
    /// mandatory-peering regulation, so competitor traffic falls back to the
    /// incumbent's paid transit. Under [`NoFaults`] this is identical to
    /// [`MexicoScenario::run`].
    pub fn run_with_faults(config: &MexicoConfig, hook: &mut dyn FaultHook) -> Result<Self> {
        Self::run_instrumented(config, hook, &Telemetry::disabled())
    }

    /// [`MexicoScenario::run_with_faults`] with telemetry: an `ixp.mexico`
    /// span, an `ixp.route_assign_ns` histogram over the route+assign hot
    /// path, scenario/flow counters, and a milestone event. Telemetry only
    /// observes; the built scenario is identical.
    pub fn run_instrumented(
        config: &MexicoConfig,
        hook: &mut dyn FaultHook,
        tel: &Telemetry,
    ) -> Result<Self> {
        let _span = tel.span("ixp.mexico");
        if config.competitors == 0 || config.incumbent_customers == 0 {
            return Err(IxpError::InvalidParameter(
                "need at least one competitor and one incumbent customer",
            ));
        }
        config.regulation.validate()?;
        let mut rng = Rng::new(config.seed);
        let mx = RegionTag::new("MX", true);
        let mut t = AsTopology::new();
        let incumbent = t.add_as("Telmex", AsKind::Incumbent, &mx, 50.0);
        for i in 0..config.incumbent_customers {
            let size = rng.pareto(2.0, 1.5).min(30.0);
            let c = t.add_as(&format!("Retail-{i}"), AsKind::Access, &mx, size);
            t.add_provider(c, incumbent)?;
        }
        let ixp = t.add_ixp("IXP-MX", &mx);
        let mut competitors = Vec::with_capacity(config.competitors);
        for i in 0..config.competitors {
            let size = rng.pareto(2.0, 1.5).min(30.0);
            let c = t.add_as(&format!("Competitor-{i}"), AsKind::Access, &mx, size);
            // Market power: competitors still buy transit from the incumbent.
            t.add_provider(c, incumbent)?;
            t.join_ixp(c, ixp)?;
            competitors.push(c);
        }
        // An exchange outage takes the whole switching fabric down: no
        // multilateral peering and nothing for the regulator to enforce.
        // Transit links stay up, so routing degrades instead of failing.
        if hook.inject(ixp as u64, FaultKind::IxpOutage).is_none() {
            t.multilateral_peering(ixp)?;
            apply_regulation(&mut t, incumbent, ixp, config.regulation, config.strategy)?;
        }
        let t0 = tel.start();
        let routes = RoutingTable::compute(&t)?;
        let matrix = TrafficMatrix::gravity(
            &t,
            &TrafficConfig {
                same_region_affinity: 1.0,
                content_share: 0.0, // pure domestic inter-ISP scenario
            },
        )?;
        let (flows, _unserved) = matrix.assign(&routes);
        tel.observe_since("ixp.route_assign_ns", t0);
        tel.counter("ixp.scenarios", 1);
        tel.counter("ixp.flows", flows.len() as u64);
        tel.event(Event::new(
            "milestone",
            format!(
                "ixp.mexico: {} ASes, {} flows routed",
                t.ases().len(),
                flows.len()
            ),
        ));
        Ok(MexicoScenario {
            topology: t,
            flows,
            ixp,
            incumbent,
            competitors,
        })
    }

    /// Share of *competitor-sourced* domestic traffic exchanged
    /// settlement-free at the national IXP — the quantity the regulation
    /// was supposed to raise. (Retail-to-retail traffic inside the
    /// incumbent's cone never touches the exchange under any policy, so it
    /// is excluded from the denominator.)
    pub fn competitor_ixp_share(&self) -> Result<f64> {
        let mut total = 0.0;
        let mut at_ixp = 0.0;
        for f in &self.flows {
            if !self.competitors.contains(&f.src) {
                continue;
            }
            total += f.volume;
            if f.route.crossed_ixp == Some(self.ixp) {
                at_ixp += f.volume;
            }
        }
        if total <= 0.0 {
            return Err(IxpError::InvalidParameter("no competitor traffic"));
        }
        Ok(at_ixp / total)
    }

    /// Share of all domestic traffic exchanged settlement-free at the
    /// national IXP (includes retail↔retail traffic that structurally
    /// cannot use the exchange).
    pub fn domestic_ixp_share(&self) -> Result<f64> {
        domestic_ixp_share(&self.topology, &self.flows, "MX")
    }

    /// Total paid-transit cost across all flows (the incumbent's prize for
    /// successful circumvention).
    pub fn transit_cost(&self) -> f64 {
        total_transit_cost(&self.flows)
    }

    /// Full locality report.
    pub fn locality(&self) -> Result<LocalityReport> {
        locality_report(&self.topology, &self.flows, "MX")
    }
}

/// Configuration of the Brazil-vs-Germany scenario (experiment **F4**).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TwoRegionConfig {
    /// Number of Global South access ISPs.
    pub south_isps: usize,
    /// Number of content providers (hyperscalers/CDNs).
    pub content_providers: usize,
    /// Fraction of content providers with a point of presence at the local
    /// (South) IXP, in `[0, 1]` — the paper's driver of traffic gravity.
    pub content_presence_south: f64,
    /// Whether South ISPs remote-peer at the giant Northern IXP (the
    /// "connect in Europe" behaviour Rosa documents).
    pub south_remote_peering: bool,
    /// Seed for size draws.
    pub seed: u64,
}

impl Default for TwoRegionConfig {
    fn default() -> Self {
        TwoRegionConfig {
            south_isps: 10,
            content_providers: 6,
            content_presence_south: 0.2,
            south_remote_peering: true,
            seed: 1,
        }
    }
}

/// A built and routed two-region scenario.
#[derive(Debug, Clone)]
pub struct TwoRegionScenario {
    /// The topology.
    pub topology: AsTopology,
    /// Assigned flows.
    pub flows: Vec<FlowAssignment>,
    /// Local (South) IXP id.
    pub south_ixp: usize,
    /// Giant Northern IXP id.
    pub north_ixp: usize,
}

impl TwoRegionScenario {
    /// Build and route the scenario.
    pub fn run(config: &TwoRegionConfig) -> Result<Self> {
        Self::run_with_faults(config, &mut NoFaults)
    }

    /// Build and route the scenario under a fault hook. The hook is asked
    /// about [`FaultKind::IxpOutage`] once per exchange (step = IXP id); a
    /// dark exchange loses its multilateral peering mesh and its traffic
    /// falls back to paid transit. Under [`NoFaults`] this is identical to
    /// [`TwoRegionScenario::run`].
    pub fn run_with_faults(config: &TwoRegionConfig, hook: &mut dyn FaultHook) -> Result<Self> {
        Self::run_instrumented(config, hook, &Telemetry::disabled())
    }

    /// [`TwoRegionScenario::run_with_faults`] with telemetry: an
    /// `ixp.two_region` span, the shared `ixp.route_assign_ns` histogram,
    /// counters, and a milestone event.
    pub fn run_instrumented(
        config: &TwoRegionConfig,
        hook: &mut dyn FaultHook,
        tel: &Telemetry,
    ) -> Result<Self> {
        let _span = tel.span("ixp.two_region");
        if config.south_isps == 0 || config.content_providers == 0 {
            return Err(IxpError::InvalidParameter(
                "need at least one south ISP and one content provider",
            ));
        }
        if !(0.0..=1.0).contains(&config.content_presence_south) {
            return Err(IxpError::InvalidParameter(
                "content_presence_south must be in [0,1]",
            ));
        }
        let mut rng = Rng::new(config.seed);
        let br = RegionTag::new("BR", true);
        let de = RegionTag::new("DE", false);
        let mut t = AsTopology::new();
        // Tier-1-ish transit in the North.
        let transit = t.add_as("GlobalTransit", AsKind::Transit, &de, 1.0);
        let south_ixp = t.add_ixp("IX-br", &br);
        let north_ixp = t.add_ixp("DE-CIX", &de);
        // South access ISPs: members of the local IXP, buy global transit,
        // optionally remote-peer at the Northern exchange.
        let mut south_ids = Vec::new();
        for i in 0..config.south_isps {
            let size = rng.pareto(2.0, 1.3).min(40.0);
            let isp = t.add_as(&format!("BR-ISP-{i}"), AsKind::Access, &br, size);
            t.add_provider(isp, transit)?;
            t.join_ixp(isp, south_ixp)?;
            if config.south_remote_peering {
                t.join_ixp(isp, north_ixp)?;
            }
            south_ids.push(isp);
        }
        // Content providers: all present at the giant Northern IXP; a
        // configurable fraction also at the local exchange. The fraction is
        // applied deterministically (first ⌈p·n⌉ providers) so sweeps are
        // smooth rather than noisy.
        let present_locally =
            (config.content_presence_south * config.content_providers as f64).round() as usize;
        for i in 0..config.content_providers {
            let size = rng.pareto(10.0, 1.2).min(200.0);
            let c = t.add_as(&format!("CDN-{i}"), AsKind::Content, &de, size);
            t.add_provider(c, transit)?;
            t.join_ixp(c, north_ixp)?;
            if i < present_locally {
                t.join_ixp(c, south_ixp)?;
            }
        }
        for exchange in [south_ixp, north_ixp] {
            if hook.inject(exchange as u64, FaultKind::IxpOutage).is_none() {
                t.multilateral_peering(exchange)?;
            }
        }
        let t0 = tel.start();
        let routes = RoutingTable::compute(&t)?;
        let matrix = TrafficMatrix::gravity(&t, &TrafficConfig::default())?;
        let (flows, _unserved) = matrix.assign(&routes);
        tel.observe_since("ixp.route_assign_ns", t0);
        tel.counter("ixp.scenarios", 1);
        tel.counter("ixp.flows", flows.len() as u64);
        tel.event(Event::new(
            "milestone",
            format!(
                "ixp.two_region: {} ASes, {} flows routed",
                t.ases().len(),
                flows.len()
            ),
        ));
        Ok(TwoRegionScenario {
            topology: t,
            flows,
            south_ixp,
            north_ixp,
        })
    }

    /// Share of South-sourced traffic exchanged at the Northern IXP.
    pub fn foreign_exchange_share(&self) -> Result<f64> {
        foreign_exchange_share(&self.topology, &self.flows)
    }

    /// Share of South-sourced traffic whose peer hop is at the local IXP.
    pub fn local_exchange_share(&self) -> Result<f64> {
        let mut south_total = 0.0;
        let mut at_local = 0.0;
        for f in &self.flows {
            let src = self.topology.as_info(f.src)?;
            if !self.topology.region(src.region).global_south {
                continue;
            }
            south_total += f.volume;
            if f.route.crossed_ixp == Some(self.south_ixp) {
                at_local += f.volume;
            }
        }
        if south_total <= 0.0 {
            return Err(IxpError::InvalidParameter("no south traffic"));
        }
        Ok(at_local / south_total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mexico_circumvention_kills_ixp_share() {
        let mut cfg = MexicoConfig::default();
        cfg.strategy = CircumventionStrategy::AsnSplitting;
        cfg.regulation.enforcement = 0.0;
        let circumvented = MexicoScenario::run(&cfg).unwrap();
        cfg.strategy = CircumventionStrategy::ComplyFully;
        let complied = MexicoScenario::run(&cfg).unwrap();
        let share_circ = circumvented.competitor_ixp_share().unwrap();
        let share_comp = complied.competitor_ixp_share().unwrap();
        assert!(
            share_comp > share_circ + 0.3,
            "compliance {share_comp} should dwarf circumvention {share_circ}"
        );
        assert!((share_comp - 1.0).abs() < 1e-9, "full compliance localizes everything");
        // Circumvention preserves the incumbent's transit revenue.
        assert!(circumvented.transit_cost() > complied.transit_cost());
    }

    #[test]
    fn mexico_enforcement_sweep_is_monotone() {
        let mut last = -1.0;
        for e in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let mut cfg = MexicoConfig::default();
            cfg.regulation.enforcement = e;
            let s = MexicoScenario::run(&cfg).unwrap();
            let share = s.competitor_ixp_share().unwrap();
            assert!(
                share >= last - 1e-9,
                "share should not fall with enforcement: {share} after {last} at e={e}"
            );
            last = share;
        }
        assert!(last > 0.9, "full enforcement should localize competitor traffic");
    }

    #[test]
    fn mexico_no_regulation_baseline() {
        let mut cfg = MexicoConfig::default();
        cfg.regulation.mandatory_peering = false;
        let s = MexicoScenario::run(&cfg).unwrap();
        // Competitors still peer among themselves at the IXP, so the share
        // is positive but far from complete (the incumbent cone dominates).
        let share = s.competitor_ixp_share().unwrap();
        assert!(share > 0.0 && share < 0.9, "share = {share}");
        let rep = s.locality().unwrap();
        assert!(rep.transit_volume > 0.0);
        assert!(s.domestic_ixp_share().unwrap() <= share + 1e-9);
    }

    #[test]
    fn mexico_rejects_degenerate_configs() {
        let mut cfg = MexicoConfig::default();
        cfg.competitors = 0;
        assert!(MexicoScenario::run(&cfg).is_err());
    }

    #[test]
    fn mexico_deterministic() {
        let cfg = MexicoConfig::default();
        let a = MexicoScenario::run(&cfg).unwrap();
        let b = MexicoScenario::run(&cfg).unwrap();
        assert_eq!(a.flows, b.flows);
    }

    #[test]
    fn two_region_content_presence_pulls_traffic_home() {
        let mut cfg = TwoRegionConfig::default();
        cfg.content_presence_south = 0.0;
        let none = TwoRegionScenario::run(&cfg).unwrap();
        cfg.content_presence_south = 1.0;
        let full = TwoRegionScenario::run(&cfg).unwrap();
        let foreign_none = none.foreign_exchange_share().unwrap();
        let foreign_full = full.foreign_exchange_share().unwrap();
        assert!(
            foreign_none > foreign_full + 0.2,
            "no local content: {foreign_none} should far exceed full presence: {foreign_full}"
        );
        let local_full = full.local_exchange_share().unwrap();
        let local_none = none.local_exchange_share().unwrap();
        assert!(local_full > local_none);
    }

    #[test]
    fn two_region_without_remote_peering_uses_transit() {
        let mut cfg = TwoRegionConfig::default();
        cfg.content_presence_south = 0.0;
        cfg.south_remote_peering = false;
        let s = TwoRegionScenario::run(&cfg).unwrap();
        // No exchange available for content traffic at all: foreign share 0,
        // everything on paid transit.
        let foreign = s.foreign_exchange_share().unwrap();
        assert_eq!(foreign, 0.0);
        assert!(crate::traffic::total_transit_cost(&s.flows) > 0.0);
    }

    #[test]
    fn two_region_south_south_traffic_stays_local() {
        // With a local IXP and membership, inter-ISP south traffic peers
        // locally regardless of content presence.
        let cfg = TwoRegionConfig::default();
        let s = TwoRegionScenario::run(&cfg).unwrap();
        for f in &s.flows {
            let src = s.topology.as_info(f.src).unwrap();
            let dst = s.topology.as_info(f.dst).unwrap();
            if s.topology.region(src.region).global_south
                && s.topology.region(dst.region).global_south
            {
                assert_eq!(
                    f.route.crossed_ixp,
                    Some(s.south_ixp),
                    "south-south flow should use the local exchange"
                );
            }
        }
    }

    #[test]
    fn ixp_outage_degrades_to_transit() {
        use humnet_resilience::{FaultHook, FaultKind};
        /// Hook that takes every exchange dark.
        struct AllIxpsDark(u64);
        impl FaultHook for AllIxpsDark {
            fn inject(&mut self, _step: u64, kind: FaultKind) -> Option<f64> {
                (kind == FaultKind::IxpOutage).then(|| {
                    self.0 += 1;
                    1.0
                })
            }
            fn faults_injected(&self) -> u64 {
                self.0
            }
        }
        let cfg = MexicoConfig::default();
        let mut hook = AllIxpsDark(0);
        let dark = MexicoScenario::run_with_faults(&cfg, &mut hook).unwrap();
        assert_eq!(hook.faults_injected(), 1);
        // Nothing crosses a dark exchange; everything rides paid transit.
        assert_eq!(dark.competitor_ixp_share().unwrap(), 0.0);
        let lit = MexicoScenario::run(&cfg).unwrap();
        assert!(dark.transit_cost() >= lit.transit_cost());

        let two_cfg = TwoRegionConfig::default();
        let mut hook = AllIxpsDark(0);
        let dark = TwoRegionScenario::run_with_faults(&two_cfg, &mut hook).unwrap();
        assert_eq!(hook.faults_injected(), 2);
        assert_eq!(dark.foreign_exchange_share().unwrap(), 0.0);
        assert_eq!(dark.local_exchange_share().unwrap(), 0.0);
        // A NoFaults-equivalent hook reproduces the plain build.
        let plain = TwoRegionScenario::run(&two_cfg).unwrap();
        let mut none = humnet_resilience::PlanHook::new(humnet_resilience::FaultPlan::none());
        let hooked = TwoRegionScenario::run_with_faults(&two_cfg, &mut none).unwrap();
        assert_eq!(plain.flows, hooked.flows);
    }

    #[test]
    fn two_region_rejects_bad_config() {
        let mut cfg = TwoRegionConfig::default();
        cfg.content_presence_south = 2.0;
        assert!(TwoRegionScenario::run(&cfg).is_err());
        let mut cfg = TwoRegionConfig::default();
        cfg.south_isps = 0;
        assert!(TwoRegionScenario::run(&cfg).is_err());
    }
}
