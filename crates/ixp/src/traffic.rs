//! Gravity-model traffic matrices and path assignment.

use crate::routing::{Route, RoutingTable};
use crate::topology::{AsId, AsKind, AsTopology};
use crate::{IxpError, Result};
use serde::{Deserialize, Serialize};

/// Configuration of the gravity traffic model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// Multiplier applied to demand between two ASes in the same region
    /// (domestic affinity; > 1 models language/content locality).
    pub same_region_affinity: f64,
    /// Share of every access AS's demand that goes to content providers
    /// (the rest is AS-to-AS, e.g. inter-ISP user traffic).
    pub content_share: f64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            same_region_affinity: 2.0,
            content_share: 0.75,
        }
    }
}

/// One source–destination demand with its resolved route.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowAssignment {
    /// Source AS.
    pub src: AsId,
    /// Destination AS.
    pub dst: AsId,
    /// Demand volume (arbitrary units).
    pub volume: f64,
    /// The selected route.
    pub route: Route,
}

/// A traffic matrix: demands between AS pairs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrafficMatrix {
    /// Nonzero demands as `(src, dst, volume)`.
    pub demands: Vec<(AsId, AsId, f64)>,
}

impl TrafficMatrix {
    /// Build a gravity-model matrix: demand from each access/community AS
    /// to every other access/community AS and every content AS, with volume
    /// `src.size × dst.size`, scaled by region affinity and split between
    /// content and inter-ISP traffic per the config.
    pub fn gravity(topology: &AsTopology, config: &TrafficConfig) -> Result<Self> {
        if config.same_region_affinity <= 0.0 {
            return Err(IxpError::InvalidParameter("affinity must be positive"));
        }
        if !(0.0..=1.0).contains(&config.content_share) {
            return Err(IxpError::InvalidParameter("content_share must be in [0,1]"));
        }
        let mut demands = Vec::new();
        let eyeballs: Vec<&crate::topology::AsInfo> = topology
            .ases()
            .iter()
            .filter(|a| matches!(a.kind, AsKind::Access | AsKind::Community))
            .collect();
        let contents: Vec<&crate::topology::AsInfo> = topology
            .ases()
            .iter()
            .filter(|a| a.kind == AsKind::Content)
            .collect();
        for src in &eyeballs {
            // Content-bound demand.
            for dst in &contents {
                let mut v = src.size * dst.size * config.content_share;
                if src.region == dst.region {
                    v *= config.same_region_affinity;
                }
                if v > 0.0 {
                    demands.push((src.id, dst.id, v));
                }
            }
            // Inter-eyeball demand.
            for dst in &eyeballs {
                if src.id == dst.id {
                    continue;
                }
                let mut v = src.size * dst.size * (1.0 - config.content_share);
                if src.region == dst.region {
                    v *= config.same_region_affinity;
                }
                if v > 0.0 {
                    demands.push((src.id, dst.id, v));
                }
            }
        }
        Ok(TrafficMatrix { demands })
    }

    /// Sampled gravity matrix for internet-scale topologies, where the
    /// all-pairs product set of [`TrafficMatrix::gravity`] is quadratic
    /// and pointless: draw `pairs` source–destination demands from the
    /// same gravity population (uniform eyeball source; destination is a
    /// content AS with probability `content_share`, another eyeball
    /// otherwise; volume `src.size × dst.size`, boosted by
    /// `same_region_affinity` for domestic pairs). The demand list
    /// references only the sampled destinations, so it pairs with
    /// [`RoutingTable::compute_for_destinations`] to avoid all-pairs
    /// route materialization. Deterministic in `(topology, config, pairs,
    /// seed)`.
    pub fn gravity_sampled(
        topology: &AsTopology,
        config: &TrafficConfig,
        pairs: usize,
        seed: u64,
    ) -> Result<Self> {
        if config.same_region_affinity <= 0.0 {
            return Err(IxpError::InvalidParameter("affinity must be positive"));
        }
        if !(0.0..=1.0).contains(&config.content_share) {
            return Err(IxpError::InvalidParameter("content_share must be in [0,1]"));
        }
        let eyeballs: Vec<&crate::topology::AsInfo> = topology
            .ases()
            .iter()
            .filter(|a| matches!(a.kind, AsKind::Access | AsKind::Community))
            .collect();
        let contents: Vec<&crate::topology::AsInfo> = topology
            .ases()
            .iter()
            .filter(|a| a.kind == AsKind::Content)
            .collect();
        if eyeballs.is_empty() {
            return Err(IxpError::InvalidParameter("no eyeball ASes to source traffic"));
        }
        if eyeballs.len() < 2 && contents.is_empty() {
            return Err(IxpError::InvalidParameter("no destinations to sample"));
        }
        let mut rng = humnet_stats::Rng::new(seed);
        let mut demands = Vec::with_capacity(pairs);
        for _ in 0..pairs {
            let src = *rng.choose(&eyeballs);
            let to_content = !contents.is_empty() && rng.chance(config.content_share);
            let dst = if to_content || eyeballs.len() < 2 {
                *rng.choose(&contents)
            } else {
                // Re-draw until distinct; terminates since eyeballs ≥ 2.
                loop {
                    let d = *rng.choose(&eyeballs);
                    if d.id != src.id {
                        break d;
                    }
                }
            };
            let mut v = src.size * dst.size;
            if src.region == dst.region {
                v *= config.same_region_affinity;
            }
            if v > 0.0 {
                demands.push((src.id, dst.id, v));
            }
        }
        Ok(TrafficMatrix { demands })
    }

    /// The distinct destinations named by this matrix, sorted — the input
    /// for [`RoutingTable::compute_for_destinations`].
    pub fn destinations(&self) -> Vec<AsId> {
        let mut dsts: Vec<AsId> = self.demands.iter().map(|&(_, d, _)| d).collect();
        dsts.sort_unstable();
        dsts.dedup();
        dsts
    }

    /// Total demand volume.
    pub fn total(&self) -> f64 {
        self.demands.iter().map(|&(_, _, v)| v).sum()
    }

    /// Resolve every demand to its route. Demands with no valley-free route
    /// are returned separately (unserved traffic).
    pub fn assign(
        &self,
        routes: &RoutingTable,
    ) -> (Vec<FlowAssignment>, Vec<(AsId, AsId, f64)>) {
        let mut assigned = Vec::with_capacity(self.demands.len());
        let mut unserved = Vec::new();
        for &(src, dst, volume) in &self.demands {
            match routes.route(src, dst) {
                Ok(route) => assigned.push(FlowAssignment {
                    src,
                    dst,
                    volume,
                    route,
                }),
                Err(_) => unserved.push((src, dst, volume)),
            }
        }
        (assigned, unserved)
    }
}

/// Total transit cost of an assignment: volume × paid hops, summed.
pub fn total_transit_cost(flows: &[FlowAssignment]) -> f64 {
    flows
        .iter()
        .map(|f| f.volume * f.route.transit_hops() as f64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{AsKind, AsTopology, RegionTag};

    fn topo() -> AsTopology {
        let mut t = AsTopology::new();
        let mx = RegionTag::new("MX", true);
        let us = RegionTag::new("US", false);
        let transit = t.add_as("T", AsKind::Transit, &us, 1.0);
        let a = t.add_as("A", AsKind::Access, &mx, 10.0);
        let b = t.add_as("B", AsKind::Access, &mx, 5.0);
        let c = t.add_as("CDN", AsKind::Content, &us, 50.0);
        t.add_provider(a, transit).unwrap();
        t.add_provider(b, transit).unwrap();
        t.add_provider(c, transit).unwrap();
        t
    }

    #[test]
    fn gravity_generates_expected_pairs() {
        let t = topo();
        let m = TrafficMatrix::gravity(&t, &TrafficConfig::default()).unwrap();
        // 2 eyeballs × 1 content + 2 eyeball pairs (ordered) = 4 demands.
        assert_eq!(m.demands.len(), 4);
        assert!(m.total() > 0.0);
    }

    #[test]
    fn same_region_affinity_boosts_domestic_traffic() {
        let t = topo();
        let cfg = TrafficConfig {
            same_region_affinity: 3.0,
            content_share: 0.5,
        };
        let m = TrafficMatrix::gravity(&t, &cfg).unwrap();
        let find = |s: usize, d: usize| {
            m.demands
                .iter()
                .find(|&&(a, b, _)| a == s && b == d)
                .map(|&(_, _, v)| v)
                .unwrap()
        };
        // A->B domestic (both MX): 10*5*0.5*3 = 75.
        assert!((find(1, 2) - 75.0).abs() < 1e-9);
        // A->CDN cross-region: 10*50*0.5 = 250.
        assert!((find(1, 3) - 250.0).abs() < 1e-9);
    }

    #[test]
    fn gravity_rejects_bad_config() {
        let t = topo();
        let bad = TrafficConfig {
            same_region_affinity: 0.0,
            content_share: 0.5,
        };
        assert!(TrafficMatrix::gravity(&t, &bad).is_err());
        let bad = TrafficConfig {
            same_region_affinity: 1.0,
            content_share: 1.5,
        };
        assert!(TrafficMatrix::gravity(&t, &bad).is_err());
    }

    #[test]
    fn assignment_resolves_all_flows_in_connected_topology() {
        let t = topo();
        let m = TrafficMatrix::gravity(&t, &TrafficConfig::default()).unwrap();
        let rt = RoutingTable::compute(&t).unwrap();
        let (flows, unserved) = m.assign(&rt);
        assert_eq!(flows.len(), 4);
        assert!(unserved.is_empty());
    }

    #[test]
    fn unserved_traffic_reported() {
        let mut t = topo();
        let island = t.add_as("Island", AsKind::Access, &RegionTag::new("ZZ", true), 3.0);
        let _ = island;
        let m = TrafficMatrix::gravity(&t, &TrafficConfig::default()).unwrap();
        let rt = RoutingTable::compute(&t).unwrap();
        let (_flows, unserved) = m.assign(&rt);
        assert!(!unserved.is_empty());
    }

    #[test]
    fn sampled_gravity_is_deterministic_and_routable_on_sampled_rows() {
        let t = topo();
        let cfg = TrafficConfig::default();
        let a = TrafficMatrix::gravity_sampled(&t, &cfg, 64, 9).unwrap();
        let b = TrafficMatrix::gravity_sampled(&t, &cfg, 64, 9).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.demands.len(), 64);
        // Routing only the sampled destinations serves every demand.
        let rt = RoutingTable::compute_for_destinations(&t, &a.destinations()).unwrap();
        let (flows, unserved) = a.assign(&rt);
        assert_eq!(flows.len(), 64);
        assert!(unserved.is_empty());
        // Sources are always eyeballs; self-demands never occur.
        for &(src, dst, v) in &a.demands {
            assert_ne!(src, dst);
            assert!(v > 0.0);
        }
        assert_ne!(
            TrafficMatrix::gravity_sampled(&t, &cfg, 64, 10).unwrap(),
            a
        );
    }

    #[test]
    fn transit_cost_counts_paid_hops() {
        let t = topo();
        let rt = RoutingTable::compute(&t).unwrap();
        let route = rt.route(1, 2).unwrap(); // A -> T -> B, 2 paid hops
        let flows = vec![FlowAssignment {
            src: 1,
            dst: 2,
            volume: 10.0,
            route,
        }];
        assert_eq!(total_transit_cost(&flows), 20.0);
    }

    #[test]
    fn peering_reduces_transit_cost() {
        let mut t = topo();
        t.add_peering(1, 2, None).unwrap();
        let rt = RoutingTable::compute(&t).unwrap();
        let m = TrafficMatrix::gravity(&t, &TrafficConfig::default()).unwrap();
        let (flows, _) = m.assign(&rt);
        let peered_cost = total_transit_cost(&flows);

        let t0 = topo();
        let rt0 = RoutingTable::compute(&t0).unwrap();
        let (flows0, _) = m.assign(&rt0);
        let unpeered_cost = total_transit_cost(&flows0);
        assert!(peered_cost < unpeered_cost);
    }
}
