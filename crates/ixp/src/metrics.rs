//! Locality and exchange-share metrics over assigned traffic.

use crate::topology::{AsTopology, IxpId};
use crate::traffic::FlowAssignment;
use crate::{IxpError, Result};
use serde::{Deserialize, Serialize};

/// Where domestic traffic between ASes of one region gets exchanged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalityReport {
    /// Region analysed.
    pub region: String,
    /// Total intra-region demand volume observed.
    pub total_volume: f64,
    /// Volume exchanged settlement-free at an IXP located in the region.
    pub local_ixp_volume: f64,
    /// Volume exchanged settlement-free at an IXP outside the region.
    pub foreign_ixp_volume: f64,
    /// Volume carried over paid transit with no peer hop at all.
    pub transit_volume: f64,
    /// Volume whose AS path leaves the region at any point.
    pub path_leaves_region: f64,
}

impl LocalityReport {
    /// Share of intra-region traffic exchanged at a local IXP.
    pub fn local_ixp_share(&self) -> f64 {
        if self.total_volume > 0.0 {
            self.local_ixp_volume / self.total_volume
        } else {
            0.0
        }
    }

    /// Share of intra-region traffic that detours out of the region
    /// ("tromboning" through foreign infrastructure).
    pub fn detour_share(&self) -> f64 {
        if self.total_volume > 0.0 {
            self.path_leaves_region / self.total_volume
        } else {
            0.0
        }
    }
}

/// Analyse where intra-region traffic is exchanged for one region name.
pub fn locality_report(
    topology: &AsTopology,
    flows: &[FlowAssignment],
    region: &str,
) -> Result<LocalityReport> {
    let mut report = LocalityReport {
        region: region.to_owned(),
        total_volume: 0.0,
        local_ixp_volume: 0.0,
        foreign_ixp_volume: 0.0,
        transit_volume: 0.0,
        path_leaves_region: 0.0,
    };
    // One name comparison per interned region instead of one per flow/hop.
    let in_region: Vec<bool> = topology.regions().iter().map(|r| r.name == region).collect();
    for f in flows {
        let src = topology.as_info(f.src)?;
        let dst = topology.as_info(f.dst)?;
        if !in_region[src.region as usize] || !in_region[dst.region as usize] {
            continue;
        }
        report.total_volume += f.volume;
        match f.route.crossed_ixp {
            Some(ixp) => {
                if in_region[topology.ixps()[ixp].region as usize] {
                    report.local_ixp_volume += f.volume;
                } else {
                    report.foreign_ixp_volume += f.volume;
                }
            }
            None => {
                if !f.route.has_peer_hop {
                    report.transit_volume += f.volume;
                }
                // Private peering (peer hop without IXP) counts as neither
                // local-IXP nor transit; it simply isn't at an exchange.
            }
        }
        // Does the path traverse any AS homed outside the region?
        let leaves = f.route.path.iter().any(|&a| {
            topology
                .as_info(a)
                .map(|i| !in_region[i.region as usize])
                .unwrap_or(false)
        });
        if leaves {
            report.path_leaves_region += f.volume;
        }
    }
    Ok(report)
}

/// Share of *all* assigned volume whose peer hop happens at the given IXP.
pub fn ixp_share(flows: &[FlowAssignment], ixp: IxpId) -> f64 {
    let total: f64 = flows.iter().map(|f| f.volume).sum();
    if total <= 0.0 {
        return 0.0;
    }
    let at: f64 = flows
        .iter()
        .filter(|f| f.route.crossed_ixp == Some(ixp))
        .map(|f| f.volume)
        .sum();
    at / total
}

/// Share of intra-region traffic of `region` exchanged at a *local* IXP —
/// the headline metric of experiment **F3**.
pub fn domestic_ixp_share(
    topology: &AsTopology,
    flows: &[FlowAssignment],
    region: &str,
) -> Result<f64> {
    Ok(locality_report(topology, flows, region)?.local_ixp_share())
}

/// Of the traffic *sourced* in Global South regions, the share whose peer
/// hop occurs at an IXP located in the Global North — the headline metric
/// of experiment **F4** (Brazilian ISPs exchanging at DE-CIX).
pub fn foreign_exchange_share(topology: &AsTopology, flows: &[FlowAssignment]) -> Result<f64> {
    let south: Vec<bool> = topology.regions().iter().map(|r| r.global_south).collect();
    let mut south_total = 0.0;
    let mut at_north_ixp = 0.0;
    for f in flows {
        let src = topology.as_info(f.src)?;
        if !south[src.region as usize] {
            continue;
        }
        south_total += f.volume;
        if let Some(ixp) = f.route.crossed_ixp {
            if !south[topology.ixps()[ixp].region as usize] {
                at_north_ixp += f.volume;
            }
        }
    }
    if south_total <= 0.0 {
        return Err(IxpError::InvalidParameter("no Global South traffic in assignment"));
    }
    Ok(at_north_ixp / south_total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::RoutingTable;
    use crate::topology::{AsKind, AsTopology, RegionTag};
    use crate::traffic::{TrafficConfig, TrafficMatrix};

    /// Two MX access ISPs under a US transit, with an optional MX IXP.
    fn build(peer_at_ixp: bool) -> (AsTopology, Vec<FlowAssignment>) {
        let mut t = AsTopology::new();
        let mx = RegionTag::new("MX", true);
        let us = RegionTag::new("US", false);
        let transit = t.add_as("T", AsKind::Transit, &us, 1.0);
        let a = t.add_as("A", AsKind::Access, &mx, 10.0);
        let b = t.add_as("B", AsKind::Access, &mx, 10.0);
        t.add_provider(a, transit).unwrap();
        t.add_provider(b, transit).unwrap();
        if peer_at_ixp {
            let ixp = t.add_ixp("IXP-MX", &mx);
            t.join_ixp(a, ixp).unwrap();
            t.join_ixp(b, ixp).unwrap();
            t.multilateral_peering(ixp).unwrap();
        }
        let rt = RoutingTable::compute(&t).unwrap();
        let m = TrafficMatrix::gravity(
            &t,
            &TrafficConfig {
                same_region_affinity: 1.0,
                content_share: 0.0,
            },
        )
        .unwrap();
        let (flows, _) = m.assign(&rt);
        (t, flows)
    }

    #[test]
    fn transit_only_topology_has_zero_local_share() {
        let (t, flows) = build(false);
        let rep = locality_report(&t, &flows, "MX").unwrap();
        assert!(rep.total_volume > 0.0);
        assert_eq!(rep.local_ixp_volume, 0.0);
        assert_eq!(rep.transit_volume, rep.total_volume);
        assert_eq!(rep.local_ixp_share(), 0.0);
        // Paths trombone through the US transit.
        assert_eq!(rep.detour_share(), 1.0);
    }

    #[test]
    fn ixp_peering_localizes_traffic() {
        let (t, flows) = build(true);
        let rep = locality_report(&t, &flows, "MX").unwrap();
        assert_eq!(rep.local_ixp_share(), 1.0);
        assert_eq!(rep.transit_volume, 0.0);
        assert_eq!(rep.detour_share(), 0.0);
    }

    #[test]
    fn ixp_share_metric() {
        let (_t, flows) = build(true);
        assert_eq!(ixp_share(&flows, 0), 1.0);
        assert_eq!(ixp_share(&flows, 5), 0.0);
        assert_eq!(ixp_share(&[], 0), 0.0);
    }

    #[test]
    fn domestic_share_convenience() {
        let (t, flows) = build(true);
        assert_eq!(domestic_ixp_share(&t, &flows, "MX").unwrap(), 1.0);
        assert_eq!(domestic_ixp_share(&t, &flows, "US").unwrap(), 0.0);
    }

    #[test]
    fn foreign_exchange_share_detects_north_exchange() {
        // South ISPs peering at a *north* IXP.
        let mut t = AsTopology::new();
        let br = RegionTag::new("BR", true);
        let de = RegionTag::new("DE", false);
        let a = t.add_as("A", AsKind::Access, &br, 10.0);
        let b = t.add_as("B", AsKind::Access, &br, 10.0);
        let ixp = t.add_ixp("DE-CIX", &de);
        t.join_ixp(a, ixp).unwrap();
        t.join_ixp(b, ixp).unwrap();
        t.multilateral_peering(ixp).unwrap();
        let rt = RoutingTable::compute(&t).unwrap();
        let m = TrafficMatrix::gravity(
            &t,
            &TrafficConfig {
                same_region_affinity: 1.0,
                content_share: 0.0,
            },
        )
        .unwrap();
        let (flows, _) = m.assign(&rt);
        assert_eq!(foreign_exchange_share(&t, &flows).unwrap(), 1.0);
    }

    #[test]
    fn foreign_exchange_share_errors_without_south_traffic() {
        let mut t = AsTopology::new();
        let us = RegionTag::new("US", false);
        let a = t.add_as("A", AsKind::Access, &us, 1.0);
        let b = t.add_as("B", AsKind::Access, &us, 1.0);
        t.add_peering(a, b, None).unwrap();
        let rt = RoutingTable::compute(&t).unwrap();
        let m = TrafficMatrix::gravity(
            &t,
            &TrafficConfig {
                same_region_affinity: 1.0,
                content_share: 0.0,
            },
        )
        .unwrap();
        let (flows, _) = m.assign(&rt);
        assert!(foreign_exchange_share(&t, &flows).is_err());
    }
}
