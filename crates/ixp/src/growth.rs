//! IXP growth dynamics: how giant exchanges become giant.
//!
//! Rosa's ethnography (§3, [39]) concludes that some IXPs' "main goal is to
//! attract more connections, independent of where they come from" — the
//! founding purpose (keep traffic local) gives way to connectivity
//! maximization, and a few exchanges grow into "giant Internet nodes" that
//! act as alternatives to Tier-1 transit.
//!
//! The mechanism is a network effect: an exchange's value to a prospective
//! member grows with its membership and content presence, so early leads
//! compound. This module models arrival-and-choice dynamics (experiment
//! **F8**): networks arrive over rounds and pick an exchange by utility
//! `α·ln(1+members) + β·content + γ·same-region − fee`, with logit noise.
//! The regional-affinity term `γ` is the knob the paper's narrative turns
//! on: when members stop caring where the exchange is, winner-take-all
//! follows.

use crate::topology::RegionTag;
use crate::{IxpError, Result};
use humnet_stats::Rng;
use serde::{Deserialize, Serialize};

/// One exchange in the growth model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GrowingIxp {
    /// Display name.
    pub name: String,
    /// Region of the exchange.
    pub region: RegionTag,
    /// Current member count.
    pub members: u32,
    /// Content-provider presence weight (0–1).
    pub content: f64,
    /// Port/membership fee in utility units.
    pub fee: f64,
}

/// Configuration of a growth run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GrowthConfig {
    /// The competing exchanges at round 0.
    pub ixps: Vec<GrowingIxp>,
    /// Networks arriving per round.
    pub arrivals_per_round: usize,
    /// Rounds to simulate.
    pub rounds: u32,
    /// Fraction of arriving networks homed in the Global South.
    pub south_share: f64,
    /// Utility weight on `ln(1 + members)` (the network effect).
    pub alpha_members: f64,
    /// Utility weight on content presence.
    pub beta_content: f64,
    /// Utility weight on regional affinity (the "keep traffic local" pull).
    pub gamma_region: f64,
    /// Logit temperature (0⁺ = deterministic argmax).
    pub temperature: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for GrowthConfig {
    fn default() -> Self {
        GrowthConfig {
            ixps: vec![
                GrowingIxp {
                    name: "GIANT-NORTH".into(),
                    region: RegionTag::new("DE", false),
                    members: 120,
                    content: 0.9,
                    fee: 0.4,
                },
                GrowingIxp {
                    name: "IX-local-1".into(),
                    region: RegionTag::new("BR", true),
                    members: 20,
                    content: 0.2,
                    fee: 0.1,
                },
                GrowingIxp {
                    name: "IX-local-2".into(),
                    region: RegionTag::new("BR", true),
                    members: 15,
                    content: 0.15,
                    fee: 0.1,
                },
            ],
            arrivals_per_round: 10,
            rounds: 40,
            south_share: 0.6,
            alpha_members: 1.0,
            beta_content: 1.5,
            gamma_region: 0.5,
            temperature: 0.4,
            seed: 1,
        }
    }
}

impl GrowthConfig {
    /// Validate parameters.
    pub fn validate(&self) -> Result<()> {
        if self.ixps.is_empty() {
            return Err(IxpError::InvalidParameter("need at least one exchange"));
        }
        if self.arrivals_per_round == 0 || self.rounds == 0 {
            return Err(IxpError::InvalidParameter("arrivals and rounds must be >= 1"));
        }
        if !(0.0..=1.0).contains(&self.south_share) {
            return Err(IxpError::InvalidParameter("south_share must be in [0,1]"));
        }
        if self.temperature <= 0.0 {
            return Err(IxpError::InvalidParameter("temperature must be positive"));
        }
        for ixp in &self.ixps {
            if !(0.0..=1.0).contains(&ixp.content) || ixp.fee < 0.0 {
                return Err(IxpError::InvalidParameter("ixp content in [0,1], fee >= 0"));
            }
        }
        Ok(())
    }
}

/// Outcome of a growth run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GrowthOutcome {
    /// Final member counts, aligned with the config's exchanges.
    pub final_members: Vec<u32>,
    /// Membership share of the largest exchange.
    pub top_share: f64,
    /// Gini coefficient of final membership.
    pub membership_gini: f64,
    /// Fraction of South-homed arrivals that joined a South exchange.
    pub south_joined_local: f64,
    /// Member counts per round per exchange (for trajectory plots).
    pub trajectory: Vec<Vec<u32>>,
}

/// Run the growth model.
pub fn simulate_growth(config: &GrowthConfig) -> Result<GrowthOutcome> {
    simulate_growth_instrumented(config, &humnet_telemetry::Telemetry::disabled())
}

/// [`simulate_growth`] with telemetry: an `ixp.growth` span, a per-round
/// `ixp.growth_round_ns` histogram, an arrivals counter, and a milestone
/// event. The simulated trajectory is identical.
pub fn simulate_growth_instrumented(
    config: &GrowthConfig,
    tel: &humnet_telemetry::Telemetry,
) -> Result<GrowthOutcome> {
    let _span = tel.span("ixp.growth");
    let outcome = simulate_growth_inner(config, tel)?;
    tel.counter(
        "ixp.growth_arrivals",
        u64::from(config.rounds) * config.arrivals_per_round as u64,
    );
    tel.gauge("ixp.growth_top_share", outcome.top_share);
    tel.event(humnet_telemetry::Event::new(
        "milestone",
        format!(
            "ixp.growth: {} rounds, top share {:.3}",
            config.rounds, outcome.top_share
        ),
    ));
    Ok(outcome)
}

fn simulate_growth_inner(
    config: &GrowthConfig,
    tel: &humnet_telemetry::Telemetry,
) -> Result<GrowthOutcome> {
    config.validate()?;
    let mut rng = Rng::new(config.seed);
    let mut members: Vec<f64> = config.ixps.iter().map(|i| i.members as f64).collect();
    let mut trajectory = Vec::with_capacity(config.rounds as usize);
    let mut south_arrivals = 0u64;
    let mut south_local = 0u64;
    for _ in 0..config.rounds {
        let t0 = tel.start();
        for _ in 0..config.arrivals_per_round {
            let is_south = rng.chance(config.south_share);
            // Utilities with logit noise.
            let weights: Vec<f64> = config
                .ixps
                .iter()
                .enumerate()
                .map(|(j, ixp)| {
                    let same_region = ixp.region.global_south == is_south;
                    let u = config.alpha_members * (1.0 + members[j]).ln()
                        + config.beta_content * ixp.content
                        + config.gamma_region * f64::from(same_region)
                        - ixp.fee;
                    (u / config.temperature).exp()
                })
                .collect();
            let choice = rng.choose_weighted(&weights);
            members[choice] += 1.0;
            if is_south {
                south_arrivals += 1;
                if config.ixps[choice].region.global_south {
                    south_local += 1;
                }
            }
        }
        trajectory.push(members.iter().map(|&m| m as u32).collect());
        tel.observe_since("ixp.growth_round_ns", t0);
    }
    let total: f64 = members.iter().sum();
    let top = members.iter().copied().fold(0.0, f64::max);
    let gini = humnet_stats::gini(&members)
        .map_err(|_| IxpError::InvalidParameter("degenerate membership"))?;
    Ok(GrowthOutcome {
        final_members: members.iter().map(|&m| m as u32).collect(),
        top_share: top / total,
        membership_gini: gini,
        south_joined_local: if south_arrivals > 0 {
            south_local as f64 / south_arrivals as f64
        } else {
            0.0
        },
        trajectory,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        let mut c = GrowthConfig::default();
        c.ixps.clear();
        assert!(simulate_growth(&c).is_err());
        let mut c = GrowthConfig::default();
        c.temperature = 0.0;
        assert!(simulate_growth(&c).is_err());
        let mut c = GrowthConfig::default();
        c.ixps[0].content = 1.5;
        assert!(simulate_growth(&c).is_err());
    }

    #[test]
    fn deterministic() {
        let c = GrowthConfig::default();
        assert_eq!(simulate_growth(&c).unwrap(), simulate_growth(&c).unwrap());
    }

    #[test]
    fn conservation_of_arrivals() {
        let c = GrowthConfig::default();
        let out = simulate_growth(&c).unwrap();
        let initial: u32 = c.ixps.iter().map(|i| i.members).sum();
        let arrived = c.arrivals_per_round as u32 * c.rounds;
        let final_total: u32 = out.final_members.iter().sum();
        assert_eq!(final_total, initial + arrived);
        assert_eq!(out.trajectory.len(), c.rounds as usize);
    }

    #[test]
    fn network_effects_produce_winner_take_all() {
        // With no regional pull, the giant's head start compounds.
        let mut c = GrowthConfig::default();
        c.gamma_region = 0.0;
        let out = simulate_growth(&c).unwrap();
        assert!(out.top_share > 0.6, "top share = {}", out.top_share);
        assert!(out.south_joined_local < 0.4);
    }

    #[test]
    fn regional_affinity_keeps_local_exchanges_alive() {
        let mut weak = GrowthConfig::default();
        weak.gamma_region = 0.0;
        let mut strong = GrowthConfig::default();
        strong.gamma_region = 3.0;
        let w = simulate_growth(&weak).unwrap();
        let s = simulate_growth(&strong).unwrap();
        assert!(
            s.south_joined_local > w.south_joined_local + 0.3,
            "strong affinity {} vs weak {}",
            s.south_joined_local,
            w.south_joined_local
        );
        assert!(s.top_share < w.top_share);
        assert!(s.membership_gini < w.membership_gini);
    }

    #[test]
    fn membership_is_monotone_over_rounds() {
        let out = simulate_growth(&GrowthConfig::default()).unwrap();
        for j in 0..3 {
            for w in out.trajectory.windows(2) {
                assert!(w[1][j] >= w[0][j]);
            }
        }
    }
}
