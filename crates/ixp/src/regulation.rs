//! Mandatory-peering regulation and its circumvention.
//!
//! Rosa's Mexico study [38] found that a law requiring the incumbent to
//! peer at the national IXP was defeated: the incumbent "played with
//! different ASNs", joining the exchange with an ASN whose announcements
//! did not cover its customer cone. Competitors' peer sessions therefore
//! learned nothing of value, and domestic traffic kept flowing through the
//! incumbent's paid transit.
//!
//! The model here makes that executable:
//!
//! * With [`CircumventionStrategy::ComplyFully`], the incumbent itself
//!   joins the IXP; Gao–Rexford export then makes its entire customer cone
//!   reachable over the settlement-free sessions.
//! * With [`CircumventionStrategy::AsnSplitting`], a *shell ASN* joins
//!   instead. The shell is a customer of the incumbent, so routes through
//!   the shell toward the incumbent's cone are provider routes — which the
//!   shell, per valley-free export, does **not** announce to its peers.
//!   Regulatory `enforcement` forces a fraction of the incumbent's direct
//!   customers to be re-homed beneath the shell, putting exactly that
//!   fraction of the cone back behind the peer sessions.

use crate::topology::{AsId, AsKind, AsTopology, IxpId};
use crate::{IxpError, Result};
use serde::{Deserialize, Serialize};

/// How the incumbent responds to a mandatory-peering rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CircumventionStrategy {
    /// Join the exchange with the real ASN and export the full cone.
    ComplyFully,
    /// Join with an empty shell ASN (the Telmex maneuver).
    AsnSplitting,
}

/// A mandatory-peering rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeeringRegulation {
    /// Whether the incumbent is required to peer at the public exchange.
    pub mandatory_peering: bool,
    /// Regulator effectiveness in `[0, 1]`: the fraction of the incumbent's
    /// direct customers whose routes the regulator successfully forces
    /// behind the exchange sessions. Irrelevant under
    /// [`CircumventionStrategy::ComplyFully`].
    pub enforcement: f64,
}

impl PeeringRegulation {
    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.enforcement) {
            return Err(IxpError::InvalidParameter("enforcement must be in [0,1]"));
        }
        Ok(())
    }
}

/// Outcome of applying a regulation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegulationOutcome {
    /// The AS that actually joined the exchange (incumbent or shell).
    pub exchange_presence: Option<AsId>,
    /// Customers re-homed beneath the shell by enforcement.
    pub rehomed_customers: Vec<AsId>,
}

/// Apply a mandatory-peering regulation to a topology.
///
/// `incumbent` must exist; `ixp` must exist. When the rule is not
/// mandatory, nothing changes. Otherwise the incumbent (or its shell, per
/// the strategy) joins the IXP and multilateral peering is re-established
/// among all members.
pub fn apply_regulation(
    topology: &mut AsTopology,
    incumbent: AsId,
    ixp: IxpId,
    regulation: PeeringRegulation,
    strategy: CircumventionStrategy,
) -> Result<RegulationOutcome> {
    regulation.validate()?;
    // Borrow, don't clone: the shell only needs the incumbent's name and
    // interned region id (both cheap), and validity must still be checked
    // before the non-mandatory early return below.
    let (shell_name, shell_region) = {
        let info = topology.as_info(incumbent)?;
        (format!("{}-shell", info.name), info.region)
    };
    if ixp >= topology.ixp_count() {
        return Err(IxpError::InvalidIxp(ixp));
    }
    if !regulation.mandatory_peering {
        return Ok(RegulationOutcome {
            exchange_presence: None,
            rehomed_customers: Vec::new(),
        });
    }
    match strategy {
        CircumventionStrategy::ComplyFully => {
            topology.join_ixp(incumbent, ixp)?;
            topology.multilateral_peering(ixp)?;
            Ok(RegulationOutcome {
                exchange_presence: Some(incumbent),
                rehomed_customers: Vec::new(),
            })
        }
        CircumventionStrategy::AsnSplitting => {
            let shell =
                topology.add_as_in(shell_name, AsKind::Incumbent, shell_region, 0.0)?;
            topology.add_provider(shell, incumbent)?;
            topology.join_ixp(shell, ixp)?;
            // Enforcement re-homes the first ⌈e·k⌉ direct customers (by id,
            // deterministically) beneath the shell.
            let customers: Vec<AsId> = {
                let mut c = topology.customers_of(incumbent).to_vec();
                c.retain(|&x| x != shell);
                c.sort_unstable();
                c
            };
            let k = (regulation.enforcement * customers.len() as f64).ceil() as usize;
            let rehomed: Vec<AsId> = customers.into_iter().take(k).collect();
            for &c in &rehomed {
                // The customer now also buys from the shell; its shorter,
                // regulator-audited announcement path runs through the
                // shell's exchange presence.
                topology.add_provider(c, shell)?;
            }
            topology.multilateral_peering(ixp)?;
            Ok(RegulationOutcome {
                exchange_presence: Some(shell),
                rehomed_customers: rehomed,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::RoutingTable;
    use crate::topology::RegionTag;

    /// Incumbent with two retail customers; one competitor at the IXP.
    fn base() -> (AsTopology, AsId, AsId, [AsId; 3], IxpId) {
        let mut t = AsTopology::new();
        let mx = RegionTag::new("MX", true);
        let inc = t.add_as("Telmex", AsKind::Incumbent, &mx, 100.0);
        let c1 = t.add_as("Retail-1", AsKind::Access, &mx, 5.0);
        let c2 = t.add_as("Retail-2", AsKind::Access, &mx, 5.0);
        let comp = t.add_as("Competitor", AsKind::Access, &mx, 8.0);
        t.add_provider(c1, inc).unwrap();
        t.add_provider(c2, inc).unwrap();
        // The competitor also buys transit from the incumbent (market power).
        t.add_provider(comp, inc).unwrap();
        let ixp = t.add_ixp("IXP-MX", &mx);
        t.join_ixp(comp, ixp).unwrap();
        (t, inc, comp, [inc, c1, c2], ixp)
    }

    #[test]
    fn non_mandatory_changes_nothing() {
        let (mut t, inc, _comp, _, ixp) = base();
        let before = t.clone();
        let out = apply_regulation(
            &mut t,
            inc,
            ixp,
            PeeringRegulation {
                mandatory_peering: false,
                enforcement: 1.0,
            },
            CircumventionStrategy::ComplyFully,
        )
        .unwrap();
        assert_eq!(out.exchange_presence, None);
        assert_eq!(t, before);
    }

    #[test]
    fn full_compliance_exposes_cone_via_peering() {
        let (mut t, inc, comp, [_, c1, c2], ixp) = base();
        apply_regulation(
            &mut t,
            inc,
            ixp,
            PeeringRegulation {
                mandatory_peering: true,
                enforcement: 0.0,
            },
            CircumventionStrategy::ComplyFully,
        )
        .unwrap();
        let rt = RoutingTable::compute(&t).unwrap();
        // Competitor reaches retail customers via the peer session.
        for dst in [c1, c2] {
            let route = rt.route(comp, dst).unwrap();
            assert!(route.has_peer_hop, "route should use IXP peering: {route:?}");
            assert_eq!(route.crossed_ixp, Some(ixp));
        }
    }

    #[test]
    fn asn_splitting_keeps_traffic_on_transit() {
        let (mut t, inc, comp, [_, c1, c2], ixp) = base();
        let out = apply_regulation(
            &mut t,
            inc,
            ixp,
            PeeringRegulation {
                mandatory_peering: true,
                enforcement: 0.0,
            },
            CircumventionStrategy::AsnSplitting,
        )
        .unwrap();
        assert!(out.exchange_presence.is_some());
        assert!(out.rehomed_customers.is_empty());
        let rt = RoutingTable::compute(&t).unwrap();
        // The shell peers, but announces nothing useful: competitor still
        // reaches retail customers through paid incumbent transit.
        for dst in [c1, c2] {
            let route = rt.route(comp, dst).unwrap();
            assert!(!route.has_peer_hop, "circumvented: {route:?}");
            assert!(route.path.contains(&inc));
        }
    }

    #[test]
    fn enforcement_rehomes_customers_behind_shell() {
        let (mut t, inc, comp, [_, c1, c2], ixp) = base();
        let out = apply_regulation(
            &mut t,
            inc,
            ixp,
            PeeringRegulation {
                mandatory_peering: true,
                enforcement: 0.5,
            },
            CircumventionStrategy::AsnSplitting,
        )
        .unwrap();
        // ceil(0.5 × 3 direct customers) = 2 re-homed (c1, c2 by id; the
        // competitor itself is also a customer and sorts after them? ids:
        // c1 = 1, c2 = 2, comp = 3 -> rehomed = [1, 2].
        assert_eq!(out.rehomed_customers, vec![c1, c2]);
        let rt = RoutingTable::compute(&t).unwrap();
        let route = rt.route(comp, c1).unwrap();
        assert!(route.has_peer_hop, "rehomed customer reachable via IXP: {route:?}");
        let _ = inc;
    }

    #[test]
    fn full_enforcement_equivalent_to_compliance_for_reachability() {
        let (mut t, inc, comp, [_, c1, c2], ixp) = base();
        apply_regulation(
            &mut t,
            inc,
            ixp,
            PeeringRegulation {
                mandatory_peering: true,
                enforcement: 1.0,
            },
            CircumventionStrategy::AsnSplitting,
        )
        .unwrap();
        let rt = RoutingTable::compute(&t).unwrap();
        for dst in [c1, c2] {
            assert!(rt.route(comp, dst).unwrap().has_peer_hop);
        }
    }

    #[test]
    fn bad_parameters_rejected() {
        let (mut t, inc, _comp, _, ixp) = base();
        let bad = PeeringRegulation {
            mandatory_peering: true,
            enforcement: 1.5,
        };
        assert!(apply_regulation(&mut t, inc, ixp, bad, CircumventionStrategy::ComplyFully)
            .is_err());
        let ok = PeeringRegulation {
            mandatory_peering: true,
            enforcement: 0.5,
        };
        assert!(apply_regulation(&mut t, 99, ixp, ok, CircumventionStrategy::ComplyFully)
            .is_err());
        assert!(
            apply_regulation(&mut t, inc, 7, ok, CircumventionStrategy::ComplyFully).is_err()
        );
    }
}
