//! The sustainability simulation: failures, repair dispatch, burnout.
//!
//! Experiment **T3**: simulate a volunteer-maintained mesh for `days` days.
//! Each day:
//!
//! 1. every up node fails independently with `daily_failure_rate`;
//! 2. each down node is offered to an available volunteer (most skilled
//!    available first under FewCore-style concentration; round-robin under
//!    stewardship); a volunteer repairs one node per day with probability
//!    `skill`;
//! 3. working volunteers accrue burnout, idle ones recover; a volunteer at
//!    full burnout quits permanently;
//! 4. uptime accounting: a node-day counts as served when the node has
//!    service (path to an up gateway).

use crate::mesh::{MeshConfig, MeshNetwork, NodeState};
use crate::volunteer::{VolunteerPool, VolunteerRegime};
use crate::Result;
use humnet_resilience::{FaultHook, FaultKind, NoFaults};
use humnet_stats::Rng;
use humnet_telemetry::{Event, Telemetry};
use serde::{Deserialize, Serialize};

/// Configuration of a sustainability run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SustainabilityConfig {
    /// Mesh shape.
    pub mesh: MeshConfig,
    /// Volunteer regime.
    pub regime: VolunteerRegime,
    /// Days to simulate.
    pub days: u32,
    /// Per-node per-day failure probability.
    pub daily_failure_rate: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for SustainabilityConfig {
    fn default() -> Self {
        SustainabilityConfig {
            mesh: MeshConfig::default(),
            regime: VolunteerRegime::DistributedStewardship,
            days: 365,
            daily_failure_rate: 0.01,
            seed: 1,
        }
    }
}

/// Aggregate outcome of a sustainability run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SustainabilityOutcome {
    /// Regime simulated.
    pub regime: VolunteerRegime,
    /// Fraction of node-days with service.
    pub uptime: f64,
    /// Mean days from failure to completed repair (completed repairs only).
    pub mttr: f64,
    /// Repairs completed.
    pub repairs_completed: usize,
    /// Failures that occurred.
    pub failures: usize,
    /// Volunteers who quit from burnout.
    pub attrition: usize,
    /// Total staffing cost.
    pub total_cost: f64,
    /// Service fraction on the final day (detects late-run collapse).
    pub final_service: f64,
}

/// A runnable sustainability simulation.
#[derive(Debug, Clone)]
pub struct SustainabilitySim {
    config: SustainabilityConfig,
}

impl SustainabilitySim {
    /// Create a simulation.
    pub fn new(config: SustainabilityConfig) -> Result<Self> {
        if config.days == 0 {
            return Err(crate::CommunityError::InvalidParameter("days must be >= 1"));
        }
        if !(0.0..=1.0).contains(&config.daily_failure_rate) {
            return Err(crate::CommunityError::InvalidParameter(
                "daily_failure_rate must be in [0,1]",
            ));
        }
        Ok(SustainabilitySim { config })
    }

    /// Run to completion.
    pub fn run(&self) -> Result<SustainabilityOutcome> {
        self.run_with_faults(&mut NoFaults)
    }

    /// Run to completion under a fault hook. Each day the hook is asked
    /// about [`FaultKind::VolunteerDropout`] (today's volunteer availability
    /// is scaled down by the severity) and [`FaultKind::LinkOutage`] (extra
    /// node failures proportional to the severity). Under [`NoFaults`] this
    /// is bit-identical to [`SustainabilitySim::run`].
    pub fn run_with_faults(&self, hook: &mut dyn FaultHook) -> Result<SustainabilityOutcome> {
        self.run_instrumented(hook, &Telemetry::disabled())
    }

    /// [`SustainabilitySim::run_with_faults`] with telemetry: a
    /// `community.sustainability` span, a per-day `community.day_ns`
    /// histogram, failure/repair counters, and a milestone event. The
    /// simulated outcome is identical.
    pub fn run_instrumented(
        &self,
        hook: &mut dyn FaultHook,
        tel: &Telemetry,
    ) -> Result<SustainabilityOutcome> {
        let _span = tel.span("community.sustainability");
        let mut rng = Rng::new(self.config.seed);
        let mut mesh = MeshNetwork::deploy(&self.config.mesh, &mut rng)?;
        let mut pool = VolunteerPool::for_regime(self.config.regime);
        pool.validate()?;
        let n = mesh.node_count();
        let mut failed_on: Vec<Option<u32>> = vec![None; n];
        let mut served_node_days = 0u64;
        let mut repair_latencies: Vec<u32> = Vec::new();
        let mut failures = 0usize;
        let mut total_cost = 0.0;
        let mut rr_cursor = 0usize; // round-robin cursor for stewardship
        for day in 0..self.config.days {
            let t0 = tel.start();
            // Fault injection perturbs the day's *probabilities* rather than
            // adding RNG draws, so the base random stream stays aligned with
            // the un-faulted run and `NoFaults` reproduces it exactly.
            let day_failure_rate = match hook.inject(u64::from(day), FaultKind::LinkOutage) {
                // A link outage burst: up to +35 percentage points of
                // per-node failure probability at full severity.
                Some(severity) => (self.config.daily_failure_rate + 0.35 * severity).min(1.0),
                None => self.config.daily_failure_rate,
            };
            let availability_scale =
                match hook.inject(u64::from(day), FaultKind::VolunteerDropout) {
                    // A dropout spike: most hands stay home today.
                    Some(severity) => 1.0 - severity,
                    None => 1.0,
                };
            // 1. Failures.
            for node in 0..n {
                if mesh.state(node)? == NodeState::Up && rng.chance(day_failure_rate) {
                    mesh.set_state(node, NodeState::Down)?;
                    failed_on[node] = Some(day);
                    failures += 1;
                }
            }
            // 2. Repair dispatch.
            let down = mesh.down_nodes();
            let mut worked = vec![false; pool.members.len()];
            // Determine today's availability per volunteer.
            let available: Vec<bool> = pool
                .members
                .iter()
                .map(|v| rng.chance(v.effective_availability() * availability_scale))
                .collect();
            // Dispatch order: FewCore concentrates on the most skilled;
            // stewardship rotates.
            let order: Vec<usize> = match self.config.regime {
                VolunteerRegime::DistributedStewardship => {
                    let k = pool.members.len();
                    let o = (0..k).map(|i| (rr_cursor + i) % k).collect();
                    rr_cursor = (rr_cursor + 1) % k;
                    o
                }
                _ => {
                    let mut idx: Vec<usize> = (0..pool.members.len()).collect();
                    idx.sort_by(|&a, &b| {
                        pool.members[b]
                            .skill
                            .partial_cmp(&pool.members[a].skill)
                            .unwrap_or(std::cmp::Ordering::Equal)
                    });
                    idx
                }
            };
            let mut order_iter = order.into_iter().filter(|&v| available[v]);
            for node in down {
                let Some(vol_idx) = order_iter.next() else {
                    break; // no more hands today
                };
                worked[vol_idx] = true;
                if rng.chance(pool.members[vol_idx].skill) {
                    mesh.set_state(node, NodeState::Up)?;
                    if let Some(f) = failed_on[node].take() {
                        repair_latencies.push(day - f + 1);
                    }
                }
            }
            // 3. Burnout bookkeeping and costs.
            for (i, member) in pool.members.iter_mut().enumerate() {
                if worked[i] {
                    member.work_day();
                } else {
                    member.rest_day();
                }
                if !member.quit {
                    total_cost += member.daily_cost;
                }
            }
            // 4. Uptime accounting.
            served_node_days += mesh.service_map().iter().filter(|&&s| s).count() as u64;
            tel.observe_since("community.day_ns", t0);
        }
        let uptime = served_node_days as f64 / (n as u64 * self.config.days as u64) as f64;
        let mttr = if repair_latencies.is_empty() {
            f64::NAN
        } else {
            repair_latencies.iter().map(|&l| l as f64).sum::<f64>()
                / repair_latencies.len() as f64
        };
        tel.counter("community.days", u64::from(self.config.days));
        tel.counter("community.failures", failures as u64);
        tel.counter("community.repairs", repair_latencies.len() as u64);
        tel.gauge("community.uptime", uptime);
        tel.event(
            Event::new(
                "milestone",
                format!(
                    "community.sustainability: {} days, {} failures, {} repairs, uptime {:.3}",
                    self.config.days,
                    failures,
                    repair_latencies.len(),
                    uptime
                ),
            )
            .with_step(u64::from(self.config.days)),
        );
        Ok(SustainabilityOutcome {
            regime: self.config.regime,
            uptime,
            mttr,
            repairs_completed: repair_latencies.len(),
            failures,
            attrition: pool.attrition(),
            total_cost,
            final_service: mesh.service_fraction(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(regime: VolunteerRegime, failure_rate: f64, days: u32, seed: u64) -> SustainabilityOutcome {
        let mut cfg = SustainabilityConfig::default();
        cfg.regime = regime;
        cfg.daily_failure_rate = failure_rate;
        cfg.days = days;
        cfg.seed = seed;
        SustainabilitySim::new(cfg).unwrap().run().unwrap()
    }

    #[test]
    fn config_validation() {
        let mut cfg = SustainabilityConfig::default();
        cfg.days = 0;
        assert!(SustainabilitySim::new(cfg).is_err());
        let mut cfg = SustainabilityConfig::default();
        cfg.daily_failure_rate = 1.5;
        assert!(SustainabilitySim::new(cfg).is_err());
    }

    #[test]
    fn zero_failure_rate_gives_stable_uptime() {
        let out = run(VolunteerRegime::DistributedStewardship, 0.0, 60, 1);
        assert_eq!(out.failures, 0);
        assert_eq!(out.repairs_completed, 0);
        assert!(out.mttr.is_nan());
        // Uptime equals the deployed service fraction (some nodes may be
        // out of radio range of a gateway from day one).
        assert!(out.uptime > 0.0);
        assert!((out.uptime - out.final_service).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(VolunteerRegime::FewCore, 0.02, 120, 9);
        let b = run(VolunteerRegime::FewCore, 0.02, 120, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn few_core_burns_out_under_load() {
        let out = run(VolunteerRegime::FewCore, 0.05, 365, 3);
        assert!(out.attrition >= 1, "core volunteers should quit: {out:?}");
    }

    #[test]
    fn stewardship_outlasts_few_core_under_load() {
        // Average over seeds to keep the comparison robust.
        let mean_uptime = |regime| {
            (0..5)
                .map(|s| run(regime, 0.05, 365, s).uptime)
                .sum::<f64>()
                / 5.0
        };
        let steward = mean_uptime(VolunteerRegime::DistributedStewardship);
        let core = mean_uptime(VolunteerRegime::FewCore);
        assert!(
            steward > core,
            "stewardship uptime {steward} should beat few-core {core}"
        );
    }

    #[test]
    fn paid_staff_costs_money() {
        let out = run(VolunteerRegime::PaidStaff, 0.02, 200, 4);
        assert!(out.total_cost > 0.0);
        assert_eq!(out.attrition, 0);
        let vol = run(VolunteerRegime::DistributedStewardship, 0.02, 200, 4);
        assert_eq!(vol.total_cost, 0.0);
    }

    #[test]
    fn higher_failure_rate_lowers_uptime() {
        let low = run(VolunteerRegime::DistributedStewardship, 0.005, 200, 5);
        let high = run(VolunteerRegime::DistributedStewardship, 0.08, 200, 5);
        assert!(low.uptime > high.uptime);
        assert!(high.failures > low.failures);
    }

    #[test]
    fn faults_degrade_but_never_corrupt() {
        use humnet_resilience::{FaultPlan, FaultProfile, PlanHook};
        let cfg = SustainabilityConfig::default();
        let sim = SustainabilitySim::new(cfg).unwrap();
        let plain = sim.run().unwrap();
        // NoFaults-equivalent plan reproduces the plain run bit-for-bit.
        let mut none = PlanHook::new(FaultPlan::none());
        assert_eq!(sim.run_with_faults(&mut none).unwrap(), plain);
        assert_eq!(none.faults_injected(), 0);
        // Chaos runs are deterministic and stay within valid bounds.
        let chaos = |seed| {
            let mut hook = PlanHook::new(FaultPlan::new(FaultProfile::Chaos, seed));
            let out = sim.run_with_faults(&mut hook).unwrap();
            (out, hook.faults_injected())
        };
        let (a, fa) = chaos(21);
        let (b, fb) = chaos(21);
        assert_eq!(a, b);
        assert_eq!(fa, fb);
        assert!(fa > 0);
        assert!((0.0..=1.0).contains(&a.uptime));
        assert!((0.0..=1.0).contains(&a.final_service));
        assert!(a.failures >= plain.failures, "outages should add failures");
    }

    #[test]
    fn mttr_is_positive_when_repairs_happen() {
        let out = run(VolunteerRegime::PaidStaff, 0.03, 200, 6);
        assert!(out.repairs_completed > 0);
        assert!(out.mttr >= 1.0);
    }
}
