//! # humnet-community
//!
//! Community-network simulator for the `humnet` toolkit.
//!
//! Section 4 of the paper grounds its positionality argument in the Seattle
//! Community Network and the community-cellular tradition (CoLTE, CCM,
//! LibreRouter): socio-technical systems whose fate is decided by volunteer
//! labour and local governance at least as much as by radio engineering.
//! Two of that literature's findings are reproduced here as experiments:
//!
//! * **Sustainability (T3).** Volunteer-maintained infrastructure lives or
//!   dies by the shape of its volunteer pool (Jang 2024; Garrison et al.
//!   2021, "The Network Is an Excuse"). [`mesh`] models the physical
//!   network, [`volunteer`] the humans, and [`sim`] runs the
//!   failure/repair/burnout loop.
//! * **Common-pool congestion (F5).** Johnson et al. 2021 showed community
//!   networks can manage backhaul capacity as an Ostrom-style common-pool
//!   resource. [`congestion`] implements free-for-all, static-cap, and
//!   community-token allocation policies and measures fairness,
//!   utilization, and starvation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod congestion;
pub mod economics;
pub mod mesh;
pub mod sim;
pub mod volunteer;

pub use congestion::{AllocationPolicy, CongestionConfig, CongestionOutcome, CongestionSim};
pub use economics::{
    compare_policies, simulate_economics, DuesPolicy, EconomicsConfig, EconomicsOutcome,
};
pub use mesh::{MeshConfig, MeshNetwork, NodeState};
pub use sim::{SustainabilityConfig, SustainabilityOutcome, SustainabilitySim};
pub use volunteer::{Volunteer, VolunteerPool, VolunteerRegime};

/// Errors produced by the community-network simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommunityError {
    /// A parameter was outside its valid domain.
    InvalidParameter(&'static str),
    /// A node id was out of range.
    InvalidNode(usize),
    /// The operation requires a nonempty network or pool.
    EmptyInput,
}

impl std::fmt::Display for CommunityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommunityError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            CommunityError::InvalidNode(id) => write!(f, "invalid node id {id}"),
            CommunityError::EmptyInput => write!(f, "input is empty"),
        }
    }
}

impl std::error::Error for CommunityError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, CommunityError>;
