//! Volunteers: the humans who keep community networks alive.

use crate::{CommunityError, Result};
use serde::{Deserialize, Serialize};

/// One volunteer (or staff member).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Volunteer {
    /// Display name.
    pub name: String,
    /// Skill in `[0, 1]`: probability a repair attempt succeeds in one day.
    pub skill: f64,
    /// Baseline availability in `[0, 1]`: probability of being free to take
    /// a repair on a given day, before burnout.
    pub availability: f64,
    /// Accumulated burnout in `[0, 1]`. Reduces effective availability;
    /// at 1.0 the volunteer quits.
    pub burnout: f64,
    /// Burnout added per repair-day worked.
    pub burnout_per_repair: f64,
    /// Burnout recovered per idle day.
    pub recovery_per_day: f64,
    /// Whether the volunteer has quit.
    pub quit: bool,
    /// Daily cost (0 for volunteers, > 0 for paid staff).
    pub daily_cost: f64,
}

impl Volunteer {
    /// Effective availability after burnout.
    pub fn effective_availability(&self) -> f64 {
        if self.quit {
            0.0
        } else {
            (self.availability * (1.0 - self.burnout)).max(0.0)
        }
    }

    /// Record a day spent on a repair.
    pub fn work_day(&mut self) {
        self.burnout = (self.burnout + self.burnout_per_repair).min(1.0);
        if self.burnout >= 1.0 {
            self.quit = true;
        }
    }

    /// Record an idle day.
    pub fn rest_day(&mut self) {
        if !self.quit {
            self.burnout = (self.burnout - self.recovery_per_day).max(0.0);
        }
    }
}

/// The shape of a maintenance workforce — the independent variable of
/// experiment **T3**.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VolunteerRegime {
    /// A couple of heroic core volunteers (the pattern Jang 2024 warns
    /// about): high skill and availability, but the load concentrates and
    /// burns them out.
    FewCore,
    /// Distributed stewardship: many moderately skilled volunteers sharing
    /// the load with rotation.
    DistributedStewardship,
    /// One paid technician: immune to burnout, costs money, limited hours.
    PaidStaff,
}

impl VolunteerRegime {
    /// All regimes.
    pub const ALL: [VolunteerRegime; 3] = [
        VolunteerRegime::FewCore,
        VolunteerRegime::DistributedStewardship,
        VolunteerRegime::PaidStaff,
    ];

    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            VolunteerRegime::FewCore => "few-core",
            VolunteerRegime::DistributedStewardship => "distributed-stewardship",
            VolunteerRegime::PaidStaff => "paid-staff",
        }
    }
}

/// A pool of volunteers under a regime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VolunteerPool {
    /// The members.
    pub members: Vec<Volunteer>,
    /// The regime the pool was built for.
    pub regime: VolunteerRegime,
}

impl VolunteerPool {
    /// Build the standard pool for a regime.
    pub fn for_regime(regime: VolunteerRegime) -> Self {
        let members = match regime {
            VolunteerRegime::FewCore => (0..2)
                .map(|i| Volunteer {
                    name: format!("core-{i}"),
                    skill: 0.9,
                    availability: 0.9,
                    burnout: 0.0,
                    burnout_per_repair: 0.06,
                    recovery_per_day: 0.01,
                    quit: false,
                    daily_cost: 0.0,
                })
                .collect(),
            VolunteerRegime::DistributedStewardship => (0..10)
                .map(|i| Volunteer {
                    name: format!("steward-{i}"),
                    skill: 0.6,
                    availability: 0.4,
                    burnout: 0.0,
                    burnout_per_repair: 0.04,
                    recovery_per_day: 0.03,
                    quit: false,
                    daily_cost: 0.0,
                })
                .collect(),
            VolunteerRegime::PaidStaff => vec![Volunteer {
                name: "tech-0".into(),
                skill: 0.95,
                availability: 0.95,
                burnout: 0.0,
                burnout_per_repair: 0.0,
                recovery_per_day: 1.0,
                quit: false,
                daily_cost: 1.0,
            }],
            };
        VolunteerPool { members, regime }
    }

    /// Validate member parameters.
    pub fn validate(&self) -> Result<()> {
        if self.members.is_empty() {
            return Err(CommunityError::EmptyInput);
        }
        for v in &self.members {
            if !(0.0..=1.0).contains(&v.skill)
                || !(0.0..=1.0).contains(&v.availability)
                || !(0.0..=1.0).contains(&v.burnout)
                || v.burnout_per_repair < 0.0
                || v.recovery_per_day < 0.0
                || v.daily_cost < 0.0
            {
                return Err(CommunityError::InvalidParameter(
                    "volunteer parameters out of range",
                ));
            }
        }
        Ok(())
    }

    /// Number of members who have quit.
    pub fn attrition(&self) -> usize {
        self.members.iter().filter(|v| v.quit).count()
    }

    /// Mean burnout over non-quit members (0 if all quit).
    pub fn mean_burnout(&self) -> f64 {
        let active: Vec<&Volunteer> = self.members.iter().filter(|v| !v.quit).collect();
        if active.is_empty() {
            return 0.0;
        }
        active.iter().map(|v| v.burnout).sum::<f64>() / active.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regime_pools_validate() {
        for regime in VolunteerRegime::ALL {
            let pool = VolunteerPool::for_regime(regime);
            pool.validate().unwrap();
            assert!(!pool.members.is_empty());
            assert_eq!(pool.regime, regime);
        }
    }

    #[test]
    fn regime_pool_shapes() {
        assert_eq!(VolunteerPool::for_regime(VolunteerRegime::FewCore).members.len(), 2);
        assert_eq!(
            VolunteerPool::for_regime(VolunteerRegime::DistributedStewardship)
                .members
                .len(),
            10
        );
        assert_eq!(VolunteerPool::for_regime(VolunteerRegime::PaidStaff).members.len(), 1);
    }

    #[test]
    fn burnout_accumulates_and_quits() {
        let mut v = VolunteerPool::for_regime(VolunteerRegime::FewCore).members[0].clone();
        let initial = v.effective_availability();
        for _ in 0..10 {
            v.work_day();
        }
        assert!(v.burnout > 0.5);
        assert!(v.effective_availability() < initial);
        for _ in 0..10 {
            v.work_day();
        }
        assert!(v.quit);
        assert_eq!(v.effective_availability(), 0.0);
    }

    #[test]
    fn rest_recovers_burnout() {
        let mut v = VolunteerPool::for_regime(VolunteerRegime::DistributedStewardship).members[0]
            .clone();
        v.work_day();
        v.work_day();
        let high = v.burnout;
        v.rest_day();
        assert!(v.burnout < high);
        for _ in 0..100 {
            v.rest_day();
        }
        assert_eq!(v.burnout, 0.0);
    }

    #[test]
    fn paid_staff_never_burns_out() {
        let mut v = VolunteerPool::for_regime(VolunteerRegime::PaidStaff).members[0].clone();
        for _ in 0..1000 {
            v.work_day();
        }
        assert!(!v.quit);
        assert_eq!(v.burnout, 0.0);
        assert!(v.daily_cost > 0.0);
    }

    #[test]
    fn attrition_and_mean_burnout() {
        let mut pool = VolunteerPool::for_regime(VolunteerRegime::FewCore);
        assert_eq!(pool.attrition(), 0);
        for _ in 0..20 {
            pool.members[0].work_day();
        }
        assert_eq!(pool.attrition(), 1);
        assert!(pool.mean_burnout() < 1.0);
    }

    #[test]
    fn validation_rejects_bad_members() {
        let mut pool = VolunteerPool::for_regime(VolunteerRegime::FewCore);
        pool.members[0].skill = 1.5;
        assert!(pool.validate().is_err());
        let empty = VolunteerPool {
            members: vec![],
            regime: VolunteerRegime::FewCore,
        };
        assert!(empty.validate().is_err());
    }
}
