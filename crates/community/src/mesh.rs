//! The physical mesh: nodes, radio links, gateways, service reachability.

use crate::{CommunityError, Result};
use humnet_stats::Rng;
use serde::{Deserialize, Serialize};

/// Operational state of a mesh node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeState {
    /// Powered and relaying.
    Up,
    /// Failed, awaiting repair.
    Down,
}

/// Configuration of a random geometric mesh.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeshConfig {
    /// Number of nodes (including gateways).
    pub nodes: usize,
    /// Number of gateway (backhaul) nodes, placed first.
    pub gateways: usize,
    /// Side length of the square deployment area.
    pub area: f64,
    /// Radio range: nodes within this distance get a link.
    pub radio_range: f64,
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig {
            nodes: 40,
            gateways: 2,
            area: 10.0,
            radio_range: 2.5,
        }
    }
}

/// A deployed mesh network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeshNetwork {
    /// Node positions.
    positions: Vec<(f64, f64)>,
    /// Adjacency lists (radio links).
    links: Vec<Vec<usize>>,
    /// Per-node state.
    states: Vec<NodeState>,
    /// Gateway node ids.
    gateways: Vec<usize>,
}

impl MeshNetwork {
    /// Deploy a random geometric mesh. Positions are uniform over the area;
    /// links join nodes within radio range. Deterministic given the RNG.
    pub fn deploy(config: &MeshConfig, rng: &mut Rng) -> Result<Self> {
        if config.nodes == 0 {
            return Err(CommunityError::InvalidParameter("need at least one node"));
        }
        if config.gateways == 0 || config.gateways > config.nodes {
            return Err(CommunityError::InvalidParameter(
                "gateways must be in [1, nodes]",
            ));
        }
        if config.area <= 0.0 || config.radio_range <= 0.0 {
            return Err(CommunityError::InvalidParameter(
                "area and radio_range must be positive",
            ));
        }
        let positions: Vec<(f64, f64)> = (0..config.nodes)
            .map(|_| (rng.range_f64(0.0, config.area), rng.range_f64(0.0, config.area)))
            .collect();
        let mut links = vec![Vec::new(); config.nodes];
        for i in 0..config.nodes {
            for j in (i + 1)..config.nodes {
                let dx = positions[i].0 - positions[j].0;
                let dy = positions[i].1 - positions[j].1;
                if (dx * dx + dy * dy).sqrt() <= config.radio_range {
                    links[i].push(j);
                    links[j].push(i);
                }
            }
        }
        Ok(MeshNetwork {
            positions,
            links,
            states: vec![NodeState::Up; config.nodes],
            gateways: (0..config.gateways).collect(),
        })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Gateway ids.
    pub fn gateways(&self) -> &[usize] {
        &self.gateways
    }

    /// Position of a node.
    pub fn position(&self, id: usize) -> Result<(f64, f64)> {
        self.positions
            .get(id)
            .copied()
            .ok_or(CommunityError::InvalidNode(id))
    }

    /// State of a node.
    pub fn state(&self, id: usize) -> Result<NodeState> {
        self.states
            .get(id)
            .copied()
            .ok_or(CommunityError::InvalidNode(id))
    }

    /// Set a node's state.
    pub fn set_state(&mut self, id: usize, state: NodeState) -> Result<()> {
        match self.states.get_mut(id) {
            Some(s) => {
                *s = state;
                Ok(())
            }
            None => Err(CommunityError::InvalidNode(id)),
        }
    }

    /// Ids of nodes currently down.
    pub fn down_nodes(&self) -> Vec<usize> {
        self.states
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == NodeState::Down)
            .map(|(i, _)| i)
            .collect()
    }

    /// Neighbors of a node.
    pub fn neighbors(&self, id: usize) -> &[usize] {
        &self.links[id]
    }

    /// A node has *service* when it is up and can reach an up gateway
    /// through up nodes. Returns the service bitmap.
    pub fn service_map(&self) -> Vec<bool> {
        let n = self.node_count();
        let mut served = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        for &g in &self.gateways {
            if self.states[g] == NodeState::Up {
                served[g] = true;
                queue.push_back(g);
            }
        }
        while let Some(u) = queue.pop_front() {
            for &v in &self.links[u] {
                if !served[v] && self.states[v] == NodeState::Up {
                    served[v] = true;
                    queue.push_back(v);
                }
            }
        }
        served
    }

    /// Fraction of all nodes currently holding service.
    pub fn service_fraction(&self) -> f64 {
        let served = self.service_map();
        served.iter().filter(|&&s| s).count() as f64 / served.len().max(1) as f64
    }

    /// Mean hop distance from served nodes to their nearest gateway
    /// (ignores unserved nodes; 0 when nothing is served).
    pub fn mean_gateway_distance(&self) -> f64 {
        let n = self.node_count();
        let mut dist = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        for &g in &self.gateways {
            if self.states[g] == NodeState::Up {
                dist[g] = 0;
                queue.push_back(g);
            }
        }
        while let Some(u) = queue.pop_front() {
            for &v in &self.links[u] {
                if dist[v] == usize::MAX && self.states[v] == NodeState::Up {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        let served: Vec<usize> = dist.into_iter().filter(|&d| d != usize::MAX).collect();
        if served.is_empty() {
            0.0
        } else {
            served.iter().sum::<usize>() as f64 / served.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_mesh() -> MeshNetwork {
        // Small area + big range => fully connected.
        let cfg = MeshConfig {
            nodes: 10,
            gateways: 1,
            area: 1.0,
            radio_range: 2.0,
        };
        MeshNetwork::deploy(&cfg, &mut Rng::new(1)).unwrap()
    }

    #[test]
    fn deploy_rejects_bad_configs() {
        let mut rng = Rng::new(1);
        let mut c = MeshConfig::default();
        c.nodes = 0;
        assert!(MeshNetwork::deploy(&c, &mut rng).is_err());
        let mut c = MeshConfig::default();
        c.gateways = 0;
        assert!(MeshNetwork::deploy(&c, &mut rng).is_err());
        let mut c = MeshConfig::default();
        c.gateways = c.nodes + 1;
        assert!(MeshNetwork::deploy(&c, &mut rng).is_err());
        let mut c = MeshConfig::default();
        c.radio_range = 0.0;
        assert!(MeshNetwork::deploy(&c, &mut rng).is_err());
    }

    #[test]
    fn deploy_is_deterministic() {
        let cfg = MeshConfig::default();
        let a = MeshNetwork::deploy(&cfg, &mut Rng::new(5)).unwrap();
        let b = MeshNetwork::deploy(&cfg, &mut Rng::new(5)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fully_up_dense_mesh_serves_everyone() {
        let m = dense_mesh();
        assert_eq!(m.service_fraction(), 1.0);
        assert!(m.down_nodes().is_empty());
    }

    #[test]
    fn gateway_failure_kills_service() {
        let mut m = dense_mesh();
        m.set_state(0, NodeState::Down).unwrap(); // only gateway
        assert_eq!(m.service_fraction(), 0.0);
        assert_eq!(m.down_nodes(), vec![0]);
    }

    #[test]
    fn node_failure_disconnects_subtree() {
        // Line topology: g - a - b. Take a down; b loses service.
        let mut m = MeshNetwork {
            positions: vec![(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)],
            links: vec![vec![1], vec![0, 2], vec![1]],
            states: vec![NodeState::Up; 3],
            gateways: vec![0],
        };
        assert_eq!(m.service_fraction(), 1.0);
        m.set_state(1, NodeState::Down).unwrap();
        let served = m.service_map();
        assert!(served[0]);
        assert!(!served[1]);
        assert!(!served[2], "downstream node orphaned");
        assert!((m.service_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_gateway_distance_on_line() {
        let m = MeshNetwork {
            positions: vec![(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)],
            links: vec![vec![1], vec![0, 2], vec![1]],
            states: vec![NodeState::Up; 3],
            gateways: vec![0],
        };
        assert!((m.mean_gateway_distance() - 1.0).abs() < 1e-12); // (0+1+2)/3
    }

    #[test]
    fn invalid_node_access_errors() {
        let mut m = dense_mesh();
        assert!(m.position(99).is_err());
        assert!(m.state(99).is_err());
        assert!(m.set_state(99, NodeState::Down).is_err());
    }

    #[test]
    fn sparse_mesh_may_be_partitioned() {
        let cfg = MeshConfig {
            nodes: 30,
            gateways: 1,
            area: 100.0,
            radio_range: 1.0,
        };
        let m = MeshNetwork::deploy(&cfg, &mut Rng::new(3)).unwrap();
        // With this density, some nodes are isolated from the gateway.
        assert!(m.service_fraction() < 1.0);
    }
}
