//! Common-pool congestion management (experiment **F5**).
//!
//! Johnson et al. 2021 ("Network Capacity as Common Pool Resource") showed
//! a community network governing shared backhaul with community-made
//! allocation rules. This module compares three policies for dividing a
//! fixed backhaul capacity among households with bursty, heavy-tailed
//! demand:
//!
//! * [`AllocationPolicy::FreeForAll`] — no governance: capacity divides in
//!   proportion to offered demand, so heavy users crowd everyone out;
//! * [`AllocationPolicy::StaticCap`] — equal hard caps: perfectly fair but
//!   wastes capacity whenever demand is skewed;
//! * [`AllocationPolicy::CommunityTokens`] — the common-pool scheme:
//!   everyone holds a baseline entitlement plus banked credit from idle
//!   rounds, and capacity left over after entitlements is shared max-min.

use crate::{CommunityError, Result};
use humnet_resilience::{FaultHook, FaultKind, NoFaults};
use humnet_stats::{jain_fairness, Rng};
use humnet_telemetry::{Event, Telemetry};
use serde::{Deserialize, Serialize};

/// How shared capacity is divided each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AllocationPolicy {
    /// Proportional to offered demand (no governance).
    FreeForAll,
    /// Equal per-household hard cap, unused capacity wasted.
    StaticCap,
    /// Baseline entitlement + banked credit + max-min redistribution.
    CommunityTokens,
}

impl AllocationPolicy {
    /// All policies.
    pub const ALL: [AllocationPolicy; 3] = [
        AllocationPolicy::FreeForAll,
        AllocationPolicy::StaticCap,
        AllocationPolicy::CommunityTokens,
    ];

    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            AllocationPolicy::FreeForAll => "free-for-all",
            AllocationPolicy::StaticCap => "static-cap",
            AllocationPolicy::CommunityTokens => "community-tokens",
        }
    }
}

/// Configuration of a congestion run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CongestionConfig {
    /// Number of households sharing the backhaul.
    pub households: usize,
    /// Backhaul capacity per round (arbitrary units).
    pub capacity: f64,
    /// Rounds to simulate.
    pub rounds: u32,
    /// Log-normal σ of baseline demand (heavier tail = more skew).
    pub demand_sigma: f64,
    /// Probability a household bursts in a round.
    pub burst_probability: f64,
    /// Demand multiplier during a burst.
    pub burst_multiplier: f64,
    /// Token bank cap, as a multiple of the per-round baseline entitlement
    /// (only used by [`AllocationPolicy::CommunityTokens`]).
    pub bank_cap_rounds: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for CongestionConfig {
    fn default() -> Self {
        CongestionConfig {
            households: 30,
            capacity: 30.0,
            rounds: 500,
            demand_sigma: 1.0,
            burst_probability: 0.08,
            burst_multiplier: 6.0,
            bank_cap_rounds: 3.0,
            seed: 1,
        }
    }
}

impl CongestionConfig {
    /// Validate parameters.
    pub fn validate(&self) -> Result<()> {
        if self.households == 0 {
            return Err(CommunityError::InvalidParameter("households must be >= 1"));
        }
        if self.capacity <= 0.0 {
            return Err(CommunityError::InvalidParameter("capacity must be positive"));
        }
        if self.rounds == 0 {
            return Err(CommunityError::InvalidParameter("rounds must be >= 1"));
        }
        if self.demand_sigma < 0.0 {
            return Err(CommunityError::InvalidParameter("demand_sigma must be >= 0"));
        }
        if !(0.0..=1.0).contains(&self.burst_probability) {
            return Err(CommunityError::InvalidParameter(
                "burst_probability must be in [0,1]",
            ));
        }
        if self.burst_multiplier < 1.0 {
            return Err(CommunityError::InvalidParameter("burst_multiplier must be >= 1"));
        }
        if self.bank_cap_rounds < 0.0 {
            return Err(CommunityError::InvalidParameter("bank_cap_rounds must be >= 0"));
        }
        Ok(())
    }
}

/// Aggregate outcome of a congestion run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CongestionOutcome {
    /// Policy simulated.
    pub policy: AllocationPolicy,
    /// Mean Jain fairness of the allocations received by *backlogged*
    /// households (offered demand above the equal share) across saturated
    /// rounds — the classical contended-flow fairness measure.
    pub fairness: f64,
    /// Mean fraction of capacity used in saturated rounds.
    pub utilization: f64,
    /// Fraction of *modest* household-rounds (demand at or below the equal
    /// share, in saturated rounds) left under 95% served. Good governance
    /// always serves modest users in full; free-for-all squeezes them
    /// whenever heavy users burst.
    pub starvation: f64,
    /// Number of rounds where offered demand exceeded capacity.
    pub saturated_rounds: u32,
}

/// The congestion simulator.
#[derive(Debug, Clone)]
pub struct CongestionSim {
    config: CongestionConfig,
}

impl CongestionSim {
    /// Create a simulator.
    pub fn new(config: CongestionConfig) -> Result<Self> {
        config.validate()?;
        Ok(CongestionSim { config })
    }

    /// Run one policy to completion.
    pub fn run(&self, policy: AllocationPolicy) -> CongestionOutcome {
        self.run_with_faults(policy, &mut NoFaults)
    }

    /// Run one policy under a fault hook. Each round the hook is asked
    /// about [`FaultKind::LinkOutage`]: an active outage shrinks that
    /// round's backhaul capacity by up to 60% at full severity (the common
    /// pool itself degrades). Under [`NoFaults`] this is bit-identical to
    /// [`CongestionSim::run`].
    pub fn run_with_faults(
        &self,
        policy: AllocationPolicy,
        hook: &mut dyn FaultHook,
    ) -> CongestionOutcome {
        let cfg = &self.config;
        let mut rng = Rng::new(cfg.seed);
        let n = cfg.households;
        // Baseline demands: log-normal, scaled so the mean offered load is
        // ~80% of capacity before bursts.
        let mut base: Vec<f64> = (0..n).map(|_| rng.log_normal(0.0, cfg.demand_sigma)).collect();
        let sum: f64 = base.iter().sum();
        let scale = 0.8 * cfg.capacity / sum;
        for b in base.iter_mut() {
            *b *= scale;
        }
        let entitlement = cfg.capacity / n as f64;
        let bank_cap = cfg.bank_cap_rounds * entitlement;
        let mut banked = vec![0.0f64; n];
        let mut fairness_acc = 0.0;
        let mut util_acc = 0.0;
        let mut starved = 0u64;
        let mut sat_household_rounds = 0u64;
        let mut saturated_rounds = 0u32;
        for round in 0..cfg.rounds {
            // A link outage shrinks this round's shared backhaul by up to
            // 60% at full severity; probabilities and demand draws are
            // untouched so the RNG stream stays aligned with the un-faulted
            // run.
            let round_capacity = match hook.inject(u64::from(round), FaultKind::LinkOutage) {
                Some(severity) => cfg.capacity * (1.0 - 0.6 * severity),
                None => cfg.capacity,
            };
            // Demands this round.
            let demand: Vec<f64> = base
                .iter()
                .map(|&b| {
                    if rng.chance(cfg.burst_probability) {
                        b * cfg.burst_multiplier
                    } else {
                        b
                    }
                })
                .collect();
            let total: f64 = demand.iter().sum();
            let alloc = match policy {
                AllocationPolicy::FreeForAll => {
                    let factor = (round_capacity / total).min(1.0);
                    demand.iter().map(|&d| d * factor).collect::<Vec<f64>>()
                }
                AllocationPolicy::StaticCap => demand
                    .iter()
                    .map(|&d| d.min(entitlement))
                    .collect::<Vec<f64>>(),
                AllocationPolicy::CommunityTokens => {
                    // Pass 1: entitlements plus banked credit.
                    let mut a: Vec<f64> = demand
                        .iter()
                        .zip(&banked)
                        .map(|(&d, &bk)| d.min(entitlement + bk))
                        .collect();
                    // Clamp to capacity if entitlement+bank oversubscribes.
                    let used: f64 = a.iter().sum();
                    if used > round_capacity {
                        let f = round_capacity / used;
                        for x in a.iter_mut() {
                            *x *= f;
                        }
                    } else {
                        // Pass 2: max-min water-fill the leftover capacity
                        // over unmet demand.
                        let mut leftover = round_capacity - used;
                        let mut unmet: Vec<usize> = (0..n)
                            .filter(|&h| demand[h] - a[h] > 1e-12)
                            .collect();
                        while leftover > 1e-9 && !unmet.is_empty() {
                            let share = leftover / unmet.len() as f64;
                            let mut next_unmet = Vec::new();
                            for &h in &unmet {
                                let need = demand[h] - a[h];
                                let grant = need.min(share);
                                a[h] += grant;
                                leftover -= grant;
                                if demand[h] - a[h] > 1e-12 {
                                    next_unmet.push(h);
                                }
                            }
                            if next_unmet.len() == unmet.len() {
                                // Everyone still unmet got a full share;
                                // continue water-filling.
                            }
                            unmet = next_unmet;
                        }
                    }
                    // Bank bookkeeping: unused entitlement carries over.
                    for h in 0..n {
                        let spent_from_entitlement = a[h].min(entitlement + banked[h]);
                        let new_balance =
                            (entitlement + banked[h] - spent_from_entitlement).min(bank_cap);
                        banked[h] = new_balance.max(0.0);
                    }
                    a
                }
            };
            if total > round_capacity {
                saturated_rounds += 1;
                util_acc += alloc.iter().sum::<f64>() / round_capacity;
                // Fairness among backlogged households.
                let backlogged: Vec<f64> = (0..n)
                    .filter(|&h| demand[h] > entitlement)
                    .map(|h| alloc[h])
                    .collect();
                if !backlogged.is_empty() {
                    fairness_acc += jain_fairness(&backlogged).unwrap_or(0.0);
                }
                // Starvation among modest households.
                for h in 0..n {
                    if demand[h] <= entitlement && demand[h] > 0.0 {
                        sat_household_rounds += 1;
                        if alloc[h] / demand[h] < 0.95 {
                            starved += 1;
                        }
                    }
                }
            }
        }
        let sr = saturated_rounds.max(1) as f64;
        CongestionOutcome {
            policy,
            fairness: fairness_acc / sr,
            utilization: util_acc / sr,
            starvation: if sat_household_rounds > 0 {
                starved as f64 / sat_household_rounds as f64
            } else {
                0.0
            },
            saturated_rounds,
        }
    }

    /// Run all three policies on identical demand streams (same seed).
    pub fn compare(&self) -> Vec<CongestionOutcome> {
        AllocationPolicy::ALL.iter().map(|&p| self.run(p)).collect()
    }

    /// [`CongestionSim::compare`] under a fault hook: every policy faces
    /// the identical outage schedule (fault draws are pure per step), so
    /// the comparison stays apples-to-apples even mid-chaos.
    pub fn compare_with_faults(&self, hook: &mut dyn FaultHook) -> Vec<CongestionOutcome> {
        self.compare_instrumented(hook, &Telemetry::disabled())
    }

    /// [`CongestionSim::compare_with_faults`] with telemetry: a
    /// `community.congestion` span, a per-policy `community.policy_ns`
    /// histogram, and a milestone event. The outcomes are identical.
    pub fn compare_instrumented(
        &self,
        hook: &mut dyn FaultHook,
        tel: &Telemetry,
    ) -> Vec<CongestionOutcome> {
        let _span = tel.span("community.congestion");
        let outcomes: Vec<CongestionOutcome> = AllocationPolicy::ALL
            .iter()
            .map(|&p| {
                let t0 = tel.start();
                let out = self.run_with_faults(p, hook);
                tel.observe_since("community.policy_ns", t0);
                out
            })
            .collect();
        tel.counter("community.policies", outcomes.len() as u64);
        tel.event(Event::new(
            "milestone",
            format!(
                "community.congestion: {} policies over {} rounds",
                outcomes.len(),
                self.config.rounds
            ),
        ));
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcomes() -> Vec<CongestionOutcome> {
        CongestionSim::new(CongestionConfig::default())
            .unwrap()
            .compare()
    }

    #[test]
    fn config_validation() {
        let mut c = CongestionConfig::default();
        c.households = 0;
        assert!(CongestionSim::new(c).is_err());
        let mut c = CongestionConfig::default();
        c.capacity = 0.0;
        assert!(CongestionSim::new(c).is_err());
        let mut c = CongestionConfig::default();
        c.burst_multiplier = 0.5;
        assert!(CongestionSim::new(c).is_err());
        let mut c = CongestionConfig::default();
        c.burst_probability = 2.0;
        assert!(CongestionSim::new(c).is_err());
    }

    #[test]
    fn runs_are_deterministic() {
        let sim = CongestionSim::new(CongestionConfig::default()).unwrap();
        assert_eq!(sim.run(AllocationPolicy::FreeForAll), sim.run(AllocationPolicy::FreeForAll));
    }

    #[test]
    fn saturation_occurs_with_default_config() {
        for out in outcomes() {
            assert!(out.saturated_rounds > 10, "{out:?}");
        }
    }

    #[test]
    fn community_tokens_beat_free_for_all_on_fairness() {
        let outs = outcomes();
        let get = |p: AllocationPolicy| outs.iter().find(|o| o.policy == p).unwrap().clone();
        let ffa = get(AllocationPolicy::FreeForAll);
        let cpr = get(AllocationPolicy::CommunityTokens);
        assert!(
            cpr.fairness > ffa.fairness + 0.05,
            "tokens fairness {} vs ffa {}",
            cpr.fairness,
            ffa.fairness
        );
        assert!(cpr.starvation < ffa.starvation);
    }

    #[test]
    fn community_tokens_beat_static_cap_on_utilization() {
        let outs = outcomes();
        let get = |p: AllocationPolicy| outs.iter().find(|o| o.policy == p).unwrap().clone();
        let cap = get(AllocationPolicy::StaticCap);
        let cpr = get(AllocationPolicy::CommunityTokens);
        assert!(
            cpr.utilization > cap.utilization + 0.05,
            "tokens utilization {} vs static cap {}",
            cpr.utilization,
            cap.utilization
        );
    }

    #[test]
    fn free_for_all_has_highest_utilization() {
        let outs = outcomes();
        let ffa = outs
            .iter()
            .find(|o| o.policy == AllocationPolicy::FreeForAll)
            .unwrap();
        for o in &outs {
            assert!(ffa.utilization >= o.utilization - 1e-9);
        }
        assert!((ffa.utilization - 1.0).abs() < 1e-9, "ffa always fills the pipe");
    }

    #[test]
    fn static_cap_is_fair_but_wasteful() {
        let outs = outcomes();
        let cap = outs
            .iter()
            .find(|o| o.policy == AllocationPolicy::StaticCap)
            .unwrap();
        assert!(cap.utilization < 1.0);
        let ffa = outs
            .iter()
            .find(|o| o.policy == AllocationPolicy::FreeForAll)
            .unwrap();
        assert!(cap.fairness > ffa.fairness);
    }

    #[test]
    fn allocations_never_exceed_capacity() {
        // Indirect check: utilization must never exceed 1.
        for out in outcomes() {
            assert!(out.utilization <= 1.0 + 1e-9, "{out:?}");
        }
    }

    #[test]
    fn outages_shrink_the_pool_but_keep_invariants() {
        use humnet_resilience::{FaultPlan, FaultProfile, PlanHook};
        let sim = CongestionSim::new(CongestionConfig::default()).unwrap();
        for policy in AllocationPolicy::ALL {
            let plain = sim.run(policy);
            let mut none = PlanHook::new(FaultPlan::none());
            assert_eq!(sim.run_with_faults(policy, &mut none), plain);
            let run_chaos = || {
                let mut hook = PlanHook::new(FaultPlan::new(FaultProfile::Outage, 5));
                let out = sim.run_with_faults(policy, &mut hook);
                (out, hook.faults_injected())
            };
            let (a, fa) = run_chaos();
            let (b, fb) = run_chaos();
            assert_eq!(a, b, "faulted runs must be reproducible");
            assert_eq!(fa, fb);
            assert!(fa > 0, "outage profile should fire over 500 rounds");
            assert!((0.0..=1.0 + 1e-9).contains(&a.fairness), "{a:?}");
            assert!((0.0..=1.0).contains(&a.starvation), "{a:?}");
            // Losing capacity can only saturate more rounds, never fewer.
            assert!(a.saturated_rounds >= plain.saturated_rounds, "{a:?} vs {plain:?}");
        }
    }

    #[test]
    fn no_bursts_no_saturation() {
        let mut cfg = CongestionConfig::default();
        cfg.burst_probability = 0.0;
        cfg.demand_sigma = 0.0;
        // Mean load is 80% of capacity with zero variance: never saturates.
        let sim = CongestionSim::new(cfg).unwrap();
        let out = sim.run(AllocationPolicy::FreeForAll);
        assert_eq!(out.saturated_rounds, 0);
        assert_eq!(out.starvation, 0.0);
    }
}
