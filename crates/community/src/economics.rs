//! Community-network economics: dues, costs, and solvency.
//!
//! The sustainability literature the paper draws on (Jang 2024; Garrison
//! et al. 2021) is as much about money as about volunteer labour: backhaul
//! bills arrive monthly, radios die and need replacing, and the dues model
//! decides who can afford to stay connected. This module simulates a
//! cooperative's finances month by month under three dues policies and
//! reports solvency and affordability outcomes.

use crate::{CommunityError, Result};
use humnet_stats::Rng;
use serde::{Deserialize, Serialize};

/// How the cooperative raises money.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DuesPolicy {
    /// Every household pays the same flat amount.
    Flat,
    /// Dues proportional to household income (a solidarity scale).
    IncomeScaled,
    /// Voluntary donations (pay what you can, some pay nothing).
    Donation,
}

impl DuesPolicy {
    /// All policies.
    pub const ALL: [DuesPolicy; 3] = [
        DuesPolicy::Flat,
        DuesPolicy::IncomeScaled,
        DuesPolicy::Donation,
    ];

    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            DuesPolicy::Flat => "flat",
            DuesPolicy::IncomeScaled => "income-scaled",
            DuesPolicy::Donation => "donation",
        }
    }
}

/// Configuration of an economics run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EconomicsConfig {
    /// Number of member households.
    pub households: usize,
    /// Months to simulate.
    pub months: u32,
    /// Monthly backhaul cost (currency units).
    pub backhaul_cost: f64,
    /// Mean months between equipment failures (each costs
    /// `equipment_cost`).
    pub equipment_mtbf_months: f64,
    /// Cost of one equipment replacement.
    pub equipment_cost: f64,
    /// Monthly dues target per household (the flat rate; other policies
    /// raise the same *target* total differently).
    pub dues: f64,
    /// Log-normal σ of household income (affordability skew).
    pub income_sigma: f64,
    /// A household drops out when dues exceed this fraction of its income.
    pub affordability_threshold: f64,
    /// Opening reserve balance.
    pub opening_balance: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for EconomicsConfig {
    fn default() -> Self {
        EconomicsConfig {
            households: 30,
            months: 60,
            backhaul_cost: 150.0,
            equipment_mtbf_months: 6.0,
            equipment_cost: 80.0,
            dues: 7.0,
            income_sigma: 0.8,
            affordability_threshold: 0.02,
            opening_balance: 100.0,
            seed: 1,
        }
    }
}

impl EconomicsConfig {
    /// Validate parameters.
    pub fn validate(&self) -> Result<()> {
        if self.households == 0 || self.months == 0 {
            return Err(CommunityError::InvalidParameter("households and months must be >= 1"));
        }
        if self.backhaul_cost < 0.0
            || self.equipment_cost < 0.0
            || self.dues < 0.0
            || self.opening_balance < 0.0
        {
            return Err(CommunityError::InvalidParameter("costs must be nonnegative"));
        }
        if self.equipment_mtbf_months <= 0.0 {
            return Err(CommunityError::InvalidParameter("mtbf must be positive"));
        }
        if self.income_sigma < 0.0 {
            return Err(CommunityError::InvalidParameter("income_sigma must be >= 0"));
        }
        if !(0.0..=1.0).contains(&self.affordability_threshold) {
            return Err(CommunityError::InvalidParameter(
                "affordability_threshold must be in [0,1]",
            ));
        }
        Ok(())
    }
}

/// Outcome of an economics run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EconomicsOutcome {
    /// Policy simulated.
    pub policy: DuesPolicy,
    /// Months until the balance first went negative (None = stayed solvent).
    pub insolvent_at: Option<u32>,
    /// Closing balance.
    pub closing_balance: f64,
    /// Households still members at the end.
    pub remaining_members: usize,
    /// Households that dropped out over affordability.
    pub dropped_for_affordability: usize,
    /// Balance trajectory per month.
    pub balance_curve: Vec<f64>,
}

/// Simulate one dues policy.
pub fn simulate_economics(config: &EconomicsConfig, policy: DuesPolicy) -> Result<EconomicsOutcome> {
    config.validate()?;
    let mut rng = Rng::new(config.seed);
    // Household incomes: log-normal scaled so the median income makes the
    // flat dues affordable at exactly half the threshold.
    let median_income = config.dues / (config.affordability_threshold * 0.5);
    let incomes: Vec<f64> = (0..config.households)
        .map(|_| median_income * rng.log_normal(0.0, config.income_sigma))
        .collect();
    let target_total = config.dues * config.households as f64;
    let mut member = vec![true; config.households];
    let mut balance = config.opening_balance;
    let mut insolvent_at = None;
    let mut dropped = 0usize;
    let mut curve = Vec::with_capacity(config.months as usize);
    let failure_p = 1.0 / config.equipment_mtbf_months;
    for month in 0..config.months {
        // 1. Collect dues from current members.
        let member_incomes: Vec<f64> = incomes
            .iter()
            .zip(&member)
            .filter(|&(_, &m)| m)
            .map(|(&inc, _)| inc)
            .collect();
        let n_members = member_incomes.len();
        if n_members == 0 {
            curve.push(balance);
            continue;
        }
        for h in 0..config.households {
            if !member[h] {
                continue;
            }
            let asked = match policy {
                DuesPolicy::Flat => config.dues,
                DuesPolicy::IncomeScaled => {
                    // Same total target, shares proportional to income.
                    let total_income: f64 = member_incomes.iter().sum();
                    target_total * incomes[h] / total_income
                }
                DuesPolicy::Donation => {
                    // Pay-what-you-can: a fraction donate ~1.5× dues, many
                    // donate a little, some nothing.
                    if rng.chance(0.3) {
                        config.dues * 1.5
                    } else if rng.chance(0.5) {
                        config.dues * 0.4
                    } else {
                        0.0
                    }
                }
            };
            // Affordability check (donations are always affordable).
            if policy != DuesPolicy::Donation
                && asked > config.affordability_threshold * incomes[h]
            {
                member[h] = false;
                dropped += 1;
                continue;
            }
            balance += asked;
        }
        // 2. Pay the bills.
        balance -= config.backhaul_cost;
        if rng.chance(failure_p) {
            balance -= config.equipment_cost;
        }
        if balance < 0.0 && insolvent_at.is_none() {
            insolvent_at = Some(month);
        }
        curve.push(balance);
    }
    Ok(EconomicsOutcome {
        policy,
        insolvent_at,
        closing_balance: balance,
        remaining_members: member.iter().filter(|&&m| m).count(),
        dropped_for_affordability: dropped,
        balance_curve: curve,
    })
}

/// Run all three policies on the same seed.
pub fn compare_policies(config: &EconomicsConfig) -> Result<Vec<EconomicsOutcome>> {
    DuesPolicy::ALL
        .iter()
        .map(|&p| simulate_economics(config, p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        let mut c = EconomicsConfig::default();
        c.households = 0;
        assert!(simulate_economics(&c, DuesPolicy::Flat).is_err());
        let mut c = EconomicsConfig::default();
        c.equipment_mtbf_months = 0.0;
        assert!(simulate_economics(&c, DuesPolicy::Flat).is_err());
        let mut c = EconomicsConfig::default();
        c.affordability_threshold = 1.5;
        assert!(simulate_economics(&c, DuesPolicy::Flat).is_err());
    }

    #[test]
    fn deterministic() {
        let c = EconomicsConfig::default();
        assert_eq!(
            simulate_economics(&c, DuesPolicy::Flat).unwrap(),
            simulate_economics(&c, DuesPolicy::Flat).unwrap()
        );
    }

    #[test]
    fn trajectory_length_and_bookkeeping() {
        let c = EconomicsConfig::default();
        let out = simulate_economics(&c, DuesPolicy::Flat).unwrap();
        assert_eq!(out.balance_curve.len(), 60);
        assert_eq!(
            out.remaining_members + out.dropped_for_affordability,
            c.households
        );
    }

    #[test]
    fn flat_dues_drop_poor_households() {
        let mut c = EconomicsConfig::default();
        c.income_sigma = 1.2; // strong inequality
        let flat = simulate_economics(&c, DuesPolicy::Flat).unwrap();
        let scaled = simulate_economics(&c, DuesPolicy::IncomeScaled).unwrap();
        assert!(
            flat.dropped_for_affordability > 0,
            "flat dues should price someone out"
        );
        assert!(
            scaled.remaining_members >= flat.remaining_members,
            "income scaling retains members: {} vs {}",
            scaled.remaining_members,
            flat.remaining_members
        );
    }

    #[test]
    fn income_scaled_keeps_the_books_balanced() {
        let c = EconomicsConfig::default();
        let scaled = simulate_economics(&c, DuesPolicy::IncomeScaled).unwrap();
        // Target total covers the backhaul with headroom in the default
        // config (30 × 7 = 210 vs 150 + expected 13 equipment): solvent.
        assert!(scaled.insolvent_at.is_none(), "{scaled:?}");
        assert!(scaled.closing_balance > 0.0);
    }

    #[test]
    fn donations_are_unreliable() {
        // Average over seeds: donation revenue ≈ 0.3·1.5 + 0.35·0.4 ≈ 0.59
        // of target, below the bills -> insolvency risk far higher.
        let mut insolvent_donation = 0;
        let mut insolvent_scaled = 0;
        for seed in 0..10 {
            let mut c = EconomicsConfig::default();
            c.seed = seed;
            if simulate_economics(&c, DuesPolicy::Donation)
                .unwrap()
                .insolvent_at
                .is_some()
            {
                insolvent_donation += 1;
            }
            if simulate_economics(&c, DuesPolicy::IncomeScaled)
                .unwrap()
                .insolvent_at
                .is_some()
            {
                insolvent_scaled += 1;
            }
        }
        assert!(
            insolvent_donation > insolvent_scaled,
            "donation {insolvent_donation}/10 vs scaled {insolvent_scaled}/10"
        );
    }

    #[test]
    fn compare_runs_all_policies() {
        let outs = compare_policies(&EconomicsConfig::default()).unwrap();
        assert_eq!(outs.len(), 3);
        let labels: Vec<&str> = outs.iter().map(|o| o.policy.label()).collect();
        assert_eq!(labels, vec!["flat", "income-scaled", "donation"]);
    }
}
