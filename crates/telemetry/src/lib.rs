//! # humnet-telemetry
//!
//! Zero-external-dependency observability for the humnet workspace:
//!
//! 1. a [`MetricsRegistry`] of counters, gauges, and log-bucketed
//!    histograms (p50/p90/p99/max, mergeable for sharded runs), cheap
//!    enough for hot simulator loops;
//! 2. a span-based tracer with monotonic timing, parent/child nesting,
//!    and a per-run flame summary ([`TelemetrySnapshot::render_trace_summary`]);
//! 3. an append-only structured [`journal`] (JSONL via the vendored
//!    `serde_json`) of fault injections, retries, breaker trips, and
//!    simulator milestones.
//!
//! The [`Telemetry`] facade uses `RefCell` interior mutability so
//! simulators can record through a shared `&Telemetry`. It is `Send` but
//! not `Sync`: the supervised runner creates one instance per worker
//! attempt, moves it into the worker thread, and merges the resulting
//! [`TelemetrySnapshot`] back into the run-level instance — see
//! `humnet-resilience`.
//!
//! ## Determinism contract
//!
//! Event *ordering and counts*, metric *names and counter values*, and
//! span *names and counts* are pure functions of the seed. Only durations
//! (histogram samples of `*_ns` metrics, span times) vary between runs.
//! `tests/telemetry_journal.rs` enforces this at the workspace level.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod metrics;
pub mod table;
pub mod trace;

pub use journal::{spec_order_in_place, spec_ordered, Event, Journal};
pub use metrics::{Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use table::TextTable;
pub use trace::{SpanSnapshot, Tracer};

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::time::Instant;

#[derive(Debug, Default)]
struct Inner {
    metrics: MetricsRegistry,
    tracer: Tracer,
    journal: Journal,
}

/// Shared-reference recording facade over metrics, spans, and the journal.
///
/// Construct with [`Telemetry::new`] (recording) or
/// [`Telemetry::disabled`] (every call is a cheap no-op — this is what the
/// plain, non-instrumented simulator entry points pass down, so the hot
/// paths pay almost nothing when observability is off).
#[derive(Debug, Default)]
pub struct Telemetry {
    enabled: bool,
    inner: RefCell<Inner>,
}

impl Telemetry {
    /// A recording instance.
    pub fn new() -> Self {
        Telemetry {
            enabled: true,
            inner: RefCell::new(Inner::default()),
        }
    }

    /// A no-op instance: every recording call returns immediately.
    pub fn disabled() -> Self {
        Telemetry::default()
    }

    /// Whether this instance records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Add `by` to the named counter.
    pub fn counter(&self, name: &str, by: u64) {
        if self.enabled {
            self.inner.borrow_mut().metrics.inc(name, by);
        }
    }

    /// Set the named gauge.
    pub fn gauge(&self, name: &str, v: f64) {
        if self.enabled {
            self.inner.borrow_mut().metrics.set_gauge(name, v);
        }
    }

    /// Record a raw value into the named histogram.
    pub fn observe(&self, name: &str, v: u64) {
        if self.enabled {
            self.inner.borrow_mut().metrics.observe(name, v);
        }
    }

    /// Start a manual timing: `None` when disabled, so the hot path skips
    /// the clock read entirely. Pair with [`Telemetry::observe_since`].
    pub fn start(&self) -> Option<Instant> {
        self.enabled.then(Instant::now)
    }

    /// Record nanoseconds elapsed since a [`Telemetry::start`] into the
    /// named histogram. A no-op when `t0` is `None`.
    pub fn observe_since(&self, name: &str, t0: Option<Instant>) {
        if let Some(t0) = t0 {
            self.observe(name, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Open a span; the returned guard closes it on drop. Spans nest:
    /// a child's time is charged to the parent's cumulative-but-not-self
    /// time, producing the flame summary.
    #[must_use = "a span measures the scope of its guard; dropping immediately measures nothing"]
    pub fn span(&self, name: impl Into<String>) -> SpanGuard<'_> {
        if self.enabled {
            self.inner.borrow_mut().tracer.enter(name.into());
            SpanGuard { tel: Some(self) }
        } else {
            SpanGuard { tel: None }
        }
    }

    /// Append an event to the journal (seq assigned automatically).
    pub fn event(&self, event: Event) {
        if self.enabled {
            self.inner.borrow_mut().journal.record(event);
        }
    }

    /// Number of journal events recorded so far.
    pub fn event_count(&self) -> usize {
        if self.enabled {
            self.inner.borrow().journal.len()
        } else {
            0
        }
    }

    /// Stamp journal events from index `from` (a prior
    /// [`Telemetry::event_count`] mark) onward with the global spec index
    /// `spec`, leaving events that already carry one untouched.
    pub fn stamp_spec_from(&self, from: usize, spec: u64) {
        if self.enabled {
            self.inner.borrow_mut().journal.stamp_spec_from(from, spec);
        }
    }

    /// Fold a worker attempt's snapshot into this instance: counters add,
    /// gauges overwrite, histograms and spans merge, and the worker's
    /// events are appended in order with empty experiment fields stamped
    /// to `scope` and sequence numbers reassigned.
    pub fn absorb(&self, snap: TelemetrySnapshot, scope: &str) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        inner.metrics.absorb(&snap.metrics);
        inner.tracer.absorb(&snap.spans);
        for event in snap.events {
            inner.journal.absorb(event, scope);
        }
    }

    /// Plain-data view of everything recorded so far.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let inner = self.inner.borrow();
        TelemetrySnapshot {
            metrics: inner.metrics.snapshot(),
            spans: inner.tracer.snapshot(),
            events: inner.journal.events().to_vec(),
        }
    }

    /// Like [`Telemetry::snapshot`], but consumes the instance and moves
    /// the journal out instead of cloning it. The sharded runner calls
    /// this on per-shard and per-spec instances it owns, so event vectors
    /// cross thread boundaries without a copy.
    pub fn into_snapshot(self) -> TelemetrySnapshot {
        let inner = self.inner.into_inner();
        TelemetrySnapshot {
            metrics: inner.metrics.snapshot(),
            spans: inner.tracer.snapshot(),
            events: inner.journal.into_events(),
        }
    }
}

/// A `Sync` recording facade for long-lived multi-threaded services.
///
/// [`Telemetry`] is deliberately `Send`-but-not-`Sync` (`RefCell`): the
/// batch runner gives each worker attempt its own instance and merges
/// snapshots. A daemon is different — many connection handlers record
/// into *one* live instance whose totals must be observable at any time
/// (a `stats` request), so this wrapper serializes access through a
/// mutex. Only cold paths (request accounting, not simulator inner
/// loops) should record through it.
#[derive(Debug, Default)]
pub struct SharedTelemetry {
    inner: std::sync::Mutex<Telemetry>,
}

impl SharedTelemetry {
    /// A recording instance.
    pub fn new() -> Self {
        SharedTelemetry {
            inner: std::sync::Mutex::new(Telemetry::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Telemetry> {
        // Telemetry recording never panics while the lock is held, so a
        // poisoned mutex only means some *other* panic unwound through a
        // recording call; the data is still sound to read.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Add `by` to the named counter.
    pub fn counter(&self, name: &str, by: u64) {
        self.lock().counter(name, by);
    }

    /// Set the named gauge.
    pub fn gauge(&self, name: &str, v: f64) {
        self.lock().gauge(name, v);
    }

    /// Record a raw value into the named histogram.
    pub fn observe(&self, name: &str, v: u64) {
        self.lock().observe(name, v);
    }

    /// Append an event to the journal.
    pub fn event(&self, event: Event) {
        self.lock().event(event);
    }

    /// Fold a finished run's snapshot into the live totals.
    pub fn absorb(&self, snap: TelemetrySnapshot, scope: &str) {
        self.lock().absorb(snap, scope);
    }

    /// Plain-data view of everything recorded so far.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.lock().snapshot()
    }
}

/// Guard returned by [`Telemetry::span`]; closes the span on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    tel: Option<&'a Telemetry>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(tel) = self.tel {
            // `try_borrow_mut`: if this guard is dropped while the inner
            // state is borrowed (a panic mid-record), losing one span beats
            // a double-panic abort.
            if let Ok(mut inner) = tel.inner.try_borrow_mut() {
                inner.tracer.exit();
            }
        }
    }
}

/// Plain-data, serializable capture of a [`Telemetry`] instance.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Counters, gauges, and histograms.
    pub metrics: MetricsSnapshot,
    /// Per-span-name timing aggregates, sorted by name.
    pub spans: Vec<SpanSnapshot>,
    /// Journal events in append order.
    pub events: Vec<Event>,
}

impl TelemetrySnapshot {
    /// Merge another snapshot (e.g. from a shard) into this one; `scope`
    /// stamps the other's unscoped events. Counters add, gauges overwrite,
    /// histograms and spans merge bucket-wise/by-name — all associative and
    /// loss-free — and events append in order with `seq` reassigned, so
    /// folding per-shard snapshots in `(shard, seq)` order reconstructs the
    /// run-level journal.
    pub fn merge(&mut self, other: &TelemetrySnapshot, scope: &str) {
        self.metrics.merge(&other.metrics);
        trace::merge_spans(&mut self.spans, &other.spans);
        for event in &other.events {
            let mut e = event.clone();
            if e.experiment.is_empty() {
                e.experiment = scope.to_owned();
            }
            e.seq = self.events.len() as u64;
            self.events.push(e);
        }
    }

    /// Stamp every event that does not already carry a shard id with
    /// `shard`. The sharded supervisor calls this on each per-shard
    /// snapshot before the run-level merge, so a merged journal records
    /// which shard produced every line without disturbing the canonical
    /// (shard-invariant) form.
    pub fn stamp_shard(&mut self, shard: u32) {
        for event in &mut self.events {
            if event.shard.is_none() {
                event.shard = Some(shard);
            }
        }
    }

    /// Stamp every event that does not already carry a spec index with
    /// `spec`. Work-stealing workers call this on each per-spec snapshot
    /// so the merged journal can be sorted back into spec order (see
    /// [`journal::spec_ordered`]).
    pub fn stamp_spec(&mut self, spec: u64) {
        for event in &mut self.events {
            if event.spec.is_none() {
                event.spec = Some(spec);
            }
        }
    }

    /// Shift every stamped spec index by `base`. A child process running
    /// one shard's slice numbers its specs from 0; the cross-process
    /// dispatcher re-bases each shard's events onto the slice's offset in
    /// the full spec list, so the merged journal sorts into the same
    /// global spec order an in-process run produces.
    pub fn offset_spec(&mut self, base: u64) {
        if base == 0 {
            return;
        }
        for event in &mut self.events {
            if let Some(spec) = event.spec.as_mut() {
                *spec += base;
            }
        }
    }

    /// Canonical event lines (timings and seq excluded): two same-seed
    /// runs must produce identical output.
    pub fn canonical_events(&self) -> Vec<String> {
        self.events.iter().map(Event::canonical).collect()
    }

    /// Pretty-printed JSON of the whole snapshot (for `--metrics-out`).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parse a snapshot previously written by [`TelemetrySnapshot::to_json`]
    /// (the `experiments merge-metrics` input format).
    pub fn from_json(text: &str) -> Result<TelemetrySnapshot, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Journal as JSONL (for `--journal-out`).
    pub fn to_jsonl(&self) -> Result<String, serde_json::Error> {
        journal::to_jsonl(&self.events)
    }

    /// Human-readable metrics tables: counters, gauges, then histogram
    /// quantiles — the end-of-run summary the `experiments` binary prints.
    pub fn render_metrics_table(&self) -> String {
        let mut out = String::new();
        if !self.metrics.counters.is_empty() {
            let mut t = TextTable::new(&["counter", "value"]).with_heading("Counters");
            for (name, v) in &self.metrics.counters {
                t.row(vec![name.clone(), v.to_string()]);
            }
            out.push_str(&t.render());
        }
        if !self.metrics.gauges.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            let mut t = TextTable::new(&["gauge", "value"]).with_heading("Gauges");
            for (name, v) in &self.metrics.gauges {
                t.row(vec![name.clone(), format!("{v:.4}")]);
            }
            out.push_str(&t.render());
        }
        if !self.metrics.histograms.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            let mut t = TextTable::new(&["histogram", "count", "p50", "p90", "p99", "max", "mean"])
                .with_heading("Histograms");
            for (name, h) in &self.metrics.histograms {
                t.row(vec![
                    name.clone(),
                    h.count.to_string(),
                    format_ns(h.quantile(0.50)),
                    format_ns(h.quantile(0.90)),
                    format_ns(h.quantile(0.99)),
                    format_ns(h.max),
                    format_ns(h.mean()),
                ]);
            }
            out.push_str(&t.render());
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }

    /// Per-run flame summary: spans sorted by cumulative time, with self
    /// vs. cumulative columns.
    pub fn render_trace_summary(&self) -> String {
        if self.spans.is_empty() {
            return "(no spans recorded)\n".to_owned();
        }
        let mut spans = self.spans.clone();
        spans.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
        let mut t = TextTable::new(&["span", "count", "total", "self", "max", "mean"])
            .with_heading("Trace summary");
        for s in &spans {
            let mean = s.total_ns.checked_div(s.count).unwrap_or(0);
            t.row(vec![
                s.name.clone(),
                s.count.to_string(),
                format_ns(s.total_ns),
                format_ns(s.self_ns),
                format_ns(s.max_ns),
                format_ns(mean),
            ]);
        }
        t.render()
    }
}

/// Render nanoseconds with a human-scale unit (`ns`, `µs`, `ms`, `s`).
pub fn format_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_telemetry_records_nothing() {
        let tel = Telemetry::disabled();
        tel.counter("x", 1);
        tel.gauge("g", 1.0);
        tel.observe("h", 10);
        tel.event(Event::new("fault", "x"));
        assert!(tel.start().is_none());
        {
            let _span = tel.span("s");
        }
        let snap = tel.snapshot();
        assert!(snap.metrics.is_empty());
        assert!(snap.spans.is_empty());
        assert!(snap.events.is_empty());
    }

    #[test]
    fn facade_records_through_shared_reference(){
        let tel = Telemetry::new();
        tel.counter("faults.injected", 2);
        tel.gauge("agenda.surfaced", 0.75);
        tel.observe("agenda.step_ns", 500);
        tel.event(Event::new("milestone", "agenda done"));
        {
            let _outer = tel.span("exp.f1");
            let _inner = tel.span("agenda.run");
        }
        let snap = tel.snapshot();
        assert_eq!(snap.metrics.counters["faults.injected"], 2);
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.events.len(), 1);
    }

    #[test]
    fn absorb_scopes_and_resequences_worker_events() {
        let run = Telemetry::new();
        run.event(Event::new("run-start", "seed=1"));
        let worker = Telemetry::new();
        worker.counter("agenda.rounds", 60);
        worker.event(Event::new("fault", "volunteer-dropout").with_step(3));
        worker.event(Event::new("milestone", "done").in_experiment("explicit"));
        run.absorb(worker.snapshot(), "f1");
        run.event(Event::new("run-end", "ok"));
        let snap = run.snapshot();
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        assert_eq!(snap.events[1].experiment, "f1");
        assert_eq!(snap.events[2].experiment, "explicit");
        assert_eq!(snap.metrics.counters["agenda.rounds"], 60);
    }

    #[test]
    fn stamp_shard_preserves_explicit_ids_and_canonical_form() {
        let tel = Telemetry::new();
        tel.event(Event::new("milestone", "a"));
        tel.event(Event::new("fault", "b").with_shard(7));
        let mut snap = tel.snapshot();
        let canonical_before = snap.canonical_events();
        snap.stamp_shard(3);
        assert_eq!(snap.events[0].shard, Some(3));
        // An explicit shard id is never overwritten.
        assert_eq!(snap.events[1].shard, Some(7));
        // Shard stamping is invisible to the canonical journal.
        assert_eq!(snap.canonical_events(), canonical_before);
    }

    #[test]
    fn snapshot_json_round_trip() {
        let tel = Telemetry::new();
        tel.counter("c", 1);
        tel.observe("h", 42);
        tel.event(Event::new("fault", "x").with_severity(0.5));
        {
            let _s = tel.span("sp");
        }
        let snap = tel.snapshot();
        let json = snap.to_json().unwrap();
        let back: TelemetrySnapshot = serde_json::from_str(&json).unwrap();
        // Span durations survive serialization, so full equality holds.
        assert_eq!(back, snap);
    }

    #[test]
    fn render_tables_are_non_empty_and_aligned() {
        let tel = Telemetry::new();
        tel.counter("faults.injected", 3);
        tel.gauge("uptime", 0.99);
        tel.observe("step_ns", 1_500);
        {
            let _s = tel.span("run");
        }
        let snap = tel.snapshot();
        let metrics = snap.render_metrics_table();
        assert!(metrics.contains("## Counters"));
        assert!(metrics.contains("## Gauges"));
        assert!(metrics.contains("## Histograms"));
        assert!(metrics.contains("faults.injected"));
        let trace = snap.render_trace_summary();
        assert!(trace.contains("## Trace summary"));
        assert!(trace.contains("run"));
        assert_eq!(
            TelemetrySnapshot::default().render_metrics_table(),
            "(no metrics recorded)\n"
        );
    }

    #[test]
    fn shared_telemetry_is_sync_and_aggregates_across_threads() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<SharedTelemetry>();
        let tel = SharedTelemetry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        tel.counter("serve.requests", 1);
                        tel.observe("serve.hit_ns", 50);
                    }
                });
            }
        });
        let snap = tel.snapshot();
        assert_eq!(snap.metrics.counters["serve.requests"], 400);
        assert_eq!(snap.metrics.histograms["serve.hit_ns"].count, 400);
    }

    #[test]
    fn format_ns_units() {
        assert_eq!(format_ns(999), "999ns");
        assert_eq!(format_ns(1_500), "1.50µs");
        assert_eq!(format_ns(2_340_000), "2.34ms");
        assert_eq!(format_ns(3_000_000_000), "3.00s");
    }
}
