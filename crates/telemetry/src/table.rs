//! Shared aligned-pipe-table renderer.
//!
//! Both `humnet-core`'s experiment tables and the resilience `RunReport`
//! render through this one implementation, so the human-readable report
//! and the metrics snapshot tables cannot drift apart in format.

/// An aligned plain-text pipe table, optionally preceded by a `## heading`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TextTable {
    heading: Option<String>,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// New table with the given column headers and no heading line.
    pub fn new<S: AsRef<str>>(headers: &[S]) -> Self {
        TextTable {
            heading: None,
            headers: headers.iter().map(|s| s.as_ref().to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Prepend a `## {heading}` line (markdown-style) to the rendering.
    #[must_use]
    pub fn with_heading(mut self, heading: impl Into<String>) -> Self {
        self.heading = Some(heading.into());
        self
    }

    /// Append a row. Short rows are padded with empty cells; extra cells
    /// beyond the header count are ignored at render time.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render: optional heading, `| h |` header row, `|---|` rule, then one
    /// `| c |` line per row, every column padded to its widest cell.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if let Some(h) = &self.heading {
            out.push_str(&format!("## {h}\n\n"));
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = widths
                .iter()
                .enumerate()
                .map(|(i, &w)| {
                    let c = cells.get(i).map(String::as_str).unwrap_or("");
                    format!("{c:<w$}")
                })
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let rule: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        out.push_str(&format!("|-{}-|\n", rule.join("-|-")));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_with_heading() {
        let mut t = TextTable::new(&["name", "value"]).with_heading("Demo");
        t.row(vec!["short".into(), "1.000".into()]);
        t.row(vec!["much-longer-name".into(), "0.250".into()]);
        let s = t.render();
        assert!(s.starts_with("## Demo\n\n"));
        assert!(s.contains("| name             | value |"));
        assert!(s.contains("|------------------|-------|"));
        assert!(s.contains("| much-longer-name | 0.250 |"));
        let widths: Vec<usize> = s
            .lines()
            .filter(|l| l.starts_with('|'))
            .map(str::len)
            .collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{s}");
    }

    #[test]
    fn no_heading_starts_at_header_row() {
        let mut t = TextTable::new(&["a"]);
        t.row(vec!["1".into()]);
        assert_eq!(t.render(), "| a |\n|---|\n| 1 |\n");
    }

    #[test]
    fn short_rows_pad_with_empty_cells() {
        let mut t = TextTable::new(&["a", "bb"]);
        t.row(vec!["x".into()]);
        assert!(t.render().contains("| x |    |"));
    }
}
