//! Span-based tracing with parent/child self-time accounting.
//!
//! Spans are guard-scoped: entering pushes a frame on a per-tracer stack,
//! dropping the guard pops it and charges elapsed time to the span's name.
//! A child's cumulative time is subtracted from its parent's *self* time,
//! so the flame summary can show where time is actually spent rather than
//! double-counting nested work. Timing uses [`std::time::Instant`]
//! (monotonic); span *names and counts* are deterministic across same-seed
//! runs, durations are not.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Instant;

/// One in-flight span on the tracer stack.
#[derive(Debug)]
struct Frame {
    name: String,
    start: Instant,
    /// Cumulative nanoseconds spent in already-closed direct children.
    child_ns: u64,
}

/// Aggregate statistics for one span name.
#[derive(Debug, Clone, Copy, Default)]
struct SpanStat {
    count: u64,
    total_ns: u64,
    self_ns: u64,
    max_ns: u64,
}

/// Collects span timings for one run or one worker attempt.
#[derive(Debug, Default)]
pub struct Tracer {
    stack: Vec<Frame>,
    stats: BTreeMap<String, SpanStat>,
}

impl Tracer {
    /// Open a span. Must be balanced by [`Tracer::exit`]; the public guard
    /// API on `Telemetry` enforces this via `Drop`.
    pub fn enter(&mut self, name: String) {
        self.stack.push(Frame {
            name,
            start: Instant::now(),
            child_ns: 0,
        });
    }

    /// Close the most recently opened span, charging elapsed time to its
    /// name and crediting the enclosing parent's child-time. A no-op on an
    /// empty stack (guards dropped out of order degrade, never panic).
    pub fn exit(&mut self) {
        let Some(frame) = self.stack.pop() else {
            return;
        };
        let elapsed = frame.start.elapsed().as_nanos() as u64;
        let stat = self.stats.entry(frame.name).or_default();
        stat.count += 1;
        stat.total_ns = stat.total_ns.saturating_add(elapsed);
        stat.self_ns = stat
            .self_ns
            .saturating_add(elapsed.saturating_sub(frame.child_ns));
        stat.max_ns = stat.max_ns.max(elapsed);
        if let Some(parent) = self.stack.last_mut() {
            parent.child_ns = parent.child_ns.saturating_add(elapsed);
        }
    }

    /// Fold a snapshot's span stats into this tracer, merging by name.
    pub fn absorb(&mut self, spans: &[SpanSnapshot]) {
        for s in spans {
            let stat = self.stats.entry(s.name.clone()).or_default();
            stat.count += s.count;
            stat.total_ns = stat.total_ns.saturating_add(s.total_ns);
            stat.self_ns = stat.self_ns.saturating_add(s.self_ns);
            stat.max_ns = stat.max_ns.max(s.max_ns);
        }
    }

    /// Per-name aggregate view, sorted by name (stable across runs).
    pub fn snapshot(&self) -> Vec<SpanSnapshot> {
        self.stats
            .iter()
            .map(|(name, s)| SpanSnapshot {
                name: name.clone(),
                count: s.count,
                total_ns: s.total_ns,
                self_ns: s.self_ns,
                max_ns: s.max_ns,
            })
            .collect()
    }
}

/// Aggregated timing for one span name across a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SpanSnapshot {
    /// Span name (see the span taxonomy in DESIGN.md §7).
    pub name: String,
    /// Times the span was entered.
    pub count: u64,
    /// Cumulative wall-clock nanoseconds, including children.
    pub total_ns: u64,
    /// Nanoseconds excluding time spent in direct child spans.
    pub self_ns: u64,
    /// Longest single occurrence.
    pub max_ns: u64,
}

/// Merge span lists by name (sharded-run aggregation); result sorted by name.
pub fn merge_spans(into: &mut Vec<SpanSnapshot>, other: &[SpanSnapshot]) {
    let mut by_name: BTreeMap<String, SpanSnapshot> = into
        .drain(..)
        .map(|s| (s.name.clone(), s))
        .collect();
    for s in other {
        let entry = by_name.entry(s.name.clone()).or_insert_with(|| SpanSnapshot {
            name: s.name.clone(),
            ..SpanSnapshot::default()
        });
        entry.count += s.count;
        entry.total_ns = entry.total_ns.saturating_add(s.total_ns);
        entry.self_ns = entry.self_ns.saturating_add(s.self_ns);
        entry.max_ns = entry.max_ns.max(s.max_ns);
    }
    *into = by_name.into_values().collect();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_attributes_self_time_to_the_right_span() {
        let mut t = Tracer::default();
        t.enter("outer".into());
        t.enter("inner".into());
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.exit();
        t.exit();
        let snap = t.snapshot();
        let outer = snap.iter().find(|s| s.name == "outer").unwrap();
        let inner = snap.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(inner.total_ns > 0);
        // Outer's self time excludes inner's total.
        assert!(outer.self_ns <= outer.total_ns - inner.total_ns + 1_000_000);
        assert!(outer.total_ns >= inner.total_ns);
    }

    #[test]
    fn unbalanced_exit_is_harmless() {
        let mut t = Tracer::default();
        t.exit();
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn merge_spans_sums_by_name() {
        let a = vec![SpanSnapshot {
            name: "x".into(),
            count: 2,
            total_ns: 100,
            self_ns: 80,
            max_ns: 60,
        }];
        let mut into = a.clone();
        merge_spans(
            &mut into,
            &[
                SpanSnapshot {
                    name: "x".into(),
                    count: 1,
                    total_ns: 50,
                    self_ns: 50,
                    max_ns: 50,
                },
                SpanSnapshot {
                    name: "y".into(),
                    count: 1,
                    total_ns: 10,
                    self_ns: 10,
                    max_ns: 10,
                },
            ],
        );
        assert_eq!(into.len(), 2);
        let x = into.iter().find(|s| s.name == "x").unwrap();
        assert_eq!((x.count, x.total_ns, x.self_ns, x.max_ns), (3, 150, 130, 60));
    }
}
