//! Append-only structured event journal.
//!
//! Events record *what happened* — fault injections, retries, breaker
//! trips, simulator milestones — with enough context (experiment id, step,
//! attempt, severity) to replay or diff a run. Events deliberately carry
//! **no wall-clock timestamps**: with a fixed seed the journal is
//! byte-for-byte reproducible, which is what lets CI diff two runs and the
//! determinism test assert equality. Order is captured by `seq` instead.

use serde::{Deserialize, Serialize};
use serde_json::Error;

/// One journal entry. Construct with [`Event::new`] and the `with_*`
/// builders; `seq` is assigned by the journal on append.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Position in the journal (0-based, assigned on append).
    pub seq: u64,
    /// Experiment code the event belongs to (empty for run-level events;
    /// the supervisor stamps worker events with their experiment scope).
    pub experiment: String,
    /// Shard the event was recorded on, for sharded supervised runs
    /// (`None` for single-supervisor runs and run-level merge events).
    /// Excluded from [`Event::canonical`]: the canonical journal of a
    /// merged sharded run is byte-identical to the 1-shard run's.
    pub shard: Option<u32>,
    /// Global spec index (position in the run's experiment list) of the
    /// experiment this event belongs to (`None` for run-level events).
    /// Like `shard`, it records provenance and is excluded from
    /// [`Event::canonical`]; unlike `shard`, it is also an *ordering key*:
    /// [`spec_ordered`] sorts a journal produced under dynamic (work-
    /// stealing) scheduling back into the deterministic spec order.
    pub spec: Option<u64>,
    /// Event kind: `fault`, `retry`, `breaker-open`, `breaker-skip`,
    /// `milestone`, `experiment-start`, `experiment-end`, `run-start`,
    /// `run-end`, `attempt-error`, `panic`, `timeout`.
    pub kind: String,
    /// Simulator step / round / day the event occurred at, if any.
    pub step: Option<u64>,
    /// Fault severity in `(0, 1]`, present for `fault` events.
    pub severity: Option<f64>,
    /// 0-based attempt index, present for runner-level events.
    pub attempt: Option<u32>,
    /// Human-readable detail line.
    pub detail: String,
}

impl Event {
    /// New event with the given kind and detail; everything else unset.
    pub fn new(kind: &str, detail: impl Into<String>) -> Self {
        Event {
            kind: kind.to_owned(),
            detail: detail.into(),
            ..Event::default()
        }
    }

    /// Attach the simulator step the event occurred at.
    #[must_use]
    pub fn with_step(mut self, step: u64) -> Self {
        self.step = Some(step);
        self
    }

    /// Attach a fault severity.
    #[must_use]
    pub fn with_severity(mut self, severity: f64) -> Self {
        self.severity = Some(severity);
        self
    }

    /// Attach the runner attempt index.
    #[must_use]
    pub fn with_attempt(mut self, attempt: u32) -> Self {
        self.attempt = Some(attempt);
        self
    }

    /// Scope the event to an experiment code.
    #[must_use]
    pub fn in_experiment(mut self, code: &str) -> Self {
        self.experiment = code.to_owned();
        self
    }

    /// Stamp the shard the event was recorded on.
    #[must_use]
    pub fn with_shard(mut self, shard: u32) -> Self {
        self.shard = Some(shard);
        self
    }

    /// Stamp the global spec index the event belongs to.
    #[must_use]
    pub fn with_spec(mut self, spec: u64) -> Self {
        self.spec = Some(spec);
        self
    }

    /// Canonical one-line form with timings, `seq`, and `shard` excluded —
    /// two same-seed runs must produce identical canonical lines, and a
    /// merged sharded run must canonicalize identically to a 1-shard run.
    pub fn canonical(&self) -> String {
        let step = self.step.map_or(String::new(), |s| s.to_string());
        let sev = self.severity.map_or(String::new(), |s| format!("{s:.4}"));
        let attempt = self.attempt.map_or(String::new(), |a| a.to_string());
        format!(
            "{}|{}|{}|{}|{}|{}",
            self.experiment, self.kind, step, sev, attempt, self.detail
        )
    }
}

/// Append-only event log for one run or one worker attempt.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    events: Vec<Event>,
}

impl Journal {
    /// Append an event, assigning its sequence number.
    pub fn record(&mut self, mut event: Event) {
        event.seq = self.events.len() as u64;
        self.events.push(event);
    }

    /// Append an already-sequenced event from another journal, re-stamping
    /// `seq` and filling an empty `experiment` field with `scope`.
    pub fn absorb(&mut self, mut event: Event, scope: &str) {
        if event.experiment.is_empty() {
            event.experiment = scope.to_owned();
        }
        self.record(event);
    }

    /// Events in append order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Consume the journal, returning its events without cloning.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Stamp every event from index `from` onward that does not already
    /// carry a spec index with `spec`. The supervised runner brackets each
    /// experiment with `event_count()` marks and stamps the slice, so every
    /// journal line knows which spec produced it.
    pub fn stamp_spec_from(&mut self, from: usize, spec: u64) {
        for event in self.events.iter_mut().skip(from) {
            if event.spec.is_none() {
                event.spec = Some(spec);
            }
        }
    }
}

/// Sort key class for [`spec_ordered`]: `run-start` sorts first,
/// `run-end` last, everything else by spec index in between.
fn order_class(event: &Event) -> u8 {
    match event.kind.as_str() {
        "run-start" => 0,
        "run-end" => 2,
        _ => 1,
    }
}

/// Canonical deterministic ordering for a merged journal: `run-start`
/// first, `run-end` last, and body events stably sorted by spec index
/// (events without one keep their relative position at the end of the
/// body). Within one spec, the original `seq` order is preserved — the
/// sort is stable and per-spec events are recorded sequentially — so a
/// journal produced under work-stealing scheduling sorts back into the
/// exact event stream a static 1-shard run emits. `seq` is reassigned
/// densely after the sort. A no-op on journals that are already in spec
/// order (static runs) and on pre-spec journals (every key is `None`).
pub fn spec_ordered(events: &[Event]) -> Vec<Event> {
    let mut sorted: Vec<Event> = events.to_vec();
    sorted.sort_by_key(|e| (order_class(e), e.spec.unwrap_or(u64::MAX)));
    for (seq, event) in sorted.iter_mut().enumerate() {
        event.seq = seq as u64;
    }
    sorted
}

/// In-place variant of [`spec_ordered`] for hot merge paths: when the
/// events are already in spec order — every static-schedule merge, since
/// shards hold contiguous slices — this is a single comparison sweep with
/// no allocation or copying. Only an actually out-of-order journal pays
/// for the stable sort and the dense `seq` reassignment.
pub fn spec_order_in_place(events: &mut [Event]) {
    let key = |e: &Event| (order_class(e), e.spec.unwrap_or(u64::MAX));
    if events.windows(2).all(|w| key(&w[0]) <= key(&w[1])) {
        return;
    }
    events.sort_by_key(key);
    for (seq, event) in events.iter_mut().enumerate() {
        event.seq = seq as u64;
    }
}

/// Serialize events as JSONL: one JSON object per line, trailing newline.
pub fn to_jsonl(events: &[Event]) -> Result<String, Error> {
    let mut out = String::new();
    for e in events {
        out.push_str(&serde_json::to_string(e)?);
        out.push('\n');
    }
    Ok(out)
}

/// Parse a JSONL journal back into events (blank lines ignored).
pub fn from_jsonl(text: &str) -> Result<Vec<Event>, Error> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(serde_json::from_str)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_assigns_sequence_numbers() {
        let mut j = Journal::default();
        j.record(Event::new("run-start", "profile=chaos"));
        j.record(Event::new("fault", "link-outage").with_step(7).with_severity(0.5));
        assert_eq!(j.len(), 2);
        assert_eq!(j.events()[0].seq, 0);
        assert_eq!(j.events()[1].seq, 1);
        assert_eq!(j.events()[1].step, Some(7));
    }

    #[test]
    fn absorb_stamps_scope_and_reseq() {
        let mut j = Journal::default();
        j.record(Event::new("run-start", ""));
        let worker_event = Event {
            seq: 42,
            ..Event::new("milestone", "done")
        };
        j.absorb(worker_event, "f1");
        let scoped = Event::new("fault", "x").in_experiment("f3");
        j.absorb(scoped, "f1");
        assert_eq!(j.events()[1].seq, 1);
        assert_eq!(j.events()[1].experiment, "f1");
        // An explicit scope is never overwritten.
        assert_eq!(j.events()[2].experiment, "f3");
    }

    #[test]
    fn jsonl_round_trip_preserves_events() {
        let mut j = Journal::default();
        j.record(Event::new("run-start", "seed=1"));
        j.record(
            Event::new("fault", "reviewer-no-show")
                .with_step(12)
                .with_severity(0.625)
                .with_attempt(1)
                .in_experiment("t2"),
        );
        j.record(Event::new("run-end", "2 experiments: 2 ok"));
        let text = to_jsonl(j.events()).unwrap();
        assert_eq!(text.lines().count(), 3);
        let back = from_jsonl(&text).unwrap();
        assert_eq!(back, j.events());
    }

    #[test]
    fn canonical_excludes_seq_and_shard() {
        let a = Event {
            seq: 1,
            ..Event::new("fault", "x").with_step(3)
        };
        let b = Event {
            seq: 9,
            ..Event::new("fault", "x").with_step(3).with_shard(2)
        };
        assert_eq!(a.canonical(), b.canonical());
    }

    #[test]
    fn pre_shard_journals_still_parse() {
        // A journal line captured before the `shard` / `spec` fields
        // existed must deserialize with them `None` so old journals stay
        // replayable.
        let line = r#"{"seq":0,"experiment":"f1","kind":"fault","step":4,"severity":0.5,"attempt":null,"detail":"link-outage"}"#;
        let events = from_jsonl(line).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].shard, None);
        assert_eq!(events[0].spec, None);
        assert_eq!(events[0].step, Some(4));
    }

    #[test]
    fn spec_is_excluded_from_canonical() {
        let a = Event::new("fault", "x").with_step(3);
        let b = Event::new("fault", "x").with_step(3).with_spec(9).with_shard(1);
        assert_eq!(a.canonical(), b.canonical());
    }

    #[test]
    fn stamp_spec_from_marks_only_the_tail_and_respects_existing() {
        let mut j = Journal::default();
        j.record(Event::new("run-start", ""));
        let mark = j.len();
        j.record(Event::new("experiment-start", "t"));
        j.record(Event::new("fault", "x").with_spec(99));
        j.stamp_spec_from(mark, 3);
        assert_eq!(j.events()[0].spec, None);
        assert_eq!(j.events()[1].spec, Some(3));
        // An explicit spec index is never overwritten.
        assert_eq!(j.events()[2].spec, Some(99));
    }

    #[test]
    fn spec_ordered_restores_spec_order_and_reseqs() {
        // Completion order 1, 0 (as a work-stealing run might produce),
        // bracketed by run-start / run-end.
        let mut j = Journal::default();
        j.record(Event::new("run-start", "seed=1"));
        j.record(Event::new("experiment-start", "b").with_spec(1));
        j.record(Event::new("experiment-end", "ok").with_spec(1));
        j.record(Event::new("experiment-start", "a").with_spec(0));
        j.record(Event::new("experiment-end", "ok").with_spec(0));
        j.record(Event::new("run-end", "2 ok"));
        let sorted = spec_ordered(j.events());
        let kinds_and_specs: Vec<(String, Option<u64>)> = sorted
            .iter()
            .map(|e| (e.kind.clone(), e.spec))
            .collect();
        assert_eq!(
            kinds_and_specs,
            vec![
                ("run-start".to_owned(), None),
                ("experiment-start".to_owned(), Some(0)),
                ("experiment-end".to_owned(), Some(0)),
                ("experiment-start".to_owned(), Some(1)),
                ("experiment-end".to_owned(), Some(1)),
                ("run-end".to_owned(), None),
            ]
        );
        let seqs: Vec<u64> = sorted.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4, 5]);
        // Already-ordered journals pass through unchanged.
        assert_eq!(spec_ordered(&sorted), sorted);
    }
}
