//! Counters, gauges, and log-bucketed histograms.
//!
//! Histograms use a fixed 256-bucket logarithmic layout: four sub-buckets
//! per power-of-two octave, which bounds the relative quantile error at
//! ~25% while keeping `record` branch-free and allocation-free — cheap
//! enough for per-step timing inside the hottest simulator loops.
//! Snapshots are sparse (only non-empty buckets) and mergeable, so future
//! sharded runs can combine per-shard histograms without losing quantiles.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Number of histogram buckets: 64 octaves × 4 sub-buckets.
const BUCKETS: usize = 256;

/// Bucket index for a value: `0..=3` map directly, larger values land in
/// `octave * 4 + sub` where `sub` is the two bits below the leading one.
fn bucket_index(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros() as usize;
    octave * 4 + ((v >> (octave - 2)) & 3) as usize
}

/// Smallest value that maps to the given bucket (inverse of [`bucket_index`]).
fn bucket_floor(idx: usize) -> u64 {
    if idx < 4 {
        return idx as u64;
    }
    let octave = idx / 4;
    let sub = (idx % 4) as u64;
    (1u64 << octave) + sub * (1u64 << (octave - 2))
}

/// A log-bucketed histogram of `u64` observations (typically nanoseconds).
#[derive(Debug, Clone)]
pub struct Histogram {
    count: u64,
    sum: u64,
    max: u64,
    buckets: Box<[u64; BUCKETS]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            max: 0,
            buckets: Box::new([0; BUCKETS]),
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Fold another live histogram into this one — the shape a fan-out
    /// measurement loop needs (each worker records into its own
    /// histogram, the coordinator merges them; see the serve capacity
    /// ramp), without the sparse-snapshot detour.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }

    /// Approximate quantile straight off the live histogram (same
    /// contract as [`HistogramSnapshot::quantile`]).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if n > 0 && cumulative >= target {
                return bucket_floor(idx).min(self.max);
            }
        }
        self.max
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Fold a sparse snapshot back into this histogram (used when the
    /// supervisor absorbs a worker's per-attempt telemetry).
    pub fn absorb(&mut self, snap: &HistogramSnapshot) {
        self.count += snap.count;
        self.sum = self.sum.saturating_add(snap.sum);
        self.max = self.max.max(snap.max);
        for &(idx, n) in &snap.buckets {
            if (idx as usize) < BUCKETS {
                self.buckets[idx as usize] += n;
            }
        }
    }

    /// Sparse, serializable view of this histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(i, &n)| (i as u32, n))
                .collect(),
        }
    }
}

/// Sparse, mergeable, serializable form of a [`Histogram`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations (saturating).
    pub sum: u64,
    /// Exact maximum observation.
    pub max: u64,
    /// Non-empty `(bucket index, count)` pairs, ascending by index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Merge another snapshot into this one (for sharded-run aggregation).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        let mut merged: BTreeMap<u32, u64> = self.buckets.iter().copied().collect();
        for &(idx, n) in &other.buckets {
            *merged.entry(idx).or_insert(0) += n;
        }
        self.buckets = merged.into_iter().collect();
    }

    /// Approximate quantile (`q` in `[0, 1]`): the floor of the bucket
    /// holding the `ceil(q * count)`-th observation. `q = 1` returns the
    /// exact maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for &(idx, n) in &self.buckets {
            cumulative += n;
            if cumulative >= target {
                return bucket_floor(idx as usize).min(self.max);
            }
        }
        self.max
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// Registry of named counters, gauges, and histograms.
///
/// Names follow a `subsystem.metric[_unit]` convention (see DESIGN.md §7),
/// e.g. `agenda.step_ns` or `faults.injected`. Lookups are `BTreeMap`-keyed
/// so snapshots render in a stable order.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Add `by` to the named counter, creating it at zero if absent.
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.ensure_counter(name) += by;
    }

    /// Get-or-create the named counter; exposed so callers can read back.
    fn ensure_counter(&mut self, name: &str) -> &mut u64 {
        if !self.counters.contains_key(name) {
            self.counters.insert(name.to_owned(), 0);
        }
        self.counters.get_mut(name).expect("counter just inserted")
    }

    /// Set the named gauge to `v` (last write wins).
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_owned(), v);
    }

    /// Record `v` into the named histogram, creating it if absent.
    pub fn observe(&mut self, name: &str, v: u64) {
        if !self.histograms.contains_key(name) {
            self.histograms.insert(name.to_owned(), Histogram::default());
        }
        self.histograms
            .get_mut(name)
            .expect("histogram just inserted")
            .record(v);
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Fold a metrics snapshot into this registry: counters add, gauges
    /// overwrite, histograms merge bucket-wise.
    pub fn absorb(&mut self, snap: &MetricsSnapshot) {
        for (name, v) in &snap.counters {
            self.inc(name, *v);
        }
        for (name, v) in &snap.gauges {
            self.set_gauge(name, *v);
        }
        for (name, h) in &snap.histograms {
            if !self.histograms.contains_key(name) {
                self.histograms.insert(name.clone(), Histogram::default());
            }
            self.histograms
                .get_mut(name)
                .expect("histogram just inserted")
                .absorb(h);
        }
    }

    /// Serializable view of every metric in the registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Serializable, mergeable view of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time gauges by name (last write wins on merge).
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name, in sparse form.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Merge another snapshot into this one (sharded-run aggregation).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// True when no metric of any kind has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_merge_matches_recording_into_one_histogram() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut combined = Histogram::default();
        for v in [3u64, 17, 230, 4_500] {
            a.record(v);
            combined.record(v);
        }
        for v in [9u64, 88, 70_000] {
            b.record(v);
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert_eq!(a.quantile(0.5), combined.quantile(0.5));
        assert_eq!(a.quantile(0.99), combined.quantile(0.99));
        assert_eq!(a.quantile(1.0), 70_000, "q=1 is the exact max");
        assert_eq!(a.mean(), combined.mean());
        // Live quantiles agree with the snapshot path.
        assert_eq!(a.quantile(0.5), a.snapshot().quantile(0.5));
        assert_eq!(a.quantile(0.99), a.snapshot().quantile(0.99));
        assert_eq!(Histogram::default().quantile(0.99), 0, "empty is 0");
        assert_eq!(Histogram::default().mean(), 0);
    }

    #[test]
    fn bucket_index_and_floor_are_consistent() {
        for v in [0u64, 1, 2, 3, 4, 5, 7, 8, 100, 1_000, 1 << 20, u64::MAX] {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS, "index {idx} for {v}");
            let floor = bucket_floor(idx);
            assert!(floor <= v, "floor {floor} above value {v}");
            // The bucket's floor maps back to the same bucket.
            assert_eq!(bucket_index(floor), idx, "floor not idempotent for {v}");
        }
        // Relative error bound: floor is within 25% below the value.
        for v in [10u64, 77, 1_000, 123_456, 9_999_999] {
            let floor = bucket_floor(bucket_index(v));
            assert!(floor as f64 >= v as f64 * 0.75, "floor {floor} too far below {v}");
        }
    }

    #[test]
    fn histogram_quantiles_are_ordered_and_bounded() {
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v * 1000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1_000_000);
        let p50 = s.quantile(0.50);
        let p90 = s.quantile(0.90);
        let p99 = s.quantile(0.99);
        assert!(p50 <= p90 && p90 <= p99 && p99 <= s.max);
        // Log-bucket error bound: within 25% of the true quantile.
        assert!((375_000..=500_000).contains(&p50), "p50 = {p50}");
        assert!((675_000..=900_000).contains(&p90), "p90 = {p90}");
        assert_eq!(s.quantile(1.0), 1_000_000);
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut whole = Histogram::default();
        for v in 0..500u64 {
            a.record(v * 7);
            whole.record(v * 7);
        }
        for v in 0..500u64 {
            b.record(v * 13 + 3);
            whole.record(v * 13 + 3);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, whole.snapshot());
    }

    #[test]
    fn registry_absorb_accumulates() {
        let mut shard = MetricsRegistry::default();
        shard.inc("x.count", 3);
        shard.set_gauge("x.level", 0.5);
        shard.observe("x.ns", 100);
        let mut root = MetricsRegistry::default();
        root.inc("x.count", 1);
        root.absorb(&shard.snapshot());
        root.absorb(&shard.snapshot());
        let snap = root.snapshot();
        assert_eq!(snap.counters["x.count"], 7);
        assert_eq!(snap.gauges["x.level"], 0.5);
        assert_eq!(snap.histograms["x.ns"].count, 2);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0);
        assert!(s.buckets.is_empty());
    }
}
