//! Ordinary least squares (simple linear regression).

use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// A fitted simple linear regression `y = intercept + slope · x`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OlsFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r_squared: f64,
    /// Standard error of the slope estimate.
    pub slope_se: f64,
    /// Number of observations.
    pub n: usize,
}

impl OlsFit {
    /// Predict `y` for a given `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Fit a simple linear regression of `y` on `x` by ordinary least squares.
/// Requires ≥ 3 points and nonzero variance in `x`.
pub fn ols(x: &[f64], y: &[f64]) -> Result<OlsFit> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    if x.len() < 3 {
        return Err(StatsError::InvalidParameter("ols needs >= 3 points"));
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        let dx = xi - mx;
        let dy = yi - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx <= 0.0 {
        return Err(StatsError::Degenerate("x has zero variance"));
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    // Residual sum of squares.
    let rss: f64 = x
        .iter()
        .zip(y)
        .map(|(&xi, &yi)| {
            let e = yi - (intercept + slope * xi);
            e * e
        })
        .sum();
    let r_squared = if syy > 0.0 {
        (1.0 - rss / syy).clamp(0.0, 1.0)
    } else {
        1.0 // y constant and perfectly fit by slope 0
    };
    let slope_se = if x.len() > 2 {
        (rss / (n - 2.0) / sxx).sqrt()
    } else {
        f64::NAN
    };
    Ok(OlsFit {
        slope,
        intercept,
        r_squared,
        slope_se,
        n: x.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [1.0, 3.0, 5.0, 7.0];
        let fit = ols(&x, &y).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!(fit.slope_se.abs() < 1e-9);
        assert_eq!(fit.predict(10.0), 21.0);
    }

    #[test]
    fn noisy_line_recovers_approximately() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        // Deterministic "noise" via a fixed pattern.
        let y: Vec<f64> = x
            .iter()
            .map(|&xi| 3.0 * xi + 5.0 + if (xi as u64).is_multiple_of(2) { 0.5 } else { -0.5 })
            .collect();
        let fit = ols(&x, &y).unwrap();
        assert!((fit.slope - 3.0).abs() < 0.01);
        assert!((fit.intercept - 5.0).abs() < 0.3);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn constant_y_gives_zero_slope() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [5.0, 5.0, 5.0, 5.0];
        let fit = ols(&x, &y).unwrap();
        assert!(fit.slope.abs() < 1e-12);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn constant_x_rejected() {
        assert!(ols(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn too_few_points_rejected() {
        assert!(ols(&[1.0, 2.0], &[1.0, 2.0]).is_err());
    }
}
