//! # humnet-stats
//!
//! Statistics substrate for the `humnet` toolkit.
//!
//! Every simulator and analysis pipeline in `humnet` leans on this crate for:
//!
//! * a small, fully deterministic pseudo-random number generator
//!   ([`rng::Rng`]) so that every experiment is reproducible bit-for-bit
//!   from a `u64` seed;
//! * descriptive statistics ([`descriptive`]) including streaming moments
//!   and histograms;
//! * inequality and fairness indices ([`inequality`]) — Gini, Lorenz,
//!   Theil, Jain — used to quantify concentration of research attention;
//! * diversity indices ([`diversity`]) — Shannon, Simpson — used to
//!   quantify topical breadth;
//! * correlation and regression ([`correlation`], [`regression`]);
//! * classical hypothesis tests ([`hypothesis`]) with real p-values backed
//!   by the special functions in [`special`];
//! * resampling methods ([`bootstrap`]) — bootstrap confidence intervals
//!   and permutation tests.
//!
//! The crate is dependency-light and synchronous by design: the humnet
//! simulators are CPU-bound discrete-event loops, and determinism is a core
//! requirement for reproducing the experiment tables in `EXPERIMENTS.md`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bootstrap;
pub mod confusion;
pub mod correlation;
pub mod descriptive;
pub mod diversity;
pub mod effect;
pub mod hypothesis;
pub mod inequality;
pub mod regression;
pub mod rng;
pub mod special;

pub use bootstrap::{bootstrap_ci, permutation_test, BootstrapCi};
pub use confusion::ConfusionMatrix;
pub use correlation::{kendall_tau, pearson, spearman};
pub use descriptive::{
    excess_kurtosis, geometric_mean, harmonic_mean, histogram, max, mean, median, min, quantile,
    skewness, stddev, summary, variance, Histogram, Summary,
};
pub use diversity::{effective_species, evenness, shannon_entropy, simpson_index};
pub use effect::{cliff_delta, cohen_d, hedges_g, magnitude, Magnitude};
pub use hypothesis::{
    chi_square_gof, chi_square_independence, fisher_exact, kruskal_wallis, mann_whitney_u,
    welch_t_test, TestResult,
};
pub use inequality::{gini, jain_fairness, lorenz_curve, theil_index, top_share};
pub use regression::{ols, OlsFit};
pub use rng::Rng;

/// Errors produced by statistical routines in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// The input slice was empty but the statistic requires data.
    EmptyInput,
    /// Input slices that must have equal length did not.
    LengthMismatch {
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// A parameter was outside its valid domain (e.g. a probability not in `[0, 1]`).
    InvalidParameter(&'static str),
    /// The statistic is undefined for the given data (e.g. zero variance).
    Degenerate(&'static str),
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::EmptyInput => write!(f, "input data is empty"),
            StatsError::LengthMismatch { left, right } => {
                write!(f, "input length mismatch: {left} vs {right}")
            }
            StatsError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            StatsError::Degenerate(what) => write!(f, "statistic undefined: {what}"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StatsError>;
