//! Classical hypothesis tests with exact-enough p-values.
//!
//! humnet uses these to decide whether differences between method regimes
//! (experiment **T1**), policies (**F5**), or coder pools (**T2**) are
//! larger than seed noise.

use crate::special::{chi_square_sf, normal_cdf, student_t_cdf};
use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// Outcome of a hypothesis test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestResult {
    /// Name of the test performed.
    pub test: &'static str,
    /// The test statistic.
    pub statistic: f64,
    /// Degrees of freedom (if meaningful for the test, else 0).
    pub df: f64,
    /// Two-sided p-value (or upper-tail for the chi-square tests).
    pub p_value: f64,
}

impl TestResult {
    /// Whether the result is significant at the given level.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Chi-square goodness-of-fit test of observed counts against expected
/// counts. Expected counts must be positive; the two slices must have equal
/// length ≥ 2.
pub fn chi_square_gof(observed: &[f64], expected: &[f64]) -> Result<TestResult> {
    if observed.len() != expected.len() {
        return Err(StatsError::LengthMismatch {
            left: observed.len(),
            right: expected.len(),
        });
    }
    if observed.len() < 2 {
        return Err(StatsError::InvalidParameter("chi-square needs >= 2 categories"));
    }
    if expected.iter().any(|&e| e <= 0.0) {
        return Err(StatsError::InvalidParameter("expected counts must be positive"));
    }
    let stat: f64 = observed
        .iter()
        .zip(expected)
        .map(|(&o, &e)| (o - e) * (o - e) / e)
        .sum();
    let df = (observed.len() - 1) as f64;
    Ok(TestResult {
        test: "chi-square goodness-of-fit",
        statistic: stat,
        df,
        p_value: chi_square_sf(stat, df),
    })
}

/// Chi-square test of independence on an r×c contingency table (rows of
/// equal length, all counts nonnegative, every marginal positive).
pub fn chi_square_independence(table: &[Vec<f64>]) -> Result<TestResult> {
    if table.len() < 2 {
        return Err(StatsError::InvalidParameter("independence test needs >= 2 rows"));
    }
    let cols = table[0].len();
    if cols < 2 {
        return Err(StatsError::InvalidParameter("independence test needs >= 2 columns"));
    }
    if table.iter().any(|row| row.len() != cols) {
        return Err(StatsError::InvalidParameter("ragged contingency table"));
    }
    if table.iter().flatten().any(|&x| x < 0.0 || !x.is_finite()) {
        return Err(StatsError::InvalidParameter("counts must be finite and nonnegative"));
    }
    let row_sums: Vec<f64> = table.iter().map(|r| r.iter().sum()).collect();
    let col_sums: Vec<f64> = (0..cols)
        .map(|j| table.iter().map(|r| r[j]).sum())
        .collect();
    let total: f64 = row_sums.iter().sum();
    if row_sums.iter().any(|&s| s <= 0.0) || col_sums.iter().any(|&s| s <= 0.0) {
        return Err(StatsError::Degenerate("zero marginal in contingency table"));
    }
    let mut stat = 0.0;
    for (i, row) in table.iter().enumerate() {
        for (j, &o) in row.iter().enumerate() {
            let e = row_sums[i] * col_sums[j] / total;
            stat += (o - e) * (o - e) / e;
        }
    }
    let df = ((table.len() - 1) * (cols - 1)) as f64;
    Ok(TestResult {
        test: "chi-square independence",
        statistic: stat,
        df,
        p_value: chi_square_sf(stat, df),
    })
}

/// Welch's unequal-variance t-test (two-sided). Each sample needs ≥ 2 points
/// and at least one sample must have positive variance.
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Result<TestResult> {
    if a.len() < 2 || b.len() < 2 {
        return Err(StatsError::InvalidParameter("welch t needs >= 2 points per sample"));
    }
    let ma = crate::descriptive::mean(a)?;
    let mb = crate::descriptive::mean(b)?;
    let va = crate::descriptive::variance(a)?;
    let vb = crate::descriptive::variance(b)?;
    let na = a.len() as f64;
    let nb = b.len() as f64;
    let se2 = va / na + vb / nb;
    if se2 <= 0.0 {
        return Err(StatsError::Degenerate("both samples have zero variance"));
    }
    let t = (ma - mb) / se2.sqrt();
    // Welch–Satterthwaite degrees of freedom.
    let df = se2 * se2
        / ((va / na) * (va / na) / (na - 1.0) + (vb / nb) * (vb / nb) / (nb - 1.0));
    let p = 2.0 * (1.0 - student_t_cdf(t.abs(), df));
    Ok(TestResult {
        test: "welch t",
        statistic: t,
        df,
        p_value: p.clamp(0.0, 1.0),
    })
}

/// Mann–Whitney U test (two-sided, normal approximation with tie
/// correction and continuity correction). Suitable for the sample sizes
/// humnet produces (n ≥ 8 per group recommended).
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> Result<TestResult> {
    if a.is_empty() || b.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    let na = a.len() as f64;
    let nb = b.len() as f64;
    // Rank the pooled sample with midranks for ties.
    let mut pooled: Vec<(f64, usize)> = a
        .iter()
        .map(|&x| (x, 0usize))
        .chain(b.iter().map(|&x| (x, 1usize)))
        .collect();
    pooled.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap_or(std::cmp::Ordering::Equal));
    let n = pooled.len();
    let mut ranks = vec![0.0; n];
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let midrank = (i + j + 2) as f64 / 2.0;
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = midrank;
        }
        let t = (j - i + 1) as f64;
        tie_term += t * t * t - t;
        i = j + 1;
    }
    let rank_sum_a: f64 = pooled
        .iter()
        .zip(&ranks)
        .filter(|((_, g), _)| *g == 0)
        .map(|(_, &r)| r)
        .sum();
    let u_a = rank_sum_a - na * (na + 1.0) / 2.0;
    let u = u_a.min(na * nb - u_a);
    let mean_u = na * nb / 2.0;
    let n_tot = na + nb;
    let var_u =
        na * nb / 12.0 * ((n_tot + 1.0) - tie_term / (n_tot * (n_tot - 1.0)));
    if var_u <= 0.0 {
        return Err(StatsError::Degenerate("all pooled values identical"));
    }
    // Continuity correction.
    let z = (u - mean_u + 0.5) / var_u.sqrt();
    let p = (2.0 * normal_cdf(z)).clamp(0.0, 1.0);
    Ok(TestResult {
        test: "mann-whitney u",
        statistic: u,
        df: 0.0,
        p_value: p,
    })
}

/// Kruskal–Wallis H test across `k ≥ 2` groups (rank-based one-way
/// ANOVA), with tie correction and a chi-square approximation for the
/// p-value (adequate for group sizes ≥ 5, which is how humnet uses it).
pub fn kruskal_wallis(groups: &[Vec<f64>]) -> Result<TestResult> {
    if groups.len() < 2 {
        return Err(StatsError::InvalidParameter("kruskal-wallis needs >= 2 groups"));
    }
    if groups.iter().any(Vec::is_empty) {
        return Err(StatsError::EmptyInput);
    }
    let n_total: usize = groups.iter().map(Vec::len).sum();
    if n_total < 3 {
        return Err(StatsError::InvalidParameter("kruskal-wallis needs >= 3 observations"));
    }
    // Pool and midrank.
    let pooled: Vec<f64> = groups.iter().flatten().copied().collect();
    let ranks = crate::correlation::midranks(&pooled);
    // Tie correction factor.
    let mut sorted = pooled.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j + 1 < sorted.len() && sorted[j + 1] == sorted[i] {
            j += 1;
        }
        let t = (j - i + 1) as f64;
        tie_term += t * t * t - t;
        i = j + 1;
    }
    let n = n_total as f64;
    let correction = 1.0 - tie_term / (n * n * n - n);
    if correction <= 0.0 {
        return Err(StatsError::Degenerate("all observations identical"));
    }
    // Group rank sums.
    let mut h = 0.0;
    let mut offset = 0;
    for g in groups {
        let r: f64 = ranks[offset..offset + g.len()].iter().sum();
        h += r * r / g.len() as f64;
        offset += g.len();
    }
    let h = (12.0 / (n * (n + 1.0)) * h - 3.0 * (n + 1.0)) / correction;
    let df = (groups.len() - 1) as f64;
    Ok(TestResult {
        test: "kruskal-wallis h",
        statistic: h,
        df,
        p_value: chi_square_sf(h.max(0.0), df),
    })
}

/// Fisher's exact test (two-sided, by summing the probabilities of all
/// tables at least as extreme as observed) on a 2×2 table
/// `[[a, b], [c, d]]` of counts.
pub fn fisher_exact(a: u64, b: u64, c: u64, d: u64) -> Result<TestResult> {
    let n = a + b + c + d;
    if n == 0 {
        return Err(StatsError::EmptyInput);
    }
    let row1 = a + b;
    let col1 = a + c;
    // Hypergeometric log-pmf for a given top-left cell x.
    let ln_choose = |n: u64, k: u64| -> f64 {
        crate::special::ln_gamma(n as f64 + 1.0)
            - crate::special::ln_gamma(k as f64 + 1.0)
            - crate::special::ln_gamma((n - k) as f64 + 1.0)
    };
    let log_pmf = |x: u64| -> f64 {
        ln_choose(row1, x) + ln_choose(n - row1, col1 - x) - ln_choose(n, col1)
    };
    let x_min = col1.saturating_sub(n - row1);
    let x_max = row1.min(col1);
    let observed = log_pmf(a);
    let mut p = 0.0;
    for x in x_min..=x_max {
        let lp = log_pmf(x);
        if lp <= observed + 1e-9 {
            p += lp.exp();
        }
    }
    Ok(TestResult {
        test: "fisher exact",
        statistic: a as f64,
        df: 0.0,
        p_value: p.clamp(0.0, 1.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chi_square_gof_perfect_fit() {
        let r = chi_square_gof(&[10.0, 20.0, 30.0], &[10.0, 20.0, 30.0]).unwrap();
        assert_eq!(r.statistic, 0.0);
        assert!((r.p_value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chi_square_gof_known_example() {
        // Classic fair-die example: observed [5,8,9,8,10,20], expected 10 each.
        let obs = [5.0, 8.0, 9.0, 8.0, 10.0, 20.0];
        let exp = [10.0; 6];
        let r = chi_square_gof(&obs, &exp).unwrap();
        assert!((r.statistic - 13.4).abs() < 1e-9);
        assert_eq!(r.df, 5.0);
        assert!(r.p_value < 0.05 && r.p_value > 0.01, "p = {}", r.p_value);
    }

    #[test]
    fn chi_square_gof_length_mismatch() {
        assert!(chi_square_gof(&[1.0, 2.0], &[1.0]).is_err());
    }

    #[test]
    fn independence_on_independent_table() {
        // Rows proportional -> statistic 0.
        let table = vec![vec![10.0, 20.0], vec![30.0, 60.0]];
        let r = chi_square_independence(&table).unwrap();
        assert!(r.statistic.abs() < 1e-9);
        assert!(r.p_value > 0.99);
    }

    #[test]
    fn independence_detects_association() {
        let table = vec![vec![50.0, 10.0], vec![10.0, 50.0]];
        let r = chi_square_independence(&table).unwrap();
        assert_eq!(r.df, 1.0);
        assert!(r.p_value < 1e-6, "p = {}", r.p_value);
    }

    #[test]
    fn independence_rejects_zero_marginal() {
        let table = vec![vec![0.0, 0.0], vec![1.0, 2.0]];
        assert!(chi_square_independence(&table).is_err());
    }

    #[test]
    fn welch_same_distribution_not_significant() {
        let a: Vec<f64> = (0..20).map(|i| (i as f64) * 0.5).collect();
        let b: Vec<f64> = (0..20).map(|i| (i as f64) * 0.5 + 0.01).collect();
        let r = welch_t_test(&a, &b).unwrap();
        assert!(r.p_value > 0.9, "p = {}", r.p_value);
    }

    #[test]
    fn welch_detects_shift() {
        let a: Vec<f64> = (0..30).map(|i| (i % 5) as f64).collect();
        let b: Vec<f64> = (0..30).map(|i| (i % 5) as f64 + 10.0).collect();
        let r = welch_t_test(&a, &b).unwrap();
        assert!(r.p_value < 1e-10);
        assert!(r.statistic < 0.0, "a < b should give negative t");
    }

    #[test]
    fn welch_known_value() {
        // a = [1..5]: mean 3, var 2.5; b = [2,4,6,8,10]: mean 6, var 10.
        // t = (3 - 6) / sqrt(2.5/5 + 10/5) = -3 / sqrt(2.5) = -1.897366...
        // Welch df = 2.5^2 / (0.5^2/4 + 2^2/4) = 6.25 / 1.0625 ≈ 5.882.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 4.0, 6.0, 8.0, 10.0];
        let r = welch_t_test(&a, &b).unwrap();
        assert!((r.statistic + 3.0 / 2.5f64.sqrt()).abs() < 1e-12, "t = {}", r.statistic);
        assert!((r.df - 6.25 / 1.0625).abs() < 1e-9, "df = {}", r.df);
        assert!((r.p_value - 0.107).abs() < 0.01, "p = {}", r.p_value);
    }

    #[test]
    fn mann_whitney_detects_shift() {
        let a: Vec<f64> = (0..15).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..15).map(|i| i as f64 + 100.0).collect();
        let r = mann_whitney_u(&a, &b).unwrap();
        assert_eq!(r.statistic, 0.0); // complete separation
        assert!(r.p_value < 1e-5);
    }

    #[test]
    fn mann_whitney_identical_groups() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let r = mann_whitney_u(&a, &a).unwrap();
        assert!(r.p_value > 0.9, "p = {}", r.p_value);
    }

    #[test]
    fn mann_whitney_all_ties_degenerate() {
        let a = [1.0; 5];
        assert!(mann_whitney_u(&a, &a).is_err());
    }

    #[test]
    fn kruskal_wallis_detects_location_shift() {
        let g1: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let g2: Vec<f64> = (0..12).map(|i| i as f64 + 20.0).collect();
        let g3: Vec<f64> = (0..12).map(|i| i as f64 + 40.0).collect();
        let r = kruskal_wallis(&[g1, g2, g3]).unwrap();
        assert_eq!(r.df, 2.0);
        assert!(r.p_value < 1e-5, "p = {}", r.p_value);
    }

    #[test]
    fn kruskal_wallis_hand_computed_h() {
        // No ties: ranks 1..9 in three blocks; H = 7.2 exactly.
        let g1 = vec![1.0, 2.0, 3.0];
        let g2 = vec![4.0, 5.0, 6.0];
        let g3 = vec![7.0, 8.0, 9.0];
        let r = kruskal_wallis(&[g1, g2, g3]).unwrap();
        assert!((r.statistic - 7.2).abs() < 1e-9, "H = {}", r.statistic);
        assert_eq!(r.df, 2.0);
    }

    #[test]
    fn kruskal_wallis_null_case() {
        let g: Vec<f64> = (0..15).map(|i| (i % 7) as f64).collect();
        let r = kruskal_wallis(&[g.clone(), g.clone(), g]).unwrap();
        assert!(r.p_value > 0.5, "p = {}", r.p_value);
    }

    #[test]
    fn kruskal_wallis_validation() {
        assert!(kruskal_wallis(&[vec![1.0, 2.0]]).is_err());
        assert!(kruskal_wallis(&[vec![1.0], vec![]]).is_err());
        assert!(kruskal_wallis(&[vec![1.0, 1.0], vec![1.0, 1.0]]).is_err());
    }

    #[test]
    fn fisher_exact_tea_tasting() {
        // Fisher's lady-tasting-tea table [[3,1],[1,3]]: two-sided p ≈ 0.4857.
        let r = fisher_exact(3, 1, 1, 3).unwrap();
        assert!((r.p_value - 0.485_714_285_714_285_7).abs() < 1e-9, "p = {}", r.p_value);
    }

    #[test]
    fn fisher_exact_strong_association() {
        let r = fisher_exact(10, 0, 0, 10).unwrap();
        assert!(r.p_value < 1e-4, "p = {}", r.p_value);
    }

    #[test]
    fn fisher_exact_balanced_is_one() {
        let r = fisher_exact(5, 5, 5, 5).unwrap();
        assert!((r.p_value - 1.0).abs() < 1e-9, "p = {}", r.p_value);
    }

    #[test]
    fn fisher_exact_empty_errors() {
        assert!(fisher_exact(0, 0, 0, 0).is_err());
    }

    #[test]
    fn significant_at_threshold() {
        let r = TestResult {
            test: "x",
            statistic: 0.0,
            df: 1.0,
            p_value: 0.03,
        };
        assert!(r.significant_at(0.05));
        assert!(!r.significant_at(0.01));
    }
}
