//! Descriptive statistics: moments, order statistics, summaries, histograms.

use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// Arithmetic mean. Errors on empty input.
pub fn mean(data: &[f64]) -> Result<f64> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    Ok(data.iter().sum::<f64>() / data.len() as f64)
}

/// Unbiased sample variance (n − 1 denominator), computed with Welford's
/// streaming algorithm for numerical stability. Requires at least two points.
pub fn variance(data: &[f64]) -> Result<f64> {
    if data.len() < 2 {
        return Err(StatsError::Degenerate("variance requires at least 2 points"));
    }
    let mut count = 0.0;
    let mut m = 0.0;
    let mut m2 = 0.0;
    for &x in data {
        count += 1.0;
        let delta = x - m;
        m += delta / count;
        m2 += delta * (x - m);
    }
    Ok(m2 / (count - 1.0))
}

/// Sample standard deviation (square root of [`variance`]).
pub fn stddev(data: &[f64]) -> Result<f64> {
    variance(data).map(f64::sqrt)
}

/// Minimum value. Errors on empty input; NaNs are ignored unless all inputs
/// are NaN, in which case the result is NaN.
pub fn min(data: &[f64]) -> Result<f64> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    Ok(data.iter().copied().fold(f64::NAN, |a, b| {
        if a.is_nan() {
            b
        } else if b.is_nan() {
            a
        } else {
            a.min(b)
        }
    }))
}

/// Maximum value, with the same NaN handling as [`min`].
pub fn max(data: &[f64]) -> Result<f64> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    Ok(data.iter().copied().fold(f64::NAN, |a, b| {
        if a.is_nan() {
            b
        } else if b.is_nan() {
            a
        } else {
            a.max(b)
        }
    }))
}

/// Quantile using linear interpolation between order statistics
/// (the "type 7" definition used by R and NumPy). `q` must lie in `[0, 1]`.
pub fn quantile(data: &[f64], q: f64) -> Result<f64> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidParameter("quantile q must be in [0, 1]"));
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let h = q * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        Ok(sorted[lo])
    } else {
        let frac = h - lo as f64;
        Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Median (the 0.5 quantile).
pub fn median(data: &[f64]) -> Result<f64> {
    quantile(data, 0.5)
}

/// Sample skewness (adjusted Fisher–Pearson, the `g1`-with-correction form
/// used by most statistics packages). Requires ≥ 3 points and nonzero
/// variance.
pub fn skewness(data: &[f64]) -> Result<f64> {
    if data.len() < 3 {
        return Err(StatsError::InvalidParameter("skewness needs >= 3 points"));
    }
    let n = data.len() as f64;
    let m = mean(data)?;
    let m2: f64 = data.iter().map(|&x| (x - m).powi(2)).sum::<f64>() / n;
    let m3: f64 = data.iter().map(|&x| (x - m).powi(3)).sum::<f64>() / n;
    if m2 <= 0.0 {
        return Err(StatsError::Degenerate("zero variance"));
    }
    let g1 = m3 / m2.powf(1.5);
    Ok((n * (n - 1.0)).sqrt() / (n - 2.0) * g1)
}

/// Excess kurtosis (0 for a normal distribution), population form
/// `m4 / m2² − 3`. Requires ≥ 4 points and nonzero variance.
pub fn excess_kurtosis(data: &[f64]) -> Result<f64> {
    if data.len() < 4 {
        return Err(StatsError::InvalidParameter("kurtosis needs >= 4 points"));
    }
    let n = data.len() as f64;
    let m = mean(data)?;
    let m2: f64 = data.iter().map(|&x| (x - m).powi(2)).sum::<f64>() / n;
    let m4: f64 = data.iter().map(|&x| (x - m).powi(4)).sum::<f64>() / n;
    if m2 <= 0.0 {
        return Err(StatsError::Degenerate("zero variance"));
    }
    Ok(m4 / (m2 * m2) - 3.0)
}

/// Geometric mean of a strictly positive sample.
pub fn geometric_mean(data: &[f64]) -> Result<f64> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if data.iter().any(|&x| x <= 0.0) {
        return Err(StatsError::InvalidParameter("geometric mean requires positive values"));
    }
    Ok((data.iter().map(|&x| x.ln()).sum::<f64>() / data.len() as f64).exp())
}

/// Harmonic mean of a strictly positive sample.
pub fn harmonic_mean(data: &[f64]) -> Result<f64> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if data.iter().any(|&x| x <= 0.0) {
        return Err(StatsError::InvalidParameter("harmonic mean requires positive values"));
    }
    Ok(data.len() as f64 / data.iter().map(|&x| 1.0 / x).sum::<f64>())
}

/// A five-number-plus summary of a sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 when `n < 2`).
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

/// Compute a [`Summary`] of a nonempty sample.
pub fn summary(data: &[f64]) -> Result<Summary> {
    Ok(Summary {
        n: data.len(),
        mean: mean(data)?,
        stddev: if data.len() >= 2 { stddev(data)? } else { 0.0 },
        min: min(data)?,
        q1: quantile(data, 0.25)?,
        median: median(data)?,
        q3: quantile(data, 0.75)?,
        max: max(data)?,
    })
}

/// A fixed-width histogram over a closed interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Left edge of the first bin.
    pub lo: f64,
    /// Right edge of the last bin.
    pub hi: f64,
    /// Per-bin counts.
    pub counts: Vec<u64>,
    /// Observations below `lo`.
    pub underflow: u64,
    /// Observations above `hi`.
    pub overflow: u64,
}

impl Histogram {
    /// Total observations recorded, including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Bin center for bin `i`.
    pub fn center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// Index of the most populated bin (first on ties).
    pub fn mode_bin(&self) -> usize {
        let mut best = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > self.counts[best] {
                best = i;
            }
        }
        best
    }
}

/// Build a histogram with `bins` equal-width bins over `[lo, hi]`.
/// A value exactly equal to `hi` is counted in the last bin.
pub fn histogram(data: &[f64], lo: f64, hi: f64, bins: usize) -> Result<Histogram> {
    if bins == 0 {
        return Err(StatsError::InvalidParameter("histogram needs at least one bin"));
    }
    if hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
        return Err(StatsError::InvalidParameter("histogram needs hi > lo"));
    }
    let mut h = Histogram {
        lo,
        hi,
        counts: vec![0; bins],
        underflow: 0,
        overflow: 0,
    };
    let width = (hi - lo) / bins as f64;
    for &x in data {
        if x < lo {
            h.underflow += 1;
        } else if x > hi {
            h.overflow += 1;
        } else {
            let idx = (((x - lo) / width) as usize).min(bins - 1);
            h.counts[idx] += 1;
        }
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_known_sample() {
        assert_eq!(mean(&[1.0, 2.0, 3.0, 4.0]).unwrap(), 2.5);
    }

    #[test]
    fn mean_empty_errors() {
        assert_eq!(mean(&[]).unwrap_err(), StatsError::EmptyInput);
    }

    #[test]
    fn variance_of_known_sample() {
        // Sample variance of 2,4,4,4,5,5,7,9 with n-1 denominator is 32/7.
        let v = variance(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((v - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn variance_requires_two_points() {
        assert!(variance(&[1.0]).is_err());
    }

    #[test]
    fn variance_is_shift_invariant() {
        let base = [3.1, 4.1, 5.9, 2.6, 5.3];
        let shifted: Vec<f64> = base.iter().map(|x| x + 1e9).collect();
        let v0 = variance(&base).unwrap();
        let v1 = variance(&shifted).unwrap();
        assert!((v0 - v1).abs() < 1e-4, "Welford should resist catastrophic cancellation");
    }

    #[test]
    fn quantile_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&data, 1.0).unwrap(), 4.0);
        assert!((quantile(&data, 0.5).unwrap() - 2.5).abs() < 1e-12);
        // Type-7: h = 0.25 * 3 = 0.75 -> 1 + 0.75*(2-1) = 1.75
        assert!((quantile(&data, 0.25).unwrap() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_rejects_bad_q() {
        assert!(quantile(&[1.0], 1.5).is_err());
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]).unwrap(), 2.5);
    }

    #[test]
    fn summary_fields_consistent() {
        let s = summary(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(s.n, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.mean, 3.0);
        assert!(s.q1 <= s.median && s.median <= s.q3);
    }

    #[test]
    fn summary_single_point() {
        let s = summary(&[7.0]).unwrap();
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
    }

    #[test]
    fn histogram_counts_and_edges() {
        let h = histogram(&[0.0, 0.5, 1.0, 2.5, 9.9, 10.0, -1.0, 11.0], 0.0, 10.0, 10).unwrap();
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.counts[0], 2); // 0.0 and 0.5; 1.0 falls on the left edge of bin 1.
        assert_eq!(h.counts[1], 1); // 1.0
        assert_eq!(h.counts[2], 1); // 2.5
        assert_eq!(h.total(), 8);
        // Value exactly hi lands in last bin.
        assert_eq!(h.counts[9], 2); // 9.9 and 10.0
    }

    #[test]
    fn histogram_bin_geometry() {
        let h = histogram(&[], 0.0, 10.0, 5).unwrap();
        assert_eq!(h.bin_width(), 2.0);
        assert_eq!(h.center(0), 1.0);
        assert_eq!(h.center(4), 9.0);
    }

    #[test]
    fn histogram_mode_bin() {
        let h = histogram(&[1.0, 1.1, 1.2, 5.0], 0.0, 10.0, 10).unwrap();
        assert_eq!(h.mode_bin(), 1);
    }

    #[test]
    fn skewness_symmetric_is_zero() {
        let s = skewness(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert!(s.abs() < 1e-12, "s = {s}");
    }

    #[test]
    fn skewness_right_tail_positive() {
        let s = skewness(&[1.0, 1.0, 1.0, 1.0, 10.0]).unwrap();
        assert!(s > 1.0, "s = {s}");
        let left = skewness(&[-10.0, 1.0, 1.0, 1.0, 1.0]).unwrap();
        assert!(left < -1.0);
    }

    #[test]
    fn skewness_validation() {
        assert!(skewness(&[1.0, 2.0]).is_err());
        assert!(skewness(&[3.0, 3.0, 3.0]).is_err());
    }

    #[test]
    fn kurtosis_uniformish_is_negative() {
        // Discrete uniform has excess kurtosis < 0 (platykurtic).
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let k = excess_kurtosis(&data).unwrap();
        assert!(k < -1.0, "k = {k}");
    }

    #[test]
    fn kurtosis_heavy_tail_positive() {
        let mut data = vec![0.0; 96];
        data.extend_from_slice(&[50.0, -50.0, 60.0, -60.0]);
        // All-zero core breaks variance? variance > 0 due to tails.
        let k = excess_kurtosis(&data).unwrap();
        assert!(k > 3.0, "k = {k}");
    }

    #[test]
    fn geometric_and_harmonic_means() {
        let g = geometric_mean(&[1.0, 4.0, 16.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
        let h = harmonic_mean(&[1.0, 2.0, 4.0]).unwrap();
        assert!((h - 3.0 / 1.75).abs() < 1e-12);
        // AM >= GM >= HM.
        let data = [2.0, 3.0, 7.0, 11.0];
        let am = mean(&data).unwrap();
        let gm = geometric_mean(&data).unwrap();
        let hm = harmonic_mean(&data).unwrap();
        assert!(am >= gm && gm >= hm);
    }

    #[test]
    fn positive_mean_validation() {
        assert!(geometric_mean(&[1.0, 0.0]).is_err());
        assert!(harmonic_mean(&[1.0, -1.0]).is_err());
        assert!(geometric_mean(&[]).is_err());
    }

    #[test]
    fn min_max_ignore_nan() {
        let data = [f64::NAN, 2.0, 1.0, f64::NAN, 3.0];
        assert_eq!(min(&data).unwrap(), 1.0);
        assert_eq!(max(&data).unwrap(), 3.0);
    }
}
