//! Inequality and fairness indices.
//!
//! These are the workhorse metrics behind experiment **F1** (concentration of
//! research attention across stakeholder classes) and **F5** (fairness of
//! congestion-management policies in community networks).

use crate::{Result, StatsError};

/// Gini coefficient of a nonnegative sample, in `[0, 1)`.
///
/// 0 means perfect equality; values near 1 mean one observation holds
/// everything. Computed with the sorted-rank formula
/// `G = (2 Σ i·x_(i) / (n Σ x)) − (n + 1)/n`.
/// Errors on empty input, on any negative value, and when the total is zero.
pub fn gini(data: &[f64]) -> Result<f64> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if data.iter().any(|&x| x < 0.0 || !x.is_finite()) {
        return Err(StatsError::InvalidParameter("gini requires finite nonnegative values"));
    }
    let total: f64 = data.iter().sum();
    if total <= 0.0 {
        return Err(StatsError::Degenerate("gini undefined for zero total"));
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len() as f64;
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    Ok((2.0 * weighted) / (n * total) - (n + 1.0) / n)
}

/// Lorenz curve: returns `(population_share, value_share)` pairs starting at
/// `(0, 0)` and ending at `(1, 1)`, with one intermediate point per
/// observation (ascending order).
pub fn lorenz_curve(data: &[f64]) -> Result<Vec<(f64, f64)>> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if data.iter().any(|&x| x < 0.0 || !x.is_finite()) {
        return Err(StatsError::InvalidParameter("lorenz requires finite nonnegative values"));
    }
    let total: f64 = data.iter().sum();
    if total <= 0.0 {
        return Err(StatsError::Degenerate("lorenz undefined for zero total"));
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len() as f64;
    let mut curve = Vec::with_capacity(sorted.len() + 1);
    curve.push((0.0, 0.0));
    let mut acc = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        acc += x;
        curve.push(((i as f64 + 1.0) / n, acc / total));
    }
    Ok(curve)
}

/// Jain's fairness index of a nonnegative allocation vector, in `(0, 1]`.
///
/// `J = (Σ x)² / (n Σ x²)`; 1 means perfectly equal allocations, `1/n`
/// means a single user receives everything.
pub fn jain_fairness(data: &[f64]) -> Result<f64> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if data.iter().any(|&x| x < 0.0 || !x.is_finite()) {
        return Err(StatsError::InvalidParameter("jain requires finite nonnegative values"));
    }
    let sum: f64 = data.iter().sum();
    let sumsq: f64 = data.iter().map(|x| x * x).sum();
    if sumsq <= 0.0 {
        return Err(StatsError::Degenerate("jain undefined for all-zero allocations"));
    }
    Ok(sum * sum / (data.len() as f64 * sumsq))
}

/// Theil T index of a positive sample (0 = equality, grows with inequality).
///
/// `T = (1/n) Σ (x_i / μ) ln(x_i / μ)`. Zero values are permitted and
/// contribute zero (the `x ln x → 0` limit).
pub fn theil_index(data: &[f64]) -> Result<f64> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if data.iter().any(|&x| x < 0.0 || !x.is_finite()) {
        return Err(StatsError::InvalidParameter("theil requires finite nonnegative values"));
    }
    let mu: f64 = data.iter().sum::<f64>() / data.len() as f64;
    if mu <= 0.0 {
        return Err(StatsError::Degenerate("theil undefined for zero mean"));
    }
    let t = data
        .iter()
        .map(|&x| {
            let r = x / mu;
            if r > 0.0 {
                r * r.ln()
            } else {
                0.0
            }
        })
        .sum::<f64>()
        / data.len() as f64;
    Ok(t)
}

/// Share of the total held by the top `k` observations (`k ≥ 1`).
/// If `k` exceeds the sample size the share is 1.
pub fn top_share(data: &[f64], k: usize) -> Result<f64> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if k == 0 {
        return Err(StatsError::InvalidParameter("top_share requires k >= 1"));
    }
    if data.iter().any(|&x| x < 0.0 || !x.is_finite()) {
        return Err(StatsError::InvalidParameter("top_share requires finite nonnegative values"));
    }
    let total: f64 = data.iter().sum();
    if total <= 0.0 {
        return Err(StatsError::Degenerate("top_share undefined for zero total"));
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    Ok(sorted.iter().take(k).sum::<f64>() / total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gini_equal_is_zero() {
        let g = gini(&[5.0, 5.0, 5.0, 5.0]).unwrap();
        assert!(g.abs() < 1e-12);
    }

    #[test]
    fn gini_concentrated_approaches_one() {
        let mut data = vec![0.0; 99];
        data.push(100.0);
        let g = gini(&data).unwrap();
        assert!(g > 0.98, "g = {g}");
    }

    #[test]
    fn gini_known_value() {
        // For [1, 2, 3, 4]: G = 2*(1+4+9+16)/(4*10) - 5/4 = 60/40 - 1.25 = 0.25.
        let g = gini(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((g - 0.25).abs() < 1e-12, "g = {g}");
    }

    #[test]
    fn gini_is_scale_invariant() {
        let a = gini(&[1.0, 2.0, 7.0]).unwrap();
        let b = gini(&[10.0, 20.0, 70.0]).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn gini_rejects_negative() {
        assert!(gini(&[1.0, -1.0]).is_err());
    }

    #[test]
    fn lorenz_endpoints_and_monotonicity() {
        let c = lorenz_curve(&[3.0, 1.0, 4.0, 1.0, 5.0]).unwrap();
        assert_eq!(c.first().unwrap(), &(0.0, 0.0));
        let (px, py) = *c.last().unwrap();
        assert!((px - 1.0).abs() < 1e-12 && (py - 1.0).abs() < 1e-12);
        for w in c.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1);
            // Lorenz curve lies on or below the diagonal.
            assert!(w[1].1 <= w[1].0 + 1e-12);
        }
    }

    #[test]
    fn jain_equal_is_one() {
        assert!((jain_fairness(&[2.0, 2.0, 2.0]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_single_hog_is_one_over_n() {
        let j = jain_fairness(&[10.0, 0.0, 0.0, 0.0]).unwrap();
        assert!((j - 0.25).abs() < 1e-12);
    }

    #[test]
    fn theil_equal_is_zero() {
        assert!(theil_index(&[3.0, 3.0, 3.0]).unwrap().abs() < 1e-12);
    }

    #[test]
    fn theil_increases_with_inequality() {
        let low = theil_index(&[4.0, 5.0, 6.0]).unwrap();
        let high = theil_index(&[1.0, 1.0, 13.0]).unwrap();
        assert!(high > low);
    }

    #[test]
    fn top_share_basics() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert!((top_share(&data, 1).unwrap() - 0.4).abs() < 1e-12);
        assert!((top_share(&data, 2).unwrap() - 0.7).abs() < 1e-12);
        assert!((top_share(&data, 10).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gini_matches_lorenz_area() {
        // G should equal 1 - 2 * area under the Lorenz curve (trapezoid rule
        // is exact for the piecewise-linear curve).
        let data = [1.0, 1.0, 2.0, 5.0, 11.0];
        let g = gini(&data).unwrap();
        let curve = lorenz_curve(&data).unwrap();
        let area: f64 = curve
            .windows(2)
            .map(|w| (w[1].0 - w[0].0) * (w[0].1 + w[1].1) / 2.0)
            .sum();
        assert!((g - (1.0 - 2.0 * area)).abs() < 1e-9, "g={g} area={area}");
    }
}
