//! Effect sizes: how *big* a difference is, not merely whether it exists.
//!
//! The regime comparisons in experiment **T1** report p-values from
//! [`crate::hypothesis`]; reviewers of quantitative work rightly ask for
//! effect sizes alongside. Implemented: Cohen's d (pooled), Hedges' g
//! (small-sample corrected), and Cliff's delta (ordinal, nonparametric).

use crate::{Result, StatsError};

/// Cohen's d with pooled standard deviation. Positive when `a`'s mean is
/// larger. Requires ≥ 2 points per sample and nonzero pooled variance.
pub fn cohen_d(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() < 2 || b.len() < 2 {
        return Err(StatsError::InvalidParameter("cohen_d needs >= 2 points per sample"));
    }
    let ma = crate::descriptive::mean(a)?;
    let mb = crate::descriptive::mean(b)?;
    let va = crate::descriptive::variance(a)?;
    let vb = crate::descriptive::variance(b)?;
    let na = a.len() as f64;
    let nb = b.len() as f64;
    let pooled = ((na - 1.0) * va + (nb - 1.0) * vb) / (na + nb - 2.0);
    if pooled <= 0.0 {
        return Err(StatsError::Degenerate("zero pooled variance"));
    }
    Ok((ma - mb) / pooled.sqrt())
}

/// Hedges' g: Cohen's d with the small-sample bias correction
/// `J = 1 − 3 / (4(n_a + n_b) − 9)`.
pub fn hedges_g(a: &[f64], b: &[f64]) -> Result<f64> {
    let d = cohen_d(a, b)?;
    let n = (a.len() + b.len()) as f64;
    let j = 1.0 - 3.0 / (4.0 * n - 9.0);
    Ok(d * j)
}

/// Cliff's delta: `P(a > b) − P(a < b)` over all cross pairs, in `[−1, 1]`.
/// Robust to non-normality; 0 means stochastic equality.
pub fn cliff_delta(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.is_empty() || b.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    let mut more = 0i64;
    let mut less = 0i64;
    for &x in a {
        for &y in b {
            if x > y {
                more += 1;
            } else if x < y {
                less += 1;
            }
        }
    }
    Ok((more - less) as f64 / (a.len() * b.len()) as f64)
}

/// Conventional qualitative magnitude for |d|-style effect sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Magnitude {
    /// |d| < 0.2.
    Negligible,
    /// 0.2 ≤ |d| < 0.5.
    Small,
    /// 0.5 ≤ |d| < 0.8.
    Medium,
    /// |d| ≥ 0.8.
    Large,
}

/// Classify a Cohen-style effect size by the conventional thresholds.
pub fn magnitude(d: f64) -> Magnitude {
    let a = d.abs();
    if a < 0.2 {
        Magnitude::Negligible
    } else if a < 0.5 {
        Magnitude::Small
    } else if a < 0.8 {
        Magnitude::Medium
    } else {
        Magnitude::Large
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cohen_d_known_value() {
        // a: mean 2, var 1; b: mean 0, var 1 (pooled sd = 1) -> d = 2.
        let a = [1.0, 2.0, 3.0, 2.0];
        let b = [-1.0, 0.0, 1.0, 0.0];
        let d = cohen_d(&a, &b).unwrap();
        // var(a) = var(b) = 2/3; pooled = 2/3; d = 2 / sqrt(2/3).
        let expected = 2.0 / (2.0f64 / 3.0).sqrt();
        assert!((d - expected).abs() < 1e-12, "d = {d}");
    }

    #[test]
    fn cohen_d_sign_and_zero() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert!(cohen_d(&a, &b).unwrap() < 0.0);
        assert!(cohen_d(&b, &a).unwrap() > 0.0);
        assert!(cohen_d(&a, &a).unwrap().abs() < 1e-12);
    }

    #[test]
    fn cohen_d_degenerate() {
        assert!(cohen_d(&[1.0], &[1.0, 2.0]).is_err());
        assert!(cohen_d(&[1.0, 1.0], &[1.0, 1.0]).is_err());
    }

    #[test]
    fn hedges_g_shrinks_d() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [3.0, 4.0, 5.0, 6.0];
        let d = cohen_d(&a, &b).unwrap();
        let g = hedges_g(&a, &b).unwrap();
        assert!(g.abs() < d.abs());
        assert!(g.signum() == d.signum());
    }

    #[test]
    fn cliff_delta_extremes() {
        let lo = [1.0, 2.0, 3.0];
        let hi = [10.0, 11.0, 12.0];
        assert_eq!(cliff_delta(&hi, &lo).unwrap(), 1.0);
        assert_eq!(cliff_delta(&lo, &hi).unwrap(), -1.0);
        assert_eq!(cliff_delta(&lo, &lo).unwrap(), 0.0);
    }

    #[test]
    fn cliff_delta_partial_overlap() {
        let a = [1.0, 3.0];
        let b = [2.0, 2.0];
        // pairs: (1,2)x2 less, (3,2)x2 more -> delta = 0.
        assert_eq!(cliff_delta(&a, &b).unwrap(), 0.0);
    }

    #[test]
    fn magnitude_thresholds() {
        assert_eq!(magnitude(0.1), Magnitude::Negligible);
        assert_eq!(magnitude(-0.3), Magnitude::Small);
        assert_eq!(magnitude(0.6), Magnitude::Medium);
        assert_eq!(magnitude(-1.5), Magnitude::Large);
        assert_eq!(magnitude(0.2), Magnitude::Small);
        assert_eq!(magnitude(0.8), Magnitude::Large);
    }
}
