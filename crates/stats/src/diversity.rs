//! Diversity indices over categorical count/weight distributions.
//!
//! Used to quantify topical breadth of research portfolios (experiments
//! **T1** and **F7**): a method regime that only surfaces hyperscaler
//! problems has low entropy over stakeholder classes.

use crate::{Result, StatsError};

fn normalize(counts: &[f64]) -> Result<Vec<f64>> {
    if counts.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if counts.iter().any(|&c| c < 0.0 || !c.is_finite()) {
        return Err(StatsError::InvalidParameter(
            "diversity indices require finite nonnegative counts",
        ));
    }
    let total: f64 = counts.iter().sum();
    if total <= 0.0 {
        return Err(StatsError::Degenerate("diversity undefined for zero total"));
    }
    Ok(counts.iter().map(|&c| c / total).collect())
}

/// Shannon entropy in nats of a count/weight vector, `H = −Σ p ln p`.
/// Zero-count categories contribute zero.
pub fn shannon_entropy(counts: &[f64]) -> Result<f64> {
    let p = normalize(counts)?;
    Ok(-p
        .iter()
        .filter(|&&pi| pi > 0.0)
        .map(|&pi| pi * pi.ln())
        .sum::<f64>())
}

/// Normalized Shannon entropy (Pielou's evenness) in `[0, 1]`:
/// `H / ln k` where `k` is the number of categories. Returns 1 for a single
/// category (a degenerate but conventionally "even" distribution).
pub fn evenness(counts: &[f64]) -> Result<f64> {
    let h = shannon_entropy(counts)?;
    if counts.len() <= 1 {
        return Ok(1.0);
    }
    Ok(h / (counts.len() as f64).ln())
}

/// Simpson's diversity index `1 − Σ p²` in `[0, 1)`: the probability two
/// draws come from different categories.
pub fn simpson_index(counts: &[f64]) -> Result<f64> {
    let p = normalize(counts)?;
    Ok(1.0 - p.iter().map(|&pi| pi * pi).sum::<f64>())
}

/// Effective number of species (Hill number of order 1): `exp(H)`.
/// An intuitive "how many equally common categories is this equivalent to".
pub fn effective_species(counts: &[f64]) -> Result<f64> {
    shannon_entropy(counts).map(f64::exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_uniform_is_ln_k() {
        let h = shannon_entropy(&[1.0, 1.0, 1.0, 1.0]).unwrap();
        assert!((h - 4.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn entropy_degenerate_is_zero() {
        let h = shannon_entropy(&[10.0, 0.0, 0.0]).unwrap();
        assert!(h.abs() < 1e-12);
    }

    #[test]
    fn entropy_is_scale_invariant() {
        let a = shannon_entropy(&[1.0, 2.0, 3.0]).unwrap();
        let b = shannon_entropy(&[10.0, 20.0, 30.0]).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn evenness_bounds() {
        let e = evenness(&[5.0, 3.0, 1.0]).unwrap();
        assert!(e > 0.0 && e < 1.0);
        assert!((evenness(&[2.0, 2.0]).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(evenness(&[3.0]).unwrap(), 1.0);
    }

    #[test]
    fn simpson_uniform() {
        // 1 - k * (1/k)^2 = 1 - 1/k
        let s = simpson_index(&[1.0, 1.0, 1.0, 1.0]).unwrap();
        assert!((s - 0.75).abs() < 1e-12);
    }

    #[test]
    fn simpson_degenerate_is_zero() {
        assert!(simpson_index(&[7.0, 0.0]).unwrap().abs() < 1e-12);
    }

    #[test]
    fn effective_species_uniform_equals_k() {
        let e = effective_species(&[2.0, 2.0, 2.0]).unwrap();
        assert!((e - 3.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_negative_and_zero_total() {
        assert!(shannon_entropy(&[-1.0, 2.0]).is_err());
        assert!(shannon_entropy(&[0.0, 0.0]).is_err());
        assert!(shannon_entropy(&[]).is_err());
    }
}
