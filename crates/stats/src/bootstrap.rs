//! Resampling methods: bootstrap confidence intervals and permutation tests.
//!
//! All resampling is driven by the deterministic [`crate::rng::Rng`], so the
//! intervals reported in `EXPERIMENTS.md` are reproducible.

use crate::rng::Rng;
use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// A percentile bootstrap confidence interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BootstrapCi {
    /// Point estimate on the original sample.
    pub estimate: f64,
    /// Lower bound of the interval.
    pub lo: f64,
    /// Upper bound of the interval.
    pub hi: f64,
    /// Confidence level used (e.g. 0.95).
    pub level: f64,
    /// Number of bootstrap replicates drawn.
    pub replicates: usize,
}

/// Percentile bootstrap CI for an arbitrary statistic.
///
/// `statistic` is applied to the original sample for the point estimate and
/// to `replicates` resamples (with replacement) for the interval. The
/// statistic must be well-defined on any resample of the data.
pub fn bootstrap_ci<F>(
    data: &[f64],
    statistic: F,
    replicates: usize,
    level: f64,
    rng: &mut Rng,
) -> Result<BootstrapCi>
where
    F: Fn(&[f64]) -> f64,
{
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if replicates < 10 {
        return Err(StatsError::InvalidParameter("bootstrap needs >= 10 replicates"));
    }
    if !(0.0 < level && level < 1.0) {
        return Err(StatsError::InvalidParameter("confidence level must be in (0, 1)"));
    }
    let estimate = statistic(data);
    let mut stats = Vec::with_capacity(replicates);
    let mut resample = vec![0.0; data.len()];
    for _ in 0..replicates {
        for slot in resample.iter_mut() {
            *slot = data[rng.range(0, data.len())];
        }
        stats.push(statistic(&resample));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let alpha = (1.0 - level) / 2.0;
    let lo = crate::descriptive::quantile(&stats, alpha)?;
    let hi = crate::descriptive::quantile(&stats, 1.0 - alpha)?;
    Ok(BootstrapCi {
        estimate,
        lo,
        hi,
        level,
        replicates,
    })
}

/// Two-sided permutation test for a difference in means between two groups.
///
/// Returns the p-value: the fraction of label permutations whose absolute
/// mean difference is at least as extreme as the observed one (with the +1
/// small-sample correction so the p-value is never exactly zero).
pub fn permutation_test(a: &[f64], b: &[f64], permutations: usize, rng: &mut Rng) -> Result<f64> {
    if a.is_empty() || b.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if permutations == 0 {
        return Err(StatsError::InvalidParameter("need >= 1 permutation"));
    }
    let observed = (crate::descriptive::mean(a)? - crate::descriptive::mean(b)?).abs();
    let mut pooled: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
    let na = a.len();
    let mut extreme = 0usize;
    for _ in 0..permutations {
        rng.shuffle(&mut pooled);
        let ma: f64 = pooled[..na].iter().sum::<f64>() / na as f64;
        let mb: f64 = pooled[na..].iter().sum::<f64>() / (pooled.len() - na) as f64;
        if (ma - mb).abs() >= observed - 1e-15 {
            extreme += 1;
        }
    }
    Ok((extreme + 1) as f64 / (permutations + 1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::mean;

    #[test]
    fn ci_contains_point_estimate_for_mean() {
        let data: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let mut rng = Rng::new(1);
        let ci = bootstrap_ci(&data, |d| mean(d).unwrap(), 500, 0.95, &mut rng).unwrap();
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
        assert!((ci.estimate - 4.5).abs() < 1e-12);
        // Interval should be reasonably tight for n = 100.
        assert!(ci.hi - ci.lo < 2.0);
    }

    #[test]
    fn ci_is_deterministic_given_seed() {
        let data: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let run = |seed| {
            let mut rng = Rng::new(seed);
            bootstrap_ci(&data, |d| mean(d).unwrap(), 200, 0.9, &mut rng).unwrap()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn ci_widens_with_confidence_level() {
        let data: Vec<f64> = (0..60).map(|i| ((i * 37) % 23) as f64).collect();
        let mut rng1 = Rng::new(3);
        let mut rng2 = Rng::new(3);
        let narrow = bootstrap_ci(&data, |d| mean(d).unwrap(), 500, 0.5, &mut rng1).unwrap();
        let wide = bootstrap_ci(&data, |d| mean(d).unwrap(), 500, 0.99, &mut rng2).unwrap();
        assert!(wide.hi - wide.lo > narrow.hi - narrow.lo);
    }

    #[test]
    fn ci_rejects_bad_params() {
        let mut rng = Rng::new(1);
        assert!(bootstrap_ci(&[], |_| 0.0, 100, 0.95, &mut rng).is_err());
        assert!(bootstrap_ci(&[1.0], |_| 0.0, 5, 0.95, &mut rng).is_err());
        assert!(bootstrap_ci(&[1.0], |_| 0.0, 100, 1.5, &mut rng).is_err());
    }

    #[test]
    fn permutation_test_detects_separation() {
        let a: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..20).map(|i| i as f64 + 100.0).collect();
        let mut rng = Rng::new(5);
        let p = permutation_test(&a, &b, 500, &mut rng).unwrap();
        assert!(p < 0.01, "p = {p}");
    }

    #[test]
    fn permutation_test_null_is_large() {
        let a: Vec<f64> = (0..20).map(|i| (i % 7) as f64).collect();
        let b = a.clone();
        let mut rng = Rng::new(5);
        let p = permutation_test(&a, &b, 500, &mut rng).unwrap();
        assert!(p > 0.5, "p = {p}");
    }

    #[test]
    fn permutation_p_never_zero() {
        let a = [0.0, 0.0];
        let b = [1000.0, 1000.0];
        let mut rng = Rng::new(9);
        let p = permutation_test(&a, &b, 100, &mut rng).unwrap();
        assert!(p > 0.0);
    }
}
