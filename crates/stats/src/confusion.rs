//! Binary-classification metrics.
//!
//! Used to evaluate the positionality detector (experiment **F7** reports
//! its recall and precision) and any other classifier in the toolkit.

use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// A 2×2 confusion matrix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Predicted positive, actually positive.
    pub tp: u64,
    /// Predicted positive, actually negative.
    pub fp: u64,
    /// Predicted negative, actually positive.
    pub fn_: u64,
    /// Predicted negative, actually negative.
    pub tn: u64,
}

impl ConfusionMatrix {
    /// Empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tally one prediction.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, true) => self.fn_ += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Build from paired prediction/truth slices.
    pub fn from_pairs(predicted: &[bool], actual: &[bool]) -> Result<Self> {
        if predicted.len() != actual.len() {
            return Err(StatsError::LengthMismatch {
                left: predicted.len(),
                right: actual.len(),
            });
        }
        if predicted.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let mut m = Self::new();
        for (&p, &a) in predicted.iter().zip(actual) {
            m.record(p, a);
        }
        Ok(m)
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// Accuracy: (tp + tn) / total.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return f64::NAN;
        }
        (self.tp + self.tn) as f64 / self.total() as f64
    }

    /// Precision: tp / (tp + fp). NaN when nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            f64::NAN
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall: tp / (tp + fn). NaN when nothing is actually positive.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            f64::NAN
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// F1: harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p.is_nan() || r.is_nan() || p + r == 0.0 {
            f64::NAN
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Matthews correlation coefficient in `[−1, 1]`; NaN on degenerate
    /// marginals.
    pub fn mcc(&self) -> f64 {
        let (tp, fp, fn_, tn) = (
            self.tp as f64,
            self.fp as f64,
            self.fn_ as f64,
            self.tn as f64,
        );
        let denom = ((tp + fp) * (tp + fn_) * (tn + fp) * (tn + fn_)).sqrt();
        if denom == 0.0 {
            f64::NAN
        } else {
            (tp * tn - fp * fn_) / denom
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> ConfusionMatrix {
        // 8 TP, 2 FP, 2 FN, 8 TN.
        ConfusionMatrix {
            tp: 8,
            fp: 2,
            fn_: 2,
            tn: 8,
        }
    }

    #[test]
    fn metrics_known_values() {
        let m = matrix();
        assert_eq!(m.total(), 20);
        assert!((m.accuracy() - 0.8).abs() < 1e-12);
        assert!((m.precision() - 0.8).abs() < 1e-12);
        assert!((m.recall() - 0.8).abs() < 1e-12);
        assert!((m.f1() - 0.8).abs() < 1e-12);
        assert!((m.mcc() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn perfect_classifier() {
        let m = ConfusionMatrix {
            tp: 5,
            fp: 0,
            fn_: 0,
            tn: 5,
        };
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.f1(), 1.0);
        assert!((m.mcc() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_classifier_has_negative_mcc() {
        let m = ConfusionMatrix {
            tp: 0,
            fp: 5,
            fn_: 5,
            tn: 0,
        };
        assert!((m.mcc() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_metrics_are_nan() {
        let m = ConfusionMatrix {
            tp: 0,
            fp: 0,
            fn_: 0,
            tn: 10,
        };
        assert!(m.precision().is_nan());
        assert!(m.recall().is_nan());
        assert!(m.f1().is_nan());
        assert!(m.mcc().is_nan());
        assert_eq!(m.accuracy(), 1.0);
    }

    #[test]
    fn from_pairs_and_record_agree() {
        let predicted = [true, true, false, false, true];
        let actual = [true, false, false, true, true];
        let m = ConfusionMatrix::from_pairs(&predicted, &actual).unwrap();
        assert_eq!(m.tp, 2);
        assert_eq!(m.fp, 1);
        assert_eq!(m.fn_, 1);
        assert_eq!(m.tn, 1);
    }

    #[test]
    fn from_pairs_validation() {
        assert!(ConfusionMatrix::from_pairs(&[true], &[]).is_err());
        assert!(ConfusionMatrix::from_pairs(&[], &[]).is_err());
    }
}
