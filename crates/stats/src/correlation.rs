//! Correlation measures: Pearson, Spearman, Kendall.

use crate::{Result, StatsError};

fn check_pair(x: &[f64], y: &[f64]) -> Result<()> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    if x.len() < 2 {
        return Err(StatsError::InvalidParameter("correlation needs >= 2 points"));
    }
    Ok(())
}

/// Pearson product-moment correlation coefficient in `[-1, 1]`.
/// Errors when either variable has zero variance.
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64> {
    check_pair(x, y)?;
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        let dx = xi - mx;
        let dy = yi - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return Err(StatsError::Degenerate("zero variance in correlation input"));
    }
    Ok((sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0))
}

/// Assign midranks (average rank for ties) to a sample; ranks start at 1.
pub fn midranks(data: &[f64]) -> Vec<f64> {
    let n = data.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| data[a].partial_cmp(&data[b]).unwrap_or(std::cmp::Ordering::Equal));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && data[idx[j + 1]] == data[idx[i]] {
            j += 1;
        }
        let midrank = (i + j + 2) as f64 / 2.0;
        for &k in idx.iter().take(j + 1).skip(i) {
            ranks[k] = midrank;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman rank correlation: Pearson correlation of midranks.
pub fn spearman(x: &[f64], y: &[f64]) -> Result<f64> {
    check_pair(x, y)?;
    pearson(&midranks(x), &midranks(y))
}

/// Kendall's tau-b (tie-corrected), computed by the O(n²) pair scan — the
/// humnet samples are small enough that the simplicity is worth it.
pub fn kendall_tau(x: &[f64], y: &[f64]) -> Result<f64> {
    check_pair(x, y)?;
    let n = x.len();
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_x = 0i64;
    let mut ties_y = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = x[i] - x[j];
            let dy = y[i] - y[j];
            if dx == 0.0 && dy == 0.0 {
                // tie in both: counted in both correction terms
                ties_x += 1;
                ties_y += 1;
            } else if dx == 0.0 {
                ties_x += 1;
            } else if dy == 0.0 {
                ties_y += 1;
            } else if dx * dy > 0.0 {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as f64;
    let denom = ((n0 - ties_x as f64) * (n0 - ties_y as f64)).sqrt();
    if denom <= 0.0 {
        return Err(StatsError::Degenerate("all pairs tied"));
    }
    Ok(((concordant - discordant) as f64 / denom).clamp(-1.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_linear() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_uncorrelated_orthogonal() {
        let x = [1.0, -1.0, 1.0, -1.0];
        let y = [1.0, 1.0, -1.0, -1.0];
        assert!(pearson(&x, &y).unwrap().abs() < 1e-12);
    }

    #[test]
    fn pearson_rejects_constant() {
        assert!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn midranks_with_ties() {
        let r = midranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|&v: &f64| v.exp()).collect();
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_known_value() {
        // Simple reversal of one pair.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 2.0, 3.0, 5.0, 4.0];
        let rho = spearman(&x, &y).unwrap();
        // d² = [0,0,0,1,1] sum 2; rho = 1 - 6*2/(5*24) = 0.9
        assert!((rho - 0.9).abs() < 1e-12);
    }

    #[test]
    fn spearman_with_ties_reference() {
        // Midranks: x -> [1, 2.5, 2.5, 4]; Pearson over ranks = 0.9486833.
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 3.0, 2.0, 4.0];
        let rho = spearman(&x, &y).unwrap();
        assert!((rho - 0.948_683_298_050_513_8).abs() < 1e-12, "rho = {rho}");
    }

    #[test]
    fn kendall_perfect_and_reversed() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [10.0, 20.0, 30.0, 40.0];
        assert!((kendall_tau(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let rev = [40.0, 30.0, 20.0, 10.0];
        assert!((kendall_tau(&x, &rev).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_with_ties_stays_bounded() {
        let x = [1.0, 1.0, 2.0, 3.0];
        let y = [1.0, 2.0, 2.0, 3.0];
        let t = kendall_tau(&x, &y).unwrap();
        assert!((-1.0..=1.0).contains(&t));
        assert!(t > 0.0);
    }

    #[test]
    fn length_mismatch_rejected() {
        assert!(pearson(&[1.0], &[1.0, 2.0]).is_err());
        assert!(spearman(&[1.0, 2.0, 3.0], &[1.0]).is_err());
    }
}
