//! Special functions backing the hypothesis tests.
//!
//! Implements the classical numerical recipes: log-gamma (Lanczos),
//! regularized incomplete gamma `P(a, x)` / `Q(a, x)` (series + continued
//! fraction), regularized incomplete beta `I_x(a, b)` (Lentz's continued
//! fraction), the error function, and the standard normal and Student t
//! CDFs built on top of them.
//!
//! Accuracy targets are ~1e-10 relative over the ranges the tests exercise,
//! which is far tighter than any p-value consumer in humnet needs.

/// Natural log of the gamma function, via the Lanczos approximation (g = 7,
/// n = 9 coefficients). Valid for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7, as published (extra digits are
    // rounded by the compiler, not an error).
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + 7.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// Regularized lower incomplete gamma function `P(a, x)`, `a > 0`, `x ≥ 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p domain: a > 0, x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_q domain: a > 0, x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series expansion of P(a, x), converges fast for x < a + 1.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction expansion of Q(a, x) (modified Lentz), for x ≥ a + 1.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0`,
/// `x ∈ [0, 1]`, via the symmetric continued fraction.
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta_inc domain: a, b > 0");
    assert!((0.0..=1.0).contains(&x), "beta_inc domain: x in [0, 1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front =
        ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Lentz continued fraction for the incomplete beta.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..500 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h
}

/// Error function, via the identity `erf(x) = P(1/2, x²)` for `x ≥ 0`.
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        -erf(-x)
    } else if x == 0.0 {
        0.0
    } else {
        gamma_p(0.5, x * x)
    }
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Student t cumulative distribution function with `nu` degrees of freedom.
pub fn student_t_cdf(t: f64, nu: f64) -> f64 {
    assert!(nu > 0.0, "student_t_cdf requires nu > 0");
    if t == 0.0 {
        return 0.5;
    }
    let x = nu / (nu + t * t);
    let tail = 0.5 * beta_inc(nu / 2.0, 0.5, x);
    if t > 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

/// Chi-square survival function (upper tail): `Pr(X ≥ x)` with `k` degrees
/// of freedom.
pub fn chi_square_sf(x: f64, k: f64) -> f64 {
    assert!(k > 0.0 && x >= 0.0, "chi_square_sf domain: k > 0, x >= 0");
    gamma_q(k / 2.0, x / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_integers() {
        // Γ(n) = (n-1)!
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), 24.0f64.ln(), 1e-10);
        close(ln_gamma(10.0), 362_880.0f64.ln(), 1e-10);
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(π)
        close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-10);
    }

    #[test]
    fn gamma_p_q_sum_to_one() {
        for &(a, x) in &[(0.5, 0.3), (2.0, 1.0), (5.0, 10.0), (10.0, 3.0)] {
            close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12);
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 - e^{-x}
        for &x in &[0.1, 1.0, 3.0, 10.0] {
            close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
    }

    #[test]
    fn erf_known_values() {
        close(erf(0.0), 0.0, 1e-15);
        close(erf(1.0), 0.842_700_792_949_714_9, 1e-10);
        close(erf(2.0), 0.995_322_265_018_952_7, 1e-10);
        close(erf(-1.0), -0.842_700_792_949_714_9, 1e-10);
    }

    #[test]
    fn normal_cdf_known_values() {
        close(normal_cdf(0.0), 0.5, 1e-15);
        close(normal_cdf(1.96), 0.975_002_104_851_780_2, 1e-9);
        close(normal_cdf(-1.96), 0.024_997_895_148_219_8, 1e-9);
        close(normal_cdf(3.0), 0.998_650_101_968_369_9, 1e-9);
    }

    #[test]
    fn beta_inc_symmetry() {
        // I_x(a, b) = 1 − I_{1−x}(b, a)
        for &(a, b, x) in &[(2.0, 3.0, 0.4), (0.5, 0.5, 0.7), (5.0, 1.0, 0.2)] {
            close(beta_inc(a, b, x), 1.0 - beta_inc(b, a, 1.0 - x), 1e-12);
        }
    }

    #[test]
    fn beta_inc_uniform_special_case() {
        // I_x(1, 1) = x
        for &x in &[0.0, 0.25, 0.5, 0.99, 1.0] {
            close(beta_inc(1.0, 1.0, x), x, 1e-12);
        }
    }

    #[test]
    fn student_t_matches_tables() {
        // Two-sided 95% critical value for nu = 10 is 2.228.
        let p = 2.0 * (1.0 - student_t_cdf(2.228, 10.0));
        close(p, 0.05, 5e-4);
        // t -> infinity limit.
        assert!(student_t_cdf(50.0, 5.0) > 0.999_99);
        close(student_t_cdf(0.0, 7.0), 0.5, 1e-15);
    }

    #[test]
    fn student_t_approaches_normal_for_large_nu() {
        close(student_t_cdf(1.96, 1e6), normal_cdf(1.96), 1e-5);
    }

    #[test]
    fn chi_square_sf_known_values() {
        // Critical value 3.841 at k=1 gives p = 0.05.
        close(chi_square_sf(3.841, 1.0), 0.05, 5e-4);
        // Critical value 5.991 at k=2 gives p = 0.05; also SF(x; 2) = e^{-x/2}.
        close(chi_square_sf(5.991, 2.0), (-5.991f64 / 2.0).exp(), 1e-12);
        close(chi_square_sf(5.991, 2.0), 0.05, 5e-4);
    }
}
