//! Deterministic pseudo-random number generation.
//!
//! `humnet` experiments must be reproducible bit-for-bit from a seed, on any
//! platform, forever. Rather than depending on an external RNG crate whose
//! stream may change across versions, this module implements two small,
//! well-known generators:
//!
//! * [`SplitMix64`] — used for seeding and for cheap hash-like mixing;
//! * [`Rng`] — `xoshiro256**`, the general-purpose generator used by every
//!   humnet simulator.
//!
//! On top of the raw stream, [`Rng`] provides the distributions the
//! simulators need: uniform ranges, Bernoulli, normal (Box–Muller),
//! exponential, Poisson, Zipf, Pareto, log-normal, weighted choice,
//! shuffling, and sampling without replacement.

/// SplitMix64: a tiny, fast 64-bit generator used for seed expansion.
///
/// Reference: Steele, Lea & Flood, "Fast Splittable Pseudorandom Number
/// Generators", OOPSLA 2014. The constants below are the canonical ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a new generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Produce the next 64-bit output and advance the state.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The general-purpose humnet generator: `xoshiro256**` seeded via SplitMix64.
///
/// All humnet simulators take a `u64` seed and construct one of these; the
/// same seed always produces the same simulation trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second output of the last Box–Muller draw.
    gauss_spare: Option<f64>,
}

impl Rng {
    /// Create a generator from a seed. Any seed (including zero) is valid:
    /// the state is expanded through SplitMix64, which never yields the
    /// all-zero xoshiro state.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Rng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
            gauss_spare: None,
        }
    }

    /// Derive an independent child generator, e.g. one per simulation agent.
    ///
    /// The child stream is decorrelated from the parent by mixing the parent's
    /// next output with the `stream` label through SplitMix64.
    pub fn fork(&mut self, stream: u64) -> Rng {
        let base = self.next_u64();
        Rng::new(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. Uses Lemire-style rejection to avoid
    /// modulo bias. `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a nonzero bound");
        // Widening-multiply rejection sampling.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)` (`usize` convenience). Panics if `lo >= hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "range() requires lo < hi");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal deviate via the Box–Muller transform (polar-free form,
    /// caching the spare value).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Avoid ln(0) by drawing u1 from (0, 1].
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.gaussian()
    }

    /// Log-normal deviate with the given underlying normal parameters.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Exponential deviate with the given rate `lambda` (mean `1 / lambda`).
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "exponential() requires a positive rate");
        -(1.0 - self.next_f64()).ln() / lambda
    }

    /// Poisson deviate. Uses Knuth's product method for small means and a
    /// normal approximation (rounded, clamped at zero) for large means.
    pub fn poisson(&mut self, mean: f64) -> u64 {
        assert!(mean >= 0.0, "poisson() requires a non-negative mean");
        if mean == 0.0 {
            return 0;
        }
        if mean < 30.0 {
            let limit = (-mean).exp();
            let mut product = self.next_f64();
            let mut count = 0u64;
            while product > limit {
                count += 1;
                product *= self.next_f64();
            }
            count
        } else {
            let z = self.gaussian();
            let x = mean + mean.sqrt() * z;
            if x < 0.0 {
                0
            } else {
                x.round() as u64
            }
        }
    }

    /// Zipf-distributed rank in `[1, n]` with exponent `s > 0`, via inverse
    /// CDF over precomputed weights is avoided; instead uses rejection-free
    /// cumulative search which is O(n) worst case but exact. For the corpus
    /// sizes humnet uses (n ≤ 10^5) this is more than fast enough and keeps
    /// the stream consumption deterministic (exactly one draw per sample).
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        assert!(n > 0, "zipf() requires n > 0");
        assert!(s > 0.0, "zipf() requires a positive exponent");
        // Normalization constant.
        let h: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
        let target = self.next_f64() * h;
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            if acc >= target {
                return k;
            }
        }
        n
    }

    /// Pareto (type I) deviate with scale `xm > 0` and shape `alpha > 0`.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        assert!(xm > 0.0 && alpha > 0.0, "pareto() requires positive parameters");
        xm / (1.0 - self.next_f64()).powf(1.0 / alpha)
    }

    /// Geometric deviate: number of failures before the first success with
    /// success probability `p` in `(0, 1]`.
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "geometric() requires p in (0, 1]");
        if p >= 1.0 {
            return 0;
        }
        let u = 1.0 - self.next_f64();
        (u.ln() / (1.0 - p).ln()).floor() as u64
    }

    /// Pick a uniformly random element of a nonempty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose() requires a nonempty slice");
        &items[self.range(0, items.len())]
    }

    /// Pick an index according to nonnegative weights (at least one must be
    /// positive). Runs in O(n).
    pub fn choose_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "choose_weighted() requires positive finite total weight"
        );
        let target = self.next_f64() * total;
        let mut acc = 0.0;
        let mut last_positive = 0;
        for (i, &w) in weights.iter().enumerate() {
            if w > 0.0 {
                acc += w;
                last_positive = i;
                if acc >= target {
                    return i;
                }
            }
        }
        last_positive
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range(0, i + 1);
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` without replacement
    /// (Floyd's algorithm; output order is the insertion order of the
    /// algorithm, not sorted). Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "sample_indices() requires k <= n");
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.range(0, j + 1);
            if chosen.contains(&t) {
                chosen.push(j);
            } else {
                chosen.push(t);
            }
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_sequence_is_stable() {
        let mut sm = SplitMix64::new(42);
        let a = sm.next_u64();
        let b = sm.next_u64();
        let mut sm2 = SplitMix64::new(42);
        assert_eq!(a, sm2.next_u64());
        assert_eq!(b, sm2.next_u64());
        assert_ne!(a, b);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds should diverge");
    }

    #[test]
    fn forked_streams_are_decorrelated() {
        let mut parent = Rng::new(99);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut rng = Rng::new(11);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[rng.below(7) as usize] += 1;
        }
        for &c in &counts {
            // Each bucket expects 10_000; allow 5% deviation.
            assert!((9_500..10_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = Rng::new(5);
        for _ in 0..1_000 {
            let x = rng.range(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Rng::new(17);
        let n = 200_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let z = rng.gaussian();
            sum += z;
            sumsq += z * z;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Rng::new(23);
        let lambda = 2.5;
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(lambda)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / lambda).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn poisson_small_and_large_mean() {
        let mut rng = Rng::new(31);
        let n = 50_000;
        for &m in &[0.5, 4.0, 80.0] {
            let mean: f64 = (0..n).map(|_| rng.poisson(m) as f64).sum::<f64>() / n as f64;
            assert!((mean - m).abs() / m.max(1.0) < 0.05, "target {m} got {mean}");
        }
    }

    #[test]
    fn poisson_zero_mean_is_zero() {
        let mut rng = Rng::new(1);
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let mut rng = Rng::new(41);
        let n = 20_000;
        let mut counts = vec![0u32; 51];
        for _ in 0..n {
            counts[rng.zipf(50, 1.2)] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[10]);
        assert_eq!(counts[0], 0, "zipf ranks start at 1");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = Rng::new(43);
        for _ in 0..1_000 {
            assert!(rng.pareto(3.0, 2.0) >= 3.0);
        }
    }

    #[test]
    fn geometric_mean_matches() {
        let mut rng = Rng::new(47);
        let p = 0.25;
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.geometric(p) as f64).sum::<f64>() / n as f64;
        let expected = (1.0 - p) / p;
        assert!((mean - expected).abs() < 0.05, "mean {mean} expected {expected}");
    }

    #[test]
    fn choose_weighted_follows_weights() {
        let mut rng = Rng::new(53);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[rng.choose_weighted(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(59);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = Rng::new(61);
        for _ in 0..100 {
            let sample = rng.sample_indices(50, 10);
            assert_eq!(sample.len(), 10);
            let mut s = sample.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 10, "sample must be distinct");
            assert!(sample.iter().all(|&i| i < 50));
        }
    }

    #[test]
    fn sample_indices_full_population() {
        let mut rng = Rng::new(67);
        let mut sample = rng.sample_indices(10, 10);
        sample.sort_unstable();
        assert_eq!(sample, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn log_normal_is_positive() {
        let mut rng = Rng::new(71);
        for _ in 0..1_000 {
            assert!(rng.log_normal(0.0, 1.0) > 0.0);
        }
    }
}
