//! Theme extraction and quote selection.
//!
//! After coding, analysts group related codes into themes. This module
//! derives themes mechanically from code co-occurrence (codes that mark the
//! same turns belong together), and selects representative quotes per code
//! the way §5.2 recommends ("often with direct quotes if available").

use crate::codebook::Codebook;
use crate::coding::CodingSession;
use crate::transcript::Transcript;
use crate::{QualError, Result};
use humnet_graph::{label_propagation, Graph};
use humnet_stats::Rng;

/// A theme: a named cluster of codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Theme {
    /// Theme label (derived from its most frequent member code).
    pub label: String,
    /// Member code ids.
    pub codes: Vec<usize>,
    /// Number of coded segments supporting the theme.
    pub support: usize,
}

/// Cluster codes into themes by co-occurrence across coded turns.
///
/// Two codes co-occur when (possibly different) coders assign them to the
/// same `(transcript, turn)` unit. The co-occurrence graph is clustered by
/// label propagation, seeded for determinism. Codes that never co-occur
/// with others become singleton themes.
pub fn extract_themes(
    codebook: &Codebook,
    sessions: &[CodingSession],
    seed: u64,
) -> Result<Vec<Theme>> {
    if sessions.is_empty() {
        return Err(QualError::EmptyInput);
    }
    let n = codebook.len();
    if n == 0 {
        return Err(QualError::EmptyInput);
    }
    // Collect per-unit code sets.
    use std::collections::{HashMap, HashSet};
    let mut unit_codes: HashMap<(String, usize), HashSet<usize>> = HashMap::new();
    let mut support = vec![0usize; n];
    for s in sessions {
        for seg in &s.segments {
            for turn in seg.start_turn..seg.end_turn {
                unit_codes
                    .entry((seg.transcript.clone(), turn))
                    .or_default()
                    .insert(seg.code);
            }
            if seg.code < n {
                support[seg.code] += 1;
            }
        }
    }
    // Build weighted co-occurrence graph.
    let mut g = Graph::undirected(n);
    let mut weights: HashMap<(usize, usize), f64> = HashMap::new();
    for codes in unit_codes.values() {
        let list: Vec<usize> = {
            let mut v: Vec<usize> = codes.iter().copied().collect();
            v.sort_unstable();
            v
        };
        for i in 0..list.len() {
            for j in (i + 1)..list.len() {
                *weights.entry((list[i], list[j])).or_insert(0.0) += 1.0;
            }
        }
    }
    let mut pairs: Vec<((usize, usize), f64)> = weights.into_iter().collect();
    pairs.sort_by_key(|&((a, b), _)| (a, b));
    for ((a, b), w) in pairs {
        g.add_weighted_edge(a, b, w)
            .map_err(|_| QualError::InvalidParameter("bad code id in segments"))?;
    }
    let mut rng = Rng::new(seed);
    let partition = label_propagation(&g, &mut rng, 50)
        .map_err(|_| QualError::InvalidParameter("label propagation failed"))?;
    // Build themes.
    let mut themes: Vec<Theme> = Vec::new();
    for c in 0..partition.community_count() {
        let members = partition.members(c);
        // Label by the member code with the highest support.
        let &rep = members
            .iter()
            .max_by_key(|&&m| (support[m], std::cmp::Reverse(m)))
            .expect("nonempty community");
        let label = codebook
            .get(rep)
            .map(|code| code.name.clone())
            .unwrap_or_else(|| format!("theme-{c}"));
        let total: usize = members.iter().map(|&m| support[m]).sum();
        themes.push(Theme {
            label,
            codes: members,
            support: total,
        });
    }
    // Most supported themes first.
    themes.sort_by(|a, b| b.support.cmp(&a.support).then_with(|| a.label.cmp(&b.label)));
    Ok(themes)
}

/// Pick up to `k` representative quotes for a code: the longest participant
/// turns covered by segments carrying that code, across all sessions.
pub fn representative_quotes<'a>(
    transcripts: &'a [Transcript],
    sessions: &[CodingSession],
    code: usize,
    k: usize,
) -> Vec<&'a str> {
    let mut candidates: Vec<&'a str> = Vec::new();
    for s in sessions {
        for seg in &s.segments {
            if seg.code != code {
                continue;
            }
            if let Some(t) = transcripts.iter().find(|t| t.id == seg.transcript) {
                for turn in seg.start_turn..seg.end_turn.min(t.turns.len()) {
                    let text = t.turns[turn].text.as_str();
                    if !candidates.contains(&text) {
                        candidates.push(text);
                    }
                }
            }
        }
    }
    candidates.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
    candidates.truncate(k);
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebook::Codebook;
    use crate::coding::CodingSession;
    use crate::transcript::Transcript;

    fn setup() -> (Codebook, Vec<Transcript>, Vec<CodingSession>) {
        let mut cb = Codebook::new();
        cb.add("labor", "d").unwrap(); // 0
        cb.add("repair", "d").unwrap(); // 1
        cb.add("funding", "d").unwrap(); // 2
        cb.add("dues", "d").unwrap(); // 3
        let mut t = Transcript::new("T1", "site visit");
        for i in 0..8 {
            t.participant("P", format!("turn number {i} about the network and its upkeep"));
        }
        // labor+repair co-occur on turns 0-3; funding+dues on turns 4-7.
        let mut a = CodingSession::new("A");
        a.apply(&cb, "T1", 0, 4, 0).unwrap();
        a.apply(&cb, "T1", 4, 8, 2).unwrap();
        let mut b = CodingSession::new("B");
        b.apply(&cb, "T1", 0, 4, 1).unwrap();
        b.apply(&cb, "T1", 4, 8, 3).unwrap();
        (cb, vec![t], vec![a, b])
    }

    #[test]
    fn themes_cluster_cooccurring_codes() {
        let (cb, _t, sessions) = setup();
        let themes = extract_themes(&cb, &sessions, 7).unwrap();
        // Expect two themes of two codes each.
        assert_eq!(themes.len(), 2, "themes: {themes:?}");
        for th in &themes {
            assert_eq!(th.codes.len(), 2);
        }
        let find = |code: usize| themes.iter().position(|t| t.codes.contains(&code)).unwrap();
        assert_eq!(find(0), find(1));
        assert_eq!(find(2), find(3));
        assert_ne!(find(0), find(2));
    }

    #[test]
    fn themes_deterministic() {
        let (cb, _t, sessions) = setup();
        let t1 = extract_themes(&cb, &sessions, 7).unwrap();
        let t2 = extract_themes(&cb, &sessions, 7).unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn themes_empty_inputs_error() {
        let cb = Codebook::new();
        assert!(extract_themes(&cb, &[], 1).is_err());
        let (cb2, _t, sessions) = setup();
        let _ = cb2;
        assert!(extract_themes(&Codebook::new(), &sessions, 1).is_err());
    }

    #[test]
    fn singleton_codes_get_own_theme() {
        let mut cb = Codebook::new();
        cb.add("only", "d").unwrap();
        let mut s = CodingSession::new("A");
        s.apply(&cb, "T1", 0, 1, 0).unwrap();
        let themes = extract_themes(&cb, &[s], 1).unwrap();
        assert_eq!(themes.len(), 1);
        assert_eq!(themes[0].label, "only");
        assert_eq!(themes[0].support, 1);
    }

    #[test]
    fn quotes_come_from_coded_turns() {
        let (_cb, transcripts, sessions) = setup();
        let quotes = representative_quotes(&transcripts, &sessions, 0, 2);
        assert_eq!(quotes.len(), 2);
        for q in &quotes {
            assert!(q.contains("about the network"));
            // Code 0 covers turns 0..4.
            let n: usize = q
                .split_whitespace()
                .nth(2)
                .unwrap()
                .parse()
                .unwrap();
            assert!(n < 4, "quote from uncoded turn: {q}");
        }
    }

    #[test]
    fn quotes_respect_k_and_missing_code() {
        let (_cb, transcripts, sessions) = setup();
        assert!(representative_quotes(&transcripts, &sessions, 99, 3).is_empty());
        assert_eq!(representative_quotes(&transcripts, &sessions, 0, 1).len(), 1);
    }
}
