//! Interview and conversation transcripts.

use serde::{Deserialize, Serialize};

/// Who is speaking in an utterance.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Speaker {
    /// The researcher/interviewer.
    Researcher,
    /// A participant, identified by a study-local label (e.g. "P3").
    Participant(String),
}

/// One speaker turn.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Utterance {
    /// Who spoke.
    pub speaker: Speaker,
    /// What was said.
    pub text: String,
}

/// A transcript: an ordered sequence of utterances plus metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transcript {
    /// Study-local identifier.
    pub id: String,
    /// Free-form setting description ("site visit", "IXP operator call").
    pub setting: String,
    /// The utterances, in order.
    pub turns: Vec<Utterance>,
}

impl Transcript {
    /// Create an empty transcript.
    pub fn new(id: impl Into<String>, setting: impl Into<String>) -> Self {
        Transcript {
            id: id.into(),
            setting: setting.into(),
            turns: Vec::new(),
        }
    }

    /// Append a researcher turn.
    pub fn researcher(&mut self, text: impl Into<String>) -> &mut Self {
        self.turns.push(Utterance {
            speaker: Speaker::Researcher,
            text: text.into(),
        });
        self
    }

    /// Append a participant turn.
    pub fn participant(&mut self, label: impl Into<String>, text: impl Into<String>) -> &mut Self {
        self.turns.push(Utterance {
            speaker: Speaker::Participant(label.into()),
            text: text.into(),
        });
        self
    }

    /// Number of turns.
    pub fn len(&self) -> usize {
        self.turns.len()
    }

    /// True when the transcript has no turns.
    pub fn is_empty(&self) -> bool {
        self.turns.is_empty()
    }

    /// Distinct participant labels, in order of first appearance.
    pub fn participants(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for turn in &self.turns {
            if let Speaker::Participant(label) = &turn.speaker {
                if !out.contains(&label.as_str()) {
                    out.push(label);
                }
            }
        }
        out
    }

    /// Produce an anonymized copy: participant labels are replaced with
    /// `P1, P2, ...` in order of first appearance, and every occurrence of
    /// each name in `real_names` is replaced with `[redacted]` in the turn
    /// text (case-insensitive whole-word-ish matching on the raw string).
    pub fn anonymize(&self, real_names: &[&str]) -> Transcript {
        let participants = self.participants();
        let pseudonym = |label: &str| -> String {
            let idx = participants.iter().position(|&p| p == label).unwrap_or(0);
            format!("P{}", idx + 1)
        };
        let redact = |text: &str| -> String {
            let mut out = text.to_owned();
            for name in real_names {
                if name.is_empty() {
                    continue;
                }
                // Case-insensitive replace.
                let lower_out = out.to_lowercase();
                let lower_name = name.to_lowercase();
                let mut result = String::with_capacity(out.len());
                let mut pos = 0;
                while let Some(found) = lower_out[pos..].find(&lower_name) {
                    let at = pos + found;
                    result.push_str(&out[pos..at]);
                    result.push_str("[redacted]");
                    pos = at + lower_name.len();
                }
                result.push_str(&out[pos..]);
                out = result;
            }
            out
        };
        Transcript {
            id: self.id.clone(),
            setting: self.setting.clone(),
            turns: self
                .turns
                .iter()
                .map(|t| Utterance {
                    speaker: match &t.speaker {
                        Speaker::Researcher => Speaker::Researcher,
                        Speaker::Participant(label) => Speaker::Participant(pseudonym(label)),
                    },
                    text: redact(&t.text),
                })
                .collect(),
        }
    }

    /// Concatenated participant text (used for tokenization / coding).
    pub fn participant_text(&self) -> String {
        self.turns
            .iter()
            .filter_map(|t| match t.speaker {
                Speaker::Participant(_) => Some(t.text.as_str()),
                Speaker::Researcher => None,
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Transcript {
        let mut t = Transcript::new("T1", "community network site visit");
        t.researcher("How do you maintain the tower?")
            .participant("Maria", "Maria climbs it monthly. Jose helps with the radios.")
            .researcher("Who pays for parts?")
            .participant("Jose", "The cooperative collects dues.");
        t
    }

    #[test]
    fn builder_accumulates_turns() {
        let t = sample();
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.participants(), vec!["Maria", "Jose"]);
    }

    #[test]
    fn anonymize_replaces_labels_in_order() {
        let t = sample().anonymize(&[]);
        assert_eq!(t.participants(), vec!["P1", "P2"]);
        // Researcher turns untouched.
        assert_eq!(t.turns[0].speaker, Speaker::Researcher);
    }

    #[test]
    fn anonymize_redacts_names_case_insensitive() {
        let t = sample().anonymize(&["maria", "Jose"]);
        for turn in &t.turns {
            assert!(
                !turn.text.to_lowercase().contains("maria"),
                "text leaked: {}",
                turn.text
            );
            assert!(!turn.text.to_lowercase().contains("jose"));
        }
        assert!(t.turns[1].text.contains("[redacted]"));
    }

    #[test]
    fn anonymize_preserves_surrounding_text() {
        let t = sample().anonymize(&["Maria"]);
        assert!(t.turns[1].text.contains("climbs it monthly"));
    }

    #[test]
    fn anonymize_handles_empty_name_list_entries() {
        let t = sample().anonymize(&[""]);
        assert_eq!(t.turns[1].text, sample().turns[1].text);
    }

    #[test]
    fn participant_text_excludes_researcher() {
        let text = sample().participant_text();
        assert!(text.contains("cooperative"));
        assert!(!text.contains("How do you"));
    }

    #[test]
    fn empty_transcript() {
        let t = Transcript::new("T0", "none");
        assert!(t.is_empty());
        assert!(t.participants().is_empty());
        assert_eq!(t.participant_text(), "");
    }
}
