//! Simulated coding studies.
//!
//! **Substitution note (DESIGN.md §1).** We have no human coders, so
//! experiment **T2** simulates them: transcripts carry a latent ground-truth
//! code per turn; each simulated coder recovers the true code with a
//! per-coder accuracy that *rises with codebook refinement rounds* (crisper
//! definitions → fewer misreadings), and otherwise errs to a random other
//! code. This reproduces the universally observed dynamic that agreement
//! statistics climb across refinement rounds and saturate below 1.

use crate::reliability::{fleiss_kappa, krippendorff_alpha, percent_agreement};
use crate::{QualError, Result};
use humnet_resilience::{FaultHook, FaultKind, NoFaults};
use humnet_stats::Rng;
use humnet_telemetry::{Event, Telemetry};
use serde::{Deserialize, Serialize};

/// One simulated coder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoderProfile {
    /// Coder label.
    pub name: String,
    /// Probability of assigning the true code at round 0.
    pub base_accuracy: f64,
    /// Asymptotic accuracy as the codebook is refined.
    pub max_accuracy: f64,
    /// Probability of skipping (not coding) a unit.
    pub skip_rate: f64,
}

impl CoderProfile {
    /// Effective accuracy after `round` refinement rounds: an exponential
    /// approach from base to max with time constant `tau` rounds.
    pub fn accuracy_at(&self, round: u32, tau: f64) -> f64 {
        let f = 1.0 - (-(round as f64) / tau).exp();
        (self.base_accuracy + (self.max_accuracy - self.base_accuracy) * f).clamp(0.0, 1.0)
    }
}

/// Configuration of a simulated coding study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Number of units (turns) to code.
    pub units: usize,
    /// Number of codes in the codebook.
    pub codes: usize,
    /// The coder pool.
    pub coders: Vec<CoderProfile>,
    /// Refinement time-constant (rounds to reach ~63% of the gain).
    pub tau: f64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            units: 200,
            codes: 6,
            coders: vec![
                CoderProfile {
                    name: "coder-A".into(),
                    base_accuracy: 0.55,
                    max_accuracy: 0.93,
                    skip_rate: 0.02,
                },
                CoderProfile {
                    name: "coder-B".into(),
                    base_accuracy: 0.50,
                    max_accuracy: 0.90,
                    skip_rate: 0.03,
                },
                CoderProfile {
                    name: "coder-C".into(),
                    base_accuracy: 0.60,
                    max_accuracy: 0.95,
                    skip_rate: 0.01,
                },
            ],
            tau: 1.5,
        }
    }
}

impl StudyConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.units == 0 {
            return Err(QualError::InvalidParameter("units must be >= 1"));
        }
        if self.codes < 2 {
            return Err(QualError::InvalidParameter("need >= 2 codes"));
        }
        if self.coders.len() < 2 {
            return Err(QualError::InvalidParameter("need >= 2 coders"));
        }
        for c in &self.coders {
            if !(0.0..=1.0).contains(&c.base_accuracy)
                || !(0.0..=1.0).contains(&c.max_accuracy)
                || !(0.0..=1.0).contains(&c.skip_rate)
            {
                return Err(QualError::InvalidParameter("coder probabilities must be in [0,1]"));
            }
            if c.max_accuracy < c.base_accuracy {
                return Err(QualError::InvalidParameter("max_accuracy < base_accuracy"));
            }
        }
        if self.tau <= 0.0 {
            return Err(QualError::InvalidParameter("tau must be positive"));
        }
        Ok(())
    }
}

/// Reliability metrics for one refinement round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundReliability {
    /// Refinement round (0 = initial codebook).
    pub round: u32,
    /// Mean pairwise percent agreement (complete-data pairs only).
    pub percent_agreement: f64,
    /// Fleiss' κ (computed on units every coder labelled).
    pub fleiss_kappa: f64,
    /// Krippendorff's α (all units, missing data handled).
    pub krippendorff_alpha: f64,
}

/// A running simulated study with fixed ground truth.
#[derive(Debug, Clone)]
pub struct SimulatedStudy {
    config: StudyConfig,
    ground_truth: Vec<usize>,
    rng: Rng,
}

impl SimulatedStudy {
    /// Create a study: ground-truth codes are drawn uniformly per unit.
    pub fn new(config: StudyConfig, seed: u64) -> Result<Self> {
        config.validate()?;
        let mut rng = Rng::new(seed);
        let ground_truth = (0..config.units)
            .map(|_| rng.range(0, config.codes))
            .collect();
        Ok(SimulatedStudy {
            config,
            ground_truth,
            rng,
        })
    }

    /// The latent true codes.
    pub fn ground_truth(&self) -> &[usize] {
        &self.ground_truth
    }

    /// Simulate one coding pass at the given refinement round. Returns one
    /// label vector per coder (`None` = skipped unit).
    pub fn code_round(&mut self, round: u32) -> Vec<Vec<Option<usize>>> {
        self.code_round_with_faults(round, &mut NoFaults)
    }

    /// Simulate one coding pass under a fault hook. For each coder the hook
    /// is asked about [`FaultKind::CoderAttrition`]: when it fires, that
    /// coder is mostly absent this round — their skip rate is raised toward
    /// 1 in proportion to the severity. Probabilities change but the draw
    /// *pattern* does not, so [`NoFaults`] reproduces
    /// [`SimulatedStudy::code_round`] exactly.
    pub fn code_round_with_faults(
        &mut self,
        round: u32,
        hook: &mut dyn FaultHook,
    ) -> Vec<Vec<Option<usize>>> {
        let tau = self.config.tau;
        let codes = self.config.codes;
        let truth = self.ground_truth.clone();
        let profiles = self.config.coders.clone();
        let coder_count = profiles.len() as u64;
        profiles
            .iter()
            .enumerate()
            .map(|(coder_idx, coder)| {
                let acc = coder.accuracy_at(round, tau);
                // One attrition decision per (round, coder) pair.
                let step = u64::from(round) * coder_count + coder_idx as u64;
                let skip_rate = match hook.inject(step, FaultKind::CoderAttrition) {
                    Some(severity) => coder.skip_rate + severity * (1.0 - coder.skip_rate),
                    None => coder.skip_rate,
                };
                truth
                    .iter()
                    .map(|&t| {
                        if self.rng.chance(skip_rate) {
                            None
                        } else if self.rng.chance(acc) {
                            Some(t)
                        } else {
                            // Err to a uniformly random *other* code.
                            let mut wrong = self.rng.range(0, codes - 1);
                            if wrong >= t {
                                wrong += 1;
                            }
                            Some(wrong)
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Run `rounds` refinement rounds, returning the reliability trajectory.
    pub fn reliability_trajectory(&mut self, rounds: u32) -> Result<Vec<RoundReliability>> {
        self.reliability_trajectory_with_faults(rounds, &mut NoFaults)
    }

    /// Run `rounds` refinement rounds under a fault hook (see
    /// [`SimulatedStudy::code_round_with_faults`] for the fault semantics).
    pub fn reliability_trajectory_with_faults(
        &mut self,
        rounds: u32,
        hook: &mut dyn FaultHook,
    ) -> Result<Vec<RoundReliability>> {
        self.reliability_instrumented(rounds, hook, &Telemetry::disabled())
    }

    /// [`SimulatedStudy::reliability_trajectory_with_faults`] with
    /// telemetry: a `qual.reliability` span, a per-round `qual.round_ns`
    /// histogram, a round counter, and a milestone event carrying the
    /// final Krippendorff alpha. The trajectory is identical.
    pub fn reliability_instrumented(
        &mut self,
        rounds: u32,
        hook: &mut dyn FaultHook,
        tel: &Telemetry,
    ) -> Result<Vec<RoundReliability>> {
        let _span = tel.span("qual.reliability");
        let mut out = Vec::with_capacity(rounds as usize + 1);
        for round in 0..=rounds {
            let t0 = tel.start();
            let labels = self.code_round_with_faults(round, hook);
            // Mean pairwise percent agreement on mutually-labelled units.
            let mut pa_sum = 0.0;
            let mut pa_n = 0;
            for i in 0..labels.len() {
                for j in (i + 1)..labels.len() {
                    let (a, b): (Vec<_>, Vec<_>) = labels[i]
                        .iter()
                        .zip(&labels[j])
                        .filter(|(x, y)| x.is_some() && y.is_some())
                        .map(|(&x, &y)| (x, y))
                        .unzip();
                    if !a.is_empty() {
                        pa_sum += percent_agreement(&a, &b)
                            .map_err(|_| QualError::Degenerate("agreement failed"))?;
                        pa_n += 1;
                    }
                }
            }
            // Fleiss on fully-labelled units.
            let full_units: Vec<usize> = (0..self.config.units)
                .filter(|&u| labels.iter().all(|l| l[u].is_some()))
                .collect();
            let fleiss_input: Vec<Vec<Option<usize>>> = labels
                .iter()
                .map(|l| full_units.iter().map(|&u| l[u]).collect())
                .collect();
            let fk = fleiss_kappa(&fleiss_input).unwrap_or(0.0);
            let alpha = krippendorff_alpha(&labels).unwrap_or(0.0);
            out.push(RoundReliability {
                round,
                percent_agreement: if pa_n > 0 { pa_sum / pa_n as f64 } else { 0.0 },
                fleiss_kappa: fk,
                krippendorff_alpha: alpha,
            });
            tel.observe_since("qual.round_ns", t0);
        }
        tel.counter("qual.rounds", u64::from(rounds) + 1);
        if let Some(last) = out.last() {
            tel.gauge("qual.final_alpha", last.krippendorff_alpha);
            tel.event(
                Event::new(
                    "milestone",
                    format!(
                        "qual.reliability: {} rounds, final alpha {:.3}",
                        out.len(),
                        last.krippendorff_alpha
                    ),
                )
                .with_step(u64::from(last.round)),
            );
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_valid() {
        StudyConfig::default().validate().unwrap();
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = StudyConfig::default();
        c.units = 0;
        assert!(c.validate().is_err());
        let mut c = StudyConfig::default();
        c.codes = 1;
        assert!(c.validate().is_err());
        let mut c = StudyConfig::default();
        c.coders.truncate(1);
        assert!(c.validate().is_err());
        let mut c = StudyConfig::default();
        c.coders[0].max_accuracy = 0.1;
        assert!(c.validate().is_err());
        let mut c = StudyConfig::default();
        c.tau = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn accuracy_rises_and_saturates() {
        let coder = CoderProfile {
            name: "x".into(),
            base_accuracy: 0.5,
            max_accuracy: 0.9,
            skip_rate: 0.0,
        };
        let a0 = coder.accuracy_at(0, 1.5);
        let a2 = coder.accuracy_at(2, 1.5);
        let a10 = coder.accuracy_at(10, 1.5);
        assert!((a0 - 0.5).abs() < 1e-12);
        assert!(a2 > a0);
        assert!(a10 > a2);
        assert!(a10 <= 0.9 + 1e-12);
        assert!((a10 - 0.9).abs() < 0.01, "should saturate near max");
    }

    #[test]
    fn study_is_deterministic() {
        let mut s1 = SimulatedStudy::new(StudyConfig::default(), 42).unwrap();
        let mut s2 = SimulatedStudy::new(StudyConfig::default(), 42).unwrap();
        assert_eq!(s1.ground_truth(), s2.ground_truth());
        assert_eq!(s1.code_round(0), s2.code_round(0));
    }

    #[test]
    fn labels_are_valid_codes_or_skips() {
        let mut s = SimulatedStudy::new(StudyConfig::default(), 7).unwrap();
        let labels = s.code_round(1);
        assert_eq!(labels.len(), 3);
        for coder in &labels {
            assert_eq!(coder.len(), 200);
            for l in coder.iter().flatten() {
                assert!(*l < 6);
            }
        }
    }

    #[test]
    fn reliability_improves_with_rounds() {
        let mut s = SimulatedStudy::new(StudyConfig::default(), 11).unwrap();
        let traj = s.reliability_trajectory(6).unwrap();
        assert_eq!(traj.len(), 7);
        let first = &traj[0];
        let last = &traj[6];
        assert!(
            last.krippendorff_alpha > first.krippendorff_alpha + 0.15,
            "alpha should climb: {} -> {}",
            first.krippendorff_alpha,
            last.krippendorff_alpha
        );
        assert!(last.fleiss_kappa > first.fleiss_kappa);
        assert!(last.percent_agreement > first.percent_agreement);
        // Saturates below perfection.
        assert!(last.krippendorff_alpha < 0.99);
    }

    #[test]
    fn attrition_degrades_but_never_panics() {
        use humnet_resilience::{FaultPlan, FaultProfile, PlanHook};
        // NoFaults-equivalent plan reproduces the plain trajectory exactly.
        let mut plain = SimulatedStudy::new(StudyConfig::default(), 42).unwrap();
        let baseline = plain.reliability_trajectory(4).unwrap();
        let mut hooked = SimulatedStudy::new(StudyConfig::default(), 42).unwrap();
        let mut none = PlanHook::new(FaultPlan::none());
        assert_eq!(
            hooked.reliability_trajectory_with_faults(4, &mut none).unwrap(),
            baseline
        );
        // Chaos attrition: deterministic, metrics stay in their ranges.
        let chaos = |seed| {
            let mut s = SimulatedStudy::new(StudyConfig::default(), 42).unwrap();
            let mut hook = PlanHook::new(FaultPlan::new(FaultProfile::Chaos, seed));
            let traj = s.reliability_trajectory_with_faults(4, &mut hook).unwrap();
            (traj, hook.faults_injected())
        };
        let (a, fa) = chaos(8);
        let (b, fb) = chaos(8);
        assert_eq!(a, b);
        assert_eq!(fa, fb);
        assert!(fa > 0, "chaos should hit at least one coder-round");
        for r in &a {
            assert!((0.0..=1.0).contains(&r.percent_agreement), "{r:?}");
            assert!(r.krippendorff_alpha <= 1.0 + 1e-9, "{r:?}");
        }
    }

    #[test]
    fn perfect_coders_reach_alpha_one() {
        let mut cfg = StudyConfig::default();
        for c in cfg.coders.iter_mut() {
            c.base_accuracy = 1.0;
            c.max_accuracy = 1.0;
            c.skip_rate = 0.0;
        }
        let mut s = SimulatedStudy::new(cfg, 3).unwrap();
        let traj = s.reliability_trajectory(0).unwrap();
        assert!((traj[0].krippendorff_alpha - 1.0).abs() < 1e-9);
        assert!((traj[0].percent_agreement - 1.0).abs() < 1e-12);
    }
}
