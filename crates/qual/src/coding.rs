//! Coded segments and coding sessions.

use crate::codebook::Codebook;
use crate::{QualError, Result};
use serde::{Deserialize, Serialize};

/// A code applied to a span of a transcript by one coder.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CodedSegment {
    /// Transcript id.
    pub transcript: String,
    /// Index of the first turn covered.
    pub start_turn: usize,
    /// Index one past the last turn covered.
    pub end_turn: usize,
    /// Code id (into the study codebook).
    pub code: usize,
}

impl CodedSegment {
    /// True if the segment covers the given turn.
    pub fn covers(&self, turn: usize) -> bool {
        (self.start_turn..self.end_turn).contains(&turn)
    }
}

/// All segments applied by one coder.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CodingSession {
    /// Coder label (e.g. "coder-A").
    pub coder: String,
    /// Segments applied, in application order.
    pub segments: Vec<CodedSegment>,
}

impl CodingSession {
    /// Create an empty session for a coder.
    pub fn new(coder: impl Into<String>) -> Self {
        CodingSession {
            coder: coder.into(),
            segments: Vec::new(),
        }
    }

    /// Apply a code to a turn range. Errors on an empty range or a code
    /// that is missing/retired in the codebook.
    pub fn apply(
        &mut self,
        codebook: &Codebook,
        transcript: &str,
        start_turn: usize,
        end_turn: usize,
        code: usize,
    ) -> Result<()> {
        if start_turn >= end_turn {
            return Err(QualError::InvalidParameter("segment range must be nonempty"));
        }
        match codebook.get(code) {
            None => return Err(QualError::UnknownCode(format!("#{code}"))),
            Some(c) if c.retired => {
                return Err(QualError::InvalidParameter("cannot apply a retired code"))
            }
            Some(_) => {}
        }
        self.segments.push(CodedSegment {
            transcript: transcript.to_owned(),
            start_turn,
            end_turn,
            code,
        });
        Ok(())
    }

    /// The code (if any) this session assigned to a given turn of a given
    /// transcript. When multiple segments overlap a turn, the latest
    /// application wins (matching how coders revise earlier passes).
    pub fn code_at(&self, transcript: &str, turn: usize) -> Option<usize> {
        self.segments
            .iter()
            .rev()
            .find(|s| s.transcript == transcript && s.covers(turn))
            .map(|s| s.code)
    }

    /// Count of segments per code id.
    pub fn code_counts(&self, codebook: &Codebook) -> Vec<(usize, usize)> {
        let mut counts = vec![0usize; codebook.len()];
        for s in &self.segments {
            if s.code < counts.len() {
                counts[s.code] += 1;
            }
        }
        counts
            .into_iter()
            .enumerate()
            .filter(|&(_, c)| c > 0)
            .collect()
    }
}

/// Build per-unit label vectors for reliability analysis: for each
/// `(transcript, turn)` unit in `units`, extract each session's assigned
/// code (`None` = uncoded). The result is one label vector per session.
pub fn label_matrix(
    sessions: &[CodingSession],
    units: &[(String, usize)],
) -> Vec<Vec<Option<usize>>> {
    sessions
        .iter()
        .map(|s| {
            units
                .iter()
                .map(|(t, turn)| s.code_at(t, *turn))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebook::Codebook;

    fn setup() -> (Codebook, CodingSession) {
        let mut cb = Codebook::new();
        cb.add("labor", "d").unwrap();
        cb.add("governance", "d").unwrap();
        (cb, CodingSession::new("coder-A"))
    }

    #[test]
    fn apply_and_lookup() {
        let (cb, mut s) = setup();
        s.apply(&cb, "T1", 0, 2, 0).unwrap();
        s.apply(&cb, "T1", 3, 4, 1).unwrap();
        assert_eq!(s.code_at("T1", 0), Some(0));
        assert_eq!(s.code_at("T1", 1), Some(0));
        assert_eq!(s.code_at("T1", 2), None);
        assert_eq!(s.code_at("T1", 3), Some(1));
        assert_eq!(s.code_at("T2", 0), None);
    }

    #[test]
    fn later_application_wins_overlap() {
        let (cb, mut s) = setup();
        s.apply(&cb, "T1", 0, 3, 0).unwrap();
        s.apply(&cb, "T1", 1, 2, 1).unwrap();
        assert_eq!(s.code_at("T1", 0), Some(0));
        assert_eq!(s.code_at("T1", 1), Some(1));
        assert_eq!(s.code_at("T1", 2), Some(0));
    }

    #[test]
    fn invalid_applications_rejected() {
        let (cb, mut s) = setup();
        assert!(s.apply(&cb, "T1", 2, 2, 0).is_err());
        assert!(s.apply(&cb, "T1", 3, 2, 0).is_err());
        assert!(s.apply(&cb, "T1", 0, 1, 99).is_err());
    }

    #[test]
    fn retired_code_rejected() {
        let (mut cb, mut s) = setup();
        cb.merge(0, 1).unwrap();
        assert!(s.apply(&cb, "T1", 0, 1, 0).is_err());
    }

    #[test]
    fn code_counts() {
        let (cb, mut s) = setup();
        s.apply(&cb, "T1", 0, 1, 0).unwrap();
        s.apply(&cb, "T1", 1, 2, 0).unwrap();
        s.apply(&cb, "T2", 0, 1, 1).unwrap();
        assert_eq!(s.code_counts(&cb), vec![(0, 2), (1, 1)]);
    }

    #[test]
    fn label_matrix_shape() {
        let (cb, mut a) = setup();
        let mut b = CodingSession::new("coder-B");
        a.apply(&cb, "T1", 0, 2, 0).unwrap();
        b.apply(&cb, "T1", 0, 1, 1).unwrap();
        let units = vec![("T1".to_string(), 0), ("T1".to_string(), 1)];
        let m = label_matrix(&[a, b], &units);
        assert_eq!(m.len(), 2);
        assert_eq!(m[0], vec![Some(0), Some(0)]);
        assert_eq!(m[1], vec![Some(1), None]);
    }

    #[test]
    fn covers_boundaries() {
        let seg = CodedSegment {
            transcript: "T".into(),
            start_turn: 2,
            end_turn: 5,
            code: 0,
        };
        assert!(!seg.covers(1));
        assert!(seg.covers(2));
        assert!(seg.covers(4));
        assert!(!seg.covers(5));
    }
}
