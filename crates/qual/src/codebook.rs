//! Codebooks: the evolving vocabulary of a qualitative analysis.

use crate::{QualError, Result};
use serde::{Deserialize, Serialize};

/// A single code: a named analytic category with a definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Code {
    /// Dense id within the codebook.
    pub id: usize,
    /// Short name, unique within the codebook (e.g. "maintenance-labor").
    pub name: String,
    /// Definition / inclusion criteria for coders.
    pub definition: String,
    /// Optional parent code (hierarchical codebooks).
    pub parent: Option<usize>,
    /// Whether this code has been retired by a refinement round.
    pub retired: bool,
}

/// A codebook: codes plus a refinement-round counter.
///
/// Codebooks in real studies evolve: codes are added, split, merged, and
/// given crisper definitions across rounds, which is precisely the process
/// experiment **T2** models. The codebook records how many refinement
/// rounds it has been through.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Codebook {
    codes: Vec<Code>,
    rounds: u32,
}

impl Codebook {
    /// Create an empty codebook.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of codes, including retired ones.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when no codes exist.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Number of refinement rounds recorded.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Active (non-retired) codes.
    pub fn active(&self) -> Vec<&Code> {
        self.codes.iter().filter(|c| !c.retired).collect()
    }

    /// Add a top-level code. Errors if the name already exists.
    pub fn add(&mut self, name: &str, definition: &str) -> Result<usize> {
        self.add_child(name, definition, None)
    }

    /// Add a code with an optional parent. Errors on duplicate names or a
    /// dangling/retired parent.
    pub fn add_child(
        &mut self,
        name: &str,
        definition: &str,
        parent: Option<usize>,
    ) -> Result<usize> {
        if name.trim().is_empty() {
            return Err(QualError::InvalidParameter("code name must be nonempty"));
        }
        if self.codes.iter().any(|c| c.name == name && !c.retired) {
            return Err(QualError::InvalidParameter("duplicate code name"));
        }
        if let Some(p) = parent {
            match self.codes.get(p) {
                None => return Err(QualError::UnknownCode(format!("parent #{p}"))),
                Some(code) if code.retired => {
                    return Err(QualError::InvalidParameter("parent code is retired"))
                }
                Some(_) => {}
            }
        }
        let id = self.codes.len();
        self.codes.push(Code {
            id,
            name: name.to_owned(),
            definition: definition.to_owned(),
            parent,
            retired: false,
        });
        Ok(id)
    }

    /// Look up a code by id.
    pub fn get(&self, id: usize) -> Option<&Code> {
        self.codes.get(id)
    }

    /// Look up an active code id by name.
    pub fn find(&self, name: &str) -> Option<usize> {
        self.codes
            .iter()
            .find(|c| c.name == name && !c.retired)
            .map(|c| c.id)
    }

    /// Sharpen a code's definition (a refinement-round action).
    pub fn redefine(&mut self, id: usize, definition: &str) -> Result<()> {
        match self.codes.get_mut(id) {
            Some(code) => {
                code.definition = definition.to_owned();
                Ok(())
            }
            None => Err(QualError::UnknownCode(format!("#{id}"))),
        }
    }

    /// Merge code `from` into code `into`: `from` is retired; callers are
    /// expected to re-map coded segments. Errors on identical or missing
    /// ids.
    pub fn merge(&mut self, from: usize, into: usize) -> Result<()> {
        if from == into {
            return Err(QualError::InvalidParameter("cannot merge a code into itself"));
        }
        if self.codes.get(into).is_none() {
            return Err(QualError::UnknownCode(format!("#{into}")));
        }
        match self.codes.get_mut(from) {
            Some(code) => {
                code.retired = true;
                Ok(())
            }
            None => Err(QualError::UnknownCode(format!("#{from}"))),
        }
    }

    /// Record the completion of a refinement round.
    pub fn complete_round(&mut self) {
        self.rounds += 1;
    }

    /// Children of a code.
    pub fn children(&self, id: usize) -> Vec<&Code> {
        self.codes
            .iter()
            .filter(|c| c.parent == Some(id) && !c.retired)
            .collect()
    }

    /// Depth of a code in the hierarchy (0 for top-level). Cycles are
    /// impossible by construction (parents must exist before children).
    pub fn depth(&self, id: usize) -> Result<usize> {
        let mut depth = 0;
        let mut current = self
            .codes
            .get(id)
            .ok_or_else(|| QualError::UnknownCode(format!("#{id}")))?;
        while let Some(p) = current.parent {
            depth += 1;
            current = &self.codes[p];
        }
        Ok(depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn book() -> Codebook {
        let mut cb = Codebook::new();
        let labor = cb.add("labor", "work needed to keep the network running").unwrap();
        cb.add_child("volunteer-labor", "unpaid maintenance work", Some(labor))
            .unwrap();
        cb.add("governance", "decision-making structures").unwrap();
        cb
    }

    #[test]
    fn add_and_find() {
        let cb = book();
        assert_eq!(cb.len(), 3);
        assert_eq!(cb.find("labor"), Some(0));
        assert_eq!(cb.find("governance"), Some(2));
        assert_eq!(cb.find("nope"), None);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut cb = book();
        assert!(cb.add("labor", "again").is_err());
    }

    #[test]
    fn empty_name_rejected() {
        let mut cb = Codebook::new();
        assert!(cb.add("  ", "blank").is_err());
    }

    #[test]
    fn hierarchy_depth_and_children() {
        let cb = book();
        assert_eq!(cb.depth(0).unwrap(), 0);
        assert_eq!(cb.depth(1).unwrap(), 1);
        assert_eq!(cb.children(0).len(), 1);
        assert!(cb.children(2).is_empty());
        assert!(cb.depth(99).is_err());
    }

    #[test]
    fn dangling_parent_rejected() {
        let mut cb = Codebook::new();
        assert!(cb.add_child("x", "d", Some(5)).is_err());
    }

    #[test]
    fn merge_retires_source() {
        let mut cb = book();
        cb.merge(1, 0).unwrap();
        assert!(cb.get(1).unwrap().retired);
        assert_eq!(cb.find("volunteer-labor"), None);
        assert_eq!(cb.active().len(), 2);
    }

    #[test]
    fn merge_edge_cases() {
        let mut cb = book();
        assert!(cb.merge(0, 0).is_err());
        assert!(cb.merge(0, 99).is_err());
        assert!(cb.merge(99, 0).is_err());
    }

    #[test]
    fn retired_parent_rejected() {
        let mut cb = book();
        cb.merge(0, 2).unwrap(); // retire "labor"
        assert!(cb.add_child("new", "d", Some(0)).is_err());
    }

    #[test]
    fn name_reusable_after_retire() {
        let mut cb = book();
        cb.merge(0, 2).unwrap();
        // "labor" retired; the name can be reused.
        assert!(cb.add("labor", "fresh definition").is_ok());
    }

    #[test]
    fn redefine_and_rounds() {
        let mut cb = book();
        cb.redefine(0, "sharper definition").unwrap();
        assert_eq!(cb.get(0).unwrap().definition, "sharper definition");
        assert!(cb.redefine(42, "x").is_err());
        assert_eq!(cb.rounds(), 0);
        cb.complete_round();
        assert_eq!(cb.rounds(), 1);
    }
}
