//! Focus groups (§6.1's "other methods"): multi-participant discussion
//! dynamics and their best-known measurement hazard, dominance.
//!
//! A focus group is efficient — one session, many voices — but its data
//! quality depends on moderation: a dominant participant can crowd out
//! quieter ones, and what looks like consensus is sometimes one person's
//! opinion echoed. This module simulates turn-taking under a simple
//! speaking-propensity model with optional moderator intervention, and
//! measures floor share, Gini of airtime, and how many distinct opinions
//! actually surfaced.

use crate::{QualError, Result};
use humnet_stats::Rng;
use serde::{Deserialize, Serialize};

/// One focus-group participant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FocusParticipant {
    /// Label (e.g. "P3").
    pub label: String,
    /// Baseline propensity to take the floor (relative weight).
    pub assertiveness: f64,
    /// The latent opinion cluster this participant would voice (0-based).
    pub opinion: usize,
}

/// Configuration of a focus-group session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FocusGroupConfig {
    /// The participants.
    pub participants: Vec<FocusParticipant>,
    /// Number of speaking turns in the session.
    pub turns: u32,
    /// Moderator strength in `[0, 1]`: 0 = hands-off, 1 = strict
    /// round-robin facilitation. Intermediate values damp assertiveness
    /// differences.
    pub moderation: f64,
    /// Conformity pressure in `[0, 1]`: probability a speaker echoes the
    /// *most-voiced* opinion so far instead of their own.
    pub conformity: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for FocusGroupConfig {
    fn default() -> Self {
        FocusGroupConfig {
            participants: vec![
                FocusParticipant {
                    label: "P1".into(),
                    assertiveness: 5.0,
                    opinion: 0,
                },
                FocusParticipant {
                    label: "P2".into(),
                    assertiveness: 1.0,
                    opinion: 1,
                },
                FocusParticipant {
                    label: "P3".into(),
                    assertiveness: 1.0,
                    opinion: 1,
                },
                FocusParticipant {
                    label: "P4".into(),
                    assertiveness: 0.6,
                    opinion: 2,
                },
                FocusParticipant {
                    label: "P5".into(),
                    assertiveness: 0.4,
                    opinion: 3,
                },
            ],
            turns: 60,
            moderation: 0.0,
            conformity: 0.35,
            seed: 1,
        }
    }
}

impl FocusGroupConfig {
    /// Validate parameters.
    pub fn validate(&self) -> Result<()> {
        if self.participants.len() < 2 {
            return Err(QualError::InvalidParameter("need >= 2 participants"));
        }
        if self.turns == 0 {
            return Err(QualError::InvalidParameter("turns must be >= 1"));
        }
        if !(0.0..=1.0).contains(&self.moderation) || !(0.0..=1.0).contains(&self.conformity) {
            return Err(QualError::InvalidParameter(
                "moderation and conformity must be in [0,1]",
            ));
        }
        for p in &self.participants {
            if p.assertiveness <= 0.0 {
                return Err(QualError::InvalidParameter("assertiveness must be positive"));
            }
        }
        Ok(())
    }
}

/// Outcome of a focus-group session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FocusGroupOutcome {
    /// Turns taken per participant.
    pub turns_by_participant: Vec<u32>,
    /// Voiced opinion per turn.
    pub voiced: Vec<usize>,
    /// Gini of airtime across participants.
    pub airtime_gini: f64,
    /// Share of turns taken by the single most-talkative participant.
    pub dominance: f64,
    /// Number of distinct opinion clusters actually voiced.
    pub opinions_surfaced: usize,
    /// Number of distinct opinion clusters present in the room.
    pub opinions_present: usize,
}

/// Simulate a focus-group session.
pub fn simulate_focus_group(config: &FocusGroupConfig) -> Result<FocusGroupOutcome> {
    config.validate()?;
    let mut rng = Rng::new(config.seed);
    let n = config.participants.len();
    let mut turns_by = vec![0u32; n];
    let mut voiced = Vec::with_capacity(config.turns as usize);
    let mut opinion_counts: std::collections::HashMap<usize, u32> =
        std::collections::HashMap::new();
    let mut rr = 0usize;
    for _ in 0..config.turns {
        // Moderation interpolates between assertiveness-weighted choice and
        // strict round-robin.
        let speaker = if rng.chance(config.moderation) {
            let s = rr;
            rr = (rr + 1) % n;
            s
        } else {
            let weights: Vec<f64> =
                config.participants.iter().map(|p| p.assertiveness).collect();
            rng.choose_weighted(&weights)
        };
        turns_by[speaker] += 1;
        // Conformity: echo the room's leading opinion instead of one's own.
        let own = config.participants[speaker].opinion;
        let leading = opinion_counts
            .iter()
            .max_by_key(|&(op, &c)| (c, std::cmp::Reverse(*op)))
            .map(|(&op, _)| op);
        let spoken = match leading {
            Some(lead) if lead != own && rng.chance(config.conformity) => lead,
            _ => own,
        };
        *opinion_counts.entry(spoken).or_insert(0) += 1;
        voiced.push(spoken);
    }
    let airtime: Vec<f64> = turns_by.iter().map(|&t| t as f64).collect();
    let airtime_gini = humnet_stats::gini(&airtime)
        .map_err(|_| QualError::Degenerate("no turns taken"))?;
    let dominance =
        turns_by.iter().copied().max().unwrap_or(0) as f64 / config.turns as f64;
    let mut surfaced: Vec<usize> = voiced.clone();
    surfaced.sort_unstable();
    surfaced.dedup();
    let mut present: Vec<usize> = config.participants.iter().map(|p| p.opinion).collect();
    present.sort_unstable();
    present.dedup();
    Ok(FocusGroupOutcome {
        turns_by_participant: turns_by,
        voiced,
        airtime_gini,
        dominance,
        opinions_surfaced: surfaced.len(),
        opinions_present: present.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        let mut c = FocusGroupConfig::default();
        c.participants.truncate(1);
        assert!(simulate_focus_group(&c).is_err());
        let mut c = FocusGroupConfig::default();
        c.turns = 0;
        assert!(simulate_focus_group(&c).is_err());
        let mut c = FocusGroupConfig::default();
        c.moderation = 1.5;
        assert!(simulate_focus_group(&c).is_err());
        let mut c = FocusGroupConfig::default();
        c.participants[0].assertiveness = 0.0;
        assert!(simulate_focus_group(&c).is_err());
    }

    #[test]
    fn deterministic() {
        let c = FocusGroupConfig::default();
        assert_eq!(
            simulate_focus_group(&c).unwrap(),
            simulate_focus_group(&c).unwrap()
        );
    }

    #[test]
    fn turns_conserved() {
        let c = FocusGroupConfig::default();
        let out = simulate_focus_group(&c).unwrap();
        assert_eq!(out.turns_by_participant.iter().sum::<u32>(), c.turns);
        assert_eq!(out.voiced.len(), 60);
    }

    #[test]
    fn unmoderated_session_is_dominated() {
        let c = FocusGroupConfig::default();
        let out = simulate_focus_group(&c).unwrap();
        assert!(out.dominance > 0.4, "dominance = {}", out.dominance);
        assert!(out.airtime_gini > 0.3);
    }

    #[test]
    fn moderation_flattens_airtime() {
        let mut strict = FocusGroupConfig::default();
        strict.moderation = 1.0;
        let out = simulate_focus_group(&strict).unwrap();
        assert!(out.airtime_gini < 0.05, "gini = {}", out.airtime_gini);
        assert!(out.dominance <= 0.25);
        let free = simulate_focus_group(&FocusGroupConfig::default()).unwrap();
        assert!(free.airtime_gini > out.airtime_gini);
    }

    #[test]
    fn moderation_surfaces_more_opinions() {
        // Average over seeds: moderated sessions voice at least as many
        // distinct opinions as unmoderated ones.
        let mut mod_sum = 0usize;
        let mut free_sum = 0usize;
        for seed in 0..10 {
            let mut m = FocusGroupConfig::default();
            m.moderation = 1.0;
            m.seed = seed;
            mod_sum += simulate_focus_group(&m).unwrap().opinions_surfaced;
            let mut f = FocusGroupConfig::default();
            f.seed = seed;
            free_sum += simulate_focus_group(&f).unwrap().opinions_surfaced;
        }
        assert!(mod_sum >= free_sum, "moderated {mod_sum} vs free {free_sum}");
    }

    #[test]
    fn conformity_hides_minority_opinions() {
        let mut high = FocusGroupConfig::default();
        high.conformity = 0.95;
        high.moderation = 0.0;
        let mut low = FocusGroupConfig::default();
        low.conformity = 0.0;
        low.moderation = 1.0; // give everyone the floor
        let h = simulate_focus_group(&high).unwrap();
        let l = simulate_focus_group(&low).unwrap();
        assert!(l.opinions_surfaced >= h.opinions_surfaced);
        assert_eq!(l.opinions_surfaced, l.opinions_present);
    }
}
