//! Inter-rater reliability statistics.
//!
//! Every statistic here is validated in the tests against a published
//! worked example (Cohen 1960's framing, the Wikipedia Fleiss table,
//! hand-computed Krippendorff coincidence matrices).
//!
//! Conventions: raters' labels are `Option<usize>` — `None` means the rater
//! did not code the unit. Statistics that cannot handle missing data
//! (everything except Krippendorff's α) error when they encounter it.

use crate::{QualError, Result};

fn require_paired(a: &[Option<usize>], b: &[Option<usize>]) -> Result<Vec<(usize, usize)>> {
    if a.len() != b.len() {
        return Err(QualError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    if a.is_empty() {
        return Err(QualError::EmptyInput);
    }
    let mut pairs = Vec::with_capacity(a.len());
    for (&x, &y) in a.iter().zip(b) {
        match (x, y) {
            (Some(x), Some(y)) => pairs.push((x, y)),
            _ => {
                return Err(QualError::InvalidParameter(
                    "missing labels not supported by this statistic (use krippendorff_alpha)",
                ))
            }
        }
    }
    Ok(pairs)
}

/// Simple percent agreement between two raters, in `[0, 1]`.
pub fn percent_agreement(a: &[Option<usize>], b: &[Option<usize>]) -> Result<f64> {
    let pairs = require_paired(a, b)?;
    let agree = pairs.iter().filter(|(x, y)| x == y).count();
    Ok(agree as f64 / pairs.len() as f64)
}

/// Cohen's κ for two raters over nominal categories.
///
/// `κ = (p_o − p_e) / (1 − p_e)` where `p_e` uses each rater's own
/// marginals. Errors when `p_e = 1` (both raters constant and identical).
pub fn cohen_kappa(a: &[Option<usize>], b: &[Option<usize>]) -> Result<f64> {
    let pairs = require_paired(a, b)?;
    let k = pairs.iter().map(|&(x, y)| x.max(y)).max().unwrap() + 1;
    let n = pairs.len() as f64;
    let mut marg_a = vec![0.0; k];
    let mut marg_b = vec![0.0; k];
    let mut agree = 0.0;
    for &(x, y) in &pairs {
        marg_a[x] += 1.0;
        marg_b[y] += 1.0;
        if x == y {
            agree += 1.0;
        }
    }
    let po = agree / n;
    let pe: f64 = (0..k).map(|c| (marg_a[c] / n) * (marg_b[c] / n)).sum();
    if (1.0 - pe).abs() < 1e-12 {
        return Err(QualError::Degenerate("expected agreement is 1"));
    }
    Ok((po - pe) / (1.0 - pe))
}

/// Scott's π for two raters: like Cohen's κ but with pooled marginals.
pub fn scott_pi(a: &[Option<usize>], b: &[Option<usize>]) -> Result<f64> {
    let pairs = require_paired(a, b)?;
    let k = pairs.iter().map(|&(x, y)| x.max(y)).max().unwrap() + 1;
    let n = pairs.len() as f64;
    let mut joint = vec![0.0; k];
    let mut agree = 0.0;
    for &(x, y) in &pairs {
        joint[x] += 1.0;
        joint[y] += 1.0;
        if x == y {
            agree += 1.0;
        }
    }
    let po = agree / n;
    let pe: f64 = joint.iter().map(|&c| (c / (2.0 * n)).powi(2)).sum();
    if (1.0 - pe).abs() < 1e-12 {
        return Err(QualError::Degenerate("expected agreement is 1"));
    }
    Ok((po - pe) / (1.0 - pe))
}

/// Weighted κ for two raters over *ordinal* categories with linear weights
/// `w_ij = 1 − |i − j| / (k − 1)`.
pub fn weighted_kappa(a: &[Option<usize>], b: &[Option<usize>]) -> Result<f64> {
    let pairs = require_paired(a, b)?;
    let k = pairs.iter().map(|&(x, y)| x.max(y)).max().unwrap() + 1;
    if k < 2 {
        return Err(QualError::Degenerate("need at least 2 categories"));
    }
    let n = pairs.len() as f64;
    let w = |i: usize, j: usize| 1.0 - (i as f64 - j as f64).abs() / (k as f64 - 1.0);
    let mut marg_a = vec![0.0; k];
    let mut marg_b = vec![0.0; k];
    let mut po = 0.0;
    for &(x, y) in &pairs {
        marg_a[x] += 1.0;
        marg_b[y] += 1.0;
        po += w(x, y);
    }
    po /= n;
    let mut pe = 0.0;
    for i in 0..k {
        for j in 0..k {
            pe += w(i, j) * (marg_a[i] / n) * (marg_b[j] / n);
        }
    }
    if (1.0 - pe).abs() < 1e-12 {
        return Err(QualError::Degenerate("expected agreement is 1"));
    }
    Ok((po - pe) / (1.0 - pe))
}

/// Fleiss' κ for `m ≥ 2` raters over nominal categories, all units fully
/// rated. `ratings[r][u]` is rater `r`'s label for unit `u`.
pub fn fleiss_kappa(ratings: &[Vec<Option<usize>>]) -> Result<f64> {
    if ratings.len() < 2 {
        return Err(QualError::InvalidParameter("fleiss needs >= 2 raters"));
    }
    let units = ratings[0].len();
    if units == 0 {
        return Err(QualError::EmptyInput);
    }
    for r in ratings {
        if r.len() != units {
            return Err(QualError::LengthMismatch {
                left: units,
                right: r.len(),
            });
        }
        if r.iter().any(Option::is_none) {
            return Err(QualError::InvalidParameter(
                "missing labels not supported by fleiss_kappa",
            ));
        }
    }
    let m = ratings.len() as f64;
    let k = ratings
        .iter()
        .flatten()
        .map(|l| l.unwrap())
        .max()
        .unwrap()
        + 1;
    // n_uc: count of raters assigning category c to unit u.
    let mut n_uc = vec![vec![0.0; k]; units];
    for r in ratings {
        for (u, l) in r.iter().enumerate() {
            n_uc[u][l.unwrap()] += 1.0;
        }
    }
    // Per-unit agreement.
    let p_bar: f64 = n_uc
        .iter()
        .map(|row| {
            let s: f64 = row.iter().map(|&c| c * c).sum();
            (s - m) / (m * (m - 1.0))
        })
        .sum::<f64>()
        / units as f64;
    // Category marginals.
    let pe: f64 = (0..k)
        .map(|c| {
            let p: f64 = n_uc.iter().map(|row| row[c]).sum::<f64>() / (units as f64 * m);
            p * p
        })
        .sum();
    if (1.0 - pe).abs() < 1e-12 {
        return Err(QualError::Degenerate("expected agreement is 1"));
    }
    Ok((p_bar - pe) / (1.0 - pe))
}

/// Krippendorff's α for nominal data with any number of raters and missing
/// labels. `ratings[r][u]` is rater `r`'s label for unit `u` (`None` =
/// unrated). Units rated by fewer than two raters are dropped.
///
/// Computed from the coincidence matrix:
/// `α = 1 − D_o / D_e` with
/// `D_o = Σ_{c≠k} o_ck / n` and `D_e = Σ_{c≠k} n_c n_k / (n (n−1))`.
pub fn krippendorff_alpha(ratings: &[Vec<Option<usize>>]) -> Result<f64> {
    if ratings.is_empty() {
        return Err(QualError::EmptyInput);
    }
    let units = ratings[0].len();
    for r in ratings {
        if r.len() != units {
            return Err(QualError::LengthMismatch {
                left: units,
                right: r.len(),
            });
        }
    }
    let k = ratings
        .iter()
        .flatten()
        .filter_map(|&l| l)
        .max()
        .map(|m| m + 1)
        .ok_or(QualError::EmptyInput)?;
    // Coincidence matrix.
    let mut o = vec![vec![0.0; k]; k];
    let mut any_pairable = false;
    for u in 0..units {
        let labels: Vec<usize> = ratings.iter().filter_map(|r| r[u]).collect();
        let mu = labels.len();
        if mu < 2 {
            continue;
        }
        any_pairable = true;
        let weight = 1.0 / (mu as f64 - 1.0);
        for i in 0..mu {
            for j in 0..mu {
                if i != j {
                    o[labels[i]][labels[j]] += weight;
                }
            }
        }
    }
    if !any_pairable {
        return Err(QualError::Degenerate("no unit rated by >= 2 raters"));
    }
    let n_c: Vec<f64> = (0..k).map(|c| o[c].iter().sum()).collect();
    let n: f64 = n_c.iter().sum();
    if n <= 1.0 {
        return Err(QualError::Degenerate("too few pairable values"));
    }
    let d_o: f64 = (0..k)
        .flat_map(|c| (0..k).map(move |l| (c, l)))
        .filter(|&(c, l)| c != l)
        .map(|(c, l)| o[c][l])
        .sum::<f64>()
        / n;
    let d_e: f64 = (0..k)
        .flat_map(|c| (0..k).map(move |l| (c, l)))
        .filter(|&(c, l)| c != l)
        .map(|(c, l)| n_c[c] * n_c[l])
        .sum::<f64>()
        / (n * (n - 1.0));
    if d_e <= 0.0 {
        return Err(QualError::Degenerate("all values identical"));
    }
    Ok(1.0 - d_o / d_e)
}

/// Krippendorff's α for *interval* data (e.g. Likert scores treated as
/// equidistant): difference function `δ²(c, k) = (c − k)²` over the
/// coincidence matrix. Missing labels allowed; units rated by fewer than
/// two raters are dropped.
pub fn krippendorff_alpha_interval(ratings: &[Vec<Option<f64>>]) -> Result<f64> {
    if ratings.is_empty() {
        return Err(QualError::EmptyInput);
    }
    let units = ratings[0].len();
    for r in ratings {
        if r.len() != units {
            return Err(QualError::LengthMismatch {
                left: units,
                right: r.len(),
            });
        }
    }
    // Observed disagreement: pairwise squared differences within units,
    // weighted by 1/(m_u − 1); expected disagreement: over all pairable
    // values regardless of unit.
    let mut values: Vec<f64> = Vec::new();
    let mut d_o_num = 0.0;
    let mut n_pairable = 0.0;
    for u in 0..units {
        let labels: Vec<f64> = ratings.iter().filter_map(|r| r[u]).collect();
        let mu = labels.len();
        if mu < 2 {
            continue;
        }
        n_pairable += mu as f64;
        let weight = 1.0 / (mu as f64 - 1.0);
        for i in 0..mu {
            for j in 0..mu {
                if i != j {
                    d_o_num += weight * (labels[i] - labels[j]).powi(2);
                }
            }
        }
        values.extend(labels);
    }
    if values.is_empty() || n_pairable <= 1.0 {
        return Err(QualError::Degenerate("no unit rated by >= 2 raters"));
    }
    let d_o = d_o_num / n_pairable;
    let n = values.len() as f64;
    let mut d_e_num = 0.0;
    for i in 0..values.len() {
        for j in 0..values.len() {
            if i != j {
                d_e_num += (values[i] - values[j]).powi(2);
            }
        }
    }
    let d_e = d_e_num / (n * (n - 1.0));
    if d_e <= 0.0 {
        return Err(QualError::Degenerate("all values identical"));
    }
    Ok(1.0 - d_o / d_e)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn some(v: &[usize]) -> Vec<Option<usize>> {
        v.iter().map(|&x| Some(x)).collect()
    }

    /// The classic 2×2 worked example: 50 items, both-yes 20, A-yes/B-no 5,
    /// A-no/B-yes 10, both-no 15. p_o = 0.7, p_e = 0.5, κ = 0.4.
    fn classic_pair() -> (Vec<Option<usize>>, Vec<Option<usize>>) {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..20 {
            a.push(Some(1));
            b.push(Some(1));
        }
        for _ in 0..5 {
            a.push(Some(1));
            b.push(Some(0));
        }
        for _ in 0..10 {
            a.push(Some(0));
            b.push(Some(1));
        }
        for _ in 0..15 {
            a.push(Some(0));
            b.push(Some(0));
        }
        (a, b)
    }

    #[test]
    fn percent_agreement_classic() {
        let (a, b) = classic_pair();
        assert!((percent_agreement(&a, &b).unwrap() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn cohen_kappa_classic_value() {
        let (a, b) = classic_pair();
        let k = cohen_kappa(&a, &b).unwrap();
        assert!((k - 0.4).abs() < 1e-12, "kappa = {k}");
    }

    #[test]
    fn scott_pi_classic_value() {
        // Pooled marginals: p(yes) = 55/100, p(no) = 45/100;
        // pe = 0.55² + 0.45² = 0.505; π = (0.7 − 0.505)/0.495.
        let (a, b) = classic_pair();
        let pi = scott_pi(&a, &b).unwrap();
        assert!((pi - (0.7 - 0.505) / 0.495).abs() < 1e-12, "pi = {pi}");
    }

    #[test]
    fn kappa_perfect_and_chance() {
        let a = some(&[0, 1, 0, 1, 2, 2]);
        assert!((cohen_kappa(&a, &a).unwrap() - 1.0).abs() < 1e-12);
        // Orthogonal labels -> kappa <= 0.
        let x = some(&[0, 0, 1, 1]);
        let y = some(&[0, 1, 0, 1]);
        assert!(cohen_kappa(&x, &y).unwrap() <= 0.0);
    }

    #[test]
    fn kappa_degenerate_identical_constants() {
        let a = some(&[1, 1, 1]);
        assert!(cohen_kappa(&a, &a).is_err());
    }

    #[test]
    fn missing_labels_rejected_by_kappa() {
        let a = vec![Some(0), None];
        let b = vec![Some(0), Some(1)];
        assert!(cohen_kappa(&a, &b).is_err());
        assert!(percent_agreement(&a, &b).is_err());
    }

    #[test]
    fn weighted_kappa_rewards_near_misses() {
        // Ordinal scale 0..=2; rater B always one off vs two off.
        let a = some(&[0, 1, 2, 0, 1, 2]);
        let near = some(&[1, 2, 1, 1, 0, 1]);
        let far = some(&[2, 2, 0, 2, 1, 0]);
        // "far" contains exact hits at position 1 and 4... construct simpler:
        let wk_near = weighted_kappa(&a, &near).unwrap();
        let k_near = cohen_kappa(&a, &near).unwrap();
        // With zero exact agreements, unweighted kappa is negative but
        // weighted kappa credits adjacency.
        assert!(wk_near > k_near, "weighted {wk_near} vs plain {k_near}");
        let _ = far;
    }

    #[test]
    fn weighted_kappa_perfect() {
        let a = some(&[0, 1, 2, 1]);
        assert!((weighted_kappa(&a, &a).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fleiss_kappa_wikipedia_example() {
        // The canonical 10-subject, 14-rater, 5-category table; κ ≈ 0.210.
        let table: [[usize; 5]; 10] = [
            [0, 0, 0, 0, 14],
            [0, 2, 6, 4, 2],
            [0, 0, 3, 5, 6],
            [0, 3, 9, 2, 0],
            [2, 2, 8, 1, 1],
            [7, 7, 0, 0, 0],
            [3, 2, 6, 3, 0],
            [2, 5, 3, 2, 2],
            [6, 5, 2, 1, 0],
            [0, 2, 2, 3, 7],
        ];
        // Expand the count table into 14 raters' label vectors.
        let mut ratings: Vec<Vec<Option<usize>>> = vec![vec![None; 10]; 14];
        for (u, row) in table.iter().enumerate() {
            let mut r = 0;
            for (cat, &count) in row.iter().enumerate() {
                for _ in 0..count {
                    ratings[r][u] = Some(cat);
                    r += 1;
                }
            }
            assert_eq!(r, 14);
        }
        let k = fleiss_kappa(&ratings).unwrap();
        assert!((k - 0.20993).abs() < 1e-3, "fleiss kappa = {k}");
    }

    #[test]
    fn fleiss_kappa_perfect() {
        let r1 = some(&[0, 1, 2, 0]);
        let ratings = vec![r1.clone(), r1.clone(), r1];
        assert!((fleiss_kappa(&ratings).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fleiss_requires_two_raters_and_equal_lengths() {
        assert!(fleiss_kappa(&[some(&[0, 1])]).is_err());
        assert!(fleiss_kappa(&[some(&[0, 1]), some(&[0])]).is_err());
    }

    #[test]
    fn krippendorff_hand_computed_example() {
        // Units: (a,a), (a,a), (b,b), (a,b).
        // Coincidence: o(a,b) = o(b,a) = 1, o(a,a) = 4, o(b,b) = 2; n = 8.
        // D_o = 2/8 = 0.25; D_e = 2·(5·3)/(8·7) = 30/56; α = 1 − 0.25/(30/56).
        let a = some(&[0, 0, 1, 0]);
        let b = some(&[0, 0, 1, 1]);
        let alpha = krippendorff_alpha(&[a, b]).unwrap();
        let expected = 1.0 - 0.25 / (30.0 / 56.0);
        assert!((alpha - expected).abs() < 1e-12, "alpha = {alpha}");
    }

    #[test]
    fn krippendorff_handles_missing() {
        let a = vec![Some(0), Some(0), None, Some(1)];
        let b = vec![Some(0), Some(0), Some(1), Some(1)];
        let c = vec![Some(0), None, Some(1), Some(1)];
        let alpha = krippendorff_alpha(&[a, b, c]).unwrap();
        assert!(alpha > 0.9, "alpha = {alpha}");
    }

    #[test]
    fn krippendorff_perfect_agreement() {
        let a = some(&[0, 1, 0, 1, 2]);
        let alpha = krippendorff_alpha(&[a.clone(), a]).unwrap();
        assert!((alpha - 1.0).abs() < 1e-12);
    }

    #[test]
    fn krippendorff_degenerate_cases() {
        // All identical values -> D_e = 0.
        let a = some(&[0, 0, 0]);
        assert!(krippendorff_alpha(&[a.clone(), a]).is_err());
        // No pairable units.
        let x = vec![Some(0), None];
        let y = vec![None, Some(1)];
        assert!(krippendorff_alpha(&[x, y]).is_err());
        // Empty.
        assert!(krippendorff_alpha(&[]).is_err());
    }

    #[test]
    fn interval_alpha_perfect_agreement() {
        let a: Vec<Option<f64>> = vec![Some(1.0), Some(3.0), Some(5.0), Some(2.0)];
        let alpha = krippendorff_alpha_interval(&[a.clone(), a]).unwrap();
        assert!((alpha - 1.0).abs() < 1e-12);
    }

    #[test]
    fn interval_alpha_rewards_near_misses_over_far_misses() {
        let truth: Vec<Option<f64>> = vec![Some(1.0), Some(2.0), Some(3.0), Some(4.0), Some(5.0)];
        let near: Vec<Option<f64>> = vec![Some(2.0), Some(3.0), Some(2.0), Some(5.0), Some(4.0)];
        let far: Vec<Option<f64>> = vec![Some(5.0), Some(5.0), Some(1.0), Some(1.0), Some(1.0)];
        let a_near = krippendorff_alpha_interval(&[truth.clone(), near]).unwrap();
        let a_far = krippendorff_alpha_interval(&[truth, far]).unwrap();
        assert!(a_near > a_far, "near {a_near} vs far {a_far}");
    }

    #[test]
    fn interval_alpha_handles_missing_and_degenerate() {
        let a: Vec<Option<f64>> = vec![Some(1.0), None, Some(3.0)];
        let b: Vec<Option<f64>> = vec![Some(1.0), Some(2.0), Some(3.0)];
        let alpha = krippendorff_alpha_interval(&[a, b]).unwrap();
        assert!(alpha > 0.9);
        let constant: Vec<Option<f64>> = vec![Some(2.0), Some(2.0)];
        assert!(krippendorff_alpha_interval(&[constant.clone(), constant]).is_err());
        assert!(krippendorff_alpha_interval(&[]).is_err());
    }

    #[test]
    fn krippendorff_close_to_kappa_for_complete_two_rater_data() {
        let (a, b) = classic_pair();
        let alpha = krippendorff_alpha(&[a.clone(), b.clone()]).unwrap();
        let pi = scott_pi(&a, &b).unwrap();
        // Alpha is the small-sample-corrected Scott's pi; for n = 50 they
        // should agree to ~0.01.
        assert!((alpha - pi).abs() < 0.02, "alpha {alpha} vs pi {pi}");
    }
}
