//! # humnet-qual
//!
//! Qualitative-coding engine for the `humnet` toolkit.
//!
//! The paper's §5.2 asks networking researchers to "robustly collect and
//! analyze even informal, personal, and ad-hoc communications", formally
//! *coding* them when the corpus is large. This crate implements the full
//! machinery that recommendation presumes:
//!
//! * [`transcript`] — interview/conversation transcripts with speaker
//!   turns, consent metadata, and anonymization;
//! * [`codebook`] — hierarchical codebooks with definitions and refinement
//!   history;
//! * [`coding`] — coded segments and per-coder coding sessions;
//! * [`reliability`] — inter-rater reliability statistics: percent
//!   agreement, Cohen's κ, weighted κ, Scott's π, Fleiss' κ, and
//!   Krippendorff's α (each validated against published worked examples);
//! * [`themes`] — theme extraction from code co-occurrence, and
//!   representative quote selection;
//! * [`ethics`] — consent records and export guardrails (§6.2.3);
//! * [`simulate`] — simulated coder pools over ground-truth-coded
//!   transcripts, used by experiment **T2** to show how codebook
//!   refinement rounds drive agreement up.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod codebook;
pub mod coding;
pub mod diary;
pub mod ethics;
pub mod focusgroup;
pub mod reliability;
pub mod simulate;
pub mod themes;
pub mod transcript;

pub use codebook::{Code, Codebook};
pub use coding::{CodedSegment, CodingSession};
pub use diary::{simulate_diary, simulate_diary_instrumented, DiaryConfig, DiaryEntry, DiaryOutcome};
pub use focusgroup::{
    simulate_focus_group, FocusGroupConfig, FocusGroupOutcome, FocusParticipant,
};
pub use ethics::{ConsentRecord, ConsentStatus, EthicsPolicy};
pub use reliability::{
    cohen_kappa, fleiss_kappa, krippendorff_alpha, krippendorff_alpha_interval,
    percent_agreement, scott_pi, weighted_kappa,
};
pub use simulate::{CoderProfile, SimulatedStudy, StudyConfig};
pub use themes::{extract_themes, representative_quotes, Theme};
pub use transcript::{Speaker, Transcript, Utterance};

/// Errors produced by the qualitative-coding engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QualError {
    /// The operation requires nonempty data.
    EmptyInput,
    /// Input sizes that must match did not.
    LengthMismatch {
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter(&'static str),
    /// A referenced code does not exist in the codebook.
    UnknownCode(String),
    /// The statistic is undefined for the given data.
    Degenerate(&'static str),
    /// An ethics guardrail blocked the operation.
    EthicsViolation(String),
}

impl std::fmt::Display for QualError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QualError::EmptyInput => write!(f, "input is empty"),
            QualError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            QualError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            QualError::UnknownCode(c) => write!(f, "unknown code: {c}"),
            QualError::Degenerate(what) => write!(f, "statistic undefined: {what}"),
            QualError::EthicsViolation(what) => write!(f, "ethics guardrail: {what}"),
        }
    }
}

impl std::error::Error for QualError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, QualError>;
