//! Diary studies with technology probes (§6.1's "other human-centered
//! methods", after Chidziwisano 2024 [7]).
//!
//! A diary study asks participants to record entries over weeks. Its
//! well-known failure mode is *compliance decay*: entries taper off as
//! novelty fades. Technology probes — devices that ping participants when
//! something interesting happens on the network — counteract the decay by
//! prompting entries. This module models both, deterministically, so the
//! method's design trade-offs (study length, probe rate) can be explored
//! the same way the headline experiments are.

use crate::{QualError, Result};
use humnet_stats::Rng;
use serde::{Deserialize, Serialize};

/// One diary entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiaryEntry {
    /// Participant index.
    pub participant: usize,
    /// Study day (0-based).
    pub day: u32,
    /// Whether a probe prompt triggered the entry.
    pub prompted: bool,
    /// Entry length in words (a proxy for richness).
    pub words: u32,
}

/// Configuration of a diary study simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiaryConfig {
    /// Number of participants.
    pub participants: usize,
    /// Study length in days.
    pub days: u32,
    /// Initial per-day probability of a spontaneous entry.
    pub base_compliance: f64,
    /// Multiplicative daily decay of spontaneous compliance (e.g. 0.97).
    pub compliance_decay: f64,
    /// Per-day probability that the technology probe fires for a
    /// participant (0 = plain diary study).
    pub probe_rate: f64,
    /// Probability a probe prompt yields an entry.
    pub probe_response: f64,
    /// Mean words per entry at day 0.
    pub initial_words: f64,
    /// Multiplicative daily decay of entry richness.
    pub richness_decay: f64,
}

impl Default for DiaryConfig {
    fn default() -> Self {
        DiaryConfig {
            participants: 12,
            days: 42,
            base_compliance: 0.8,
            compliance_decay: 0.95,
            probe_rate: 0.0,
            probe_response: 0.75,
            initial_words: 60.0,
            richness_decay: 0.99,
        }
    }
}

impl DiaryConfig {
    /// Validate parameters.
    pub fn validate(&self) -> Result<()> {
        if self.participants == 0 {
            return Err(QualError::InvalidParameter("participants must be >= 1"));
        }
        if self.days == 0 {
            return Err(QualError::InvalidParameter("days must be >= 1"));
        }
        for p in [
            self.base_compliance,
            self.compliance_decay,
            self.probe_rate,
            self.probe_response,
            self.richness_decay,
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(QualError::InvalidParameter("probabilities must be in [0,1]"));
            }
        }
        if self.initial_words <= 0.0 {
            return Err(QualError::InvalidParameter("initial_words must be positive"));
        }
        Ok(())
    }
}

/// Results of a simulated diary study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiaryOutcome {
    /// All entries, ordered by (day, participant).
    pub entries: Vec<DiaryEntry>,
    /// Per-day compliance: fraction of participants who wrote that day.
    pub compliance_curve: Vec<f64>,
}

impl DiaryOutcome {
    /// Overall compliance: entries ÷ participant-days.
    pub fn overall_compliance(&self, config: &DiaryConfig) -> f64 {
        self.entries.len() as f64 / (config.participants as f64 * config.days as f64)
    }

    /// Compliance in the final week of the study (the retention signal).
    pub fn final_week_compliance(&self) -> f64 {
        let n = self.compliance_curve.len();
        if n == 0 {
            return 0.0;
        }
        let start = n.saturating_sub(7);
        let tail = &self.compliance_curve[start..];
        tail.iter().sum::<f64>() / tail.len() as f64
    }

    /// Fraction of entries that were probe-prompted.
    pub fn prompted_share(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        self.entries.iter().filter(|e| e.prompted).count() as f64 / self.entries.len() as f64
    }

    /// Mean words per entry.
    pub fn mean_words(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        self.entries.iter().map(|e| e.words as f64).sum::<f64>() / self.entries.len() as f64
    }
}

/// Run a diary study deterministically.
pub fn simulate_diary(config: &DiaryConfig, seed: u64) -> Result<DiaryOutcome> {
    simulate_diary_instrumented(config, seed, &humnet_telemetry::Telemetry::disabled())
}

/// [`simulate_diary`] with telemetry: a `qual.diary` span, an entry
/// counter, and a milestone event. The simulated outcome is identical.
pub fn simulate_diary_instrumented(
    config: &DiaryConfig,
    seed: u64,
    tel: &humnet_telemetry::Telemetry,
) -> Result<DiaryOutcome> {
    let _span = tel.span("qual.diary");
    let outcome = simulate_diary_inner(config, seed)?;
    tel.counter("qual.diary_entries", outcome.entries.len() as u64);
    tel.gauge("qual.diary_compliance", outcome.overall_compliance(config));
    tel.event(humnet_telemetry::Event::new(
        "milestone",
        format!(
            "qual.diary: {} entries over {} days from {} participants",
            outcome.entries.len(),
            config.days,
            config.participants
        ),
    ));
    Ok(outcome)
}

fn simulate_diary_inner(config: &DiaryConfig, seed: u64) -> Result<DiaryOutcome> {
    config.validate()?;
    let mut rng = Rng::new(seed);
    let mut entries = Vec::new();
    let mut compliance_curve = Vec::with_capacity(config.days as usize);
    for day in 0..config.days {
        let spont_p = config.base_compliance * config.compliance_decay.powi(day as i32);
        let words_mean = config.initial_words * config.richness_decay.powi(day as i32);
        let mut writers = 0usize;
        for participant in 0..config.participants {
            let prompted = rng.chance(config.probe_rate) && rng.chance(config.probe_response);
            let spontaneous = rng.chance(spont_p);
            if prompted || spontaneous {
                writers += 1;
                // Prompted entries are grounded in a concrete event and run
                // a little longer.
                let mean = if prompted { words_mean * 1.3 } else { words_mean };
                let words = rng.normal(mean, mean * 0.25).max(5.0).round() as u32;
                entries.push(DiaryEntry {
                    participant,
                    day,
                    prompted,
                    words,
                });
            }
        }
        compliance_curve.push(writers as f64 / config.participants as f64);
    }
    Ok(DiaryOutcome {
        entries,
        compliance_curve,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        let mut c = DiaryConfig::default();
        c.participants = 0;
        assert!(simulate_diary(&c, 1).is_err());
        let mut c = DiaryConfig::default();
        c.compliance_decay = 1.5;
        assert!(simulate_diary(&c, 1).is_err());
        let mut c = DiaryConfig::default();
        c.initial_words = 0.0;
        assert!(simulate_diary(&c, 1).is_err());
    }

    #[test]
    fn deterministic() {
        let c = DiaryConfig::default();
        assert_eq!(simulate_diary(&c, 9).unwrap(), simulate_diary(&c, 9).unwrap());
    }

    #[test]
    fn compliance_decays_without_probes() {
        let c = DiaryConfig::default();
        let out = simulate_diary(&c, 3).unwrap();
        let first_week: f64 = out.compliance_curve[..7].iter().sum::<f64>() / 7.0;
        let last_week = out.final_week_compliance();
        assert!(
            first_week > last_week + 0.2,
            "first week {first_week} vs last {last_week}"
        );
        assert_eq!(out.prompted_share(), 0.0);
    }

    #[test]
    fn probes_sustain_compliance() {
        let mut with = DiaryConfig::default();
        with.probe_rate = 0.5;
        let probed = simulate_diary(&with, 5).unwrap();
        let plain = simulate_diary(&DiaryConfig::default(), 5).unwrap();
        assert!(
            probed.final_week_compliance() > plain.final_week_compliance() + 0.1,
            "probed {} vs plain {}",
            probed.final_week_compliance(),
            plain.final_week_compliance()
        );
        assert!(probed.prompted_share() > 0.1);
    }

    #[test]
    fn overall_compliance_bounds() {
        let c = DiaryConfig::default();
        let out = simulate_diary(&c, 7).unwrap();
        let oc = out.overall_compliance(&c);
        assert!((0.0..=1.0).contains(&oc));
        assert!(oc > 0.2, "oc = {oc}");
    }

    #[test]
    fn richness_decays() {
        let mut c = DiaryConfig::default();
        c.richness_decay = 0.95;
        c.days = 60;
        let out = simulate_diary(&c, 11).unwrap();
        let early: Vec<u32> = out
            .entries
            .iter()
            .filter(|e| e.day < 10)
            .map(|e| e.words)
            .collect();
        let late: Vec<u32> = out
            .entries
            .iter()
            .filter(|e| e.day >= 50)
            .map(|e| e.words)
            .collect();
        if !late.is_empty() {
            let em = early.iter().sum::<u32>() as f64 / early.len() as f64;
            let lm = late.iter().sum::<u32>() as f64 / late.len() as f64;
            assert!(em > lm, "early {em} vs late {lm}");
        }
    }

    #[test]
    fn entries_are_well_formed() {
        let c = DiaryConfig::default();
        let out = simulate_diary(&c, 13).unwrap();
        for e in &out.entries {
            assert!(e.participant < c.participants);
            assert!(e.day < c.days);
            assert!(e.words >= 5);
        }
        assert_eq!(out.compliance_curve.len(), c.days as usize);
    }
}
