//! Consent records, IRB metadata, and export guardrails.
//!
//! §6.2.3 of the paper: "Formalizing interviewing and data collection
//! protocols should involve the inclusion of guardrails for maintaining
//! ethical research practices." These types make the guardrails executable:
//! a transcript cannot be exported through [`EthicsPolicy::check_export`]
//! unless every participant has current consent and the transcript has been
//! anonymized.

use crate::transcript::{Speaker, Transcript};
use crate::{QualError, Result};
use serde::{Deserialize, Serialize};

/// A participant's consent state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConsentStatus {
    /// Informed consent given and current.
    Granted,
    /// Consent explicitly withdrawn — data must not be used.
    Withdrawn,
    /// Consent never collected.
    Missing,
}

/// A consent record for one participant in one study.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConsentRecord {
    /// Participant label as used in transcripts.
    pub participant: String,
    /// Current status.
    pub status: ConsentStatus,
    /// Whether the participant agreed to direct quotation.
    pub allows_quotes: bool,
}

/// A study-level ethics policy: IRB registration plus consent ledger.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EthicsPolicy {
    /// IRB / ethics-board protocol identifier, if registered.
    pub irb_protocol: Option<String>,
    /// Consent ledger.
    pub consents: Vec<ConsentRecord>,
    /// Whether the study involves a community the paper flags as requiring
    /// heightened care (e.g. Indigenous communities, §6.2.3).
    pub heightened_care: bool,
}

impl EthicsPolicy {
    /// Create a policy with an IRB protocol id.
    pub fn with_irb(protocol: impl Into<String>) -> Self {
        EthicsPolicy {
            irb_protocol: Some(protocol.into()),
            ..Default::default()
        }
    }

    /// Record consent for a participant (replaces any prior record).
    pub fn record_consent(&mut self, participant: &str, status: ConsentStatus, allows_quotes: bool) {
        if let Some(existing) = self
            .consents
            .iter_mut()
            .find(|c| c.participant == participant)
        {
            existing.status = status;
            existing.allows_quotes = allows_quotes;
        } else {
            self.consents.push(ConsentRecord {
                participant: participant.to_owned(),
                status,
                allows_quotes,
            });
        }
    }

    /// Consent status for a participant ([`ConsentStatus::Missing`] when no
    /// record exists).
    pub fn status_of(&self, participant: &str) -> ConsentStatus {
        self.consents
            .iter()
            .find(|c| c.participant == participant)
            .map(|c| c.status)
            .unwrap_or(ConsentStatus::Missing)
    }

    /// Guardrail: may this transcript be exported (e.g. into a paper
    /// artifact)? Requirements:
    ///
    /// 1. an IRB protocol is registered (always required under heightened
    ///    care; otherwise a policy without IRB fails too — the paper tells
    ///    researchers to "consult your institutional review board");
    /// 2. every participant in the transcript has granted, unwithdrawn
    ///    consent;
    /// 3. the transcript looks anonymized: participant labels must be
    ///    pseudonymous (`P<number>`).
    pub fn check_export(&self, transcript: &Transcript) -> Result<()> {
        if self.irb_protocol.is_none() {
            return Err(QualError::EthicsViolation(
                "no IRB/ethics protocol registered".into(),
            ));
        }
        for turn in &transcript.turns {
            if let Speaker::Participant(label) = &turn.speaker {
                match self.status_of(label) {
                    ConsentStatus::Granted => {}
                    ConsentStatus::Withdrawn => {
                        return Err(QualError::EthicsViolation(format!(
                            "participant {label} withdrew consent"
                        )))
                    }
                    ConsentStatus::Missing => {
                        return Err(QualError::EthicsViolation(format!(
                            "no consent on file for participant {label}"
                        )))
                    }
                }
                if !is_pseudonym(label) {
                    return Err(QualError::EthicsViolation(format!(
                        "participant label '{label}' is not pseudonymized; \
                         call Transcript::anonymize first"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Guardrail: may this participant be quoted directly?
    pub fn check_quote(&self, participant: &str) -> Result<()> {
        let record = self
            .consents
            .iter()
            .find(|c| c.participant == participant)
            .ok_or_else(|| {
                QualError::EthicsViolation(format!("no consent on file for {participant}"))
            })?;
        if record.status != ConsentStatus::Granted {
            return Err(QualError::EthicsViolation(format!(
                "{participant} has not granted consent"
            )));
        }
        if !record.allows_quotes {
            return Err(QualError::EthicsViolation(format!(
                "{participant} did not consent to direct quotation; paraphrase instead"
            )));
        }
        Ok(())
    }
}

fn is_pseudonym(label: &str) -> bool {
    label.len() >= 2
        && label.starts_with('P')
        && label[1..].chars().all(|c| c.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transcript::Transcript;

    fn anon_transcript() -> Transcript {
        let mut t = Transcript::new("T1", "call");
        t.participant("Maria", "we fix the tower ourselves");
        t.anonymize(&["Maria"])
    }

    fn policy_granting(p: &str) -> EthicsPolicy {
        let mut pol = EthicsPolicy::with_irb("IRB-2025-017");
        pol.record_consent(p, ConsentStatus::Granted, true);
        pol
    }

    #[test]
    fn export_allowed_when_all_guardrails_pass() {
        let t = anon_transcript();
        let pol = policy_granting("P1");
        pol.check_export(&t).unwrap();
    }

    #[test]
    fn export_blocked_without_irb() {
        let t = anon_transcript();
        let mut pol = EthicsPolicy::default();
        pol.record_consent("P1", ConsentStatus::Granted, true);
        assert!(matches!(
            pol.check_export(&t),
            Err(QualError::EthicsViolation(_))
        ));
    }

    #[test]
    fn export_blocked_without_consent() {
        let t = anon_transcript();
        let pol = EthicsPolicy::with_irb("IRB-1");
        assert!(pol.check_export(&t).is_err());
    }

    #[test]
    fn export_blocked_after_withdrawal() {
        let t = anon_transcript();
        let mut pol = policy_granting("P1");
        pol.record_consent("P1", ConsentStatus::Withdrawn, true);
        let err = pol.check_export(&t).unwrap_err();
        assert!(format!("{err}").contains("withdrew"));
    }

    #[test]
    fn export_blocked_for_unanonymized_transcript() {
        let mut t = Transcript::new("T1", "call");
        t.participant("Maria", "hello");
        let pol = policy_granting("Maria");
        let err = pol.check_export(&t).unwrap_err();
        assert!(format!("{err}").contains("pseudonymized"));
    }

    #[test]
    fn quote_guardrails() {
        let mut pol = policy_granting("P1");
        pol.check_quote("P1").unwrap();
        pol.record_consent("P2", ConsentStatus::Granted, false);
        assert!(pol.check_quote("P2").is_err());
        assert!(pol.check_quote("P9").is_err());
    }

    #[test]
    fn consent_record_replacement() {
        let mut pol = EthicsPolicy::with_irb("IRB-1");
        pol.record_consent("P1", ConsentStatus::Granted, true);
        pol.record_consent("P1", ConsentStatus::Withdrawn, false);
        assert_eq!(pol.consents.len(), 1);
        assert_eq!(pol.status_of("P1"), ConsentStatus::Withdrawn);
        assert_eq!(pol.status_of("P2"), ConsentStatus::Missing);
    }

    #[test]
    fn pseudonym_detection() {
        assert!(is_pseudonym("P1"));
        assert!(is_pseudonym("P42"));
        assert!(!is_pseudonym("Maria"));
        assert!(!is_pseudonym("P"));
        assert!(!is_pseudonym("Px"));
    }
}
