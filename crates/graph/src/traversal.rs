//! Traversals, shortest paths, and connectivity.

use crate::graph::{Graph, NodeId};
use crate::{GraphError, Result};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Unweighted BFS distances from `source` to every node.
/// Unreachable nodes get `usize::MAX`.
pub fn bfs_distances(g: &Graph, source: NodeId) -> Result<Vec<usize>> {
    if source >= g.node_count() {
        return Err(GraphError::InvalidNode(source));
    }
    let mut dist = vec![usize::MAX; g.node_count()];
    dist[source] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &(v, _) in g.neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    Ok(dist)
}

/// Shortest unweighted path from `from` to `to` as a node sequence
/// (inclusive of both endpoints). Errors when no path exists.
pub fn shortest_path(g: &Graph, from: NodeId, to: NodeId) -> Result<Vec<NodeId>> {
    if from >= g.node_count() {
        return Err(GraphError::InvalidNode(from));
    }
    if to >= g.node_count() {
        return Err(GraphError::InvalidNode(to));
    }
    let mut prev = vec![usize::MAX; g.node_count()];
    let mut seen = vec![false; g.node_count()];
    seen[from] = true;
    let mut queue = VecDeque::new();
    queue.push_back(from);
    while let Some(u) = queue.pop_front() {
        if u == to {
            break;
        }
        for &(v, _) in g.neighbors(u) {
            if !seen[v] {
                seen[v] = true;
                prev[v] = u;
                queue.push_back(v);
            }
        }
    }
    if !seen[to] {
        return Err(GraphError::NoPath { from, to });
    }
    let mut path = vec![to];
    let mut cur = to;
    while cur != from {
        cur = prev[cur];
        path.push(cur);
    }
    path.reverse();
    Ok(path)
}

#[derive(PartialEq)]
struct HeapItem {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance: reverse the comparison.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra single-source shortest path distances over edge weights, which
/// must all be nonnegative. Unreachable nodes get `f64::INFINITY`.
pub fn dijkstra(g: &Graph, source: NodeId) -> Result<Vec<f64>> {
    if source >= g.node_count() {
        return Err(GraphError::InvalidNode(source));
    }
    for e in g.edges() {
        if e.weight < 0.0 {
            return Err(GraphError::InvalidParameter("dijkstra requires nonnegative weights"));
        }
    }
    let mut dist = vec![f64::INFINITY; g.node_count()];
    dist[source] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapItem {
        dist: 0.0,
        node: source,
    });
    while let Some(HeapItem { dist: d, node: u }) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for &(v, w) in g.neighbors(u) {
            let nd = d + w;
            if nd < dist[v] {
                dist[v] = nd;
                heap.push(HeapItem { dist: nd, node: v });
            }
        }
    }
    Ok(dist)
}

/// Dijkstra with path reconstruction: shortest weighted path from `from`
/// to `to` as `(node sequence, total distance)`. Errors when no path
/// exists or any weight is negative.
pub fn dijkstra_path(g: &Graph, from: NodeId, to: NodeId) -> Result<(Vec<NodeId>, f64)> {
    if from >= g.node_count() {
        return Err(GraphError::InvalidNode(from));
    }
    if to >= g.node_count() {
        return Err(GraphError::InvalidNode(to));
    }
    for e in g.edges() {
        if e.weight < 0.0 {
            return Err(GraphError::InvalidParameter("dijkstra requires nonnegative weights"));
        }
    }
    let mut dist = vec![f64::INFINITY; g.node_count()];
    let mut prev = vec![usize::MAX; g.node_count()];
    dist[from] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapItem {
        dist: 0.0,
        node: from,
    });
    while let Some(HeapItem { dist: d, node: u }) = heap.pop() {
        if u == to {
            break;
        }
        if d > dist[u] {
            continue;
        }
        for &(v, w) in g.neighbors(u) {
            let nd = d + w;
            if nd < dist[v] {
                dist[v] = nd;
                prev[v] = u;
                heap.push(HeapItem { dist: nd, node: v });
            }
        }
    }
    if dist[to].is_infinite() {
        return Err(GraphError::NoPath { from, to });
    }
    let mut path = vec![to];
    let mut cur = to;
    while cur != from {
        cur = prev[cur];
        path.push(cur);
    }
    path.reverse();
    Ok((path, dist[to]))
}

/// Connected components of an undirected graph (weakly connected components
/// if the graph is directed — edges are followed both ways using the
/// predecessor lists). Returns a component label per node, with labels
/// numbered from 0 in order of first appearance.
pub fn connected_components(g: &Graph) -> Vec<usize> {
    let n = g.node_count();
    let mut label = vec![usize::MAX; n];
    let mut next = 0;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if label[start] != usize::MAX {
            continue;
        }
        label[start] = next;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            let forward = g.neighbors(u).iter().map(|&(v, _)| v);
            let backward = g.predecessors(u).iter().map(|&(v, _)| v);
            for v in forward.chain(backward) {
                if label[v] == usize::MAX {
                    label[v] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    label
}

/// Number of connected components.
pub fn component_count(g: &Graph) -> usize {
    connected_components(g).iter().copied().max().map_or(0, |m| m + 1)
}

/// Size of the largest connected component (0 for an empty graph).
pub fn largest_component_size(g: &Graph) -> usize {
    let labels = connected_components(g);
    if labels.is_empty() {
        return 0;
    }
    let k = labels.iter().copied().max().unwrap() + 1;
    let mut sizes = vec![0usize; k];
    for &l in &labels {
        sizes[l] += 1;
    }
    sizes.into_iter().max().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::undirected(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1).unwrap();
        }
        g
    }

    #[test]
    fn bfs_on_path() {
        let g = path_graph(5);
        let d = bfs_distances(&g, 0).unwrap();
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_unreachable_is_max() {
        let mut g = Graph::undirected(3);
        g.add_edge(0, 1).unwrap();
        let d = bfs_distances(&g, 0).unwrap();
        assert_eq!(d[2], usize::MAX);
    }

    #[test]
    fn shortest_path_endpoints() {
        let g = path_graph(4);
        let p = shortest_path(&g, 0, 3).unwrap();
        assert_eq!(p, vec![0, 1, 2, 3]);
        let p = shortest_path(&g, 2, 2).unwrap();
        assert_eq!(p, vec![2]);
    }

    #[test]
    fn shortest_path_no_route() {
        let g = Graph::undirected(2);
        assert_eq!(
            shortest_path(&g, 0, 1).unwrap_err(),
            GraphError::NoPath { from: 0, to: 1 }
        );
    }

    #[test]
    fn shortest_path_prefers_fewer_hops() {
        let mut g = Graph::undirected(4);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 3).unwrap();
        g.add_edge(0, 2).unwrap();
        g.add_edge(2, 3).unwrap();
        g.add_edge(0, 3).unwrap();
        assert_eq!(shortest_path(&g, 0, 3).unwrap(), vec![0, 3]);
    }

    #[test]
    fn dijkstra_weighted_route() {
        let mut g = Graph::undirected(4);
        g.add_weighted_edge(0, 1, 1.0).unwrap();
        g.add_weighted_edge(1, 3, 1.0).unwrap();
        g.add_weighted_edge(0, 3, 10.0).unwrap();
        g.add_weighted_edge(0, 2, 2.0).unwrap();
        let d = dijkstra(&g, 0).unwrap();
        assert_eq!(d[3], 2.0);
        assert_eq!(d[2], 2.0);
        assert_eq!(d[0], 0.0);
    }

    #[test]
    fn dijkstra_rejects_negative_weight() {
        let mut g = Graph::undirected(2);
        g.add_weighted_edge(0, 1, -1.0).unwrap();
        assert!(dijkstra(&g, 0).is_err());
    }

    #[test]
    fn dijkstra_unreachable_is_infinite() {
        let g = Graph::undirected(2);
        let d = dijkstra(&g, 0).unwrap();
        assert_eq!(d[1], f64::INFINITY);
    }

    #[test]
    fn dijkstra_directed_respects_direction() {
        let mut g = Graph::directed(2);
        g.add_edge(0, 1).unwrap();
        assert_eq!(dijkstra(&g, 1).unwrap()[0], f64::INFINITY);
        assert_eq!(dijkstra(&g, 0).unwrap()[1], 1.0);
    }

    #[test]
    fn dijkstra_path_reconstruction() {
        let mut g = Graph::undirected(4);
        g.add_weighted_edge(0, 1, 1.0).unwrap();
        g.add_weighted_edge(1, 3, 1.0).unwrap();
        g.add_weighted_edge(0, 3, 5.0).unwrap();
        g.add_weighted_edge(0, 2, 1.0).unwrap();
        let (path, d) = dijkstra_path(&g, 0, 3).unwrap();
        assert_eq!(path, vec![0, 1, 3]);
        assert_eq!(d, 2.0);
        let (self_path, d0) = dijkstra_path(&g, 2, 2).unwrap();
        assert_eq!(self_path, vec![2]);
        assert_eq!(d0, 0.0);
    }

    #[test]
    fn dijkstra_path_errors() {
        let g = Graph::undirected(2);
        assert_eq!(
            dijkstra_path(&g, 0, 1).unwrap_err(),
            GraphError::NoPath { from: 0, to: 1 }
        );
        assert!(dijkstra_path(&g, 0, 9).is_err());
    }

    #[test]
    fn components_on_forest() {
        let mut g = Graph::undirected(6);
        g.add_edge(0, 1).unwrap();
        g.add_edge(2, 3).unwrap();
        g.add_edge(3, 4).unwrap();
        let labels = connected_components(&g);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[5], labels[0]);
        assert_eq!(component_count(&g), 3);
        assert_eq!(largest_component_size(&g), 3);
    }

    #[test]
    fn weak_components_on_directed() {
        let mut g = Graph::directed(3);
        g.add_edge(0, 1).unwrap();
        g.add_edge(2, 1).unwrap();
        assert_eq!(component_count(&g), 1);
    }

    #[test]
    fn empty_graph_components() {
        let g = Graph::undirected(0);
        assert_eq!(component_count(&g), 0);
        assert_eq!(largest_component_size(&g), 0);
    }
}
