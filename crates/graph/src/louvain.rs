//! Louvain community detection (Blondel et al. 2008), the standard
//! multilevel modularity optimizer.
//!
//! Label propagation ([`crate::community::label_propagation`]) is fast but
//! coarse; Louvain finds higher-modularity partitions on the coauthorship
//! and co-citation graphs the corpus analyses build. The implementation is
//! deterministic: nodes are visited in index order, ties break toward the
//! smaller community id.

use crate::community::Partition;
use crate::graph::Graph;
use crate::{GraphError, Result};

/// Internal working graph: adjacency with weights plus per-node self-loop
/// weight (aggregation creates self-loops that [`Graph`] does not allow).
struct WorkGraph {
    adj: Vec<Vec<(usize, f64)>>,
    self_weight: Vec<f64>,
}

impl WorkGraph {
    fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Weighted degree including twice the self-loop (standard convention).
    fn degree(&self, v: usize) -> f64 {
        self.adj[v].iter().map(|&(_, w)| w).sum::<f64>() + 2.0 * self.self_weight[v]
    }

    /// Total edge weight m (self-loops counted once).
    fn total_weight(&self) -> f64 {
        let half: f64 = self
            .adj
            .iter()
            .flat_map(|nbrs| nbrs.iter().map(|&(_, w)| w))
            .sum();
        half / 2.0 + self.self_weight.iter().sum::<f64>()
    }
}

/// One level of local moving. Returns (community per node, improved?).
fn local_moving(g: &WorkGraph, m: f64) -> (Vec<usize>, bool) {
    let n = g.node_count();
    let mut community: Vec<usize> = (0..n).collect();
    // Sum of degrees per community.
    let mut sigma_tot: Vec<f64> = (0..n).map(|v| g.degree(v)).collect();
    let mut improved_any = false;
    let mut improved = true;
    let mut guard = 0;
    while improved && guard < 100 {
        improved = false;
        guard += 1;
        for v in 0..n {
            let kv = g.degree(v);
            let current = community[v];
            // Weights from v to each neighbouring community.
            let mut links: std::collections::HashMap<usize, f64> =
                std::collections::HashMap::new();
            for &(u, w) in &g.adj[v] {
                *links.entry(community[u]).or_insert(0.0) += w;
            }
            // Remove v from its community.
            sigma_tot[current] -= kv;
            let base_link = links.get(&current).copied().unwrap_or(0.0);
            // Gain of staying put.
            let mut best_comm = current;
            let mut best_gain = base_link - sigma_tot[current] * kv / (2.0 * m);
            let mut comms: Vec<usize> = links.keys().copied().collect();
            comms.sort_unstable();
            for c in comms {
                if c == current {
                    continue;
                }
                let gain = links[&c] - sigma_tot[c] * kv / (2.0 * m);
                if gain > best_gain + 1e-12 {
                    best_gain = gain;
                    best_comm = c;
                } else if (gain - best_gain).abs() <= 1e-12 && c < best_comm {
                    best_comm = c;
                }
            }
            sigma_tot[best_comm] += kv;
            if best_comm != current {
                community[v] = best_comm;
                improved = true;
                improved_any = true;
            }
        }
    }
    (community, improved_any)
}

/// Aggregate communities into a smaller work graph.
fn aggregate(g: &WorkGraph, community: &[usize]) -> (WorkGraph, Vec<usize>) {
    // Compact community labels.
    let mut remap: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    let mut compact = vec![0usize; community.len()];
    for (v, &c) in community.iter().enumerate() {
        let next = remap.len();
        compact[v] = *remap.entry(c).or_insert(next);
    }
    let k = remap.len();
    let mut self_weight = vec![0.0; k];
    let mut pair_weight: std::collections::HashMap<(usize, usize), f64> =
        std::collections::HashMap::new();
    for v in 0..g.node_count() {
        self_weight[compact[v]] += g.self_weight[v];
        for &(u, w) in &g.adj[v] {
            if u < v {
                continue; // each undirected edge visited once
            }
            let (a, b) = (compact[v], compact[u]);
            if a == b {
                self_weight[a] += w;
            } else {
                let key = (a.min(b), a.max(b));
                *pair_weight.entry(key).or_insert(0.0) += w;
            }
        }
    }
    let mut adj = vec![Vec::new(); k];
    let mut pairs: Vec<((usize, usize), f64)> = pair_weight.into_iter().collect();
    pairs.sort_by_key(|&(key, _)| key);
    for ((a, b), w) in pairs {
        adj[a].push((b, w));
        adj[b].push((a, w));
    }
    (WorkGraph { adj, self_weight }, compact)
}

/// Run Louvain to convergence. Errors on directed or edgeless graphs.
pub fn louvain(graph: &Graph) -> Result<Partition> {
    if graph.is_directed() {
        return Err(GraphError::InvalidParameter("louvain requires an undirected graph"));
    }
    if graph.edge_count() == 0 {
        return Err(GraphError::InvalidParameter("louvain requires edges"));
    }
    // Build the initial work graph.
    let n = graph.node_count();
    let mut work = WorkGraph {
        adj: (0..n)
            .map(|v| graph.neighbors(v).to_vec())
            .collect(),
        self_weight: vec![0.0; n],
    };
    let m = work.total_weight();
    // node -> community mapping through the levels.
    let mut membership: Vec<usize> = (0..n).collect();
    let mut guard = 0;
    loop {
        guard += 1;
        let (community, improved) = local_moving(&work, m);
        if !improved || guard > 20 {
            break;
        }
        let (aggregated, compact) = aggregate(&work, &community);
        // Update the global membership: each original node follows its
        // current community through the compaction.
        for slot in membership.iter_mut() {
            *slot = compact[community[*slot]];
        }
        if aggregated.node_count() == work.node_count() {
            break; // no further aggregation possible
        }
        work = aggregated;
    }
    Ok(Partition::from_labels(&membership))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::community::modularity;
    use crate::generators::{complete, ring};
    use crate::graph::{Direction, Graph};
    use humnet_stats::Rng;

    fn planted_partition(groups: usize, size: usize, p_in: f64, p_out: f64, seed: u64) -> Graph {
        let mut rng = Rng::new(seed);
        let n = groups * size;
        let mut g = Graph::undirected(n);
        for a in 0..n {
            for b in (a + 1)..n {
                let same = a / size == b / size;
                let p = if same { p_in } else { p_out };
                if rng.chance(p) {
                    g.add_edge(a, b).unwrap();
                }
            }
        }
        g
    }

    #[test]
    fn recovers_planted_communities() {
        let g = planted_partition(4, 12, 0.8, 0.02, 7);
        let p = louvain(&g).unwrap();
        // Every planted group should be (almost) entirely one community.
        for group in 0..4 {
            let labels: Vec<usize> =
                (0..12).map(|i| p.membership[group * 12 + i]).collect();
            let first = labels[0];
            let same = labels.iter().filter(|&&l| l == first).count();
            assert!(same >= 11, "group {group} split: {labels:?}");
        }
        let q = modularity(&g, &p).unwrap();
        assert!(q > 0.5, "q = {q}");
    }

    #[test]
    fn beats_or_matches_trivial_partition() {
        let g = planted_partition(3, 10, 0.7, 0.05, 3);
        let p = louvain(&g).unwrap();
        let q = modularity(&g, &p).unwrap();
        let trivial = crate::community::Partition::from_labels(&vec![0; g.node_count()]);
        let q0 = modularity(&g, &trivial).unwrap();
        assert!(q > q0);
    }

    #[test]
    fn complete_graph_is_one_community() {
        let g = complete(8);
        let p = louvain(&g).unwrap();
        assert_eq!(p.community_count(), 1);
    }

    #[test]
    fn deterministic() {
        let g = planted_partition(3, 8, 0.8, 0.05, 11);
        assert_eq!(louvain(&g).unwrap(), louvain(&g).unwrap());
    }

    #[test]
    fn ring_partitions_into_arcs() {
        let g = ring(12).unwrap();
        let p = louvain(&g).unwrap();
        // A ring has weak structure; Louvain still groups adjacent nodes.
        assert!(p.community_count() > 1);
        assert!(p.community_count() < 12);
        let q = modularity(&g, &p).unwrap();
        assert!(q > 0.0);
    }

    #[test]
    fn rejects_directed_and_edgeless() {
        let mut d = Graph::new(Direction::Directed);
        d.add_nodes(3);
        d.add_edge(0, 1).unwrap();
        assert!(louvain(&d).is_err());
        let empty = Graph::undirected(5);
        assert!(louvain(&empty).is_err());
    }
}
