//! Centrality measures: degree, closeness, PageRank, Brandes betweenness.
//!
//! The corpus crate uses PageRank over citation graphs to rank influence,
//! and betweenness over AS topologies to identify choke-point networks
//! (experiment **F4**: giant IXPs becoming "alternatives to Tier 1").

use crate::graph::{Graph, NodeId};
use crate::traversal::bfs_distances;
use crate::{GraphError, Result};
use std::collections::VecDeque;

/// Degree centrality: degree divided by `n − 1` (0 for a single-node graph).
pub fn degree_centrality(g: &Graph) -> Vec<f64> {
    let n = g.node_count();
    if n <= 1 {
        return vec![0.0; n];
    }
    (0..n)
        .map(|u| g.degree(u) as f64 / (n - 1) as f64)
        .collect()
}

/// Closeness centrality with the Wasserman–Faust correction for
/// disconnected graphs: for node `u` reaching `r` other nodes with total
/// distance `s`, closeness is `(r / (n−1)) · (r / s)`. Isolated nodes get 0.
pub fn closeness_centrality(g: &Graph) -> Result<Vec<f64>> {
    let n = g.node_count();
    if n == 0 {
        return Err(GraphError::EmptyGraph);
    }
    let mut out = vec![0.0; n];
    for u in 0..n {
        let dist = bfs_distances(g, u)?;
        let mut reach = 0usize;
        let mut total = 0usize;
        for (v, &d) in dist.iter().enumerate() {
            if v != u && d != usize::MAX {
                reach += 1;
                total += d;
            }
        }
        if reach > 0 && total > 0 && n > 1 {
            out[u] = (reach as f64 / (n - 1) as f64) * (reach as f64 / total as f64);
        }
    }
    Ok(out)
}

/// PageRank with damping factor `d` (typically 0.85), run until the L1
/// change drops below `tol` or `max_iter` iterations elapse.
///
/// Dangling nodes (no out-edges) distribute their mass uniformly, the
/// standard fix. Works on directed and undirected graphs (an undirected
/// edge acts as two directed ones). Returns a probability vector that sums
/// to 1.
pub fn pagerank(g: &Graph, d: f64, tol: f64, max_iter: usize) -> Result<Vec<f64>> {
    let n = g.node_count();
    if n == 0 {
        return Err(GraphError::EmptyGraph);
    }
    if !(0.0..1.0).contains(&d) {
        return Err(GraphError::InvalidParameter("damping must be in [0, 1)"));
    }
    if tol <= 0.0 {
        return Err(GraphError::InvalidParameter("tolerance must be positive"));
    }
    let nf = n as f64;
    let mut rank = vec![1.0 / nf; n];
    let mut next = vec![0.0; n];
    for _ in 0..max_iter {
        // Base teleportation mass.
        for slot in next.iter_mut() {
            *slot = (1.0 - d) / nf;
        }
        let mut dangling = 0.0;
        for u in 0..n {
            let deg = g.degree(u);
            if deg == 0 {
                dangling += rank[u];
            } else {
                let share = d * rank[u] / deg as f64;
                for &(v, _) in g.neighbors(u) {
                    next[v] += share;
                }
            }
        }
        if dangling > 0.0 {
            let spread = d * dangling / nf;
            for slot in next.iter_mut() {
                *slot += spread;
            }
        }
        let delta: f64 = rank
            .iter()
            .zip(&next)
            .map(|(a, b)| (a - b).abs())
            .sum();
        std::mem::swap(&mut rank, &mut next);
        if delta < tol {
            break;
        }
    }
    Ok(rank)
}

/// Brandes' algorithm for (unweighted) betweenness centrality.
///
/// Returns raw betweenness scores; for undirected graphs each pair is
/// counted once (scores halved, per convention).
pub fn betweenness_centrality(g: &Graph) -> Result<Vec<f64>> {
    let n = g.node_count();
    if n == 0 {
        return Err(GraphError::EmptyGraph);
    }
    let mut bc = vec![0.0; n];
    // Reusable buffers.
    let mut sigma = vec![0.0f64; n];
    let mut dist = vec![-1i64; n];
    let mut delta = vec![0.0f64; n];
    let mut preds: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for s in 0..n {
        // Reset.
        for v in 0..n {
            sigma[v] = 0.0;
            dist[v] = -1;
            delta[v] = 0.0;
            preds[v].clear();
        }
        sigma[s] = 1.0;
        dist[s] = 0;
        let mut stack: Vec<NodeId> = Vec::new();
        let mut queue = VecDeque::new();
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            stack.push(u);
            for &(v, _) in g.neighbors(u) {
                if dist[v] < 0 {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
                if dist[v] == dist[u] + 1 {
                    sigma[v] += sigma[u];
                    preds[v].push(u);
                }
            }
        }
        while let Some(w) = stack.pop() {
            for &u in &preds[w] {
                delta[u] += sigma[u] / sigma[w] * (1.0 + delta[w]);
            }
            if w != s {
                bc[w] += delta[w];
            }
        }
    }
    if !g.is_directed() {
        for b in bc.iter_mut() {
            *b /= 2.0;
        }
    }
    Ok(bc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete, star};
    use crate::graph::Graph;

    #[test]
    fn degree_centrality_star() {
        let g = star(5); // hub 0 + 4 leaves
        let c = degree_centrality(&g);
        assert_eq!(c[0], 1.0);
        for leaf in 1..5 {
            assert!((c[leaf] - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn degree_centrality_trivial_graphs() {
        assert!(degree_centrality(&Graph::undirected(0)).is_empty());
        assert_eq!(degree_centrality(&Graph::undirected(1)), vec![0.0]);
    }

    #[test]
    fn closeness_star_hub_is_max() {
        let g = star(6);
        let c = closeness_centrality(&g).unwrap();
        assert_eq!(c[0], 1.0);
        for leaf in 1..6 {
            assert!(c[leaf] < c[0]);
        }
    }

    #[test]
    fn closeness_isolated_node_zero() {
        let g = Graph::undirected(3);
        let c = closeness_centrality(&g).unwrap();
        assert!(c.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn pagerank_sums_to_one_and_uniform_on_complete() {
        let g = complete(5);
        let pr = pagerank(&g, 0.85, 1e-12, 200).unwrap();
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        for &p in &pr {
            assert!((p - 0.2).abs() < 1e-9);
        }
    }

    #[test]
    fn pagerank_hub_dominates_star() {
        let g = star(10);
        let pr = pagerank(&g, 0.85, 1e-12, 200).unwrap();
        assert!(pr[0] > pr[1] * 2.0);
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pagerank_handles_dangling_nodes() {
        let mut g = Graph::directed(3);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        // Node 2 dangles.
        let pr = pagerank(&g, 0.85, 1e-12, 500).unwrap();
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(pr[2] > pr[0], "sink should accumulate rank");
    }

    #[test]
    fn pagerank_dangling_chain_reference_values() {
        // Independent fixed-point reference for 0→1→2 with node 2 dangling
        // (d = 0.85): r ≈ [0.18442, 0.34117, 0.47441].
        let mut g = Graph::directed(3);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        let pr = pagerank(&g, 0.85, 1e-14, 2000).unwrap();
        let expected = [0.184_416_781_9, 0.341_171_046_6, 0.474_412_171_5];
        for (got, want) in pr.iter().zip(expected) {
            assert!((got - want).abs() < 1e-8, "pr = {pr:?}");
        }
    }

    #[test]
    fn pagerank_rejects_bad_params() {
        let g = complete(3);
        assert!(pagerank(&g, 1.0, 1e-9, 10).is_err());
        assert!(pagerank(&g, 0.85, 0.0, 10).is_err());
        assert!(pagerank(&Graph::undirected(0), 0.85, 1e-9, 10).is_err());
    }

    #[test]
    fn betweenness_path_center() {
        // Path 0-1-2: node 1 lies on the single 0↔2 shortest path.
        let mut g = Graph::undirected(3);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        let bc = betweenness_centrality(&g).unwrap();
        assert!((bc[1] - 1.0).abs() < 1e-12, "bc = {bc:?}");
        assert_eq!(bc[0], 0.0);
        assert_eq!(bc[2], 0.0);
    }

    #[test]
    fn betweenness_star_hub() {
        // Star with k leaves: hub is on all C(k, 2) leaf pairs' paths.
        let g = star(5);
        let bc = betweenness_centrality(&g).unwrap();
        assert!((bc[0] - 6.0).abs() < 1e-12, "C(4,2) = 6, got {}", bc[0]);
    }

    #[test]
    fn betweenness_complete_graph_zero() {
        let g = complete(5);
        let bc = betweenness_centrality(&g).unwrap();
        assert!(bc.iter().all(|&b| b.abs() < 1e-12));
    }

    #[test]
    fn betweenness_cycle_c5_reference() {
        // Brute-force reference (all shortest paths enumerated externally):
        // every node of C5 has betweenness exactly 1.0.
        let g = crate::generators::ring(5).unwrap();
        let bc = betweenness_centrality(&g).unwrap();
        for &b in &bc {
            assert!((b - 1.0).abs() < 1e-12, "bc = {bc:?}");
        }
    }

    #[test]
    fn betweenness_split_paths() {
        // Diamond: 0-1-3, 0-2-3. Nodes 1 and 2 each carry half the 0↔3 pair.
        let mut g = Graph::undirected(4);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 3).unwrap();
        g.add_edge(0, 2).unwrap();
        g.add_edge(2, 3).unwrap();
        let bc = betweenness_centrality(&g).unwrap();
        assert!((bc[1] - 0.5).abs() < 1e-12);
        assert!((bc[2] - 0.5).abs() < 1e-12);
    }
}
