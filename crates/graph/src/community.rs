//! Community detection: modularity and deterministic label propagation.

use crate::graph::Graph;
use crate::{GraphError, Result};
use humnet_stats::Rng;
use std::collections::HashMap;

/// A partition of graph nodes into communities: `membership[v]` is the
/// community label of node `v` (labels are dense, `0..community_count`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Community label per node.
    pub membership: Vec<usize>,
}

impl Partition {
    /// Construct from raw labels, compacting them to `0..k`.
    pub fn from_labels(labels: &[usize]) -> Self {
        let mut remap: HashMap<usize, usize> = HashMap::new();
        let mut membership = Vec::with_capacity(labels.len());
        for &l in labels {
            let next = remap.len();
            let id = *remap.entry(l).or_insert(next);
            membership.push(id);
        }
        Partition { membership }
    }

    /// Number of communities.
    pub fn community_count(&self) -> usize {
        self.membership.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// Sizes of each community.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0; self.community_count()];
        for &c in &self.membership {
            sizes[c] += 1;
        }
        sizes
    }

    /// Members of a given community.
    pub fn members(&self, community: usize) -> Vec<usize> {
        self.membership
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == community)
            .map(|(v, _)| v)
            .collect()
    }
}

/// Newman modularity `Q` of a partition on an undirected weighted graph:
/// `Q = (1/2m) Σ_ij [A_ij − k_i k_j / 2m] δ(c_i, c_j)`.
///
/// Q near 0 means no community structure beyond chance; dense intra-community
/// graphs reach 0.3–0.7.
pub fn modularity(g: &Graph, partition: &Partition) -> Result<f64> {
    if g.is_directed() {
        return Err(GraphError::InvalidParameter("modularity requires an undirected graph"));
    }
    if partition.membership.len() != g.node_count() {
        return Err(GraphError::InvalidParameter("partition size != node count"));
    }
    let two_m = 2.0 * g.total_weight();
    if two_m <= 0.0 {
        return Err(GraphError::InvalidParameter("modularity undefined on an edgeless graph"));
    }
    // Intra-community edge weight and community degree sums.
    let k = partition.community_count();
    let mut intra = vec![0.0; k];
    let mut deg = vec![0.0; k];
    for v in g.nodes() {
        deg[partition.membership[v]] += g.weighted_degree(v);
    }
    for e in g.edges() {
        if partition.membership[e.from] == partition.membership[e.to] {
            intra[partition.membership[e.from]] += e.weight;
        }
    }
    let mut q = 0.0;
    for c in 0..k {
        q += intra[c] / (two_m / 2.0) - (deg[c] / two_m) * (deg[c] / two_m);
    }
    Ok(q)
}

/// Asynchronous label propagation (Raghavan et al. 2007), made deterministic
/// by seeding the visit order from the provided RNG.
///
/// Each node repeatedly adopts the label carrying the greatest total edge
/// weight among its neighbours (ties broken by smallest label) until no
/// label changes or `max_sweeps` is reached. Returns the compacted
/// partition.
pub fn label_propagation(g: &Graph, rng: &mut Rng, max_sweeps: usize) -> Result<Partition> {
    if g.is_directed() {
        return Err(GraphError::InvalidParameter(
            "label propagation requires an undirected graph",
        ));
    }
    let n = g.node_count();
    let mut labels: Vec<usize> = (0..n).collect();
    let mut order: Vec<usize> = (0..n).collect();
    for _ in 0..max_sweeps {
        rng.shuffle(&mut order);
        let mut changed = false;
        for &v in &order {
            if g.degree(v) == 0 {
                continue;
            }
            // Tally neighbour labels by weight.
            let mut tally: HashMap<usize, f64> = HashMap::new();
            for &(u, w) in g.neighbors(v) {
                *tally.entry(labels[u]).or_insert(0.0) += w;
            }
            // Pick heaviest label; ties -> smallest label id for determinism.
            let mut best_label = labels[v];
            let mut best_weight = f64::NEG_INFINITY;
            let mut keys: Vec<usize> = tally.keys().copied().collect();
            keys.sort_unstable();
            for l in keys {
                let w = tally[&l];
                if w > best_weight {
                    best_weight = w;
                    best_label = l;
                }
            }
            if best_label != labels[v] {
                labels[v] = best_label;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Ok(Partition::from_labels(&labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::complete;
    use crate::graph::Graph;

    /// Two 5-cliques joined by a single bridge edge.
    fn two_cliques() -> Graph {
        let mut g = Graph::undirected(10);
        for u in 0..5 {
            for v in (u + 1)..5 {
                g.add_edge(u, v).unwrap();
            }
        }
        for u in 5..10 {
            for v in (u + 1)..10 {
                g.add_edge(u, v).unwrap();
            }
        }
        g.add_edge(4, 5).unwrap();
        g
    }

    #[test]
    fn partition_compacts_labels() {
        let p = Partition::from_labels(&[7, 7, 3, 9, 3]);
        assert_eq!(p.membership, vec![0, 0, 1, 2, 1]);
        assert_eq!(p.community_count(), 3);
        assert_eq!(p.sizes(), vec![2, 2, 1]);
        assert_eq!(p.members(1), vec![2, 4]);
    }

    #[test]
    fn modularity_of_true_split_is_high() {
        let g = two_cliques();
        let labels: Vec<usize> = (0..10).map(|v| if v < 5 { 0 } else { 1 }).collect();
        let q = modularity(&g, &Partition::from_labels(&labels)).unwrap();
        assert!(q > 0.4, "q = {q}");
    }

    #[test]
    fn modularity_of_single_community_is_zero() {
        let g = two_cliques();
        let q = modularity(&g, &Partition::from_labels(&[0; 10])).unwrap();
        assert!(q.abs() < 1e-12, "q = {q}");
    }

    #[test]
    fn modularity_of_bad_split_is_lower() {
        let g = two_cliques();
        let good: Vec<usize> = (0..10).map(|v| if v < 5 { 0 } else { 1 }).collect();
        let bad: Vec<usize> = (0..10).map(|v| v % 2).collect();
        let qg = modularity(&g, &Partition::from_labels(&good)).unwrap();
        let qb = modularity(&g, &Partition::from_labels(&bad)).unwrap();
        assert!(qg > qb);
    }

    #[test]
    fn modularity_rejects_size_mismatch() {
        let g = complete(3);
        assert!(modularity(&g, &Partition::from_labels(&[0, 1])).is_err());
    }

    #[test]
    fn label_propagation_finds_two_cliques() {
        let g = two_cliques();
        let mut rng = Rng::new(11);
        let p = label_propagation(&g, &mut rng, 50).unwrap();
        // Nodes within each clique share a label.
        for u in 1..5 {
            assert_eq!(p.membership[u], p.membership[0]);
        }
        for u in 6..10 {
            assert_eq!(p.membership[u], p.membership[5]);
        }
        let q = modularity(&g, &p).unwrap();
        assert!(q > 0.3, "q = {q}");
    }

    #[test]
    fn label_propagation_deterministic_per_seed() {
        let g = two_cliques();
        let p1 = label_propagation(&g, &mut Rng::new(5), 50).unwrap();
        let p2 = label_propagation(&g, &mut Rng::new(5), 50).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn isolated_nodes_keep_own_labels() {
        let mut g = Graph::undirected(4);
        g.add_edge(0, 1).unwrap();
        let p = label_propagation(&g, &mut Rng::new(1), 10).unwrap();
        assert_eq!(p.membership[0], p.membership[1]);
        assert_ne!(p.membership[2], p.membership[3]);
    }
}
