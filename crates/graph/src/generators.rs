//! Graph generators: deterministic shapes and seeded random models.

use crate::graph::Graph;
use crate::{GraphError, Result};
use humnet_stats::Rng;

/// Complete graph on `n` nodes.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::undirected(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u, v).expect("valid nodes");
        }
    }
    g
}

/// Star graph: node 0 is the hub, nodes `1..n` are leaves.
pub fn star(n: usize) -> Graph {
    let mut g = Graph::undirected(n);
    for v in 1..n {
        g.add_edge(0, v).expect("valid nodes");
    }
    g
}

/// Ring (cycle) graph on `n ≥ 3` nodes.
pub fn ring(n: usize) -> Result<Graph> {
    if n < 3 {
        return Err(GraphError::InvalidParameter("ring needs n >= 3"));
    }
    let mut g = Graph::undirected(n);
    for u in 0..n {
        g.add_edge(u, (u + 1) % n).expect("valid nodes");
    }
    Ok(g)
}

/// Erdős–Rényi G(n, p): each of the C(n, 2) possible edges appears
/// independently with probability `p`.
pub fn erdos_renyi(n: usize, p: f64, rng: &mut Rng) -> Result<Graph> {
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameter("p must be in [0, 1]"));
    }
    let mut g = Graph::undirected(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.chance(p) {
                g.add_edge(u, v).expect("valid nodes");
            }
        }
    }
    Ok(g)
}

/// Barabási–Albert preferential attachment: start from a clique of `m`
/// nodes, then attach each new node to `m` distinct existing nodes chosen
/// with probability proportional to degree.
///
/// Requires `n > m ≥ 1`. Produces the heavy-tailed degree distributions
/// characteristic of citation and interconnection networks.
pub fn barabasi_albert(n: usize, m: usize, rng: &mut Rng) -> Result<Graph> {
    if m == 0 {
        return Err(GraphError::InvalidParameter("barabasi_albert needs m >= 1"));
    }
    if n <= m {
        return Err(GraphError::InvalidParameter("barabasi_albert needs n > m"));
    }
    let mut g = Graph::undirected(n);
    // Seed clique.
    for u in 0..m {
        for v in (u + 1)..m {
            g.add_edge(u, v).expect("valid nodes");
        }
    }
    // Repeated-endpoint list for degree-proportional sampling. Every
    // attachment step appends 2m entries, so the final length is known up
    // front: m(m-1) clique entries plus 2m per attached node (the m == 1
    // bootstrap below stays within the same bound).
    let mut endpoints: Vec<usize> = Vec::with_capacity(m * (m - 1) + 2 * m * (n - m));
    for u in 0..m {
        for _ in 0..g.degree(u) {
            endpoints.push(u);
        }
    }
    // Special case m == 1: seed "clique" has no edges, so attach node 1 to
    // node 0 unconditionally to bootstrap the endpoint pool.
    let mut start = m;
    if endpoints.is_empty() {
        g.add_edge(0, 1).expect("valid nodes");
        endpoints.push(0);
        endpoints.push(1);
        start = 2.max(m);
    }
    // One scratch buffer reused across attachment steps instead of a fresh
    // allocation per node — at n = 100k that is 100k saved allocations.
    let mut targets: Vec<usize> = Vec::with_capacity(m);
    for new in start..n {
        targets.clear();
        let mut guard = 0;
        while targets.len() < m && guard < 10_000 {
            let t = *rng.choose(&endpoints);
            if !targets.contains(&t) {
                targets.push(t);
            }
            guard += 1;
        }
        for &t in &targets {
            g.add_edge(new, t).expect("valid nodes");
            endpoints.push(new);
            endpoints.push(t);
        }
    }
    Ok(g)
}

/// Watts–Strogatz small-world graph: a ring lattice where each node connects
/// to its `k` nearest neighbours (`k` even, `k < n`), with each edge rewired
/// to a uniformly random endpoint with probability `beta`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, rng: &mut Rng) -> Result<Graph> {
    if !k.is_multiple_of(2) || k == 0 {
        return Err(GraphError::InvalidParameter("watts_strogatz needs even k >= 2"));
    }
    if k >= n {
        return Err(GraphError::InvalidParameter("watts_strogatz needs k < n"));
    }
    if !(0.0..=1.0).contains(&beta) {
        return Err(GraphError::InvalidParameter("beta must be in [0, 1]"));
    }
    let mut g = Graph::undirected(n);
    for u in 0..n {
        for j in 1..=(k / 2) {
            let v = (u + j) % n;
            // Rewire with probability beta.
            if rng.chance(beta) {
                // Pick a random target that isn't u and isn't already adjacent.
                let mut guard = 0;
                loop {
                    let w = rng.range(0, n);
                    if w != u && !g.has_edge(u, w) {
                        g.add_edge(u, w).expect("valid nodes");
                        break;
                    }
                    guard += 1;
                    if guard > 10 * n {
                        // Dense corner case: keep the lattice edge.
                        if !g.has_edge(u, v) {
                            g.add_edge(u, v).expect("valid nodes");
                        }
                        break;
                    }
                }
            } else if !g.has_edge(u, v) {
                g.add_edge(u, v).expect("valid nodes");
            }
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::component_count;

    #[test]
    fn complete_edge_count() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.degree(0), 5);
    }

    #[test]
    fn star_shape() {
        let g = star(7);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.degree(0), 6);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    fn ring_shape() {
        let g = ring(5).unwrap();
        assert_eq!(g.edge_count(), 5);
        for u in 0..5 {
            assert_eq!(g.degree(u), 2);
        }
        assert!(ring(2).is_err());
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = Rng::new(1);
        let empty = erdos_renyi(10, 0.0, &mut rng).unwrap();
        assert_eq!(empty.edge_count(), 0);
        let full = erdos_renyi(10, 1.0, &mut rng).unwrap();
        assert_eq!(full.edge_count(), 45);
    }

    #[test]
    fn erdos_renyi_expected_density() {
        let mut rng = Rng::new(2);
        let g = erdos_renyi(100, 0.1, &mut rng).unwrap();
        // Expect ~495 edges; allow generous slack.
        let e = g.edge_count();
        assert!((350..650).contains(&e), "edges = {e}");
    }

    #[test]
    fn erdos_renyi_deterministic() {
        let g1 = erdos_renyi(50, 0.2, &mut Rng::new(9)).unwrap();
        let g2 = erdos_renyi(50, 0.2, &mut Rng::new(9)).unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn barabasi_albert_structure() {
        let mut rng = Rng::new(3);
        let g = barabasi_albert(200, 3, &mut rng).unwrap();
        assert_eq!(g.node_count(), 200);
        // Connected by construction.
        assert_eq!(component_count(&g), 1);
        // Heavy tail: max degree should far exceed m.
        let max_deg = (0..200).map(|u| g.degree(u)).max().unwrap();
        assert!(max_deg > 10, "max degree {max_deg}");
    }

    #[test]
    fn barabasi_albert_m1_is_tree() {
        let mut rng = Rng::new(4);
        let g = barabasi_albert(100, 1, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 99);
        assert_eq!(component_count(&g), 1);
    }

    #[test]
    fn barabasi_albert_rejects_bad_params() {
        let mut rng = Rng::new(5);
        assert!(barabasi_albert(5, 0, &mut rng).is_err());
        assert!(barabasi_albert(3, 3, &mut rng).is_err());
    }

    #[test]
    fn watts_strogatz_zero_beta_is_lattice() {
        let mut rng = Rng::new(6);
        let g = watts_strogatz(20, 4, 0.0, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 40);
        for u in 0..20 {
            assert_eq!(g.degree(u), 4);
        }
    }

    #[test]
    fn watts_strogatz_rewired_stays_connected_usually() {
        let mut rng = Rng::new(7);
        let g = watts_strogatz(60, 6, 0.2, &mut rng).unwrap();
        assert_eq!(g.node_count(), 60);
        // Edge count is preserved by rewiring (each lattice slot yields one
        // edge except rare dense-corner fallbacks that dedup).
        assert!(g.edge_count() > 150);
    }

    #[test]
    fn watts_strogatz_rejects_bad_params() {
        let mut rng = Rng::new(8);
        assert!(watts_strogatz(10, 3, 0.1, &mut rng).is_err());
        assert!(watts_strogatz(4, 4, 0.1, &mut rng).is_err());
        assert!(watts_strogatz(10, 2, 1.5, &mut rng).is_err());
    }
}
