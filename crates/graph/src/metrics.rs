//! Whole-graph structural metrics.

use crate::graph::Graph;
use crate::traversal::bfs_distances;
use crate::{GraphError, Result};

/// Edge density: edges divided by the maximum possible for the graph's
/// direction semantics. A single-node graph has density 0.
pub fn density(g: &Graph) -> f64 {
    let n = g.node_count();
    if n <= 1 {
        return 0.0;
    }
    let possible = if g.is_directed() {
        n * (n - 1)
    } else {
        n * (n - 1) / 2
    };
    g.edge_count() as f64 / possible as f64
}

/// Local clustering coefficient of a node: fraction of neighbour pairs that
/// are themselves connected. Nodes of degree < 2 get 0.
pub fn local_clustering(g: &Graph, v: usize) -> Result<f64> {
    if v >= g.node_count() {
        return Err(GraphError::InvalidNode(v));
    }
    // Distinct neighbours (ignore parallel edges).
    let mut nbrs: Vec<usize> = g.neighbors(v).iter().map(|&(u, _)| u).collect();
    nbrs.sort_unstable();
    nbrs.dedup();
    if nbrs.len() < 2 {
        return Ok(0.0);
    }
    let mut closed = 0usize;
    for i in 0..nbrs.len() {
        for j in (i + 1)..nbrs.len() {
            if g.has_edge(nbrs[i], nbrs[j]) {
                closed += 1;
            }
        }
    }
    let pairs = nbrs.len() * (nbrs.len() - 1) / 2;
    Ok(closed as f64 / pairs as f64)
}

/// Average of local clustering coefficients over all nodes.
pub fn average_clustering(g: &Graph) -> Result<f64> {
    let n = g.node_count();
    if n == 0 {
        return Err(GraphError::EmptyGraph);
    }
    let mut total = 0.0;
    for v in 0..n {
        total += local_clustering(g, v)?;
    }
    Ok(total / n as f64)
}

/// Degree histogram: `hist[d]` is the number of nodes with degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let max_deg = (0..g.node_count()).map(|v| g.degree(v)).max().unwrap_or(0);
    let mut hist = vec![0usize; max_deg + 1];
    for v in 0..g.node_count() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Degree assortativity coefficient (Pearson correlation of degrees at the
/// two ends of each edge). Positive: hubs link to hubs. Errors when the
/// graph has no edges or degenerate degree variance.
pub fn assortativity(g: &Graph) -> Result<f64> {
    let edges = g.edges();
    if edges.is_empty() {
        return Err(GraphError::InvalidParameter("assortativity needs edges"));
    }
    // Build symmetric endpoint degree lists (each undirected edge contributes
    // both orientations, the standard convention).
    let mut x = Vec::with_capacity(edges.len() * 2);
    let mut y = Vec::with_capacity(edges.len() * 2);
    for e in &edges {
        let du = g.degree(e.from) as f64;
        let dv = g.degree(e.to) as f64;
        x.push(du);
        y.push(dv);
        if !g.is_directed() {
            x.push(dv);
            y.push(du);
        }
    }
    humnet_stats::pearson(&x, &y)
        .map_err(|_| GraphError::InvalidParameter("degenerate degree sequence"))
}

/// Diameter of the graph: the greatest shortest-path distance between any
/// pair of mutually reachable nodes. Errors on an empty graph; returns 0
/// for a graph with no edges.
pub fn diameter(g: &Graph) -> Result<usize> {
    let n = g.node_count();
    if n == 0 {
        return Err(GraphError::EmptyGraph);
    }
    let mut best = 0usize;
    for v in 0..n {
        let dist = bfs_distances(g, v)?;
        for &d in &dist {
            if d != usize::MAX && d > best {
                best = d;
            }
        }
    }
    Ok(best)
}

/// K-core decomposition: returns each node's core number (the largest `k`
/// such that the node belongs to a subgraph where every node has degree ≥
/// `k`). Uses the standard linear peeling algorithm on distinct-neighbour
/// degrees.
pub fn core_numbers(g: &Graph) -> Vec<usize> {
    let n = g.node_count();
    // Distinct-neighbour degree (parallel edges collapse).
    let mut degree: Vec<usize> = (0..n)
        .map(|v| {
            let mut nbrs: Vec<usize> = g.neighbors(v).iter().map(|&(u, _)| u).collect();
            nbrs.sort_unstable();
            nbrs.dedup();
            nbrs.len()
        })
        .collect();
    let mut core = vec![0usize; n];
    let mut removed = vec![false; n];
    for _ in 0..n {
        // Peel the minimum-degree remaining node.
        let v = (0..n)
            .filter(|&v| !removed[v])
            .min_by_key(|&v| degree[v])
            .expect("nodes remain");
        removed[v] = true;
        core[v] = degree[v];
        let mut nbrs: Vec<usize> = g.neighbors(v).iter().map(|&(u, _)| u).collect();
        nbrs.sort_unstable();
        nbrs.dedup();
        for u in nbrs {
            if !removed[u] && degree[u] > degree[v] {
                degree[u] -= 1;
            }
        }
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete, ring, star};
    use crate::graph::Graph;

    #[test]
    fn density_complete_is_one() {
        assert!((density(&complete(6)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn density_directed() {
        let mut g = Graph::directed(3);
        g.add_edge(0, 1).unwrap();
        // 1 of 6 possible arcs.
        assert!((density(&g) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn density_trivial() {
        assert_eq!(density(&Graph::undirected(1)), 0.0);
        assert_eq!(density(&Graph::undirected(0)), 0.0);
    }

    #[test]
    fn clustering_triangle_is_one() {
        let g = complete(3);
        assert_eq!(local_clustering(&g, 0).unwrap(), 1.0);
        assert_eq!(average_clustering(&g).unwrap(), 1.0);
    }

    #[test]
    fn clustering_star_is_zero() {
        let g = star(6);
        assert_eq!(average_clustering(&g).unwrap(), 0.0);
    }

    #[test]
    fn clustering_low_degree_is_zero() {
        let mut g = Graph::undirected(2);
        g.add_edge(0, 1).unwrap();
        assert_eq!(local_clustering(&g, 0).unwrap(), 0.0);
    }

    #[test]
    fn degree_histogram_star() {
        let g = star(5);
        let h = degree_histogram(&g);
        assert_eq!(h[1], 4);
        assert_eq!(h[4], 1);
        assert_eq!(h[0], 0);
    }

    #[test]
    fn assortativity_star_is_negative() {
        let g = star(10);
        let a = assortativity(&g).unwrap();
        assert!(a < -0.9, "a = {a}");
    }

    #[test]
    fn assortativity_ring_is_degenerate() {
        // All degrees equal -> zero variance -> error.
        let g = ring(6).unwrap();
        assert!(assortativity(&g).is_err());
    }

    #[test]
    fn diameter_of_ring() {
        let g = ring(8).unwrap();
        assert_eq!(diameter(&g).unwrap(), 4);
    }

    #[test]
    fn diameter_of_disconnected() {
        let mut g = Graph::undirected(4);
        g.add_edge(0, 1).unwrap();
        // Pairs across components are ignored.
        assert_eq!(diameter(&g).unwrap(), 1);
    }

    #[test]
    fn diameter_empty_graph_errors() {
        assert!(diameter(&Graph::undirected(0)).is_err());
    }

    #[test]
    fn core_numbers_complete_graph() {
        let g = complete(5);
        assert_eq!(core_numbers(&g), vec![4; 5]);
    }

    #[test]
    fn core_numbers_star_and_ring() {
        let g = star(6);
        let core = core_numbers(&g);
        assert!(core.iter().all(|&c| c == 1), "star is 1-core: {core:?}");
        let r = ring(7).unwrap();
        assert_eq!(core_numbers(&r), vec![2; 7]);
    }

    #[test]
    fn core_numbers_clique_with_tail() {
        // 4-clique (nodes 0..4) plus a path 3-4-5.
        let mut g = Graph::undirected(6);
        for a in 0..4 {
            for b in (a + 1)..4 {
                g.add_edge(a, b).unwrap();
            }
        }
        g.add_edge(3, 4).unwrap();
        g.add_edge(4, 5).unwrap();
        let core = core_numbers(&g);
        assert_eq!(&core[0..4], &[3, 3, 3, 3]);
        assert_eq!(core[4], 1);
        assert_eq!(core[5], 1);
    }

    #[test]
    fn core_numbers_isolated() {
        let g = Graph::undirected(3);
        assert_eq!(core_numbers(&g), vec![0; 3]);
    }
}
