//! # humnet-graph
//!
//! Graph substrate for the `humnet` toolkit.
//!
//! The corpus crate builds citation and coauthorship graphs on top of this,
//! the IXP crate builds AS-level topologies, and the community crate builds
//! wireless mesh layouts. The crate provides:
//!
//! * a simple weighted graph type ([`Graph`]) supporting directed and
//!   undirected semantics;
//! * traversals and shortest paths ([`traversal`]);
//! * centrality measures ([`centrality`]) — degree, closeness, PageRank and
//!   Brandes betweenness;
//! * community detection ([`community`]) — modularity scoring and
//!   deterministic label propagation;
//! * random-graph generators ([`generators`]) — Erdős–Rényi,
//!   Barabási–Albert, Watts–Strogatz, plus deterministic shapes;
//! * whole-graph metrics ([`metrics`]) — density, clustering, degree
//!   distribution, assortativity, diameter.
//!
//! Design follows the smoltcp school: plain data structures, no clever type
//! tricks, deterministic behaviour everywhere (generators take an explicit
//! [`humnet_stats::Rng`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod centrality;
pub mod community;
pub mod generators;
pub mod graph;
pub mod louvain;
pub mod metrics;
pub mod traversal;

pub use centrality::{betweenness_centrality, closeness_centrality, degree_centrality, pagerank};
pub use community::{label_propagation, modularity, Partition};
pub use generators::{barabasi_albert, complete, erdos_renyi, ring, star, watts_strogatz};
pub use graph::{Direction, EdgeRef, Graph, NodeId};
pub use louvain::louvain;
pub use metrics::{
    assortativity, average_clustering, core_numbers, degree_histogram, density, diameter,
    local_clustering,
};
pub use traversal::{
    bfs_distances, connected_components, dijkstra, dijkstra_path, shortest_path,
};

/// Errors produced by graph routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node id was out of range for this graph.
    InvalidNode(usize),
    /// The operation requires a nonempty graph.
    EmptyGraph,
    /// A parameter was outside its valid domain.
    InvalidParameter(&'static str),
    /// No path exists between the requested endpoints.
    NoPath {
        /// Source node.
        from: usize,
        /// Destination node.
        to: usize,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::InvalidNode(id) => write!(f, "invalid node id {id}"),
            GraphError::EmptyGraph => write!(f, "graph is empty"),
            GraphError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            GraphError::NoPath { from, to } => write!(f, "no path from {from} to {to}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, GraphError>;
