//! The core graph type: a weighted adjacency-list graph with directed or
//! undirected semantics chosen at construction time.

use crate::{GraphError, Result};
use serde::{Deserialize, Serialize};

/// Identifier of a node: a dense index in `[0, node_count)`.
pub type NodeId = usize;

/// Whether edges are directed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Every edge `(u, v)` is traversable both ways.
    Undirected,
    /// Edges are one-way.
    Directed,
}

/// A lightweight reference to an edge during iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeRef {
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Edge weight.
    pub weight: f64,
}

/// A weighted graph stored as adjacency lists.
///
/// Nodes are dense indices; adding a node returns the next index. For an
/// undirected graph, each edge is stored in both adjacency lists but counted
/// once by [`Graph::edge_count`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    direction: Direction,
    adj: Vec<Vec<(NodeId, f64)>>,
    /// For directed graphs, reverse adjacency (predecessors). Kept empty for
    /// undirected graphs.
    radj: Vec<Vec<(NodeId, f64)>>,
    edges: usize,
}

impl Graph {
    /// Create an empty graph with the given edge semantics.
    pub fn new(direction: Direction) -> Self {
        Graph {
            direction,
            adj: Vec::new(),
            radj: Vec::new(),
            edges: 0,
        }
    }

    /// Create an undirected graph with `n` isolated nodes.
    pub fn undirected(n: usize) -> Self {
        let mut g = Graph::new(Direction::Undirected);
        g.add_nodes(n);
        g
    }

    /// Create a directed graph with `n` isolated nodes.
    pub fn directed(n: usize) -> Self {
        let mut g = Graph::new(Direction::Directed);
        g.add_nodes(n);
        g
    }

    /// Edge semantics of this graph.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// True if this graph is directed.
    pub fn is_directed(&self) -> bool {
        self.direction == Direction::Directed
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges (each undirected edge counted once).
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Add a single node; returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        if self.is_directed() {
            self.radj.push(Vec::new());
        }
        self.adj.len() - 1
    }

    /// Add `n` nodes; returns the id of the first one added.
    pub fn add_nodes(&mut self, n: usize) -> NodeId {
        let first = self.adj.len();
        for _ in 0..n {
            self.add_node();
        }
        first
    }

    fn check(&self, id: NodeId) -> Result<()> {
        if id < self.adj.len() {
            Ok(())
        } else {
            Err(GraphError::InvalidNode(id))
        }
    }

    /// Add an edge with weight 1.0.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<()> {
        self.add_weighted_edge(from, to, 1.0)
    }

    /// Add a weighted edge. Parallel edges are permitted (they simply appear
    /// twice in the adjacency list); self-loops are allowed for directed
    /// graphs and rejected for undirected ones (they break degree and
    /// clustering accounting).
    pub fn add_weighted_edge(&mut self, from: NodeId, to: NodeId, weight: f64) -> Result<()> {
        self.check(from)?;
        self.check(to)?;
        if !weight.is_finite() {
            return Err(GraphError::InvalidParameter("edge weight must be finite"));
        }
        if from == to && !self.is_directed() {
            return Err(GraphError::InvalidParameter(
                "self-loops not supported on undirected graphs",
            ));
        }
        self.adj[from].push((to, weight));
        if self.is_directed() {
            self.radj[to].push((from, weight));
        } else {
            self.adj[to].push((from, weight));
        }
        self.edges += 1;
        Ok(())
    }

    /// True if an edge `from → to` exists (in either direction for
    /// undirected graphs).
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.adj
            .get(from)
            .map(|nbrs| nbrs.iter().any(|&(v, _)| v == to))
            .unwrap_or(false)
    }

    /// Out-neighbors of a node with weights.
    pub fn neighbors(&self, id: NodeId) -> &[(NodeId, f64)] {
        &self.adj[id]
    }

    /// In-neighbors of a node with weights. For undirected graphs this is
    /// the same as [`Graph::neighbors`].
    pub fn predecessors(&self, id: NodeId) -> &[(NodeId, f64)] {
        if self.is_directed() {
            &self.radj[id]
        } else {
            &self.adj[id]
        }
    }

    /// Out-degree of a node.
    pub fn degree(&self, id: NodeId) -> usize {
        self.adj[id].len()
    }

    /// In-degree of a node (equals degree for undirected graphs).
    pub fn in_degree(&self, id: NodeId) -> usize {
        if self.is_directed() {
            self.radj[id].len()
        } else {
            self.adj[id].len()
        }
    }

    /// Sum of weights on out-edges of a node.
    pub fn weighted_degree(&self, id: NodeId) -> f64 {
        self.adj[id].iter().map(|&(_, w)| w).sum()
    }

    /// Iterate over all edges. Undirected edges are yielded once, with
    /// `from <= to`.
    pub fn edges(&self) -> Vec<EdgeRef> {
        let mut out = Vec::with_capacity(self.edges);
        for (u, nbrs) in self.adj.iter().enumerate() {
            for &(v, w) in nbrs {
                if self.is_directed() || u <= v {
                    out.push(EdgeRef {
                        from: u,
                        to: v,
                        weight: w,
                    });
                }
            }
        }
        out
    }

    /// Node ids, `0..node_count()`.
    pub fn nodes(&self) -> std::ops::Range<NodeId> {
        0..self.node_count()
    }

    /// Total edge weight (each undirected edge counted once).
    pub fn total_weight(&self) -> f64 {
        self.edges().iter().map(|e| e.weight).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::new(Direction::Undirected);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn add_nodes_returns_first_id() {
        let mut g = Graph::new(Direction::Directed);
        assert_eq!(g.add_nodes(3), 0);
        assert_eq!(g.add_nodes(2), 3);
        assert_eq!(g.node_count(), 5);
    }

    #[test]
    fn undirected_edge_visible_both_ways() {
        let mut g = Graph::undirected(3);
        g.add_edge(0, 1).unwrap();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn directed_edge_one_way() {
        let mut g = Graph::directed(2);
        g.add_edge(0, 1).unwrap();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.in_degree(1), 1);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.predecessors(1), &[(0, 1.0)]);
    }

    #[test]
    fn invalid_node_rejected() {
        let mut g = Graph::undirected(2);
        assert_eq!(g.add_edge(0, 5).unwrap_err(), GraphError::InvalidNode(5));
    }

    #[test]
    fn undirected_self_loop_rejected() {
        let mut g = Graph::undirected(2);
        assert!(g.add_edge(1, 1).is_err());
    }

    #[test]
    fn directed_self_loop_allowed() {
        let mut g = Graph::directed(1);
        g.add_edge(0, 0).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn edges_iterator_dedups_undirected() {
        let mut g = Graph::undirected(3);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        let edges = g.edges();
        assert_eq!(edges.len(), 2);
        assert!(edges.iter().all(|e| e.from <= e.to));
    }

    #[test]
    fn weighted_degree_sums() {
        let mut g = Graph::undirected(3);
        g.add_weighted_edge(0, 1, 2.5).unwrap();
        g.add_weighted_edge(0, 2, 1.5).unwrap();
        assert_eq!(g.weighted_degree(0), 4.0);
        assert_eq!(g.total_weight(), 4.0);
    }

    #[test]
    fn non_finite_weight_rejected() {
        let mut g = Graph::undirected(2);
        assert!(g.add_weighted_edge(0, 1, f64::NAN).is_err());
        assert!(g.add_weighted_edge(0, 1, f64::INFINITY).is_err());
    }

    #[test]
    fn clone_preserves_structure() {
        let mut g = Graph::undirected(3);
        g.add_weighted_edge(0, 1, 2.0).unwrap();
        let g2 = g.clone();
        assert_eq!(g, g2);
        assert_eq!(g2.neighbors(0), &[(1, 2.0)]);
    }
}
