//! The serve daemon: accept loop, admission control, warm-pool execution.
//!
//! Request flow:
//!
//! ```text
//! accept ──▶ bounded conn queue ──▶ handler threads (fixed pool)
//!                 │ full: shed                │
//!                 ▼                           ▼ cache hit: answer from
//!            overloaded                       │ the index, zero runner
//!                                             │ attempts
//!                               bounded work queue (depth = queue_depth)
//!                                 │ full: shed (`overloaded`)
//!                                 ▼
//!                     worker threads (count = concurrency)
//!                     ──▶ Supervisor on the process-wide warm pool
//!                     ──▶ canonicalized RunArtifact ──▶ cache insert
//! ```
//!
//! Admission control is two `mpsc::sync_channel`s: `try_send` either
//! enqueues or fails *immediately*, so overload produces an explicit
//! `overloaded` response (counted as `serve.shed`) instead of an
//! unbounded queue or a hung client. The handler and worker pools are
//! fixed at startup — a request never spawns a process or thread; misses
//! run on the same pooled scheduler runtime (warm executor sessions) the
//! batch CLI uses.
//!
//! Shutdown — a `shutdown` request or SIGTERM ([`install_signal_handlers`])
//! — stops the accept loop, lets the workers drain every queued run (each
//! still gets its response), joins both pools, and flushes the cache
//! index.

use crate::cache::{cache_key, CacheEntry, RehydrateStats, ResultCache};
use crate::protocol::{
    Request, Response, CMD_RUN, CMD_SHUTDOWN, CMD_STATS, STATUS_ERROR, STATUS_HIT, STATUS_MISS,
};
use humnet_resilience::{code_rev, ExperimentSpec, FaultProfile, RunArtifact, RunnerConfig, Supervisor};
use humnet_telemetry::{SharedTelemetry, TelemetrySnapshot};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Maps an experiment code to its runnable spec, or `None` for codes the
/// registry does not know — the daemon's request validation. The binary
/// passes the `ExperimentId` registry; tests pass toy specs.
pub type SpecFactory = Arc<dyn Fn(&str) -> Option<ExperimentSpec> + Send + Sync + 'static>;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port 0 picks a free port — read it
    /// back from [`Server::local_addr`]).
    pub addr: String,
    /// Result-cache directory (created if missing, rehydrated if not).
    pub cache_dir: PathBuf,
    /// Pending-run queue depth; a run request arriving with the queue
    /// full is shed with an `overloaded` response.
    pub queue_depth: usize,
    /// Result-cache size bound: at most this many entries are kept,
    /// evicting least-recently-used on insert (`0` = unbounded).
    /// Evictions are counted in `serve.evicted`.
    pub cache_max_entries: usize,
    /// Result-cache age bound: entries whose file mtime is older than
    /// this are evicted at rehydrate and by a periodic sweep (`0` =
    /// disabled). The LRU bound is size-only, so without an age-out
    /// artifacts from dead code revisions pin the cache forever. Sweep
    /// evictions are counted in `serve.evicted_stale`.
    pub cache_max_age: Duration,
    /// Worker threads executing misses (clamped to at least 1).
    pub concurrency: usize,
    /// Connection-handler threads (`0` = auto: `concurrency +
    /// queue_depth + 2`, floored at 16). A persistent pipelined client
    /// occupies one handler for its connection's lifetime, so this must
    /// cover the expected number of concurrent long-lived connections
    /// (e.g. capacity-ramp workers) or the surplus connections starve.
    pub handlers: usize,
    /// Base runner configuration; per-request fields (seed, profile,
    /// intensity, retries, deadline) override their counterparts.
    pub runner: RunnerConfig,
    /// Testing knob: hold each miss this long before executing, so tests
    /// and CI can fill the queue deterministically (`--hold-ms`).
    pub hold: Duration,
    /// Per-connection idle timeout; a silent client is disconnected.
    pub idle: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7077".to_owned(),
            cache_dir: std::env::temp_dir().join("humnet-serve-cache"),
            queue_depth: 32,
            cache_max_entries: 0,
            cache_max_age: Duration::ZERO,
            concurrency: 2,
            handlers: 0,
            runner: RunnerConfig::default(),
            hold: Duration::ZERO,
            idle: Duration::from_secs(30),
        }
    }
}

/// What [`Server::run`] hands back after a graceful shutdown.
#[derive(Debug)]
pub struct ServeSummary {
    /// The address the daemon served on.
    pub addr: SocketAddr,
    /// Final daemon telemetry (request/hit/miss/shed counters, latency
    /// histograms, absorbed runner metrics).
    pub stats: TelemetrySnapshot,
    /// Cache entries indexed at shutdown.
    pub cache_entries: usize,
    /// What the startup rehydration scan found.
    pub rehydrated: RehydrateStats,
}

/// Everything the handler and worker threads share.
struct Ctx {
    config: ServeConfig,
    factory: SpecFactory,
    cache: ResultCache,
    tel: SharedTelemetry,
    stop: Arc<AtomicBool>,
}

/// One admitted run request, resolved against the daemon defaults.
struct RunRequest {
    experiment: String,
    seed: u64,
    profile: FaultProfile,
    intensity: f64,
    retries: u32,
    deadline: Duration,
    key: String,
}

struct WorkItem {
    run: RunRequest,
    resp: mpsc::Sender<Response>,
}

/// The serve daemon. [`Server::bind`] binds the listener and rehydrates
/// the cache; [`Server::run`] blocks until shutdown.
pub struct Server {
    ctx: Arc<Ctx>,
    listener: TcpListener,
    addr: SocketAddr,
    rehydrated: RehydrateStats,
}

impl Server {
    /// Bind the listener, open (and rehydrate) the cache. Nothing is
    /// served until [`Server::run`].
    pub fn bind(config: ServeConfig, factory: SpecFactory) -> io::Result<Server> {
        let (cache, rehydrated) = ResultCache::open_with(
            &config.cache_dir,
            config.cache_max_entries,
            config.cache_max_age,
        )?;
        let listener = TcpListener::bind(config.addr.as_str())?;
        let addr = listener.local_addr()?;
        let tel = SharedTelemetry::new();
        tel.gauge("serve.cache_entries", cache.len() as f64);
        if rehydrated.stale > 0 {
            tel.counter("serve.evicted_stale", rehydrated.stale as u64);
        }
        Ok(Server {
            ctx: Arc::new(Ctx {
                config,
                factory,
                cache,
                tel,
                stop: Arc::new(AtomicBool::new(false)),
            }),
            listener,
            addr,
            rehydrated,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// What the startup cache scan found.
    pub fn rehydrated(&self) -> RehydrateStats {
        self.rehydrated
    }

    /// A flag that stops the daemon when set (what a `shutdown` request
    /// sets internally; embedders and tests can hold one too).
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        self.ctx.stop.clone()
    }

    /// Serve until a `shutdown` request, SIGTERM, or the shutdown handle
    /// fires; then drain queued runs, join the pools, flush the cache
    /// index, and report.
    pub fn run(self) -> io::Result<ServeSummary> {
        let ctx = self.ctx;
        let concurrency = ctx.config.concurrency.max(1);
        let (work_tx, work_rx) = mpsc::sync_channel::<WorkItem>(ctx.config.queue_depth);
        let work_rx = Arc::new(Mutex::new(work_rx));
        let workers: Vec<_> = (0..concurrency)
            .map(|i| {
                let rx = Arc::clone(&work_rx);
                let ctx = Arc::clone(&ctx);
                thread::Builder::new()
                    .name(format!("humnet-serve-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &ctx))
                    .expect("spawn serve worker")
            })
            .collect();

        // Enough handlers that every admissible run (in-flight + queued)
        // can have a waiting connection, plus slack so the connection
        // that *should* be shed gets a handler to shed it on. The floor
        // covers persistent pipelined clients, each of which parks on a
        // handler for its connection's lifetime.
        let handler_count = match ctx.config.handlers {
            0 => (concurrency + ctx.config.queue_depth + 2).max(16),
            n => n,
        };
        let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(handler_count * 2);
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let handlers: Vec<_> = (0..handler_count)
            .map(|i| {
                let rx = Arc::clone(&conn_rx);
                let ctx = Arc::clone(&ctx);
                let wtx = work_tx.clone();
                thread::Builder::new()
                    .name(format!("humnet-serve-conn-{i}"))
                    .spawn(move || handler_loop(&rx, &ctx, &wtx))
                    .expect("spawn serve handler")
            })
            .collect();
        // Handlers hold the only remaining work senders: when they exit,
        // the workers see the queue disconnect (after draining) and stop.
        drop(work_tx);

        // The listener blocks in accept so fresh connections cost
        // microseconds, not a poll tick. A watchdog thread owns the only
        // polling: it watches the stop flag and SIGTERM, and wakes the
        // blocked accept with a throwaway local connection when either
        // fires — shutdown pays the poll latency; requests never do. The
        // same thread hosts the cache age-out sweep so stale entries die
        // even on an idle daemon (insert-time eviction alone only runs
        // when misses arrive).
        let watchdog = {
            let ctx = Arc::clone(&ctx);
            let addr = self.addr;
            // Half the age bound keeps the worst-case overstay of a stale
            // entry at ~1.5x the configured age without sweeping the
            // directory on every tick.
            let sweep_every = sweep_interval(ctx.config.cache_max_age);
            thread::Builder::new()
                .name("humnet-serve-watchdog".to_owned())
                .spawn(move || {
                    let mut last_sweep = Instant::now();
                    loop {
                        if sigterm_received() {
                            ctx.stop.store(true, Ordering::SeqCst);
                        }
                        if ctx.stop.load(Ordering::SeqCst) {
                            let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(250));
                            return;
                        }
                        if let Some(every) = sweep_every {
                            if last_sweep.elapsed() >= every {
                                last_sweep = Instant::now();
                                let evicted = ctx.cache.sweep_stale();
                                if evicted > 0 {
                                    ctx.tel.counter("serve.evicted_stale", evicted as u64);
                                    ctx.tel.gauge("serve.cache_entries", ctx.cache.len() as f64);
                                }
                            }
                        }
                        thread::sleep(Duration::from_millis(25));
                    }
                })
                .expect("spawn serve watchdog")
        };

        let mut accept_err = None;
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if ctx.stop.load(Ordering::SeqCst) {
                        break; // the watchdog's wake-up connection
                    }
                    ctx.tel.counter("serve.connections", 1);
                    match conn_tx.try_send(stream) {
                        Ok(()) => {}
                        Err(TrySendError::Full(stream)) => {
                            // Connection-level shed: every handler is busy
                            // and the hand-off buffer is full. Tell the
                            // client why instead of queueing invisibly.
                            ctx.tel.counter("serve.shed", 1);
                            shed_connection(stream);
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    accept_err = Some(e);
                    break;
                }
            }
        }
        ctx.stop.store(true, Ordering::SeqCst);
        let _ = watchdog.join();

        drop(conn_tx);
        for h in handlers {
            let _ = h.join();
        }
        for w in workers {
            let _ = w.join();
        }
        ctx.cache.flush_index()?;
        if let Some(e) = accept_err {
            return Err(e);
        }
        Ok(ServeSummary {
            addr: self.addr,
            stats: ctx.tel.snapshot(),
            cache_entries: ctx.cache.len(),
            rehydrated: self.rehydrated,
        })
    }
}

/// How often the watchdog sweeps for stale cache entries: half the age
/// bound, clamped to [250ms, 30s]; `None` when age-out is disabled.
fn sweep_interval(max_age: Duration) -> Option<Duration> {
    if max_age.is_zero() {
        return None;
    }
    Some((max_age / 2).clamp(Duration::from_millis(250), Duration::from_secs(30)))
}

// ------------------------------------------------------------- signals --

static SIGTERM_FLAG: AtomicBool = AtomicBool::new(false);

/// Whether a SIGTERM has arrived since [`install_signal_handlers`].
pub fn sigterm_received() -> bool {
    SIGTERM_FLAG.load(Ordering::SeqCst)
}

/// Route SIGTERM into a graceful daemon shutdown. The handler only flips
/// an atomic flag (async-signal-safe); the accept loop notices on its
/// next poll tick and drains normally.
#[cfg(unix)]
pub fn install_signal_handlers() {
    extern "C" fn on_sigterm(_signum: i32) {
        SIGTERM_FLAG.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM: i32 = 15;
    #[allow(unsafe_code)]
    unsafe {
        signal(SIGTERM, on_sigterm as extern "C" fn(i32) as usize);
    }
}

/// No-op off unix: only the `shutdown` request stops the daemon.
#[cfg(not(unix))]
pub fn install_signal_handlers() {}

// ----------------------------------------------------------- handlers --

fn handler_loop(rx: &Mutex<Receiver<TcpStream>>, ctx: &Ctx, work_tx: &SyncSender<WorkItem>) {
    loop {
        let stream = rx.lock().expect("conn queue lock").recv();
        let Ok(stream) = stream else { break };
        let _ = serve_connection(stream, ctx, work_tx);
    }
}

/// Process one connection's requests sequentially until the peer closes,
/// goes idle past the budget, or the daemon begins draining.
fn serve_connection(
    mut stream: TcpStream,
    ctx: &Ctx,
    work_tx: &SyncSender<WorkItem>,
) -> io::Result<()> {
    // Accepted sockets do not reliably inherit the listener's
    // non-blocking mode; pin down blocking + a short read timeout so the
    // loop can poll the shutdown flag between reads. Nagle must be off:
    // on a persistent pipelined connection the kernel would otherwise
    // hold each response line for the peer's delayed ACK (~40 ms per
    // request instead of microseconds).
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut framer = crate::protocol::LineBuffer::new();
    let mut chunk = [0u8; 4096];
    let mut last_activity = Instant::now();
    loop {
        while let Some(line) = framer.next_line() {
            last_activity = Instant::now();
            let (resp, close) = handle_line(ctx, work_tx, &line);
            write_response(&mut stream, &resp)?;
            if close {
                return Ok(());
            }
        }
        if ctx.stop.load(Ordering::SeqCst) && framer.is_empty() {
            return Ok(()); // draining: drop idle connections
        }
        if last_activity.elapsed() >= ctx.config.idle {
            return Ok(());
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()), // peer closed
            Ok(n) => {
                framer.push(&chunk[..n]);
                last_activity = Instant::now();
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Dispatch one request line. Returns the response and whether the
/// connection should close afterwards.
fn handle_line(ctx: &Ctx, work_tx: &SyncSender<WorkItem>, line: &str) -> (Response, bool) {
    ctx.tel.counter("serve.requests", 1);
    let req = match Request::from_line(line) {
        Ok(req) => req,
        Err(e) => {
            ctx.tel.counter("serve.error", 1);
            return (Response::error(&format!("bad request: {e}")), false);
        }
    };
    match req.cmd.as_str() {
        CMD_RUN => (handle_run(ctx, work_tx, &req), false),
        CMD_STATS => {
            let snap = ctx.tel.snapshot();
            match snap.to_json() {
                Ok(json) => (Response::stats(json), false),
                Err(e) => (Response::error(&format!("stats serialization: {e}")), false),
            }
        }
        CMD_SHUTDOWN => {
            ctx.stop.store(true, Ordering::SeqCst);
            (Response::ok("draining; daemon will exit"), true)
        }
        other => {
            ctx.tel.counter("serve.error", 1);
            (Response::error(&format!("unknown cmd '{other}' (run|stats|shutdown)")), false)
        }
    }
}

/// The run path: resolve, consult the index, admit or shed.
fn handle_run(ctx: &Ctx, work_tx: &SyncSender<WorkItem>, req: &Request) -> Response {
    let t0 = Instant::now();
    let run = match resolve(ctx, req) {
        Ok(run) => run,
        Err(msg) => {
            ctx.tel.counter("serve.error", 1);
            return Response::error(&msg);
        }
    };
    // Fast path: hits are answered straight from the in-memory index —
    // no queue, no worker, no runner.
    if let Some(entry) = ctx.cache.get(&run.key) {
        ctx.tel.counter("serve.cache_hit", 1);
        ctx.tel.observe("serve.hit_ns", t0.elapsed().as_nanos() as u64);
        return hit_response(&entry);
    }
    let (resp_tx, resp_rx) = mpsc::channel();
    match work_tx.try_send(WorkItem { run, resp: resp_tx }) {
        Err(TrySendError::Full(_)) => {
            ctx.tel.counter("serve.shed", 1);
            Response::overloaded("pending queue full; retry later")
        }
        Err(TrySendError::Disconnected(_)) => Response::error("daemon is shutting down"),
        Ok(()) => match resp_rx.recv() {
            Ok(resp) => {
                match resp.status.as_str() {
                    // A queued duplicate of an in-flight tuple lands as a
                    // hit when the worker re-checks the index.
                    STATUS_HIT => {
                        ctx.tel.counter("serve.cache_hit", 1);
                        ctx.tel.observe("serve.hit_ns", t0.elapsed().as_nanos() as u64);
                    }
                    STATUS_MISS => {
                        ctx.tel.counter("serve.cache_miss", 1);
                        ctx.tel.observe("serve.miss_ns", t0.elapsed().as_nanos() as u64);
                    }
                    STATUS_ERROR => ctx.tel.counter("serve.error", 1),
                    _ => {}
                }
                resp
            }
            Err(_) => {
                ctx.tel.counter("serve.error", 1);
                Response::error("worker dropped the request")
            }
        },
    }
}

/// Resolve a run request against the daemon defaults, validating the
/// experiment against the registry and computing its content address.
fn resolve(ctx: &Ctx, req: &Request) -> Result<RunRequest, String> {
    let defaults = &ctx.config.runner;
    let experiment = req
        .experiment
        .clone()
        .ok_or("run request needs an \"experiment\" field")?;
    if (ctx.factory)(&experiment).is_none() {
        return Err(format!("unknown experiment '{experiment}'"));
    }
    let profile = match &req.profile {
        None => defaults.profile,
        Some(label) => FaultProfile::parse(label)
            .ok_or_else(|| format!("unknown fault profile '{label}' (none|churn|outage|chaos)"))?,
    };
    let intensity = req.intensity.unwrap_or(defaults.intensity);
    if !intensity.is_finite() || intensity < 0.0 {
        return Err(format!("intensity must be a nonnegative number, got {intensity}"));
    }
    let seed = req.seed.unwrap_or(defaults.seed);
    let retries = req.retries.unwrap_or(defaults.retries);
    let deadline = match req.deadline_ms {
        None => defaults.deadline,
        Some(0) => return Err("deadline_ms must be positive".to_owned()),
        Some(ms) => Duration::from_millis(ms),
    };
    let key = cache_key(&experiment, seed, profile.label(), intensity, retries, &code_rev());
    Ok(RunRequest {
        experiment,
        seed,
        profile,
        intensity,
        retries,
        deadline,
        key,
    })
}

fn hit_response(entry: &CacheEntry) -> Response {
    Response::artifact(
        STATUS_HIT,
        &entry.key,
        &entry.code_rev,
        entry.artifact.clone(),
        entry.metrics.clone(),
    )
}

fn write_response(stream: &mut TcpStream, resp: &Response) -> io::Result<()> {
    let line = resp
        .to_line()
        .unwrap_or_else(|e| format!("{{\"status\": \"error\", \"message\": \"response serialization: {e}\"}}"));
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

/// Best-effort `overloaded` notice on a connection shed before any
/// request was read (handler pool exhausted).
fn shed_connection(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = write_response(&mut stream, &Response::overloaded("all handlers busy"));
}

// ------------------------------------------------------------ workers --

fn worker_loop(rx: &Mutex<Receiver<WorkItem>>, ctx: &Ctx) {
    loop {
        // Holding the lock across `recv` is fine: it is released the
        // moment an item arrives, so at most one idle worker waits while
        // the rest execute.
        let item = rx.lock().expect("work queue lock").recv();
        let Ok(item) = item else { break };
        let resp = execute(ctx, &item.run);
        // A handler that gave up (connection died) just drops the
        // receiver; the computed result is still cached.
        let _ = item.resp.send(resp);
    }
}

/// Execute one admitted miss on the warm pool and cache the artifact.
fn execute(ctx: &Ctx, run: &RunRequest) -> Response {
    // A duplicate that queued behind its twin becomes a hit here instead
    // of recomputing.
    if let Some(entry) = ctx.cache.get(&run.key) {
        return hit_response(&entry);
    }
    if !ctx.config.hold.is_zero() {
        thread::sleep(ctx.config.hold);
    }
    let Some(spec) = (ctx.factory)(&run.experiment) else {
        return Response::error(&format!("unknown experiment '{}'", run.experiment));
    };
    let mut config = ctx.config.runner;
    config.seed = run.seed;
    config.profile = run.profile;
    config.intensity = run.intensity;
    config.retries = run.retries;
    config.deadline = run.deadline;
    // The quiet-panics hook is process-global state; concurrent workers
    // installing/restoring it would race. Panics are still caught and
    // reported as failed rows — just with their backtraces on stderr.
    config.quiet_panics = false;
    let result = Supervisor::builder().config(config).build().run(&[spec]);

    let artifact = RunArtifact {
        report: result.report,
        outputs: result.outputs,
    }
    .canonicalized();
    let artifact_json = match artifact.to_json() {
        Ok(json) => json,
        Err(e) => return Response::error(&format!("artifact serialization: {e}")),
    };
    let metrics_json = match result.telemetry.to_json() {
        Ok(json) => json,
        Err(e) => return Response::error(&format!("metrics serialization: {e}")),
    };
    // Fold the run's metrics (not its journal — a daemon's event log
    // must not grow with every request) into the daemon totals, so
    // `stats` exposes runner.attempts and friends.
    let mut run_metrics = result.telemetry;
    run_metrics.events.clear();
    ctx.tel.absorb(run_metrics, "");

    let rev = code_rev();
    let entry = CacheEntry {
        key: run.key.clone(),
        experiment: run.experiment.clone(),
        seed: run.seed,
        profile: run.profile.label().to_owned(),
        intensity: run.intensity,
        retries: run.retries,
        code_rev: rev.clone(),
        checksum: CacheEntry::checksum_of(&artifact_json, &metrics_json),
        artifact: artifact_json.clone(),
        metrics: metrics_json.clone(),
    };
    match ctx.cache.insert(entry) {
        Ok(evicted) if evicted > 0 => ctx.tel.counter("serve.evicted", evicted as u64),
        Ok(_) => {}
        Err(e) => {
            // The result is still good; only persistence failed. Serve it
            // and say so — the next identical request recomputes.
            eprintln!("serve: cache insert for {} failed: {e}", run.key);
        }
    }
    ctx.tel.gauge("serve.cache_entries", ctx.cache.len() as f64);
    Response::artifact(STATUS_MISS, &run.key, &rev, artifact_json, metrics_json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ServeClient;
    use humnet_resilience::JobOutput;
    use std::fs;
    use std::path::Path;

    const TIMEOUT: Duration = Duration::from_secs(60);

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("humnet-serve-test-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// Registry stand-in: any code starting with `exp` runs a tiny
    /// deterministic job; everything else is unknown.
    fn toy_factory() -> SpecFactory {
        Arc::new(|code: &str| {
            if !code.starts_with("exp") {
                return None;
            }
            let code = code.to_owned();
            let title = format!("toy {code}");
            Some(ExperimentSpec::new(code.clone(), title, "toy", move |_plan, tel| {
                tel.counter("toy.runs", 1);
                Ok(JobOutput {
                    rendered: format!("toy output for {code}\n"),
                    faults_injected: 0,
                })
            }))
        })
    }

    fn config(cache_dir: &Path) -> ServeConfig {
        let mut cfg = ServeConfig::default();
        cfg.addr = "127.0.0.1:0".to_owned();
        cfg.cache_dir = cache_dir.to_path_buf();
        cfg
    }

    fn start(cfg: ServeConfig) -> (String, thread::JoinHandle<ServeSummary>) {
        let server = Server::bind(cfg, toy_factory()).expect("bind");
        let addr = server.local_addr().to_string();
        let handle = thread::spawn(move || server.run().expect("serve run"));
        (addr, handle)
    }

    fn connect(addr: &str) -> ServeClient {
        ServeClient::connect(addr, TIMEOUT).expect("connect")
    }

    fn counters(addr: &str) -> std::collections::BTreeMap<String, u64> {
        let resp = connect(addr).stats().expect("stats query");
        assert_eq!(resp.status, crate::protocol::STATUS_STATS, "{resp:?}");
        let snap = TelemetrySnapshot::from_json(resp.stats.as_deref().unwrap()).expect("stats json");
        snap.metrics.counters.into_iter().collect()
    }

    fn shutdown(addr: &str, handle: thread::JoinHandle<ServeSummary>) -> ServeSummary {
        let resp = connect(addr).shutdown().expect("shutdown query");
        assert_eq!(resp.status, crate::protocol::STATUS_OK, "{resp:?}");
        handle.join().expect("daemon thread")
    }

    #[test]
    fn miss_then_hit_is_byte_identical_with_zero_new_runner_attempts() {
        let dir = scratch("hit");
        let (addr, handle) = start(config(&dir));

        // One persistent connection serves both the miss and the hit.
        let mut client = connect(&addr);
        let req = Request::run("exp1", 7, "chaos", 1.0);
        let miss = client.request(&req).unwrap();
        assert_eq!(miss.status, STATUS_MISS, "{miss:?}");
        let attempts_after_miss = counters(&addr)["runner.attempts"];
        assert!(attempts_after_miss >= 1);

        let hit = client.request(&req).unwrap();
        assert_eq!(hit.status, STATUS_HIT, "{hit:?}");
        assert_eq!(hit.key, miss.key);
        assert_eq!(hit.code_rev, miss.code_rev);
        assert_eq!(hit.artifact, miss.artifact, "hit artifact must be byte-identical");
        assert_eq!(hit.metrics, miss.metrics, "hit metrics must be byte-identical");

        // The hit performed zero runner attempts: the absorbed runner
        // counters did not move.
        let after_hit = counters(&addr);
        assert_eq!(after_hit["runner.attempts"], attempts_after_miss);
        assert_eq!(after_hit["serve.cache_hit"], 1);
        assert_eq!(after_hit["serve.cache_miss"], 1);
        assert!(!after_hit.contains_key("serve.shed"));

        // And the artifact matches what a direct supervisor run of the
        // same tuple produces (the daemon adds nothing of its own).
        let mut rc = RunnerConfig::default();
        rc.seed = 7;
        rc.profile = FaultProfile::parse("chaos").unwrap();
        rc.intensity = 1.0;
        rc.quiet_panics = false;
        let spec = toy_factory()("exp1").unwrap();
        let direct = Supervisor::builder().config(rc).build().run(&[spec]);
        let expected = RunArtifact {
            report: direct.report,
            outputs: direct.outputs,
        }
        .canonicalized()
        .to_json()
        .unwrap();
        assert_eq!(miss.artifact.as_deref(), Some(expected.as_str()));

        let summary = shutdown(&addr, handle);
        assert_eq!(summary.cache_entries, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tuple_changes_are_misses_and_bad_requests_are_errors() {
        let dir = scratch("tuple");
        let (addr, handle) = start(config(&dir));

        let mut client = connect(&addr);
        for req in [
            Request::run("exp1", 1, "none", 1.0),
            Request::run("exp1", 2, "none", 1.0),   // seed changed
            Request::run("exp1", 1, "churn", 1.0),  // profile changed
            Request::run("exp1", 1, "none", 2.0),   // intensity changed
            Request::run("exp2", 1, "none", 1.0),   // experiment changed
        ] {
            let resp = client.request(&req).unwrap();
            assert_eq!(resp.status, STATUS_MISS, "{req:?} -> {resp:?}");
        }
        let mut retried = Request::run("exp1", 1, "none", 1.0);
        retried.retries = Some(4); // retries changed
        assert_eq!(client.request(&retried).unwrap().status, STATUS_MISS);
        // ...but deadline is wall-clock only: same tuple, different
        // deadline is still a hit.
        let mut deadlined = Request::run("exp1", 1, "none", 1.0);
        deadlined.deadline_ms = Some(120_000);
        assert_eq!(client.request(&deadlined).unwrap().status, STATUS_HIT);

        let unknown = client.request(&Request::run("nope", 1, "none", 1.0)).unwrap();
        assert_eq!(unknown.status, crate::protocol::STATUS_ERROR);
        assert!(unknown.message.unwrap().contains("unknown experiment"));
        let bad_profile = client.request(&Request::run("exp1", 1, "bogus", 1.0)).unwrap();
        assert_eq!(bad_profile.status, crate::protocol::STATUS_ERROR);

        let stats = counters(&addr);
        assert_eq!(stats["serve.cache_miss"], 6);
        assert_eq!(stats["serve.cache_hit"], 1);
        assert_eq!(stats["serve.error"], 2);

        let summary = shutdown(&addr, handle);
        assert_eq!(summary.cache_entries, 6);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_and_unknown_commands_get_error_responses() {
        let dir = scratch("garbage");
        let (addr, handle) = start(config(&dir));

        let mut stream = TcpStream::connect(&addr).unwrap();
        stream.set_read_timeout(Some(TIMEOUT)).unwrap();
        stream.write_all(b"this is not json\n{\"cmd\": \"dance\"}\n").unwrap();
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        while buf.iter().filter(|&&b| b == b'\n').count() < 2 {
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "daemon closed early");
            buf.extend_from_slice(&chunk[..n]);
        }
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        let first = Response::from_line(lines.next().unwrap()).unwrap();
        assert_eq!(first.status, crate::protocol::STATUS_ERROR);
        assert!(first.message.unwrap().contains("bad request"));
        let second = Response::from_line(lines.next().unwrap()).unwrap();
        assert_eq!(second.status, crate::protocol::STATUS_ERROR);
        assert!(second.message.unwrap().contains("unknown cmd"));
        drop(stream);

        let summary = shutdown(&addr, handle);
        assert_eq!(summary.cache_entries, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn overload_sheds_excess_requests_and_recovers_after_drain() {
        let dir = scratch("overload");
        let mut cfg = config(&dir);
        cfg.queue_depth = 1;
        cfg.concurrency = 1;
        cfg.hold = Duration::from_millis(400);
        let (addr, handle) = start(cfg);

        // With one worker holding each miss 400ms and a queue of one,
        // four concurrent distinct-tuple requests cannot all be
        // admitted: the excess must be shed promptly, not hung.
        let t0 = Instant::now();
        let clients: Vec<_> = (0..4u64)
            .map(|seed| {
                let addr = addr.clone();
                thread::spawn(move || {
                    connect(&addr)
                        .run("exp1", seed, "none", 1.0)
                        .expect("query")
                        .status
                })
            })
            .collect();
        let statuses: Vec<String> = clients.into_iter().map(|c| c.join().unwrap()).collect();
        assert!(t0.elapsed() < Duration::from_secs(30), "requests hung");
        let shed = statuses.iter().filter(|s| *s == "overloaded").count();
        let ran = statuses.iter().filter(|s| *s == "miss" || *s == "hit").count();
        assert!(shed >= 1, "no request was shed: {statuses:?}");
        // How many of the four land before the worker dequeues the first
        // is a race; the hard guarantees are that at least one is
        // admitted and the rest shed *promptly*.
        assert!(ran >= 1, "queue+worker should admit at least one: {statuses:?}");
        assert_eq!(shed + ran, 4, "every request gets a definite answer: {statuses:?}");

        // Drained daemon serves again.
        let after = connect(&addr).run("exp1", 99, "none", 1.0).unwrap();
        assert_eq!(after.status, STATUS_MISS, "{after:?}");
        let stats = counters(&addr);
        assert_eq!(stats["serve.shed"], shed as u64);
        // Seeds were distinct, so every admitted request was a miss.
        assert_eq!(stats["serve.cache_miss"], (ran + 1) as u64);

        shutdown(&addr, handle);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_rehydrates_the_cache_and_serves_hits_without_recompute() {
        let dir = scratch("rehydrate");
        let (addr, handle) = start(config(&dir));
        let req = Request::run("exp3", 11, "outage", 0.5);
        let miss = connect(&addr).request(&req).unwrap();
        assert_eq!(miss.status, STATUS_MISS);
        let summary = shutdown(&addr, handle);
        assert_eq!(summary.cache_entries, 1);

        // Fresh daemon, same cache dir: the entry is served as a hit
        // with zero runner activity in the new process's telemetry.
        let (addr2, handle2) = start(config(&dir));
        let hit = connect(&addr2).request(&req).unwrap();
        assert_eq!(hit.status, STATUS_HIT, "{hit:?}");
        assert_eq!(hit.artifact, miss.artifact);
        assert_eq!(hit.metrics, miss.metrics);
        let stats = counters(&addr2);
        assert!(!stats.contains_key("runner.attempts"), "{stats:?}");
        assert_eq!(stats["serve.cache_hit"], 1);
        let summary2 = shutdown(&addr2, handle2);
        assert_eq!(summary2.cache_entries, 1);
        assert_eq!(summary2.rehydrated.loaded, 1);
        assert_eq!(summary2.rehydrated.evicted, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bounded_cache_evicts_lru_and_counts_it() {
        let dir = scratch("bounded");
        let mut cfg = config(&dir);
        cfg.cache_max_entries = 2;
        let (addr, handle) = start(cfg);

        let mut client = connect(&addr);
        // Fill to the cap, then freshen seed 1 so seed 2 is the LRU.
        for seed in [1, 2] {
            assert_eq!(client.run("exp1", seed, "none", 1.0).unwrap().status, STATUS_MISS);
        }
        assert_eq!(client.run("exp1", 1, "none", 1.0).unwrap().status, STATUS_HIT);
        // A third tuple evicts seed 2...
        assert_eq!(client.run("exp1", 3, "none", 1.0).unwrap().status, STATUS_MISS);
        let stats = counters(&addr);
        assert_eq!(stats["serve.evicted"], 1, "{stats:?}");
        // ...so seed 2 recomputes (miss) while seed 1 is still a hit.
        assert_eq!(client.run("exp1", 2, "none", 1.0).unwrap().status, STATUS_MISS);
        let stats = counters(&addr);
        assert_eq!(stats["serve.evicted"], 2, "seed 1 or 3 made room: {stats:?}");
        assert!(stats["serve.connections"] >= 1, "{stats:?}");

        let summary = shutdown(&addr, handle);
        assert_eq!(summary.cache_entries, 2, "the bound holds at shutdown");
        let _ = fs::remove_dir_all(&dir);
    }
}
