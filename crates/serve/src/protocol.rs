//! The serve wire protocol: line-delimited JSON over TCP.
//!
//! One [`Request`] object per line from the client, one [`Response`]
//! object per line back. Responses are always compact (single-line) JSON;
//! the artifact travels *as a string field* holding the exact
//! `RunArtifact` JSON the run produced, so a client comparing a hit
//! against a miss — or against an `experiments run --report-out` file —
//! compares bytes, not re-serialized structures.
//!
//! The vendored serde has no field attributes, so optional request fields
//! are plain `Option`s: absent JSON keys deserialize to `None`, and the
//! daemon fills defaults from its own configuration.

use serde::{Deserialize, Serialize};

/// Incremental line framer shared by the daemon's connection loop and the
/// persistent pipelined client (the remote worker protocol mirrors the
/// same idiom): push raw socket reads in, pull complete trimmed lines out.
/// Bytes after the last newline stay buffered until the next push
/// completes them, so partial frames are never mis-parsed.
#[derive(Debug, Default)]
pub struct LineBuffer {
    buf: Vec<u8>,
}

impl LineBuffer {
    /// An empty framer.
    pub fn new() -> LineBuffer {
        LineBuffer { buf: Vec::new() }
    }

    /// Append raw bytes read off the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Drain the next complete line, trimmed; blank lines are skipped.
    pub fn next_line(&mut self) -> Option<String> {
        loop {
            let pos = self.buf.iter().position(|&b| b == b'\n')?;
            let line: Vec<u8> = self.buf.drain(..=pos).collect();
            let text = String::from_utf8_lossy(&line).trim().to_owned();
            if !text.is_empty() {
                return Some(text);
            }
        }
    }

    /// Whether nothing (not even a partial frame) is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Request command: execute (or look up) one experiment run.
pub const CMD_RUN: &str = "run";
/// Request command: return the daemon's telemetry snapshot.
pub const CMD_STATS: &str = "stats";
/// Request command: drain in-flight runs, flush the cache index, exit.
pub const CMD_SHUTDOWN: &str = "shutdown";

/// Response status: answered from the cache index — no runner attempt.
pub const STATUS_HIT: &str = "hit";
/// Response status: executed on the warm pool and now cached.
pub const STATUS_MISS: &str = "miss";
/// Response status: load-shed — the pending queue was full.
pub const STATUS_OVERLOADED: &str = "overloaded";
/// Response status: the request was invalid or execution failed.
pub const STATUS_ERROR: &str = "error";
/// Response status: a `stats` answer.
pub const STATUS_STATS: &str = "stats";
/// Response status: acknowledgement (e.g. of `shutdown`).
pub const STATUS_OK: &str = "ok";

/// One client request. `cmd` selects the action; the remaining fields
/// only apply to [`CMD_RUN`]. `retries` and `deadline_ms` are optional
/// overrides of the daemon's defaults (`deadline_ms` is wall-clock, so it
/// is deliberately *not* part of the cache key; `retries` is, because it
/// changes what a faulted run reports).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// `run`, `stats`, or `shutdown`.
    pub cmd: String,
    /// Experiment code (e.g. `f3`), validated against the registry.
    pub experiment: Option<String>,
    /// Seed for fault plans and jitter streams.
    pub seed: Option<u64>,
    /// Fault profile label (`none|churn|outage|chaos`).
    pub profile: Option<String>,
    /// Multiplier on the profile's fault rates.
    pub intensity: Option<f64>,
    /// Extra attempts per experiment (daemon default when absent).
    pub retries: Option<u32>,
    /// Per-attempt deadline override in milliseconds.
    pub deadline_ms: Option<u64>,
}

impl Request {
    /// A `run` request for one experiment tuple.
    pub fn run(experiment: &str, seed: u64, profile: &str, intensity: f64) -> Request {
        Request {
            cmd: CMD_RUN.to_owned(),
            experiment: Some(experiment.to_owned()),
            seed: Some(seed),
            profile: Some(profile.to_owned()),
            intensity: Some(intensity),
            retries: None,
            deadline_ms: None,
        }
    }

    /// A `stats` request.
    pub fn stats() -> Request {
        Request {
            cmd: CMD_STATS.to_owned(),
            experiment: None,
            seed: None,
            profile: None,
            intensity: None,
            retries: None,
            deadline_ms: None,
        }
    }

    /// A `shutdown` request.
    pub fn shutdown() -> Request {
        Request {
            cmd: CMD_SHUTDOWN.to_owned(),
            ..Request::stats()
        }
    }

    /// Encode as one protocol line (no trailing newline).
    pub fn to_line(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Decode a protocol line.
    pub fn from_line(line: &str) -> Result<Request, serde_json::Error> {
        serde_json::from_str(line.trim())
    }
}

/// One daemon response. `status` says which of the optional fields are
/// populated: `hit`/`miss` carry `key`, `code_rev`, `artifact`, and
/// `metrics`; `stats` carries `stats`; `error` carries `message`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// One of the `STATUS_*` constants.
    pub status: String,
    /// Content-address of the request tuple (32 hex chars).
    pub key: Option<String>,
    /// Code revision of the binary that produced the artifact.
    pub code_rev: Option<String>,
    /// The canonicalized `RunArtifact` JSON, verbatim.
    pub artifact: Option<String>,
    /// The run's telemetry snapshot JSON, verbatim (captured at miss
    /// time; a hit replays the stored one byte-for-byte).
    pub metrics: Option<String>,
    /// Human-readable detail for `error`/`overloaded`/`ok`.
    pub message: Option<String>,
    /// Daemon telemetry snapshot JSON, for `stats`.
    pub stats: Option<String>,
}

impl Response {
    fn empty(status: &str) -> Response {
        Response {
            status: status.to_owned(),
            key: None,
            code_rev: None,
            artifact: None,
            metrics: None,
            message: None,
            stats: None,
        }
    }

    /// A cache-hit or miss answer carrying the artifact.
    pub fn artifact(
        status: &str,
        key: &str,
        code_rev: &str,
        artifact: String,
        metrics: String,
    ) -> Response {
        Response {
            key: Some(key.to_owned()),
            code_rev: Some(code_rev.to_owned()),
            artifact: Some(artifact),
            metrics: Some(metrics),
            ..Response::empty(status)
        }
    }

    /// A load-shed answer.
    pub fn overloaded(message: &str) -> Response {
        Response {
            message: Some(message.to_owned()),
            ..Response::empty(STATUS_OVERLOADED)
        }
    }

    /// An error answer.
    pub fn error(message: &str) -> Response {
        Response {
            message: Some(message.to_owned()),
            ..Response::empty(STATUS_ERROR)
        }
    }

    /// A `stats` answer.
    pub fn stats(snapshot_json: String) -> Response {
        Response {
            stats: Some(snapshot_json),
            ..Response::empty(STATUS_STATS)
        }
    }

    /// A plain acknowledgement.
    pub fn ok(message: &str) -> Response {
        Response {
            message: Some(message.to_owned()),
            ..Response::empty(STATUS_OK)
        }
    }

    /// Encode as one protocol line (no trailing newline).
    pub fn to_line(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Decode a protocol line.
    pub fn from_line(line: &str) -> Result<Response, serde_json::Error> {
        serde_json::from_str(line.trim())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_buffer_reassembles_split_frames_and_skips_blanks() {
        let mut framer = LineBuffer::new();
        framer.push(b"{\"cmd\":");
        assert_eq!(framer.next_line(), None, "partial frame stays buffered");
        framer.push(b"\"stats\"}\n\n  \n{\"cmd\":\"run\"}\ntail");
        assert_eq!(framer.next_line().as_deref(), Some("{\"cmd\":\"stats\"}"));
        assert_eq!(framer.next_line().as_deref(), Some("{\"cmd\":\"run\"}"));
        assert_eq!(framer.next_line(), None);
        assert!(!framer.is_empty(), "the unterminated tail is still buffered");
        framer.push(b"\n");
        assert_eq!(framer.next_line().as_deref(), Some("tail"));
        assert!(framer.is_empty());
    }

    #[test]
    fn request_lines_round_trip() {
        let mut req = Request::run("f3", 7, "chaos", 1.5);
        req.retries = Some(2);
        let line = req.to_line().unwrap();
        assert!(!line.contains('\n'), "{line}");
        assert_eq!(Request::from_line(&line).unwrap(), req);
        let stats = Request::stats().to_line().unwrap();
        assert_eq!(Request::from_line(&stats).unwrap().cmd, CMD_STATS);
    }

    #[test]
    fn absent_optional_fields_deserialize_to_none() {
        let req = Request::from_line(r#"{"cmd": "run", "experiment": "f1"}"#).unwrap();
        assert_eq!(req.experiment.as_deref(), Some("f1"));
        assert_eq!(req.seed, None);
        assert_eq!(req.deadline_ms, None);
    }

    #[test]
    fn response_embeds_artifact_verbatim_across_the_wire() {
        // Artifact JSON is pretty-printed (multi-line) — it must survive
        // the single-line framing byte-for-byte.
        let artifact = "{\n  \"report\": \"x\"\n}".to_owned();
        let resp =
            Response::artifact(STATUS_HIT, "00ff", "0.1.0+abc", artifact.clone(), "{}".into());
        let line = resp.to_line().unwrap();
        assert!(!line.contains('\n'), "{line}");
        let back = Response::from_line(&line).unwrap();
        assert_eq!(back.artifact.as_deref(), Some(artifact.as_str()));
        assert_eq!(back.status, STATUS_HIT);
    }
}
