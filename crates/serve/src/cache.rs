//! Content-addressed result cache.
//!
//! Every cached result is one JSON file named by the 128-bit FNV-1a hash
//! of its request tuple — `experiment | seed | profile | intensity bits |
//! retries | code-rev` — so the filesystem *is* the index and two daemons
//! pointed at the same directory agree on addresses. Writes go through a
//! temp-file-then-rename so a crash mid-write can never leave a torn
//! entry under a valid name; a restarted daemon rehydrates by scanning
//! the directory, re-checking every entry's self-checksum, and evicting
//! (deleting) anything corrupt or misfiled.
//!
//! The in-memory index holds the full entries (artifact and metrics
//! strings included): a hit is answered from memory without touching the
//! disk, which is what makes cached reads cost microseconds.
//!
//! The code-rev component means a rebuilt binary simply *misses* on every
//! old entry rather than serving results a different code produced; stale
//! entries age out by never being read again — or, under a configured
//! size bound ([`ResultCache::open_bounded`]), get evicted
//! least-recently-used first when an insert would exceed the cap. An
//! *age* bound ([`ResultCache::open_with`]) additionally evicts entries
//! whose file mtime is older than the bound, both at rehydrate and via
//! [`ResultCache::sweep_stale`] — the LRU bound is size-only, so without
//! it artifacts from dead code revisions pin a roomy cache forever.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, SystemTime};

/// 128-bit FNV-1a over `bytes` — the same hash family the runner's
/// deterministic jitter uses, widened so tuple collisions are out of the
/// picture at any realistic cache size.
fn fnv1a_128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u128::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// The content address of one request tuple, as 32 hex characters.
///
/// `intensity` enters through its IEEE-754 bit pattern so every distinct
/// float is a distinct address (no formatting round-trip); `deadline` is
/// deliberately absent — it bounds wall-clock, which canonical artifacts
/// exclude — while `retries` is included because it changes what a
/// faulted run reports.
pub fn cache_key(
    experiment: &str,
    seed: u64,
    profile: &str,
    intensity: f64,
    retries: u32,
    code_rev: &str,
) -> String {
    // String fields are length-prefixed so a delimiter *inside* one can
    // never splice into its neighbor's position.
    let tuple = format!(
        "{}:{experiment}|{seed}|{}:{profile}|{:016x}|{retries}|{}:{code_rev}",
        experiment.len(),
        profile.len(),
        intensity.to_bits(),
        code_rev.len()
    );
    format!("{:032x}", fnv1a_128(tuple.as_bytes()))
}

/// One cached result: the request tuple it answers, the artifacts, and a
/// self-checksum so corruption is detectable without re-running anything.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheEntry {
    /// Content address ([`cache_key`] of the tuple below).
    pub key: String,
    /// Experiment code.
    pub experiment: String,
    /// Seed.
    pub seed: u64,
    /// Fault profile label.
    pub profile: String,
    /// Fault-rate multiplier.
    pub intensity: f64,
    /// Retry budget the run executed under.
    pub retries: u32,
    /// Code revision that produced the artifact.
    pub code_rev: String,
    /// Canonicalized `RunArtifact` JSON, verbatim.
    pub artifact: String,
    /// The run's telemetry snapshot JSON, verbatim.
    pub metrics: String,
    /// FNV-1a-128 over `artifact` and `metrics` (see [`CacheEntry::checksum_of`]).
    pub checksum: String,
}

impl CacheEntry {
    /// The checksum an intact entry must carry.
    pub fn checksum_of(artifact: &str, metrics: &str) -> String {
        let mut bytes = Vec::with_capacity(artifact.len() + metrics.len() + 1);
        bytes.extend_from_slice(artifact.as_bytes());
        bytes.push(b'\n');
        bytes.extend_from_slice(metrics.as_bytes());
        format!("{:032x}", fnv1a_128(&bytes))
    }

    /// Whether the entry is self-consistent: its stored key matches its
    /// tuple and its checksum matches its payload.
    pub fn intact(&self) -> bool {
        self.key
            == cache_key(
                &self.experiment,
                self.seed,
                &self.profile,
                self.intensity,
                self.retries,
                &self.code_rev,
            )
            && self.checksum == CacheEntry::checksum_of(&self.artifact, &self.metrics)
    }
}

/// What a [`ResultCache::open`] scan found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RehydrateStats {
    /// Intact entries loaded into the index.
    pub loaded: usize,
    /// Corrupt or misfiled entries deleted from disk.
    pub evicted: usize,
    /// Intact entries dropped (from index and disk) because they exceeded
    /// a configured size bound on rehydration.
    pub trimmed: usize,
    /// Entries deleted because their file mtime exceeded a configured
    /// age bound.
    pub stale: usize,
}

/// One indexed entry plus its recency stamp for LRU eviction.
#[derive(Debug)]
struct Slot {
    entry: Arc<CacheEntry>,
    last_used: u64,
}

/// The mutex-guarded index state: the map plus a monotone tick that
/// stamps every touch (hit or insert) for least-recently-used ordering.
#[derive(Debug, Default)]
struct Index {
    map: HashMap<String, Slot>,
    tick: u64,
}

impl Index {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

/// The cache: a directory of content-addressed entry files fronted by an
/// in-memory index. All methods take `&self`; the index mutex is held
/// only for map operations, never across disk I/O of other callers' keys.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    /// `0` = unbounded; otherwise inserts evict LRU entries above this.
    max_entries: usize,
    /// Zero = no age bound; otherwise entries older than this (by file
    /// mtime) are evicted at rehydrate and by [`ResultCache::sweep_stale`].
    max_age: Duration,
    index: Mutex<Index>,
}

impl ResultCache {
    /// Open (creating if needed) the cache at `dir` and rehydrate the
    /// index from whatever intact entries a previous daemon left behind.
    /// Corrupt entries — torn JSON, checksum mismatch, an entry filed
    /// under a name that is not its own key — are deleted, so the next
    /// request for that tuple recomputes instead of serving damage.
    pub fn open(dir: &Path) -> io::Result<(ResultCache, RehydrateStats)> {
        ResultCache::open_with(dir, 0, Duration::ZERO)
    }

    /// [`ResultCache::open`] with a size bound: at most `max_entries`
    /// entries are kept (`0` = unbounded). Rehydration trims an
    /// over-full directory down to the bound (deterministically, by key
    /// order — recency is unknowable across a restart), and subsequent
    /// [`ResultCache::insert`]s evict least-recently-used entries.
    pub fn open_bounded(
        dir: &Path,
        max_entries: usize,
    ) -> io::Result<(ResultCache, RehydrateStats)> {
        ResultCache::open_with(dir, max_entries, Duration::ZERO)
    }

    /// [`ResultCache::open_bounded`] with an additional age bound:
    /// entries whose file mtime is older than `max_age` are deleted
    /// during the rehydration scan (counted in [`RehydrateStats::stale`])
    /// and by later [`ResultCache::sweep_stale`] calls (`ZERO` = no age
    /// bound). Age is judged before the size trim so a directory full of
    /// expired entries does not crowd out live ones.
    pub fn open_with(
        dir: &Path,
        max_entries: usize,
        max_age: Duration,
    ) -> io::Result<(ResultCache, RehydrateStats)> {
        fs::create_dir_all(dir)?;
        let now = SystemTime::now();
        let mut stats = RehydrateStats::default();
        let mut loaded: Vec<CacheEntry> = Vec::new();
        for dirent in fs::read_dir(dir)? {
            let path = dirent?.path();
            let Some(stem) = entry_key_of(&path) else {
                continue; // index.json, temp files, strays
            };
            if is_stale(&path, max_age, now) {
                let _ = fs::remove_file(&path);
                stats.stale += 1;
                continue;
            }
            match fs::read_to_string(&path)
                .ok()
                .and_then(|text| serde_json::from_str::<CacheEntry>(&text).ok())
            {
                Some(entry) if entry.intact() && entry.key == stem => {
                    loaded.push(entry);
                    stats.loaded += 1;
                }
                _ => {
                    let _ = fs::remove_file(&path);
                    stats.evicted += 1;
                }
            }
        }
        loaded.sort_by(|a, b| a.key.cmp(&b.key));
        let cache = ResultCache {
            dir: dir.to_owned(),
            max_entries,
            max_age,
            index: Mutex::new(Index::default()),
        };
        let mut index = cache.index.lock().expect("cache index lock");
        for entry in loaded {
            if max_entries > 0 && index.map.len() >= max_entries {
                let _ = fs::remove_file(cache.entry_path(&entry.key));
                stats.trimmed += 1;
                stats.loaded -= 1;
                continue;
            }
            let stamp = index.touch();
            index.map.insert(
                entry.key.clone(),
                Slot {
                    entry: Arc::new(entry),
                    last_used: stamp,
                },
            );
        }
        drop(index);
        Ok((cache, stats))
    }

    /// The configured size bound (`0` = unbounded).
    pub fn max_entries(&self) -> usize {
        self.max_entries
    }

    /// The configured age bound (`ZERO` = no age-out).
    pub fn max_age(&self) -> Duration {
        self.max_age
    }

    /// Evict every indexed entry whose file mtime is older than the age
    /// bound; returns how many died. A no-op without an age bound. Stats
    /// run outside the index lock; an entry re-inserted between the stat
    /// and the eviction just recomputes on its next request — the same
    /// harmless outcome any eviction has.
    pub fn sweep_stale(&self) -> usize {
        if self.max_age.is_zero() {
            return 0;
        }
        let now = SystemTime::now();
        let keys: Vec<String> = {
            let index = self.index.lock().expect("cache index lock");
            index.map.keys().cloned().collect()
        };
        let mut evicted = 0;
        for key in keys {
            if is_stale(&self.entry_path(&key), self.max_age, now) {
                self.evict(&key);
                evicted += 1;
            }
        }
        evicted
    }

    /// Look up a content address in the in-memory index, freshening its
    /// recency stamp.
    pub fn get(&self, key: &str) -> Option<Arc<CacheEntry>> {
        let mut index = self.index.lock().expect("cache index lock");
        let stamp = index.touch();
        index.map.get_mut(key).map(|slot| {
            slot.last_used = stamp;
            slot.entry.clone()
        })
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.index.lock().expect("cache index lock").map.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Persist an entry (write-then-rename, so readers and crashes only
    /// ever observe whole files) and publish it to the index. Two racing
    /// inserts of the same key write identical bytes, so last-rename-wins
    /// is harmless. Under a size bound, least-recently-used entries are
    /// evicted (index and disk) to make room; the count of evictions is
    /// returned so the daemon can feed its `serve.evicted` counter.
    pub fn insert(&self, entry: CacheEntry) -> io::Result<usize> {
        let json = serde_json::to_string_pretty(&entry)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let tmp = self.dir.join(format!(".tmp-{}", entry.key));
        let fin = self.entry_path(&entry.key);
        fs::write(&tmp, &json)?;
        fs::rename(&tmp, &fin)?;
        let mut index = self.index.lock().expect("cache index lock");
        let stamp = index.touch();
        let key = entry.key.clone();
        index.map.insert(
            key,
            Slot {
                entry: Arc::new(entry),
                last_used: stamp,
            },
        );
        // Evict past the bound. The entry just inserted carries the
        // freshest stamp, so it is never its own victim.
        let mut victims = Vec::new();
        while self.max_entries > 0 && index.map.len() > self.max_entries {
            let Some(lru) = index
                .map
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(key, _)| key.clone())
            else {
                break;
            };
            index.map.remove(&lru);
            victims.push(lru);
        }
        drop(index);
        for victim in &victims {
            let _ = fs::remove_file(self.entry_path(victim));
        }
        Ok(victims.len())
    }

    /// Drop an entry from the index and disk (used by tests and by
    /// operators pruning by hand; rehydration evicts corruption itself).
    pub fn evict(&self, key: &str) {
        self.index.lock().expect("cache index lock").map.remove(key);
        let _ = fs::remove_file(self.entry_path(key));
    }

    /// Write `index.json`: the sorted key list plus each entry's tuple,
    /// one advisory summary an operator (or the next daemon's logs) can
    /// read without scanning every entry file. Called at graceful
    /// shutdown; rehydration itself trusts only the entry files.
    pub fn flush_index(&self) -> io::Result<()> {
        let index = self.index.lock().expect("cache index lock");
        let mut keys: Vec<&String> = index.map.keys().collect();
        keys.sort();
        let mut lines = String::from("{\n  \"entries\": [\n");
        for (i, key) in keys.iter().enumerate() {
            let e = &index.map[key.as_str()].entry;
            lines.push_str(&format!(
                "    {{\"key\": \"{key}\", \"experiment\": \"{}\", \"seed\": {}, \"profile\": \"{}\", \"retries\": {}, \"code_rev\": \"{}\"}}{}\n",
                e.experiment,
                e.seed,
                e.profile,
                e.retries,
                e.code_rev,
                if i + 1 < keys.len() { "," } else { "" },
            ));
        }
        lines.push_str("  ]\n}\n");
        drop(index);
        let tmp = self.dir.join(".tmp-index");
        fs::write(&tmp, &lines)?;
        fs::rename(&tmp, self.dir.join("index.json"))
    }

    /// The on-disk path of a key's entry file.
    pub fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }
}

/// Whether `path`'s mtime is older than `max_age` relative to `now`.
/// Unreadable metadata (entry deleted under us, exotic filesystem) reads
/// as fresh: age-out must never evict on doubt.
fn is_stale(path: &Path, max_age: Duration, now: SystemTime) -> bool {
    if max_age.is_zero() {
        return false;
    }
    match fs::metadata(path).and_then(|m| m.modified()) {
        Ok(mtime) => now.duration_since(mtime).is_ok_and(|age| age > max_age),
        Err(_) => false,
    }
}

/// The cache key a directory entry claims to hold, if its name has the
/// `<32-hex>.json` shape entry files use.
fn entry_key_of(path: &Path) -> Option<String> {
    let name = path.file_name()?.to_str()?;
    let stem = name.strip_suffix(".json")?;
    (stem.len() == 32 && stem.bytes().all(|b| b.is_ascii_hexdigit()))
        .then(|| stem.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "humnet-serve-cache-test-{}-{tag}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn entry(seed: u64) -> CacheEntry {
        let (artifact, metrics) = (format!("{{\"seed\": {seed}}}"), "{}".to_owned());
        CacheEntry {
            key: cache_key("f1", seed, "none", 1.0, 1, "0.1.0+test"),
            experiment: "f1".to_owned(),
            seed,
            profile: "none".to_owned(),
            intensity: 1.0,
            retries: 1,
            code_rev: "0.1.0+test".to_owned(),
            checksum: CacheEntry::checksum_of(&artifact, &metrics),
            artifact,
            metrics,
        }
    }

    #[test]
    fn every_tuple_component_changes_the_key() {
        let base = cache_key("f1", 7, "none", 1.0, 1, "0.1.0+aaa");
        assert_eq!(base, cache_key("f1", 7, "none", 1.0, 1, "0.1.0+aaa"));
        assert_eq!(base.len(), 32);
        for other in [
            cache_key("f2", 7, "none", 1.0, 1, "0.1.0+aaa"),
            cache_key("f1", 8, "none", 1.0, 1, "0.1.0+aaa"),
            cache_key("f1", 7, "chaos", 1.0, 1, "0.1.0+aaa"),
            cache_key("f1", 7, "none", 1.5, 1, "0.1.0+aaa"),
            cache_key("f1", 7, "none", 1.0, 2, "0.1.0+aaa"),
            cache_key("f1", 7, "none", 1.0, 1, "0.1.0+bbb"),
        ] {
            assert_ne!(base, other);
        }
    }

    #[test]
    fn key_is_delimiter_safe() {
        // "ab|c" + "d" must not collide with "ab" + "c|d": the length
        // prefixes on string fields break up naive splices.
        assert_ne!(
            cache_key("f1|2", 0, "none", 1.0, 0, "r"),
            cache_key("f1", 2, "0|none", 1.0, 0, "r"),
        );
    }

    #[test]
    fn insert_get_survives_reopen_byte_identically() {
        let dir = scratch("roundtrip");
        let (cache, stats) = ResultCache::open(&dir).unwrap();
        assert_eq!(stats, RehydrateStats::default());
        let e = entry(7);
        cache.insert(e.clone()).unwrap();
        assert_eq!(cache.get(&e.key).unwrap().artifact, e.artifact);
        drop(cache);

        let (cache, stats) = ResultCache::open(&dir).unwrap();
        assert_eq!(stats, RehydrateStats { loaded: 1, evicted: 0, trimmed: 0, stale: 0 });
        let back = cache.get(&e.key).unwrap();
        assert_eq!(back.artifact, e.artifact);
        assert_eq!(back.metrics, e.metrics);
        assert_eq!(*back, e);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_evicted_on_open() {
        let dir = scratch("corrupt");
        let (cache, _) = ResultCache::open(&dir).unwrap();
        let good = entry(1);
        let torn = entry(2);
        let lying = entry(3);
        cache.insert(good.clone()).unwrap();
        cache.insert(torn.clone()).unwrap();
        cache.insert(lying.clone()).unwrap();
        // Tear one entry mid-file and flip a payload byte in another
        // without updating its checksum.
        fs::write(cache.entry_path(&torn.key), "{\"key\": \"trunc").unwrap();
        let mut tampered = lying.clone();
        tampered.artifact.push('!');
        fs::write(
            cache.entry_path(&lying.key),
            serde_json::to_string_pretty(&tampered).unwrap(),
        )
        .unwrap();
        drop(cache);

        let (cache, stats) = ResultCache::open(&dir).unwrap();
        assert_eq!(stats, RehydrateStats { loaded: 1, evicted: 2, trimmed: 0, stale: 0 });
        assert!(cache.get(&good.key).is_some());
        assert!(cache.get(&torn.key).is_none());
        assert!(cache.get(&lying.key).is_none());
        assert!(!cache.entry_path(&torn.key).exists(), "evicted from disk too");
        // The evicted tuples recompute cleanly: a fresh insert under the
        // same key round-trips again.
        cache.insert(entry(2)).unwrap();
        assert!(cache.get(&entry(2).key).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn misfiled_entries_are_evicted() {
        let dir = scratch("misfiled");
        let (cache, _) = ResultCache::open(&dir).unwrap();
        let e = entry(4);
        // An intact entry filed under some other tuple's name must not
        // be served for that name.
        let wrong = cache_key("f9", 999, "chaos", 2.0, 0, "elsewhere");
        fs::write(
            cache.entry_path(&wrong),
            serde_json::to_string_pretty(&e).unwrap(),
        )
        .unwrap();
        drop(cache);
        let (cache, stats) = ResultCache::open(&dir).unwrap();
        assert_eq!(stats, RehydrateStats { loaded: 0, evicted: 1, trimmed: 0, stale: 0 });
        assert!(cache.get(&wrong).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bounded_insert_evicts_least_recently_used() {
        let dir = scratch("lru");
        let (cache, _) = ResultCache::open_bounded(&dir, 2).unwrap();
        assert_eq!(cache.max_entries(), 2);
        let (e1, e2, e3) = (entry(1), entry(2), entry(3));
        assert_eq!(cache.insert(e1.clone()).unwrap(), 0);
        assert_eq!(cache.insert(e2.clone()).unwrap(), 0);
        // Touch e1 so e2 becomes the LRU victim.
        assert!(cache.get(&e1.key).is_some());
        assert_eq!(cache.insert(e3.clone()).unwrap(), 1);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&e2.key).is_none(), "LRU entry evicted");
        assert!(!cache.entry_path(&e2.key).exists(), "and removed from disk");
        assert!(cache.get(&e1.key).is_some());
        assert!(cache.get(&e3.key).is_some());
        // An evicted tuple can be recomputed and re-inserted.
        assert_eq!(cache.insert(entry(2)).unwrap(), 1);
        assert!(cache.get(&e2.key).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unbounded_cache_never_evicts_on_insert() {
        let dir = scratch("unbounded");
        let (cache, _) = ResultCache::open(&dir).unwrap();
        for seed in 0..16 {
            assert_eq!(cache.insert(entry(seed)).unwrap(), 0);
        }
        assert_eq!(cache.len(), 16);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bounded_reopen_trims_an_overfull_directory_to_the_cap() {
        let dir = scratch("trim");
        let (cache, _) = ResultCache::open(&dir).unwrap();
        for seed in 0..5 {
            cache.insert(entry(seed)).unwrap();
        }
        drop(cache);
        let (cache, stats) = ResultCache::open_bounded(&dir, 3).unwrap();
        assert_eq!(stats.loaded, 3);
        assert_eq!(stats.trimmed, 2);
        assert_eq!(stats.evicted, 0);
        assert_eq!(cache.len(), 3);
        // Disk agrees with the index: exactly the cap remains.
        let on_disk = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|d| entry_key_of(&d.unwrap().path()))
            .count();
        assert_eq!(on_disk, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn aged_out_entries_die_at_rehydrate_and_under_the_sweep() {
        let dir = scratch("age");
        let (cache, _) = ResultCache::open(&dir).unwrap();
        cache.insert(entry(1)).unwrap();
        cache.insert(entry(2)).unwrap();
        drop(cache);
        std::thread::sleep(Duration::from_millis(120));

        // Rehydrate with a bound both entries have outlived.
        let bound = Duration::from_millis(50);
        let (cache, stats) = ResultCache::open_with(&dir, 0, bound).unwrap();
        assert_eq!(stats, RehydrateStats { loaded: 0, evicted: 0, trimmed: 0, stale: 2 });
        assert!(cache.is_empty());
        assert!(!cache.entry_path(&entry(1).key).exists());

        // A fresh insert is young; after outliving the bound the sweep
        // takes it (index and disk), and a re-insert round-trips again.
        assert_eq!(cache.max_age(), bound);
        cache.insert(entry(3)).unwrap();
        assert_eq!(cache.sweep_stale(), 0, "fresh entries survive the sweep");
        std::thread::sleep(Duration::from_millis(120));
        assert_eq!(cache.sweep_stale(), 1);
        assert!(cache.get(&entry(3).key).is_none());
        assert!(!cache.entry_path(&entry(3).key).exists());
        cache.insert(entry(3)).unwrap();
        assert!(cache.get(&entry(3).key).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_without_an_age_bound_is_a_no_op() {
        let dir = scratch("no-age");
        let (cache, _) = ResultCache::open(&dir).unwrap();
        cache.insert(entry(1)).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(cache.sweep_stale(), 0);
        assert_eq!(cache.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_index_writes_the_advisory_summary() {
        let dir = scratch("flush");
        let (cache, _) = ResultCache::open(&dir).unwrap();
        cache.insert(entry(1)).unwrap();
        cache.insert(entry(2)).unwrap();
        cache.flush_index().unwrap();
        let text = fs::read_to_string(dir.join("index.json")).unwrap();
        assert!(text.contains(&entry(1).key), "{text}");
        assert!(text.contains("\"seed\": 2"), "{text}");
        // index.json is advisory: rehydration ignores it (and never
        // mistakes it for an entry).
        let (cache, stats) = ResultCache::open(&dir).unwrap();
        assert_eq!(stats.loaded, 2);
        assert_eq!(cache.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }
}
