//! Closed-loop capacity harness for the serve daemon.
//!
//! Microbenchmarks (`BENCH_serve.json`) time single operations; the
//! north-star metric is *sustainable throughput under SLOs*. This module
//! reproduces the classic `initial_rps → increment_rps → max_rps`
//! capacity-search shape: drive the daemon with a rising synthetic
//! open-loop load, measure each step, stop at the first step that breaks
//! the SLO, then bisect between the last-good and first-bad rates to
//! bracket the maximum sustainable RPS.
//!
//! The pieces are deliberately separable:
//!
//! - [`Slo`] — the pass/fail policy for one load step (p99 ceiling, max
//!   failure fraction, minimum achieved/target throughput ratio).
//! - [`RequestMix`] — what the workers send: a cycling set of
//!   `(experiment, seed)` tuples (warmed up first, so the steady state is
//!   cache hits at a controllable hit-rate) or fresh seeds per request
//!   (every request a miss — the expensive path).
//! - [`find_capacity`] — the pure search algorithm over an abstract
//!   `drive(rps, phase) -> StepRecord` closure, so the ramp/bisect logic
//!   is unit-testable against synthetic SLO curves with no sockets.
//! - [`run_step`] / [`run_ramp`] — the real network driver: open-loop
//!   workers on pooled persistent [`ClientPool`] connections, per-step
//!   latency histograms, and daemon-side shed deltas read from `stats`
//!   telemetry.
//! - [`CapacityReport`] — the code-rev-stamped artifact (`CAPACITY.json`
//!   schema `humnet-capacity/1`) plus a human-readable trend table.
//!
//! "Open-loop" matters: each worker sends on a fixed schedule derived
//! from the target rate whether or not earlier responses have returned
//! (up to a bounded pipeline depth), so an overloaded daemon shows up as
//! queueing delay, shed responses, and missed sends — not as the load
//! generator politely slowing down to match.

use crate::client::{ClientError, ClientPool};
use crate::protocol::{Request, Response, STATUS_HIT, STATUS_MISS, STATUS_OVERLOADED};
use humnet_telemetry::{Histogram, TelemetrySnapshot, TextTable};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fs;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Schema tag stamped into every [`CapacityReport`].
pub const CAPACITY_SCHEMA: &str = "humnet-capacity/1";

/// Schema tag stamped into every [`CapacityTrendEntry`].
pub const CAPACITY_TREND_SCHEMA: &str = "humnet-capacity-trend/1";

/// Requests a worker may leave unanswered on its connection before it
/// starts counting scheduled sends as `skipped` instead of deepening the
/// pipeline without bound.
const MAX_PENDING: usize = 64;

/// Pass/fail policy for one load step. All three clauses must hold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Slo {
    /// p99 latency ceiling over successful responses, in microseconds.
    pub max_p99_us: u64,
    /// Maximum fraction of scheduled requests that may fail (shed,
    /// errored, unanswered, or skipped because the pipeline saturated).
    pub max_fail_frac: f64,
    /// Minimum achieved/target throughput ratio — a daemon that silently
    /// absorbs load into queues without answering it is not sustaining
    /// the rate.
    pub min_achieved_frac: f64,
}

impl Default for Slo {
    fn default() -> Slo {
        Slo {
            max_p99_us: 50_000,
            max_fail_frac: 0.01,
            min_achieved_frac: 0.9,
        }
    }
}

impl Slo {
    /// Evaluate the policy for one measured step.
    pub fn evaluate(&self, p99_us: u64, fail_frac: f64, achieved_rps: f64, target_rps: f64) -> bool {
        p99_us <= self.max_p99_us
            && fail_frac <= self.max_fail_frac
            && achieved_rps >= self.min_achieved_frac * target_rps
    }
}

/// The search schedule: where the ramp starts, how fast it rises, where
/// it gives up, and how hard the bisection refines the bracket.
#[derive(Debug, Clone)]
pub struct RampPlan {
    /// First tested rate, requests per second.
    pub initial_rps: f64,
    /// Additive step between ramp rates.
    pub increment_rps: f64,
    /// The ramp stops (unsaturated) past this rate.
    pub max_rps: f64,
    /// Measurement window per step.
    pub step_duration: Duration,
    /// Maximum bisection refinements after the first SLO break.
    pub bisect_iters: u32,
    /// The per-step pass/fail policy.
    pub slo: Slo,
}

impl Default for RampPlan {
    fn default() -> RampPlan {
        RampPlan {
            initial_rps: 100.0,
            increment_rps: 100.0,
            max_rps: 5_000.0,
            step_duration: Duration::from_secs(2),
            bisect_iters: 4,
            slo: Slo::default(),
        }
    }
}

/// Distinguishes fresh-seed epochs so two mixes in one process never
/// collide on "fresh" (never-cached) seeds.
static MIX_EPOCH: AtomicU64 = AtomicU64::new(0);

/// What the load workers send. Thread-safe: workers share one mix and
/// pull requests off a global atomic counter, so the interleaving across
/// workers still cycles the tuple space evenly.
#[derive(Debug)]
pub struct RequestMix {
    experiments: Vec<String>,
    profile: String,
    intensity: f64,
    /// Seeds per experiment to cycle over; `0` means a fresh (never
    /// repeated) seed per request, i.e. every request is a cache miss.
    seeds: u64,
    counter: AtomicU64,
    fresh_base: u64,
}

impl RequestMix {
    /// A mix cycling `seeds` seeds over `experiments` under one fault
    /// profile. With `seeds == 0` every request gets a fresh seed.
    pub fn new(experiments: Vec<String>, profile: &str, intensity: f64, seeds: u64) -> RequestMix {
        assert!(!experiments.is_empty(), "request mix needs >= 1 experiment");
        let epoch = MIX_EPOCH.fetch_add(1, Ordering::Relaxed);
        RequestMix {
            experiments,
            profile: profile.to_owned(),
            intensity,
            seeds,
            counter: AtomicU64::new(0),
            // High bit set + a per-mix epoch keeps fresh seeds disjoint
            // from the small cycled seeds and from other mixes.
            fresh_base: (1 << 62) | (epoch << 32),
        }
    }

    /// Seeds cycled per experiment (`0` = fresh seed per request).
    pub fn seeds(&self) -> u64 {
        self.seeds
    }

    /// The next request in the mix (round-robin experiments, cycling or
    /// fresh seeds).
    pub fn next_request(&self) -> Request {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let experiment = &self.experiments[(n % self.experiments.len() as u64) as usize];
        let seed = if self.seeds == 0 {
            self.fresh_base + n
        } else {
            n % self.seeds
        };
        Request::run(experiment, seed, &self.profile, self.intensity)
    }

    /// Every distinct `(experiment, seed)` tuple a cycling mix can emit —
    /// sent once before measuring so the steady state is cache hits. Empty
    /// for a fresh-seed mix (there is nothing to warm).
    pub fn warmup_requests(&self) -> Vec<Request> {
        let mut reqs = Vec::new();
        for experiment in &self.experiments {
            for seed in 0..self.seeds {
                reqs.push(Request::run(experiment, seed, &self.profile, self.intensity));
            }
        }
        reqs
    }

    /// One-line human description, stamped into the report.
    pub fn describe(&self) -> String {
        format!(
            "experiments=[{}] profile={} intensity={} seeds={}",
            self.experiments.join(","),
            self.profile,
            self.intensity,
            if self.seeds == 0 { "fresh".to_owned() } else { self.seeds.to_string() }
        )
    }
}

/// One measured (or synthetic) load step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepRecord {
    /// `ramp` or `bisect`.
    pub phase: String,
    /// The open-loop target rate for this step.
    pub target_rps: f64,
    /// Requests actually written to a connection.
    pub sent: u64,
    /// Scheduled sends dropped because the worker's pipeline was at its
    /// depth cap or its connection was dead — a client-side overload sign.
    pub skipped: u64,
    /// Successful responses (cache hits + misses).
    pub ok: u64,
    /// Responses answered from the cache.
    pub hits: u64,
    /// Responses executed on the daemon's pool.
    pub misses: u64,
    /// `overloaded` responses (daemon-side load shedding).
    pub shed: u64,
    /// Transport failures plus daemon `error` responses.
    pub errors: u64,
    /// Requests sent but never answered within the drain budget.
    pub unanswered: u64,
    /// Successful responses per second over the step window.
    pub achieved_rps: f64,
    /// Median latency of successful responses, microseconds.
    pub p50_us: u64,
    /// Tail latency of successful responses, microseconds.
    pub p99_us: u64,
    /// Worst observed latency, microseconds.
    pub max_us: u64,
    /// Mean latency of successful responses, microseconds.
    pub mean_us: u64,
    /// `(shed + errors + unanswered + skipped) / (sent + skipped)`.
    pub fail_frac: f64,
    /// Shed counted by the daemon itself over this step (delta of the
    /// `serve.shed` counter from `stats` telemetry); cross-checks the
    /// client-side `shed` column.
    pub daemon_shed: u64,
    /// Whether the step satisfied the SLO.
    pub pass: bool,
}

impl StepRecord {
    /// A synthetic step for exercising [`find_capacity`] without a
    /// daemon: plausible derived fields, `pass` forced.
    pub fn synthetic(phase: &str, target_rps: f64, pass: bool) -> StepRecord {
        let sent = (target_rps * 2.0) as u64;
        StepRecord {
            phase: phase.to_owned(),
            target_rps,
            sent,
            skipped: 0,
            ok: if pass { sent } else { sent / 2 },
            hits: 0,
            misses: 0,
            shed: if pass { 0 } else { sent / 2 },
            errors: 0,
            unanswered: 0,
            achieved_rps: if pass { target_rps } else { target_rps / 2.0 },
            p50_us: 200,
            p99_us: if pass { 900 } else { 90_000 },
            max_us: if pass { 1_500 } else { 250_000 },
            mean_us: 300,
            fail_frac: if pass { 0.0 } else { 0.5 },
            daemon_shed: 0,
            pass,
        }
    }
}

/// The outcome of a capacity search: every step taken, the refined
/// maximum sustainable rate, and whether a saturation point was actually
/// found inside the tested range.
#[derive(Debug, Clone)]
pub struct CapacitySearch {
    /// All ramp and bisect steps, in execution order.
    pub steps: Vec<StepRecord>,
    /// Highest rate that passed the SLO (refined by bisection). When the
    /// very first step already fails, this can be `0.0`.
    pub max_sustainable_rps: f64,
    /// `false` when every tested rate up to `max_rps` passed — the knee
    /// is beyond the tested range and `max_sustainable_rps` is merely the
    /// highest rate tried.
    pub saturated: bool,
}

/// The capacity-search algorithm, abstracted over how a step is driven.
///
/// Ramp additively from `initial_rps` until a step fails the SLO or
/// `max_rps` passes, then bisect between the bracketing rates for at most
/// `bisect_iters` refinements (stopping early once the bracket is within
/// 2% or 1 RPS). `drive(rps, phase)` must return a [`StepRecord`] with
/// `pass` already evaluated — the network driver applies the plan's
/// [`Slo`], unit tests return synthetic curves.
pub fn find_capacity(
    plan: &RampPlan,
    mut drive: impl FnMut(f64, &str) -> StepRecord,
) -> CapacitySearch {
    let increment = if plan.increment_rps > 0.0 {
        plan.increment_rps
    } else {
        plan.initial_rps.max(1.0)
    };
    let mut steps = Vec::new();
    let mut last_good: Option<f64> = None;
    let mut first_bad: Option<f64> = None;
    let mut rps = plan.initial_rps;
    while rps <= plan.max_rps + 1e-9 {
        let step = drive(rps, "ramp");
        let pass = step.pass;
        steps.push(step);
        if pass {
            last_good = Some(rps);
        } else {
            first_bad = Some(rps);
            break;
        }
        rps += increment;
    }
    let Some(mut hi) = first_bad else {
        return CapacitySearch {
            steps,
            max_sustainable_rps: last_good.unwrap_or(0.0),
            saturated: false,
        };
    };
    let mut lo = last_good.unwrap_or(0.0);
    let mut iters = 0;
    while iters < plan.bisect_iters && hi - lo > (0.02 * hi).max(1.0) {
        let mid = 0.5 * (lo + hi);
        let step = drive(mid, "bisect");
        if step.pass {
            lo = mid;
        } else {
            hi = mid;
        }
        steps.push(step);
        iters += 1;
    }
    CapacitySearch {
        steps,
        max_sustainable_rps: lo,
        saturated: true,
    }
}

/// Per-worker (and merged) raw counters for one step.
#[derive(Debug, Default)]
struct Totals {
    sent: u64,
    skipped: u64,
    ok: u64,
    hits: u64,
    misses: u64,
    shed: u64,
    errors: u64,
    unanswered: u64,
    hist: Histogram,
}

impl Totals {
    fn classify(&mut self, resp: &Response, latency: Duration) {
        match resp.status.as_str() {
            STATUS_HIT => {
                self.ok += 1;
                self.hits += 1;
                self.hist.record(latency.as_micros() as u64);
            }
            STATUS_MISS => {
                self.ok += 1;
                self.misses += 1;
                self.hist.record(latency.as_micros() as u64);
            }
            STATUS_OVERLOADED => self.shed += 1,
            _ => self.errors += 1,
        }
    }

    fn merge(&mut self, other: Totals) {
        self.sent += other.sent;
        self.skipped += other.skipped;
        self.ok += other.ok;
        self.hits += other.hits;
        self.misses += other.misses;
        self.shed += other.shed;
        self.errors += other.errors;
        self.unanswered += other.unanswered;
        self.hist.merge(&other.hist);
    }
}

/// One worker's open-loop send schedule over `[start+offset, end)`,
/// draining responses opportunistically between scheduled sends and then
/// through a bounded drain window.
fn worker_loop(
    pool: &ClientPool,
    mix: &RequestMix,
    start: Instant,
    end: Instant,
    interval: Duration,
    offset: Duration,
    drain: Duration,
) -> Totals {
    let mut t = Totals::default();
    let Ok(mut client) = pool.checkout() else {
        // No connection: every send this worker owed the schedule is a
        // skipped request, which the SLO counts as failure.
        let span = end.saturating_duration_since(start + offset);
        t.skipped = (span.as_secs_f64() / interval.as_secs_f64()).ceil() as u64;
        return t;
    };
    let mut pending: VecDeque<Instant> = VecDeque::new();
    let mut next = start + offset;
    loop {
        let now = Instant::now();
        if now >= end {
            break;
        }
        if now >= next {
            next += interval;
            if client.is_broken() {
                t.unanswered += pending.len() as u64;
                pending.clear();
                match pool.checkout() {
                    Ok(fresh) => client = fresh,
                    Err(_) => {
                        t.skipped += 1;
                        continue;
                    }
                }
            }
            if pending.len() >= MAX_PENDING {
                t.skipped += 1;
                continue;
            }
            let req = mix.next_request();
            match client.send(&req) {
                Ok(()) => {
                    t.sent += 1;
                    pending.push_back(Instant::now());
                }
                Err(_) => {
                    t.sent += 1;
                    t.errors += 1;
                    t.unanswered += pending.len() as u64;
                    pending.clear();
                }
            }
            continue;
        }
        let wait = next.min(end).saturating_duration_since(now);
        if pending.is_empty() {
            // Nothing in flight; nap until (close to) the next send slot.
            std::thread::sleep(wait.min(Duration::from_millis(5)));
            continue;
        }
        match client.recv_timeout(wait) {
            Ok(Some(resp)) => {
                let sent_at = pending.pop_front().expect("response matches a pending send");
                t.classify(&resp, sent_at.elapsed());
            }
            Ok(None) => {}
            Err(_) => {
                t.errors += 1;
                t.unanswered += (pending.len() as u64).saturating_sub(1);
                pending.clear();
            }
        }
    }
    // Drain: collect what is still in flight, within a bounded budget, so
    // one slow step cannot stall the whole ramp.
    let deadline = Instant::now() + drain;
    while !pending.is_empty() {
        let now = Instant::now();
        if now >= deadline {
            t.unanswered += pending.len() as u64;
            break;
        }
        match client.recv_timeout(deadline - now) {
            Ok(Some(resp)) => {
                let sent_at = pending.pop_front().expect("response matches a pending send");
                t.classify(&resp, sent_at.elapsed());
            }
            Ok(None) => {}
            Err(_) => {
                t.unanswered += pending.len() as u64;
                break;
            }
        }
    }
    pool.checkin(client);
    t
}

/// Drive one open-loop load step at `target_rps` with `workers` threads
/// on pooled connections, returning the merged raw counters. `drain` is
/// the post-step budget for collecting still-in-flight responses.
fn run_step_raw(
    pool: &ClientPool,
    mix: &RequestMix,
    workers: usize,
    target_rps: f64,
    duration: Duration,
    drain: Duration,
) -> Totals {
    let workers = workers.max(1);
    let interval = Duration::from_secs_f64(workers as f64 / target_rps.max(0.001));
    let start = Instant::now();
    let end = start + duration;
    let totals = Mutex::new(Totals::default());
    std::thread::scope(|scope| {
        for w in 0..workers {
            let offset = Duration::from_secs_f64(w as f64 / (target_rps.max(0.001)));
            let totals = &totals;
            scope.spawn(move || {
                let local = worker_loop(pool, mix, start, end, interval, offset, drain);
                totals.lock().expect("totals lock").merge(local);
            });
        }
    });
    totals.into_inner().expect("totals lock")
}

/// Fold raw step counters into a [`StepRecord`], evaluating the SLO.
fn finalize_step(
    phase: &str,
    target_rps: f64,
    duration: Duration,
    totals: &Totals,
    slo: &Slo,
    daemon_shed: u64,
) -> StepRecord {
    let attempts = totals.sent + totals.skipped;
    let failures = totals.shed + totals.errors + totals.unanswered + totals.skipped;
    let fail_frac = if attempts == 0 {
        1.0
    } else {
        failures as f64 / attempts as f64
    };
    let achieved_rps = totals.ok as f64 / duration.as_secs_f64().max(1e-9);
    let p50_us = totals.hist.quantile(0.5);
    let p99_us = totals.hist.quantile(0.99);
    let pass = slo.evaluate(p99_us, fail_frac, achieved_rps, target_rps);
    StepRecord {
        phase: phase.to_owned(),
        target_rps,
        sent: totals.sent,
        skipped: totals.skipped,
        ok: totals.ok,
        hits: totals.hits,
        misses: totals.misses,
        shed: totals.shed,
        errors: totals.errors,
        unanswered: totals.unanswered,
        achieved_rps,
        p50_us,
        p99_us,
        max_us: totals.hist.quantile(1.0),
        mean_us: totals.hist.mean(),
        fail_frac,
        daemon_shed,
        pass,
    }
}

/// The per-ramp invariants a load step is driven with: the connection
/// pool, the request mix, worker count, drain budget, and the SLO every
/// step is judged against. Only the rate, window, and phase vary.
pub struct StepDriver<'a> {
    pool: &'a ClientPool,
    mix: &'a RequestMix,
    workers: usize,
    drain: Duration,
    slo: &'a Slo,
}

impl<'a> StepDriver<'a> {
    /// A driver over `pool` sending `mix` from `workers` connections.
    pub fn new(
        pool: &'a ClientPool,
        mix: &'a RequestMix,
        workers: usize,
        drain: Duration,
        slo: &'a Slo,
    ) -> StepDriver<'a> {
        StepDriver { pool, mix, workers, drain, slo }
    }

    /// Run one measured load step against the live daemon: open-loop
    /// workers at `target_rps` for `duration`, SLO evaluated,
    /// daemon-side shed delta read from `stats` telemetry.
    pub fn run(&self, target_rps: f64, duration: Duration, phase: &str) -> StepRecord {
        let shed_before = daemon_shed_counter(self.pool);
        let totals = run_step_raw(self.pool, self.mix, self.workers, target_rps, duration, self.drain);
        let shed_after = daemon_shed_counter(self.pool);
        finalize_step(
            phase,
            target_rps,
            duration,
            &totals,
            self.slo,
            shed_after.saturating_sub(shed_before),
        )
    }
}

/// The daemon's cumulative `serve.shed` counter, or 0 if stats are
/// unavailable (the client-side columns still stand on their own).
fn daemon_shed_counter(pool: &ClientPool) -> u64 {
    let Ok(mut client) = pool.checkout() else { return 0 };
    let resp = client.stats();
    pool.checkin(client);
    resp.ok()
        .and_then(|r| r.stats)
        .and_then(|json| TelemetrySnapshot::from_json(&json).ok())
        .map(|snap| {
            snap.metrics
                .counters
                .iter()
                .find(|(name, _)| name.as_str() == "serve.shed")
                .map(|(_, v)| *v)
                .unwrap_or(0)
        })
        .unwrap_or(0)
}

/// The code-rev-stamped capacity artifact (written as `CAPACITY.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityReport {
    /// Always [`CAPACITY_SCHEMA`].
    pub schema: String,
    /// `CARGO_PKG_VERSION+git-rev` of the binary that ran the ramp.
    pub code_rev: String,
    /// Daemon address the ramp drove.
    pub addr: String,
    /// Load-generator worker threads (= persistent connections).
    pub workers: u64,
    /// Measurement window per step, milliseconds.
    pub step_duration_ms: u64,
    /// Human description of the request mix.
    pub mix: String,
    /// The pass/fail policy every step was held to.
    pub slo: Slo,
    /// Ramp schedule: first tested rate.
    pub initial_rps: f64,
    /// Ramp schedule: additive step.
    pub increment_rps: f64,
    /// Ramp schedule: give-up rate.
    pub max_rps: f64,
    /// Whether a saturation point was found inside the tested range.
    pub saturated: bool,
    /// The bisection-refined maximum sustainable rate.
    pub max_sustainable_rps: f64,
    /// Every ramp and bisect step, in execution order.
    pub steps: Vec<StepRecord>,
}

impl CapacityReport {
    /// Serialize (pretty, trailing newline) for `CAPACITY.json`.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self).map(|mut s| {
            s.push('\n');
            s
        })
    }

    /// Parse a `CAPACITY.json` document.
    pub fn from_json(text: &str) -> Result<CapacityReport, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Human-readable per-step trend table plus the headline number.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&[
            "phase", "target_rps", "achieved", "ok", "hit", "miss", "shed", "err", "unans",
            "skip", "p50_us", "p99_us", "fail%", "slo",
        ])
        .with_heading("Capacity ramp");
        for s in &self.steps {
            t.row(vec![
                s.phase.clone(),
                format!("{:.1}", s.target_rps),
                format!("{:.1}", s.achieved_rps),
                s.ok.to_string(),
                s.hits.to_string(),
                s.misses.to_string(),
                s.shed.to_string(),
                s.errors.to_string(),
                s.unanswered.to_string(),
                s.skipped.to_string(),
                s.p50_us.to_string(),
                s.p99_us.to_string(),
                format!("{:.2}", s.fail_frac * 100.0),
                if s.pass { "pass" } else { "FAIL" }.to_owned(),
            ]);
        }
        format!(
            "{}\nmix: {}\nmax sustainable: {:.1} rps ({}) @ {} [{} workers, {} ms/step]\n",
            t.render(),
            self.mix,
            self.max_sustainable_rps,
            if self.saturated { "saturated" } else { "knee beyond tested range" },
            self.code_rev,
            self.workers,
            self.step_duration_ms,
        )
    }
}

/// One line of the capacity-trend history (`CAPACITY_HISTORY.jsonl`):
/// the headline number of one ramp, keyed by the code revision that
/// produced it. The full per-step detail stays in that revision's
/// `CAPACITY.json`; the history answers "how has the knee moved across
/// revisions" without re-running anything. Deliberately has no wall-clock
/// timestamp: the code revision *is* the axis, and identical inputs must
/// append identical lines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityTrendEntry {
    /// Always [`CAPACITY_TREND_SCHEMA`].
    pub schema: String,
    /// Code revision the ramp drove.
    pub code_rev: String,
    /// The bisection-refined maximum sustainable rate.
    pub max_sustainable_rps: f64,
    /// Whether the knee was inside the tested range.
    pub saturated: bool,
    /// Load-generator worker threads.
    pub workers: u64,
    /// Human description of the request mix.
    pub mix: String,
}

impl CapacityTrendEntry {
    /// The trend line a finished ramp contributes.
    pub fn of(report: &CapacityReport) -> CapacityTrendEntry {
        CapacityTrendEntry {
            schema: CAPACITY_TREND_SCHEMA.to_owned(),
            code_rev: report.code_rev.clone(),
            max_sustainable_rps: report.max_sustainable_rps,
            saturated: report.saturated,
            workers: report.workers,
            mix: report.mix.clone(),
        }
    }
}

/// Parse a trend history file: one [`CapacityTrendEntry`] JSON object per
/// line, in append order. Blank and malformed lines are skipped — a torn
/// final line from a crashed appender must not wedge every later ramp.
pub fn read_history(path: &Path) -> io::Result<Vec<CapacityTrendEntry>> {
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    Ok(text
        .lines()
        .filter_map(|line| serde_json::from_str::<CapacityTrendEntry>(line.trim()).ok())
        .collect())
}

/// Append `report`'s headline to the trend history at `path`, creating
/// the file if needed. Returns `false` (appending nothing) when the
/// history already has an entry for the same code revision — re-running
/// a ramp on unchanged code refines nothing and would bloat the axis.
pub fn append_history(path: &Path, report: &CapacityReport) -> io::Result<bool> {
    let existing = read_history(path)?;
    if existing.iter().any(|e| e.code_rev == report.code_rev) {
        return Ok(false);
    }
    let line = serde_json::to_string(&CapacityTrendEntry::of(report))
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let mut text = fs::read_to_string(path).unwrap_or_default();
    if !text.is_empty() && !text.ends_with('\n') {
        text.push('\n');
    }
    text.push_str(&line);
    text.push('\n');
    fs::write(path, text)?;
    Ok(true)
}

/// Render the trend history as a per-revision table (append order, which
/// is revision order — the history has no other axis).
pub fn render_trend(entries: &[CapacityTrendEntry]) -> String {
    let mut t = TextTable::new(&["code_rev", "max_rps", "knee", "workers", "mix"])
        .with_heading("Capacity trend");
    for e in entries {
        t.row(vec![
            e.code_rev.clone(),
            format!("{:.1}", e.max_sustainable_rps),
            if e.saturated { "saturated" } else { "untested>" }.to_owned(),
            e.workers.to_string(),
            e.mix.clone(),
        ]);
    }
    if entries.is_empty() {
        format!("{}\n(no ramps recorded)\n", t.render())
    } else {
        format!("{}\n{} revision(s)\n", t.render(), entries.len())
    }
}

/// Run the whole closed-loop capacity search against a live daemon:
/// warm the cycling mix (so steady-state hit-rate is what the mix says),
/// ramp, bisect, and assemble the code-rev-stamped report.
pub fn run_ramp(
    addr: &str,
    plan: &RampPlan,
    workers: usize,
    mix: &RequestMix,
    timeout: Duration,
) -> Result<CapacityReport, ClientError> {
    let pool = ClientPool::new(addr, timeout, workers.max(1));
    // Connectivity probe doubles as cache warmup for cycling mixes.
    let mut probe = pool.checkout()?;
    if mix.seeds() > 0 {
        for batch in mix.warmup_requests().chunks(32) {
            probe.pipeline(batch)?;
        }
    } else {
        probe.stats()?;
    }
    pool.checkin(probe);

    // Drain budget: generous for slow miss-heavy steps, but bounded by
    // the client timeout so a wedged daemon cannot stall the ramp.
    let drain = timeout.min(plan.step_duration.max(Duration::from_secs(1)) * 2);

    // One short step at the initial rate whose SLO verdict is discarded:
    // load-generator thread spawn, per-connection TCP setup, and
    // first-touch costs land here instead of failing the first measured
    // step with a cold-start latency outlier. The record still leads the
    // report (phase "warmup") so the outlier stays visible.
    let driver = StepDriver::new(&pool, mix, workers, drain, &plan.slo);
    let warmup_dur = plan.step_duration.min(Duration::from_millis(500));
    let warmup = driver.run(plan.initial_rps, warmup_dur, "warmup");

    let search = find_capacity(plan, |rps, phase| driver.run(rps, plan.step_duration, phase));
    let mut steps = vec![warmup];
    steps.extend(search.steps);

    Ok(CapacityReport {
        schema: CAPACITY_SCHEMA.to_owned(),
        code_rev: humnet_resilience::code_rev(),
        addr: addr.to_owned(),
        workers: workers.max(1) as u64,
        step_duration_ms: plan.step_duration.as_millis() as u64,
        mix: mix.describe(),
        slo: plan.slo.clone(),
        initial_rps: plan.initial_rps,
        increment_rps: plan.increment_rps,
        max_rps: plan.max_rps,
        saturated: search.saturated,
        max_sustainable_rps: search.max_sustainable_rps,
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(initial: f64, increment: f64, max: f64, bisect: u32) -> RampPlan {
        RampPlan {
            initial_rps: initial,
            increment_rps: increment,
            max_rps: max,
            step_duration: Duration::from_millis(10),
            bisect_iters: bisect,
            slo: Slo::default(),
        }
    }

    #[test]
    fn monotone_curve_bisects_to_a_tight_bracket() {
        let capacity = 137.0;
        let mut driven = Vec::new();
        let search = find_capacity(&plan(50.0, 50.0, 500.0, 8), |rps, phase| {
            driven.push((rps, phase.to_owned()));
            StepRecord::synthetic(phase, rps, rps <= capacity)
        });
        assert!(search.saturated);
        // Ramp visits 50, 100, 150 then bisects inside (100, 150).
        assert_eq!(
            driven.iter().take(3).map(|(r, _)| *r).collect::<Vec<_>>(),
            vec![50.0, 100.0, 150.0]
        );
        assert!(driven.iter().skip(3).all(|(_, p)| p == "bisect"));
        assert!(
            search.max_sustainable_rps <= capacity + 1e-9
                && search.max_sustainable_rps >= capacity - 3.0,
            "bracket too loose: {}",
            search.max_sustainable_rps
        );
        assert_eq!(search.steps.len(), driven.len());
    }

    #[test]
    fn noisy_curve_stays_within_one_increment_of_the_true_knee() {
        let capacity = 120.0;
        let mut calls = 0u64;
        let search = find_capacity(&plan(50.0, 50.0, 500.0, 6), |rps, phase| {
            // Deterministic +/-5 rps wiggle on the knee, varying per call.
            calls += 1;
            let noise = ((calls * 2_654_435_761) % 11) as f64 - 5.0;
            StepRecord::synthetic(phase, rps, rps <= capacity + noise)
        });
        assert!(search.saturated);
        assert!(
            (capacity - 50.0..=capacity + 5.1).contains(&search.max_sustainable_rps),
            "noisy bisection left the bracket: {}",
            search.max_sustainable_rps
        );
    }

    #[test]
    fn never_saturating_curve_reports_unsaturated_at_the_last_tested_rate() {
        let search = find_capacity(&plan(100.0, 100.0, 400.0, 8), |rps, phase| {
            StepRecord::synthetic(phase, rps, true)
        });
        assert!(!search.saturated);
        assert_eq!(search.max_sustainable_rps, 400.0);
        assert_eq!(search.steps.len(), 4);
        assert!(search.steps.iter().all(|s| s.phase == "ramp" && s.pass));
    }

    #[test]
    fn failing_initial_step_bisects_down_toward_zero() {
        let capacity = 10.0;
        let search = find_capacity(&plan(50.0, 50.0, 500.0, 8), |rps, phase| {
            StepRecord::synthetic(phase, rps, rps <= capacity)
        });
        assert!(search.saturated);
        assert_eq!(search.steps[0].phase, "ramp");
        assert!(!search.steps[0].pass);
        assert!(
            search.max_sustainable_rps <= capacity + 1e-9
                && search.max_sustainable_rps >= capacity - 2.0,
            "downward bisection missed: {}",
            search.max_sustainable_rps
        );
    }

    #[test]
    fn slo_evaluates_all_three_clauses() {
        let slo = Slo {
            max_p99_us: 1_000,
            max_fail_frac: 0.05,
            min_achieved_frac: 0.9,
        };
        assert!(slo.evaluate(900, 0.01, 95.0, 100.0));
        assert!(!slo.evaluate(1_500, 0.01, 95.0, 100.0), "p99 ceiling");
        assert!(!slo.evaluate(900, 0.10, 95.0, 100.0), "failure fraction");
        assert!(!slo.evaluate(900, 0.01, 80.0, 100.0), "achieved floor");
    }

    #[test]
    fn request_mix_cycles_seeds_and_fresh_seeds_never_repeat() {
        let cycling = RequestMix::new(vec!["f1".into(), "f2".into()], "none", 1.0, 3);
        let mut tuples = std::collections::BTreeSet::new();
        for _ in 0..60 {
            let req = cycling.next_request();
            tuples.insert((req.experiment.unwrap(), req.seed.unwrap()));
        }
        // 2 experiments x 3 seeds cycled with coprime strides cover all 6.
        assert_eq!(tuples.len(), 6, "{tuples:?}");
        assert_eq!(cycling.warmup_requests().len(), 6);

        let fresh = RequestMix::new(vec!["f1".into()], "none", 1.0, 0);
        let mut seeds = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seeds.insert(fresh.next_request().seed.unwrap());
        }
        assert_eq!(seeds.len(), 100, "fresh seeds must never repeat");
        assert!(fresh.warmup_requests().is_empty());
    }

    fn toy_report() -> CapacityReport {
        CapacityReport {
            schema: CAPACITY_SCHEMA.to_owned(),
            code_rev: "0.1.0+aaaa".to_owned(),
            addr: "127.0.0.1:7070".to_owned(),
            workers: 4,
            step_duration_ms: 2_000,
            mix: "experiments=[f1] profile=none intensity=1 seeds=8".to_owned(),
            slo: Slo::default(),
            initial_rps: 100.0,
            increment_rps: 100.0,
            max_rps: 1_000.0,
            saturated: true,
            max_sustainable_rps: 312.5,
            steps: vec![StepRecord::synthetic("ramp", 100.0, true)],
        }
    }

    #[test]
    fn trend_history_appends_once_per_code_rev_and_renders() {
        let dir = std::env::temp_dir().join(format!(
            "humnet-serve-trend-test-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("CAPACITY_HISTORY.jsonl");

        assert_eq!(read_history(&path).unwrap(), vec![], "missing file reads empty");
        let mut report = toy_report();
        assert!(append_history(&path, &report).unwrap());
        assert!(
            !append_history(&path, &report).unwrap(),
            "a second ramp of the same code revision appends nothing"
        );
        report.code_rev = "0.1.0+bbbb".to_owned();
        report.max_sustainable_rps = 450.0;
        report.saturated = false;
        assert!(append_history(&path, &report).unwrap());

        let entries = read_history(&path).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].code_rev, "0.1.0+aaaa");
        assert_eq!(entries[1].max_sustainable_rps, 450.0);
        assert!(entries.iter().all(|e| e.schema == CAPACITY_TREND_SCHEMA));

        let rendered = render_trend(&entries);
        assert!(rendered.contains("0.1.0+aaaa"), "{rendered}");
        assert!(rendered.contains("312.5"), "{rendered}");
        assert!(rendered.contains("untested>"), "{rendered}");
        assert!(rendered.contains("2 revision(s)"), "{rendered}");
        assert!(render_trend(&[]).contains("no ramps recorded"));

        // A torn final line (crashed appender) is skipped on read and
        // healed by the next append.
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("{\"schema\": \"humnet-capa");
        fs::write(&path, &text).unwrap();
        assert_eq!(read_history(&path).unwrap().len(), 2);
        report.code_rev = "0.1.0+cccc".to_owned();
        assert!(append_history(&path, &report).unwrap());
        assert_eq!(read_history(&path).unwrap().len(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn capacity_report_round_trips_and_renders() {
        let report = CapacityReport {
            schema: CAPACITY_SCHEMA.to_owned(),
            code_rev: humnet_resilience::code_rev(),
            addr: "127.0.0.1:7070".to_owned(),
            workers: 4,
            step_duration_ms: 2_000,
            mix: "experiments=[f1] profile=none intensity=1 seeds=8".to_owned(),
            slo: Slo::default(),
            initial_rps: 100.0,
            increment_rps: 100.0,
            max_rps: 1_000.0,
            saturated: true,
            max_sustainable_rps: 312.5,
            steps: vec![
                StepRecord::synthetic("ramp", 100.0, true),
                StepRecord::synthetic("ramp", 200.0, false),
                StepRecord::synthetic("bisect", 150.0, true),
            ],
        };
        let json = report.to_json().unwrap();
        let back = CapacityReport::from_json(&json).unwrap();
        assert_eq!(back, report);
        assert!(!back.code_rev.is_empty());
        let rendered = report.render();
        assert!(rendered.contains("max sustainable: 312.5 rps"), "{rendered}");
        assert!(rendered.contains("bisect"), "{rendered}");
    }
}
