//! Client side of the serve protocol: a persistent, pipelining-capable
//! connection handle plus a small reuse pool.
//!
//! The old entry point was a free function that opened a fresh TCP
//! connection per request — fine for a one-shot `experiments query`,
//! hopeless for load generation, where a capacity ramp would measure
//! connect overhead instead of the daemon. [`ServeClient`] owns one
//! connection for its whole lifetime and exposes three tiers of API:
//!
//! 1. **One-shot**: [`ServeClient::request`] (send one line, wait for one
//!    line) and the [`ServeClient::run`] / [`ServeClient::stats`] /
//!    [`ServeClient::shutdown`] conveniences.
//! 2. **Pipelined**: [`ServeClient::send`] enqueues a request without
//!    waiting; [`ServeClient::recv`], [`ServeClient::recv_timeout`] and
//!    [`ServeClient::try_recv`] collect responses later. The protocol is
//!    line-delimited and the daemon answers each connection's requests
//!    strictly in order, so the k-th response always belongs to the k-th
//!    outstanding request ([`ServeClient::in_flight`] tracks the depth).
//!    [`ServeClient::pipeline`] batches the common send-all-then-recv-all
//!    shape.
//! 3. **Pooled**: [`ClientPool`] keeps healthy idle connections for reuse
//!    across checkouts — the ramp workers return their connections
//!    between load steps instead of re-dialing.
//!
//! Any transport error (I/O failure, malformed line, timeout inside
//! `recv`) marks the client *broken*: request/response framing can no
//! longer be trusted, so the handle refuses further use and the pool
//! discards it on check-in. Dropping a `ServeClient` closes the
//! connection cleanly (the daemon sees EOF and releases its handler).

use crate::protocol::{Request, Response};
use std::error::Error;
use std::fmt;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Why a request failed before a well-formed response arrived (connect,
/// I/O, timeout, or parse trouble — a daemon-side `error` status is NOT a
/// `ClientError`; it comes back as a normal [`Response`]).
///
/// [`ClientError::Timeout`] is its own variant because callers react
/// differently to it: a stalled daemon is worth retrying elsewhere (the
/// ramp steps down, a pool re-dials), while a framing or protocol error
/// usually means a bug. Both poison the connection either way.
#[derive(Debug)]
pub enum ClientError {
    /// The read budget elapsed with the response still outstanding.
    Timeout(String),
    /// Connect, I/O, framing, or protocol-misuse trouble.
    Transport(String),
}

impl ClientError {
    fn new(message: String) -> ClientError {
        ClientError::Transport(message)
    }

    /// Whether this is the read-budget-elapsed case.
    pub fn is_timeout(&self) -> bool {
        matches!(self, ClientError::Timeout(_))
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Timeout(msg) | ClientError::Transport(msg) => f.write_str(msg),
        }
    }
}

impl Error for ClientError {}

/// A persistent connection to the serve daemon.
#[derive(Debug)]
pub struct ServeClient {
    addr: String,
    stream: TcpStream,
    /// Socket timeout for connects and writes.
    timeout: Duration,
    /// How long a blocking [`ServeClient::recv`] waits before declaring
    /// the daemon stalled. Defaults to the connect timeout.
    read_timeout: Duration,
    /// Bytes read off the socket but not yet consumed as a line.
    rbuf: Vec<u8>,
    /// Requests sent whose responses have not been received yet.
    in_flight: usize,
    /// Set on any transport error; the connection's framing is suspect.
    broken: bool,
}

impl ServeClient {
    /// Connect to the daemon at `addr` (trying every resolved address)
    /// with `timeout` as the connect/read/write budget per operation.
    pub fn connect(addr: &str, timeout: Duration) -> Result<ServeClient, ClientError> {
        let targets: Vec<_> = addr
            .to_socket_addrs()
            .map_err(|e| ClientError::new(format!("cannot resolve '{addr}': {e}")))?
            .collect();
        let mut stream = None;
        let mut last_err = None;
        for target in &targets {
            match TcpStream::connect_timeout(target, timeout) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let stream = stream.ok_or_else(|| {
            ClientError::new(match last_err {
                Some(e) => format!("cannot connect to {addr}: {e}"),
                None => format!("'{addr}' resolved to no addresses"),
            })
        })?;
        stream
            .set_read_timeout(Some(timeout))
            .and_then(|()| stream.set_write_timeout(Some(timeout)))
            .and_then(|()| stream.set_nodelay(true))
            .map_err(|e| ClientError::new(format!("socket setup: {e}")))?;
        Ok(ServeClient {
            addr: addr.to_owned(),
            stream,
            timeout,
            read_timeout: timeout,
            rbuf: Vec::new(),
            in_flight: 0,
            broken: false,
        })
    }

    /// Builder form of [`ServeClient::set_read_timeout`].
    pub fn with_read_timeout(mut self, read_timeout: Duration) -> ServeClient {
        self.read_timeout = read_timeout;
        self
    }

    /// Bound how long a blocking [`ServeClient::recv`] (and so
    /// [`ServeClient::request`]) waits for a response before poisoning
    /// the connection with [`ClientError::Timeout`]. Without a bound
    /// tighter than the connect timeout, one stalled daemon pins a
    /// one-shot caller for the full connect budget.
    pub fn set_read_timeout(&mut self, read_timeout: Duration) {
        self.read_timeout = read_timeout;
    }

    /// The blocking-read budget currently in force.
    pub fn read_timeout(&self) -> Duration {
        self.read_timeout
    }

    /// The connect/write budget this client was dialed with.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// The address this client dialed.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Requests sent but not yet answered (the pipeline depth).
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Whether a transport error has poisoned this connection. A broken
    /// client refuses further requests; reconnect instead.
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    fn check_usable(&self) -> Result<(), ClientError> {
        if self.broken {
            return Err(ClientError::new(format!(
                "connection to {} is broken; reconnect",
                self.addr
            )));
        }
        Ok(())
    }

    fn poison<T>(&mut self, message: String) -> Result<T, ClientError> {
        self.broken = true;
        Err(ClientError::new(message))
    }

    /// Send one request line without waiting for the response
    /// (pipelining). Pair each `send` with exactly one successful
    /// `recv`/`recv_timeout`/`try_recv`.
    pub fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        self.check_usable()?;
        let line = request
            .to_line()
            .map_err(|e| ClientError::new(format!("request serialization: {e}")))?;
        let mut bytes = line.into_bytes();
        bytes.push(b'\n');
        if let Err(e) = self.stream.write_all(&bytes).and_then(|()| self.stream.flush()) {
            return self.poison(format!("send to {}: {e}", self.addr));
        }
        self.in_flight += 1;
        Ok(())
    }

    /// Pop the next complete response line out of the read buffer, if one
    /// has fully arrived.
    fn take_buffered_line(&mut self) -> Result<Option<Response>, ClientError> {
        while let Some(pos) = self.rbuf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.rbuf.drain(..=pos).collect();
            let text = String::from_utf8_lossy(&line);
            let text = text.trim();
            if text.is_empty() {
                continue;
            }
            return match Response::from_line(text) {
                Ok(resp) => {
                    self.in_flight = self.in_flight.saturating_sub(1);
                    Ok(Some(resp))
                }
                Err(e) => {
                    let msg = format!("malformed response from {}: {e}", self.addr);
                    self.poison(msg)
                }
            };
        }
        Ok(None)
    }

    /// Wait up to `wait` for the next pipelined response. `Ok(None)`
    /// means the budget elapsed with no complete line — the request is
    /// still in flight and a later call can collect it.
    pub fn recv_timeout(&mut self, wait: Duration) -> Result<Option<Response>, ClientError> {
        self.check_usable()?;
        if let Some(resp) = self.take_buffered_line()? {
            return Ok(Some(resp));
        }
        if self.in_flight == 0 {
            return Err(ClientError::new(format!(
                "recv from {} with no request in flight",
                self.addr
            )));
        }
        let deadline = Instant::now() + wait;
        let mut chunk = [0u8; 4096];
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Ok(None);
            }
            // Read timeouts of zero mean "blocking" to the OS; clamp up.
            if let Err(e) = self
                .stream
                .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))
            {
                return self.poison(format!("socket setup: {e}"));
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    let msg = format!("{} closed with {} request(s) in flight", self.addr, self.in_flight);
                    return self.poison(msg);
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    if let Some(resp) = self.take_buffered_line()? {
                        return Ok(Some(resp));
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut
                        || e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    let msg = format!("read from {}: {e}", self.addr);
                    return self.poison(msg);
                }
            }
        }
    }

    /// Collect a response if one is already available, without blocking.
    pub fn try_recv(&mut self) -> Result<Option<Response>, ClientError> {
        self.check_usable()?;
        if let Some(resp) = self.take_buffered_line()? {
            return Ok(Some(resp));
        }
        if self.in_flight == 0 {
            return Ok(None);
        }
        if let Err(e) = self.stream.set_nonblocking(true) {
            return self.poison(format!("socket setup: {e}"));
        }
        let mut chunk = [0u8; 4096];
        let outcome = loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    break Err(format!(
                        "{} closed with {} request(s) in flight",
                        self.addr, self.in_flight
                    ))
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    // Keep draining until the kernel buffer is empty; the
                    // line parse below happens on the accumulated bytes.
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => break Err(format!("read from {}: {e}", self.addr)),
            }
        };
        if let Err(e) = self.stream.set_nonblocking(false) {
            return self.poison(format!("socket setup: {e}"));
        }
        match outcome {
            Ok(()) => self.take_buffered_line(),
            Err(msg) => self.poison(msg),
        }
    }

    /// Wait (up to the read timeout) for the next pipelined response;
    /// timing out is a [`ClientError::Timeout`] and breaks the
    /// connection, because the response may still arrive later and
    /// desynchronize the framing.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        match self.recv_timeout(self.read_timeout)? {
            Some(resp) => Ok(resp),
            None => {
                self.broken = true;
                Err(ClientError::Timeout(format!(
                    "timed out after {:?} waiting for {} response(s) from {}",
                    self.read_timeout, self.in_flight, self.addr
                )))
            }
        }
    }

    /// Send one request and wait for its response — the one-shot shape
    /// `experiments query` uses.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        if self.in_flight != 0 {
            return Err(ClientError::new(format!(
                "request() with {} response(s) still in flight; drain first",
                self.in_flight
            )));
        }
        self.send(request)?;
        self.recv()
    }

    /// Send every request back-to-back, then collect the responses in
    /// order: one round of N-deep pipelining.
    pub fn pipeline(&mut self, requests: &[Request]) -> Result<Vec<Response>, ClientError> {
        for req in requests {
            self.send(req)?;
        }
        let mut responses = Vec::with_capacity(requests.len());
        for _ in requests {
            responses.push(self.recv()?);
        }
        Ok(responses)
    }

    /// Run one experiment tuple (a `run` request).
    pub fn run(
        &mut self,
        experiment: &str,
        seed: u64,
        profile: &str,
        intensity: f64,
    ) -> Result<Response, ClientError> {
        self.request(&Request::run(experiment, seed, profile, intensity))
    }

    /// Fetch the daemon's telemetry snapshot (a `stats` request).
    pub fn stats(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::stats())
    }

    /// Ask the daemon to drain and exit (a `shutdown` request).
    pub fn shutdown(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::shutdown())
    }
}

impl Drop for ServeClient {
    fn drop(&mut self) {
        // Close both directions now rather than whenever the handle is
        // finally deallocated: the daemon's handler sees EOF and frees
        // its slot immediately.
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

/// A small pool of idle [`ServeClient`] connections to one daemon.
///
/// [`ClientPool::checkout`] hands back an idle connection (or dials a new
/// one); [`ClientPool::checkin`] returns it for reuse. Broken clients,
/// clients with responses still in flight, and clients beyond the idle
/// cap are dropped instead of pooled — checking in is always safe, the
/// pool just declines to keep an unusable handle.
#[derive(Debug)]
pub struct ClientPool {
    addr: String,
    timeout: Duration,
    read_timeout: Duration,
    max_idle: usize,
    idle: Mutex<Vec<ServeClient>>,
}

impl ClientPool {
    /// A pool for `addr` keeping at most `max_idle` idle connections.
    pub fn new(addr: &str, timeout: Duration, max_idle: usize) -> ClientPool {
        ClientPool {
            addr: addr.to_owned(),
            timeout,
            read_timeout: timeout,
            max_idle,
            idle: Mutex::new(Vec::new()),
        }
    }

    /// Builder: apply `read_timeout` to every connection this pool hands
    /// out, so a stalled daemon surfaces as [`ClientError::Timeout`]
    /// after this budget instead of the (usually longer) connect budget.
    /// Timed-out clients are poisoned and discarded at check-in like any
    /// other dead connection.
    pub fn read_timeout(mut self, read_timeout: Duration) -> ClientPool {
        self.read_timeout = read_timeout;
        self
    }

    /// The daemon address this pool dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Idle connections currently held.
    pub fn idle_count(&self) -> usize {
        self.idle.lock().expect("client pool lock").len()
    }

    /// An idle pooled connection, or a freshly dialed one.
    pub fn checkout(&self) -> Result<ServeClient, ClientError> {
        if let Some(client) = self.idle.lock().expect("client pool lock").pop() {
            return Ok(client);
        }
        Ok(ServeClient::connect(&self.addr, self.timeout)?.with_read_timeout(self.read_timeout))
    }

    /// Return a connection for reuse (dropped if broken, mid-pipeline,
    /// or the pool is full).
    pub fn checkin(&self, client: ServeClient) {
        if client.is_broken() || client.in_flight() != 0 {
            return;
        }
        let mut idle = self.idle.lock().expect("client pool lock");
        if idle.len() < self.max_idle {
            idle.push(client);
        }
    }
}

/// Send one request to the daemon at `addr` on a throwaway connection.
#[deprecated(
    since = "0.1.0",
    note = "opens a TCP connection per request; use `ServeClient::connect` and reuse the handle"
)]
pub fn query(addr: &str, request: &Request, timeout: Duration) -> Result<Response, ClientError> {
    ServeClient::connect(addr, timeout)?.request(request)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Response;
    use std::io::{BufRead, BufReader};
    use std::net::TcpListener;
    use std::thread;

    const TIMEOUT: Duration = Duration::from_secs(10);

    /// A minimal line server echoing each request's experiment+seed back
    /// as an `ok` message, so tests can verify ordering without the full
    /// daemon. Handles exactly one connection, then exits.
    fn toy_line_server(delay: Duration) -> (String, thread::JoinHandle<usize>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind toy server");
        let addr = listener.local_addr().unwrap().to_string();
        let handle = thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut writer = stream.try_clone().expect("clone");
            let reader = BufReader::new(stream);
            let mut served = 0usize;
            for line in reader.lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                let req = Request::from_line(&line).expect("request parses");
                if !delay.is_zero() {
                    thread::sleep(delay);
                }
                let tag = format!(
                    "{}#{}",
                    req.experiment.as_deref().unwrap_or("?"),
                    req.seed.unwrap_or(0)
                );
                let resp = Response::ok(&tag).to_line().unwrap();
                writer.write_all(resp.as_bytes()).unwrap();
                writer.write_all(b"\n").unwrap();
                served += 1;
                if req.cmd == crate::protocol::CMD_SHUTDOWN {
                    break;
                }
            }
            served
        });
        (addr, handle)
    }

    #[test]
    fn pipelined_responses_come_back_in_request_order() {
        let (addr, server) = toy_line_server(Duration::ZERO);
        let mut client = ServeClient::connect(&addr, TIMEOUT).unwrap();
        let requests: Vec<Request> = (0..16u64).map(|s| Request::run("exp", s, "none", 1.0)).collect();
        for req in &requests {
            client.send(req).unwrap();
        }
        assert_eq!(client.in_flight(), 16);
        for (i, _) in requests.iter().enumerate() {
            let resp = client.recv().unwrap();
            assert_eq!(resp.message.as_deref(), Some(format!("exp#{i}").as_str()));
        }
        assert_eq!(client.in_flight(), 0);

        // And the batched helper does the same in one call.
        let responses = client.pipeline(&requests).unwrap();
        assert_eq!(responses.len(), 16);
        for (i, resp) in responses.iter().enumerate() {
            assert_eq!(resp.message.as_deref(), Some(format!("exp#{i}").as_str()));
        }
        drop(client); // EOF lets the toy server exit
        assert_eq!(server.join().unwrap(), 32);
    }

    #[test]
    fn try_recv_returns_none_until_the_response_lands() {
        let (addr, server) = toy_line_server(Duration::from_millis(150));
        let mut client = ServeClient::connect(&addr, TIMEOUT).unwrap();
        assert!(client.try_recv().unwrap().is_none(), "nothing in flight");
        client.send(&Request::run("exp", 7, "none", 1.0)).unwrap();
        // The toy server is still sleeping; nothing should be readable.
        assert!(client.try_recv().unwrap().is_none());
        assert_eq!(client.in_flight(), 1);
        // A short budget elapses empty-handed without breaking anything...
        assert!(client.recv_timeout(Duration::from_millis(10)).unwrap().is_none());
        assert!(!client.is_broken());
        // ...and a patient blocking recv collects it.
        let resp = client.recv().unwrap();
        assert_eq!(resp.message.as_deref(), Some("exp#7"));
        drop(client);
        let _ = server.join();
    }

    #[test]
    fn a_closed_peer_breaks_the_client_and_the_pool_discards_it() {
        let (addr, server) = toy_line_server(Duration::ZERO);
        let pool = ClientPool::new(&addr, TIMEOUT, 4);
        let mut client = pool.checkout().unwrap();
        // `shutdown` makes the toy server answer once then close.
        client.send(&Request::shutdown()).unwrap();
        assert_eq!(client.recv().unwrap().status, crate::protocol::STATUS_OK);
        let _ = server.join();
        // The next round trip hits the closed socket and poisons the
        // client (either on send or on recv, depending on the OS).
        client
            .send(&Request::run("exp", 1, "none", 1.0))
            .and_then(|()| client.recv().map(drop))
            .unwrap_err();
        assert!(client.is_broken());
        client.request(&Request::stats()).unwrap_err();
        pool.checkin(client);
        assert_eq!(pool.idle_count(), 0, "broken clients are not pooled");
    }

    #[test]
    fn the_pool_reuses_idle_connections_and_caps_the_idle_set() {
        let (addr, server) = toy_line_server(Duration::ZERO);
        let pool = ClientPool::new(&addr, TIMEOUT, 1);
        let mut client = pool.checkout().unwrap();
        let resp = client.run("exp", 3, "none", 1.0).unwrap();
        assert_eq!(resp.message.as_deref(), Some("exp#3"));
        pool.checkin(client);
        assert_eq!(pool.idle_count(), 1);

        // The same healthy connection comes back out (the toy server only
        // ever accepts once, so a re-dial would hang — reuse is load-bearing).
        let mut again = pool.checkout().unwrap();
        assert_eq!(pool.idle_count(), 0);
        let resp = again.run("exp", 4, "none", 1.0).unwrap();
        assert_eq!(resp.message.as_deref(), Some("exp#4"));

        // A client with responses still in flight is never pooled.
        again.send(&Request::run("exp", 5, "none", 1.0)).unwrap();
        pool.checkin(again);
        assert_eq!(pool.idle_count(), 0);
        let _ = server.join();
    }

    #[test]
    fn a_stalled_daemon_times_out_with_a_typed_error_and_is_not_pooled() {
        // The toy server sleeps 10x the read budget before answering.
        let (addr, server) = toy_line_server(Duration::from_millis(500));
        let pool = ClientPool::new(&addr, TIMEOUT, 4).read_timeout(Duration::from_millis(50));
        let mut client = pool.checkout().unwrap();
        assert_eq!(client.read_timeout(), Duration::from_millis(50));

        let t0 = Instant::now();
        let err = client.run("exp", 1, "none", 1.0).unwrap_err();
        assert!(t0.elapsed() < TIMEOUT / 2, "timed out on the read budget, not the connect budget");
        assert!(err.is_timeout(), "{err}");
        assert!(err.to_string().contains("timed out"), "{err}");
        // The response may still arrive later and desynchronize framing,
        // so the client is poisoned and the pool refuses to keep it.
        assert!(client.is_broken());
        pool.checkin(client);
        assert_eq!(pool.idle_count(), 0, "timed-out clients are not pooled");
        drop(server); // toy server thread parks in its sleep; process exit reaps it
    }

    #[test]
    fn checkout_dials_fresh_after_a_dead_connection_is_discarded() {
        // A toy server that exits stands in for a crashed daemon: the
        // pooled connection dies, the pool declines it at check-in, and
        // the next checkout re-dials rather than serving a stale handle.
        let (addr1, server1) = toy_line_server(Duration::ZERO);
        let pool = ClientPool::new(&addr1, TIMEOUT, 4);
        let mut client = pool.checkout().unwrap();
        client.send(&Request::shutdown()).unwrap();
        assert_eq!(client.recv().unwrap().status, crate::protocol::STATUS_OK);
        let _ = server1.join();
        client
            .send(&Request::run("exp", 1, "none", 1.0))
            .and_then(|()| client.recv().map(drop))
            .unwrap_err();
        pool.checkin(client);
        assert_eq!(pool.idle_count(), 0);

        // Nothing is listening on the dead address: a fresh dial fails
        // with a transport (not timeout) error instead of a stale handle.
        let err = pool.checkout().unwrap_err();
        assert!(!err.is_timeout(), "{err}");
        assert!(err.to_string().contains("cannot connect"), "{err}");
    }

    #[test]
    fn non_timeout_errors_report_as_transport() {
        let err = ClientError::new("cannot resolve 'nowhere'".to_owned());
        assert!(!err.is_timeout());
        assert_eq!(err.to_string(), "cannot resolve 'nowhere'");
        let timeout = ClientError::Timeout("timed out after 1s".to_owned());
        assert!(timeout.is_timeout());
        assert_eq!(timeout.to_string(), "timed out after 1s");
    }

    #[test]
    fn the_deprecated_one_shot_shim_still_answers() {
        let (addr, server) = toy_line_server(Duration::ZERO);
        #[allow(deprecated)]
        let resp = query(&addr, &Request::run("exp", 9, "none", 1.0), TIMEOUT).unwrap();
        assert_eq!(resp.message.as_deref(), Some("exp#9"));
        drop(server); // toy server thread parks in read; process exit reaps it
    }
}
