//! One-shot client for the serve protocol: connect, send one request
//! line, read one response line. Used by `experiments query` and the
//! serve tests.

use crate::protocol::{Request, Response};
use std::error::Error;
use std::fmt;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a query failed before a well-formed response arrived (connect,
/// I/O, or parse trouble — a daemon-side `error` status is NOT a
/// `ClientError`; it comes back as a normal [`Response`]).
#[derive(Debug)]
pub struct ClientError {
    message: String,
}

impl ClientError {
    fn new(message: String) -> ClientError {
        ClientError { message }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for ClientError {}

/// Send one request to the daemon at `addr` and wait (up to `timeout`
/// per socket operation) for its response line.
pub fn query(addr: &str, request: &Request, timeout: Duration) -> Result<Response, ClientError> {
    let targets: Vec<_> = addr
        .to_socket_addrs()
        .map_err(|e| ClientError::new(format!("cannot resolve '{addr}': {e}")))?
        .collect();
    let mut stream = None;
    let mut last_err = None;
    for target in &targets {
        match TcpStream::connect_timeout(target, timeout) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(e) => last_err = Some(e),
        }
    }
    let mut stream = stream.ok_or_else(|| {
        ClientError::new(match last_err {
            Some(e) => format!("cannot connect to {addr}: {e}"),
            None => format!("'{addr}' resolved to no addresses"),
        })
    })?;
    stream
        .set_read_timeout(Some(timeout))
        .and_then(|()| stream.set_write_timeout(Some(timeout)))
        .map_err(|e| ClientError::new(format!("socket setup: {e}")))?;

    let line = request
        .to_line()
        .map_err(|e| ClientError::new(format!("request serialization: {e}")))?;
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush())
        .map_err(|e| ClientError::new(format!("send to {addr}: {e}")))?;

    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.contains(&b'\n') {
                    break;
                }
            }
            Err(e) => {
                return Err(ClientError::new(format!("read from {addr}: {e}")));
            }
        }
    }
    let text = String::from_utf8_lossy(&buf);
    let line = text
        .lines()
        .find(|l| !l.trim().is_empty())
        .ok_or_else(|| ClientError::new(format!("{addr} closed without responding")))?;
    Response::from_line(line)
        .map_err(|e| ClientError::new(format!("malformed response from {addr}: {e}")))
}
