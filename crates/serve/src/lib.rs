//! # humnet-serve
//!
//! A long-lived experiment service: accept `{experiment, seed, profile,
//! intensity}` requests over a tiny line-delimited JSON protocol on TCP,
//! execute misses on the existing pooled scheduler runtime (warm executor
//! sessions — no per-request process spawn), and answer repeats from a
//! content-addressed result cache.
//!
//! The whole design leans on one invariant the rest of the workspace
//! enforces by test: same-seed runs are **byte-identical**. That makes
//! `(experiment, seed, profile, intensity, retries, code-rev)` a perfect
//! cache key — a hit returns the exact bytes a fresh run would produce,
//! at in-memory-lookup latency instead of simulation cost.
//!
//! Three layers:
//!
//! 1. [`protocol`] — the wire format: one JSON [`protocol::Request`] per
//!    line in, one JSON [`protocol::Response`] per line out.
//! 2. [`cache`] — [`cache::ResultCache`]: an in-memory index over
//!    content-addressed on-disk entries (atomic write-then-rename, FNV-1a
//!    128-bit keys and checksums, corruption-evicting rehydration).
//! 3. [`server`] — [`server::Server`]: the daemon itself, with admission
//!    control (bounded pending queue, concurrency cap, explicit
//!    load-shedding), daemon telemetry behind a `stats` request, and
//!    graceful shutdown on SIGTERM or a `shutdown` request.
//!
//! [`client`] is the matching side: [`client::ServeClient`] owns one
//! persistent connection (the line protocol already permits N requests
//! per connection, answered in order, so the client pipelines), and
//! [`client::ClientPool`] recycles handles across `experiments query`
//! invocations and capacity-ramp workers.
//!
//! [`ramp`] is the closed-loop capacity harness built on that client:
//! drive the daemon with rising open-loop load, stop when an SLO breaks,
//! bisect to the max sustainable RPS, and emit a code-rev-stamped
//! `CAPACITY.json`.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod protocol;
pub mod ramp;
pub mod server;

pub use cache::{cache_key, CacheEntry, RehydrateStats, ResultCache};
#[allow(deprecated)]
pub use client::query;
pub use client::{ClientError, ClientPool, ServeClient};
pub use protocol::{LineBuffer, Request, Response};
pub use ramp::{
    append_history, find_capacity, read_history, render_trend, run_ramp, CapacityReport,
    CapacityTrendEntry, RampPlan, RequestMix, Slo, StepRecord,
};
pub use server::{
    install_signal_handlers, ServeConfig, ServeSummary, Server, SpecFactory,
};
