//! Markov-chain text generation for synthetic abstracts and transcripts.
//!
//! The humnet corpus generator needs plausible-looking English that is (a)
//! deterministic given a seed, and (b) controllable: papers that "use
//! ethnographic methods" must actually contain those tokens so the audit
//! pipelines have signal to find. A word-level Markov chain trained on
//! small topical seed corpora fits both needs.

use humnet_stats::Rng;
use std::collections::HashMap;

/// A first-order word-level Markov model.
#[derive(Debug, Clone, Default)]
pub struct MarkovModel {
    /// Transition table: word -> (successor, count) list.
    table: HashMap<String, Vec<(String, u64)>>,
    /// Sentence-start words with counts.
    starts: Vec<(String, u64)>,
}

impl MarkovModel {
    /// Create an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Train on a sentence (a sequence of tokens). Multiple calls
    /// accumulate. Empty sentences are ignored.
    pub fn train(&mut self, tokens: &[String]) {
        if tokens.is_empty() {
            return;
        }
        bump(&mut self.starts, &tokens[0]);
        for w in tokens.windows(2) {
            let entry = self.table.entry(w[0].clone()).or_default();
            bump(entry, &w[1]);
        }
    }

    /// Train on raw text, one sentence at a time.
    pub fn train_text(&mut self, text: &str) {
        for sentence in crate::tokenize::sentences(text) {
            self.train(&crate::tokenize::tokenize(&sentence));
        }
    }

    /// True if the model has no training data.
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Generate a sentence of at most `max_words` words. Returns an empty
    /// vector for an untrained model. Generation stops early when a word
    /// has no successors.
    pub fn generate(&self, max_words: usize, rng: &mut Rng) -> Vec<String> {
        if self.starts.is_empty() || max_words == 0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(max_words);
        let mut current = pick(&self.starts, rng).to_owned();
        out.push(current.clone());
        while out.len() < max_words {
            match self.table.get(&current) {
                Some(successors) if !successors.is_empty() => {
                    current = pick(successors, rng).to_owned();
                    out.push(current.clone());
                }
                _ => break,
            }
        }
        out
    }

    /// Generate a paragraph of `sentences` sentences, capitalized and
    /// period-joined.
    pub fn generate_paragraph(&self, sentences: usize, max_words: usize, rng: &mut Rng) -> String {
        let mut parts = Vec::with_capacity(sentences);
        for _ in 0..sentences {
            let words = self.generate(max_words, rng);
            if words.is_empty() {
                continue;
            }
            let mut s = words.join(" ");
            if let Some(first) = s.get_mut(0..1) {
                first.make_ascii_uppercase();
            }
            s.push('.');
            parts.push(s);
        }
        parts.join(" ")
    }
}

fn bump(list: &mut Vec<(String, u64)>, word: &str) {
    if let Some(entry) = list.iter_mut().find(|(w, _)| w == word) {
        entry.1 += 1;
    } else {
        list.push((word.to_owned(), 1));
    }
}

fn pick<'a>(list: &'a [(String, u64)], rng: &mut Rng) -> &'a str {
    let weights: Vec<f64> = list.iter().map(|&(_, c)| c as f64).collect();
    &list[rng.choose_weighted(&weights)].0
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED_TEXT: &str = "We measure the network. We interview the operators. \
        The operators maintain the network. The network serves the community.";

    fn trained() -> MarkovModel {
        let mut m = MarkovModel::new();
        m.train_text(SEED_TEXT);
        m
    }

    #[test]
    fn untrained_model_generates_nothing() {
        let m = MarkovModel::new();
        assert!(m.is_empty());
        assert!(m.generate(10, &mut Rng::new(1)).is_empty());
        assert_eq!(m.generate_paragraph(2, 5, &mut Rng::new(1)), "");
    }

    #[test]
    fn generates_only_seen_words() {
        let m = trained();
        let mut rng = Rng::new(2);
        let vocab: Vec<String> = crate::tokenize::tokenize(SEED_TEXT);
        for _ in 0..20 {
            for word in m.generate(12, &mut rng) {
                assert!(vocab.contains(&word), "unseen word {word}");
            }
        }
    }

    #[test]
    fn generates_only_seen_transitions() {
        let m = trained();
        let mut rng = Rng::new(3);
        // Collect training bigrams.
        let mut pairs = std::collections::HashSet::new();
        for s in crate::tokenize::sentences(SEED_TEXT) {
            let toks = crate::tokenize::tokenize(&s);
            for w in toks.windows(2) {
                pairs.insert((w[0].clone(), w[1].clone()));
            }
        }
        for _ in 0..20 {
            let out = m.generate(12, &mut rng);
            for w in out.windows(2) {
                assert!(
                    pairs.contains(&(w[0].clone(), w[1].clone())),
                    "unseen transition {w:?}"
                );
            }
        }
    }

    #[test]
    fn respects_max_words() {
        let m = trained();
        let mut rng = Rng::new(4);
        assert!(m.generate(3, &mut rng).len() <= 3);
        assert!(m.generate(0, &mut rng).is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let m = trained();
        let a = m.generate(10, &mut Rng::new(7));
        let b = m.generate(10, &mut Rng::new(7));
        assert_eq!(a, b);
    }

    #[test]
    fn paragraph_has_sentences() {
        let m = trained();
        let p = m.generate_paragraph(3, 8, &mut Rng::new(5));
        assert!(p.matches('.').count() == 3, "paragraph: {p}");
        assert!(p.chars().next().unwrap().is_uppercase());
    }
}
