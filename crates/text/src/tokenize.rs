//! Tokenization, sentence splitting, stopwords, and stemming.

/// English stopwords, the classic short list plus a few academic fillers.
/// Kept sorted so membership tests can binary-search.
const STOPWORDS: &[&str] = &[
    "a", "about", "above", "after", "again", "all", "also", "am", "an", "and", "any", "are",
    "as", "at", "be", "because", "been", "before", "being", "below", "between", "both", "but",
    "by", "can", "could", "did", "do", "does", "doing", "down", "during", "each", "et", "few",
    "for", "from", "further", "had", "has", "have", "having", "he", "her", "here", "hers",
    "him", "his", "how", "i", "if", "in", "into", "is", "it", "its", "itself", "just", "me",
    "more", "most", "my", "no", "nor", "not", "now", "of", "off", "on", "once", "only", "or",
    "other", "our", "ours", "out", "over", "own", "s", "same", "she", "should", "so", "some",
    "such", "t", "than", "that", "the", "their", "theirs", "them", "then", "there", "these",
    "they", "this", "those", "through", "to", "too", "under", "until", "up", "very", "was",
    "we", "were", "what", "when", "where", "which", "while", "who", "whom", "why", "will",
    "with", "you", "your", "yours",
];

/// True if `word` (already lowercase) is a stopword.
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

/// Split text into lowercase word tokens. A token is a maximal run of
/// alphanumeric characters; hyphens and apostrophes inside a word are kept
/// (so "community-run" and "don't" stay single tokens), leading/trailing
/// punctuation is stripped.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            current.extend(ch.to_lowercase());
        } else if (ch == '-' || ch == '\'') && !current.is_empty() {
            current.push(ch);
        } else if !current.is_empty() {
            flush(&mut tokens, &mut current);
        }
    }
    if !current.is_empty() {
        flush(&mut tokens, &mut current);
    }
    tokens
}

fn flush(tokens: &mut Vec<String>, current: &mut String) {
    // Trim trailing joiners left by "word- " patterns.
    while current.ends_with('-') || current.ends_with('\'') {
        current.pop();
    }
    if !current.is_empty() {
        tokens.push(std::mem::take(current));
    } else {
        current.clear();
    }
}

/// Tokenize and drop stopwords.
pub fn content_words(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|t| !is_stopword(t))
        .collect()
}

/// Split text into sentences on `.`, `!`, `?` boundaries, trimming
/// whitespace and dropping empties. Abbreviation handling is intentionally
/// minimal — humnet's synthetic text does not use abbreviations.
pub fn sentences(text: &str) -> Vec<String> {
    text.split(['.', '!', '?'])
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .collect()
}

/// A light suffix stemmer (a small subset of Porter step 1): strips plural
/// and participle suffixes. Good enough to conflate "networks"/"network",
/// "measured"/"measure", "routing"/"rout" consistently; not a linguistic
/// tool.
pub fn stem(word: &str) -> String {
    let w = word.to_lowercase();
    // Order matters: longest suffixes first.
    if let Some(base) = w.strip_suffix("sses") {
        return format!("{base}ss");
    }
    if let Some(base) = w.strip_suffix("ies") {
        return format!("{base}i");
    }
    if w.ends_with("ss") {
        return w;
    }
    if let Some(base) = w.strip_suffix("ing") {
        if base.len() >= 3 {
            return base.to_owned();
        }
        return w;
    }
    if let Some(base) = w.strip_suffix("ed") {
        if base.len() >= 3 {
            return base.to_owned();
        }
        return w;
    }
    if let Some(base) = w.strip_suffix('s') {
        if base.len() >= 2 {
            return base.to_owned();
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopword_list_is_sorted() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOPWORDS, "STOPWORDS must stay sorted for binary search");
    }

    #[test]
    fn stopword_membership() {
        assert!(is_stopword("the"));
        assert!(is_stopword("with"));
        assert!(!is_stopword("network"));
        assert!(!is_stopword("peering"));
    }

    #[test]
    fn tokenize_basic() {
        assert_eq!(
            tokenize("The Internet is not merely routers!"),
            vec!["the", "internet", "is", "not", "merely", "routers"]
        );
    }

    #[test]
    fn tokenize_keeps_internal_hyphens() {
        assert_eq!(
            tokenize("community-run networks; don't abstract"),
            vec!["community-run", "networks", "don't", "abstract"]
        );
    }

    #[test]
    fn tokenize_strips_trailing_hyphen() {
        assert_eq!(tokenize("last- mile"), vec!["last", "mile"]);
    }

    #[test]
    fn tokenize_numbers_kept() {
        assert_eq!(tokenize("BGP4 and 35 IXPs"), vec!["bgp4", "and", "35", "ixps"]);
    }

    #[test]
    fn tokenize_empty_and_punct_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("... --- !!!").is_empty());
    }

    #[test]
    fn content_words_drop_stopwords() {
        assert_eq!(
            content_words("the operators of the network"),
            vec!["operators", "network"]
        );
    }

    #[test]
    fn sentences_split() {
        let s = sentences("Networks are operated. They are experienced! Are they measured?");
        assert_eq!(s.len(), 3);
        assert_eq!(s[0], "Networks are operated");
    }

    #[test]
    fn sentences_empty() {
        assert!(sentences("").is_empty());
        assert!(sentences("...").is_empty());
    }

    #[test]
    fn stem_plurals() {
        assert_eq!(stem("networks"), "network");
        assert_eq!(stem("classes"), "class"); // sses -> ss
        assert_eq!(stem("studies"), "studi");
        assert_eq!(stem("glass"), "glass");
    }

    #[test]
    fn stem_participles() {
        assert_eq!(stem("measured"), "measur");
        assert_eq!(stem("routing"), "rout");
        // Too-short bases are left alone.
        assert_eq!(stem("red"), "red");
        assert_eq!(stem("ring"), "ring");
    }

    #[test]
    fn stem_is_idempotent_on_stems() {
        for w in ["network", "peering", "gets"] {
            let once = stem(w);
            let twice = stem(&once);
            // ing-stripping can apply once ("peering" -> "peer"); a second
            // application must be stable.
            assert_eq!(stem(&twice), twice);
        }
    }
}
