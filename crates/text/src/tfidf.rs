//! TF-IDF vectorization and cosine similarity over sparse vectors.

use crate::vocab::Vocabulary;
use crate::{Result, TextError};
use std::collections::HashMap;

/// A sparse vector: sorted `(term_id, weight)` pairs.
pub type SparseVec = Vec<(usize, f64)>;

/// A fitted TF-IDF model: a vocabulary with inverse-document-frequency
/// weights learned from a corpus.
#[derive(Debug, Clone)]
pub struct TfIdf {
    vocab: Vocabulary,
    idf: Vec<f64>,
}

impl TfIdf {
    /// Fit on a corpus of tokenized documents. Errors on an empty corpus.
    ///
    /// IDF uses the smoothed form `ln((1 + N) / (1 + df)) + 1`, which keeps
    /// weights positive and finite even for terms present in every document.
    pub fn fit(documents: &[Vec<String>]) -> Result<Self> {
        if documents.is_empty() {
            return Err(TextError::EmptyInput);
        }
        let mut vocab = Vocabulary::new();
        for doc in documents {
            vocab.observe_document(doc);
        }
        let n = documents.len() as f64;
        let idf: Vec<f64> = (0..vocab.len())
            .map(|id| {
                let term = vocab.term(id).expect("dense ids");
                let df = vocab.document_frequency(term) as f64;
                ((1.0 + n) / (1.0 + df)).ln() + 1.0
            })
            .collect();
        Ok(TfIdf { vocab, idf })
    }

    /// The underlying vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// IDF weight of a term (None if the term was never seen).
    pub fn idf(&self, term: &str) -> Option<f64> {
        self.vocab.id(term).map(|id| self.idf[id])
    }

    /// Transform a tokenized document into an L2-normalized sparse TF-IDF
    /// vector. Unseen terms are ignored. An empty or all-unseen document
    /// yields an empty vector.
    pub fn transform(&self, tokens: &[String]) -> SparseVec {
        let mut counts: HashMap<usize, f64> = HashMap::new();
        for t in tokens {
            if let Some(id) = self.vocab.id(t) {
                *counts.entry(id).or_insert(0.0) += 1.0;
            }
        }
        let mut vec: SparseVec = counts
            .into_iter()
            .map(|(id, tf)| (id, tf * self.idf[id]))
            .collect();
        vec.sort_by_key(|&(id, _)| id);
        let norm: f64 = vec.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
        if norm > 0.0 {
            for (_, w) in vec.iter_mut() {
                *w /= norm;
            }
        }
        vec
    }
}

/// Cosine similarity between two sparse vectors (sorted by id).
/// Empty vectors have similarity 0.
pub fn cosine_similarity(a: &SparseVec, b: &SparseVec) -> f64 {
    let mut dot = 0.0;
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                dot += a[i].1 * b[j].1;
                i += 1;
                j += 1;
            }
        }
    }
    let na: f64 = a.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
    if na > 0.0 && nb > 0.0 {
        (dot / (na * nb)).clamp(-1.0, 1.0)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::tokenize;

    fn corpus() -> Vec<Vec<String>> {
        vec![
            tokenize("bgp peering at the exchange"),
            tokenize("community networks and mesh routing"),
            tokenize("bgp routing policies and peering disputes"),
        ]
    }

    #[test]
    fn fit_rejects_empty() {
        assert_eq!(TfIdf::fit(&[]).unwrap_err(), TextError::EmptyInput);
    }

    #[test]
    fn rare_terms_get_higher_idf() {
        let model = TfIdf::fit(&corpus()).unwrap();
        let idf_bgp = model.idf("bgp").unwrap(); // df = 2
        let idf_mesh = model.idf("mesh").unwrap(); // df = 1
        assert!(idf_mesh > idf_bgp);
        assert!(model.idf("nonexistent").is_none());
    }

    #[test]
    fn transform_is_normalized() {
        let model = TfIdf::fit(&corpus()).unwrap();
        let v = model.transform(&tokenize("bgp peering policies"));
        let norm: f64 = v.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transform_unknown_tokens_empty() {
        let model = TfIdf::fit(&corpus()).unwrap();
        let v = model.transform(&tokenize("zebra quark"));
        assert!(v.is_empty());
    }

    #[test]
    fn similar_documents_score_higher() {
        let model = TfIdf::fit(&corpus()).unwrap();
        let q = model.transform(&tokenize("bgp peering"));
        let d0 = model.transform(&corpus()[0]);
        let d1 = model.transform(&corpus()[1]);
        assert!(cosine_similarity(&q, &d0) > cosine_similarity(&q, &d1));
    }

    #[test]
    fn cosine_self_similarity_is_one() {
        let model = TfIdf::fit(&corpus()).unwrap();
        let v = model.transform(&corpus()[2]);
        assert!((cosine_similarity(&v, &v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_disjoint_is_zero() {
        let a: SparseVec = vec![(0, 1.0), (2, 1.0)];
        let b: SparseVec = vec![(1, 1.0), (3, 1.0)];
        assert_eq!(cosine_similarity(&a, &b), 0.0);
    }

    #[test]
    fn cosine_empty_is_zero() {
        let a: SparseVec = vec![];
        let b: SparseVec = vec![(0, 1.0)];
        assert_eq!(cosine_similarity(&a, &b), 0.0);
    }
}
