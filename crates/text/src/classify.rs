//! Multinomial naive Bayes with Laplace smoothing.
//!
//! Used by the corpus auditor to classify synthetic papers into method
//! categories, and as the baseline "venue gatekeeper" text model in
//! experiment **T5**.

use crate::vocab::Vocabulary;
use crate::{Result, TextError};
use std::collections::HashMap;

/// A fitted multinomial naive-Bayes classifier over tokenized documents.
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    vocab: Vocabulary,
    classes: Vec<String>,
    /// Per-class log prior.
    log_prior: Vec<f64>,
    /// Per-class, per-term counts.
    counts: Vec<Vec<f64>>,
    /// Per-class total token counts.
    totals: Vec<f64>,
    /// Laplace smoothing constant.
    alpha: f64,
}

impl NaiveBayes {
    /// Train on `(tokens, label)` pairs with smoothing constant `alpha > 0`.
    pub fn fit(examples: &[(Vec<String>, String)], alpha: f64) -> Result<Self> {
        if examples.is_empty() {
            return Err(TextError::EmptyInput);
        }
        if alpha <= 0.0 {
            return Err(TextError::InvalidParameter("alpha must be positive"));
        }
        let mut vocab = Vocabulary::new();
        let mut class_ids: HashMap<String, usize> = HashMap::new();
        let mut classes: Vec<String> = Vec::new();
        // First pass: vocabulary and class list.
        for (tokens, label) in examples {
            vocab.observe_document(tokens);
            if !class_ids.contains_key(label) {
                class_ids.insert(label.clone(), classes.len());
                classes.push(label.clone());
            }
        }
        let k = classes.len();
        let v = vocab.len();
        let mut counts = vec![vec![0.0; v]; k];
        let mut totals = vec![0.0; k];
        let mut class_docs = vec![0.0; k];
        for (tokens, label) in examples {
            let c = class_ids[label];
            class_docs[c] += 1.0;
            for t in tokens {
                let id = vocab.id(t).expect("observed above");
                counts[c][id] += 1.0;
                totals[c] += 1.0;
            }
        }
        let n = examples.len() as f64;
        let log_prior = class_docs.iter().map(|&d| (d / n).ln()).collect();
        Ok(NaiveBayes {
            vocab,
            classes,
            log_prior,
            counts,
            totals,
            alpha,
        })
    }

    /// The class labels, in training-discovery order.
    pub fn classes(&self) -> &[String] {
        &self.classes
    }

    /// Log-probability scores (unnormalized joint log-likelihoods) per class.
    /// Unknown tokens are skipped.
    pub fn scores(&self, tokens: &[String]) -> Vec<f64> {
        let v = self.vocab.len() as f64;
        let mut scores = self.log_prior.clone();
        for t in tokens {
            if let Some(id) = self.vocab.id(t) {
                for (c, score) in scores.iter_mut().enumerate() {
                    let p = (self.counts[c][id] + self.alpha)
                        / (self.totals[c] + self.alpha * v);
                    *score += p.ln();
                }
            }
        }
        scores
    }

    /// Predict the most likely class for a tokenized document
    /// (first class on exact ties, which is deterministic).
    pub fn predict(&self, tokens: &[String]) -> &str {
        let scores = self.scores(tokens);
        let mut best = 0;
        for (c, &s) in scores.iter().enumerate() {
            if s > scores[best] {
                best = c;
            }
        }
        &self.classes[best]
    }

    /// Posterior probabilities per class (softmax of the log scores).
    pub fn predict_proba(&self, tokens: &[String]) -> Vec<f64> {
        let scores = self.scores(tokens);
        let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let exp: Vec<f64> = scores.iter().map(|&s| (s - max).exp()).collect();
        let z: f64 = exp.iter().sum();
        exp.into_iter().map(|e| e / z).collect()
    }

    /// Accuracy on a labelled test set.
    pub fn accuracy(&self, examples: &[(Vec<String>, String)]) -> Result<f64> {
        if examples.is_empty() {
            return Err(TextError::EmptyInput);
        }
        let correct = examples
            .iter()
            .filter(|(tokens, label)| self.predict(tokens) == label)
            .count();
        Ok(correct as f64 / examples.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::tokenize;

    fn training_set() -> Vec<(Vec<String>, String)> {
        let systems = [
            "we measure throughput and latency of the datacenter fabric",
            "a congestion control algorithm for low latency datacenter networks",
            "scalable load balancing improves tail latency in the fabric",
            "kernel bypass improves datacenter throughput",
        ];
        let human = [
            "interviews with community operators reveal maintenance practices",
            "an ethnographic study of network operators and their communities",
            "participatory design with rural community members",
            "positionality shapes how operators experience their networks and interviews",
        ];
        let mut out = Vec::new();
        for s in systems {
            out.push((tokenize(s), "systems".to_string()));
        }
        for h in human {
            out.push((tokenize(h), "human".to_string()));
        }
        out
    }

    #[test]
    fn fit_rejects_bad_input() {
        assert!(NaiveBayes::fit(&[], 1.0).is_err());
        assert!(NaiveBayes::fit(&training_set(), 0.0).is_err());
    }

    #[test]
    fn classifies_held_out_documents() {
        let nb = NaiveBayes::fit(&training_set(), 1.0).unwrap();
        assert_eq!(nb.predict(&tokenize("latency of the congestion fabric")), "systems");
        assert_eq!(
            nb.predict(&tokenize("community interviews about maintenance")),
            "human"
        );
    }

    #[test]
    fn training_accuracy_is_high() {
        let set = training_set();
        let nb = NaiveBayes::fit(&set, 1.0).unwrap();
        assert_eq!(nb.accuracy(&set).unwrap(), 1.0);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let nb = NaiveBayes::fit(&training_set(), 1.0).unwrap();
        let p = nb.predict_proba(&tokenize("datacenter interviews"));
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn unknown_tokens_fall_back_to_prior() {
        let nb = NaiveBayes::fit(&training_set(), 1.0).unwrap();
        let p = nb.predict_proba(&tokenize("xylophone zeppelin"));
        // Equal priors -> equal posteriors.
        assert!((p[0] - 0.5).abs() < 1e-9, "p = {p:?}");
    }

    #[test]
    fn classes_discovered_in_order() {
        let nb = NaiveBayes::fit(&training_set(), 1.0).unwrap();
        assert_eq!(nb.classes(), &["systems".to_string(), "human".to_string()]);
    }
}
